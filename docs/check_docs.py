#!/usr/bin/env python
"""Documentation link-check and public-docstring smoke.

Stdlib-only (runs in any environment, no docs toolchain needed), used
by the CI ``docs`` job next to the mkdocs strict build:

1. **Relative links resolve.**  Every relative markdown link in
   README.md and docs/*.md must point at an existing file/directory
   (anchors are stripped; http(s)/mailto links are skipped).
2. **Source cross-references resolve.**  Every ``DESIGN.md`` mention
   in ``src/`` must have docs/DESIGN.md present, and every section
   cited as ``§N`` must exist in it (this is the regression that
   motivated the check: three modules cited a DESIGN.md that did not
   exist).
3. **Public docstrings.**  Every object exported via ``__all__`` from
   the audited packages (repro.api, repro.backends, repro.chaos, repro.obs,
   repro.resilience, repro.store, and their submodules) must carry a
   docstring, as must the modules themselves.
4. **Examples gallery.**  Every ``examples/*.py`` must be linked from
   README.md.

Exit code 0 = clean; 1 = problems (each printed on its own line).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: Packages whose public surface must be documented.
AUDITED_PACKAGES = (
    "repro.adaptive",
    "repro.api",
    "repro.backends",
    "repro.chaos",
    "repro.obs",
    "repro.resilience",
    "repro.store",
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SECTION = re.compile(r"DESIGN\.md.{0,12}?§(\d+)", re.DOTALL)


def check_markdown_links(problems: list[str]) -> None:
    pages = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    for page in pages:
        text = page.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1).split("#", 1)[0]
            if not target or target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = (page.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{page.relative_to(ROOT)}: broken link -> {match.group(1)}"
                )


def check_design_references(problems: list[str]) -> None:
    design = ROOT / "docs" / "DESIGN.md"
    sections = set()
    if design.exists():
        sections = set(re.findall(r"^##\s+§(\d+)", design.read_text(encoding="utf-8"), re.M))
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        if "DESIGN.md" not in text:
            continue
        if not design.exists():
            problems.append(f"{path.relative_to(ROOT)}: cites DESIGN.md but docs/DESIGN.md is missing")
            continue
        for cited in _SECTION.findall(text):
            if cited not in sections:
                problems.append(
                    f"{path.relative_to(ROOT)}: cites DESIGN.md §{cited}, "
                    f"which docs/DESIGN.md does not define"
                )


def check_public_docstrings(problems: list[str]) -> None:
    import importlib
    import pkgutil

    sys.path.insert(0, str(SRC))
    modules: list[str] = []
    for pkg_name in AUDITED_PACKAGES:
        pkg = importlib.import_module(pkg_name)
        modules.append(pkg_name)
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            modules.append(info.name)
    for mod_name in modules:
        mod = importlib.import_module(mod_name)
        if not (mod.__doc__ or "").strip():
            problems.append(f"{mod_name}: missing module docstring")
        for name in getattr(mod, "__all__", ()):
            obj = getattr(mod, name, None)
            if obj is None or isinstance(obj, (int, float, str, tuple, list, dict)):
                continue  # constants document themselves in the module
            if not (getattr(obj, "__doc__", None) or "").strip():
                problems.append(f"{mod_name}.{name}: missing public docstring")


def check_examples_gallery(problems: list[str]) -> None:
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for example in sorted((ROOT / "examples").glob("*.py")):
        if example.name not in readme:
            problems.append(
                f"examples/{example.name}: not linked from the README examples gallery"
            )


def main() -> int:
    problems: list[str] = []
    check_markdown_links(problems)
    check_design_references(problems)
    check_public_docstrings(problems)
    check_examples_gallery(problems)
    if problems:
        print(f"docs check: {len(problems)} problem(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    print("docs check: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
