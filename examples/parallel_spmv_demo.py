#!/usr/bin/env python
"""Row-partitioned parallel SpMxV with per-rank ABFT.

The paper's Section 1: each processor owns a block of rows and runs the
checksum protection locally; because output rows are disjoint, local
detection/correction gives global detection/correction, while MPI-style
transport is assumed reliable.  The platform MTBF shrinks as 1/p, which
feeds back into the checkpoint-interval model.

Run:  python examples/parallel_spmv_demo.py
"""

import numpy as np

from repro.core import CostModel, Scheme
from repro.model import model_for_scheme
from repro.parallel import DistributedSpmv, partition_by_nnz, platform_rate
from repro.sparse import stencil_spd


def main() -> None:
    a = stencil_spd(3600, kind="box", radius=2)
    rng = np.random.default_rng(3)
    x = rng.standard_normal(a.ncols)
    y_true = a.matvec(x)

    print(f"matrix: n={a.nrows}, nnz={a.nnz}")
    for p in (2, 4, 8):
        part = partition_by_nnz(a, p)
        op = DistributedSpmv(a, p, partition=part)

        # Rank p−1 suffers a Val strike and rank 0 an input strike —
        # each is locally single, so both are corrected in place.
        def val_hook(stage, blk, xx, yy):
            if stage == "pre":
                blk.val[11] += 4.0

        def x_hook(stage, blk, xx, yy):
            if stage == "pre":
                xx[3] -= 2.0

        res = op.multiply(x, rank_hooks={p - 1: val_hook, 0: x_hook})
        err = np.abs(res.y - y_true).max()
        statuses = ",".join(r.status.value[:4] for r in res.rank_results)
        print(
            f"p={p}: global={res.global_status.value:9s} per-rank=[{statuses}] "
            f"max|y-Ax|={err:.1e} comm={op.comm.stats.words} words "
            f"(p2p lower bound {part.communication_volume(a)})"
        )

    # MTBF scaling: the checkpoint interval the model recommends
    # shrinks as ranks are added.
    print("\ncheckpoint interval vs processor count (per-proc rate 1e-3):")
    costs = CostModel.from_matrix(a)
    for p in (1, 4, 16, 64, 256):
        lam = platform_rate(1e-3, p)
        s = model_for_scheme(Scheme.ABFT_CORRECTION, lam, costs).optimal(s_max=3000).s
        print(f"  p={p:4d}  lambda={lam:8.1e}  s~={s}")


if __name__ == "__main__":
    main()
