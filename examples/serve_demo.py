#!/usr/bin/env python
"""Serve a campaign through a lease-coordinated worker fleet.

``repro serve`` is the third way to run a campaign, after ``--jobs``
fan-out and ``--resume``: a dispatcher plus N long-lived workers that
*claim* pending tasks from a shared concurrent store (``sharded:dir``
or ``sqlite:file.db``) via leases with heartbeats.  A worker that dies
mid-task simply stops heartbeating; once the lease TTL passes, a peer
steals the task and reruns it.  Leases are advisory — records are
idempotent by content hash — so per-task results are **identical to
--jobs 1**, which this demo verifies, crash included.

Run:  python examples/serve_demo.py
"""

import tempfile
from pathlib import Path

from repro import Study
from repro.campaign import run_campaign
from repro.store import migrate_store, open_store, serve_campaign


def main() -> None:
    study = Study.table1(scale=48, reps=2, uids=[2213], s_span=2)
    tasks = study.tasks()
    workdir = Path(tempfile.mkdtemp())

    # --- the baseline every other execution mode must reproduce -----------
    baseline = run_campaign(tasks, jobs=1)

    # --- a fleet of three workers over a sharded store --------------------
    # Each record routes to the shard its content hash selects, so the
    # workers rarely touch the same file; each shard keeps the JSONL
    # torn-tail crash contract individually.
    url = f"sharded:{workdir / 'fleet.d'}"
    print(f"serving {len(tasks)} tasks over 3 workers -> {url}")
    records = serve_campaign(tasks, url, workers=3, lease_ttl=30.0)
    assert records == baseline  # bit-identical, scheduling-independent
    print("fleet results are bit-identical to jobs=1")

    # --- crash tolerance: a stale lease from a "dead" worker --------------
    # Claim one task on behalf of a worker that will never heartbeat,
    # with a short TTL.  The fleet waits the TTL out, steals the lease,
    # and still completes everything.
    url2 = f"sqlite:{workdir / 'fleet.db'}"
    store = open_store(url2)
    victim = tasks[0].task_hash()
    store.try_claim(victim, "pid-dead-00000000", ttl=1.0)
    print(f"lease on {victim[:16]}… held by a dead worker (ttl 1s)")
    records = serve_campaign(tasks, url2, workers=2, lease_ttl=1.0)
    assert records == baseline
    print("stolen and completed: still bit-identical")

    # --- stores migrate without losing resume ------------------------------
    back = workdir / "fleet.jsonl"
    moved = migrate_store(url2, back)
    done, pending = open_store(back).resume(tasks)
    print(f"migrated {moved} records sqlite -> jsonl; "
          f"resume sees {len(done)} done, {len(pending)} pending")
    assert not pending

    print(f"\nequivalent CLI:\n"
          f"  repro serve spec.json --store {url} --workers 3\n"
          f"  repro store info {url}\n"
          f"  repro store migrate {url2} {back}")


if __name__ == "__main__":
    main()
