#!/usr/bin/env python
"""A miniature Figure-1 study on one suite matrix.

Sweeps the normalized MTBF (1/α) and compares the three schemes'
expected execution time, each at its model-optimal intervals — the
experiment behind the paper's headline claim that combining
checkpointing with ABFT *correction* beats pure checkpointing.

Run:  python examples/fault_injection_study.py [uid] [scale]
"""

import sys

from repro.core import CostModel, Scheme, SchemeConfig
from repro.sim.engine import make_rhs, repeat_run
from repro.sim.experiments import model_interval_for
from repro.sim.matrices import suite_specs


def main() -> None:
    uid = int(sys.argv[1]) if len(sys.argv) > 1 else 341
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    spec = suite_specs([uid])[0]
    a = spec.instantiate(scale)
    b = make_rhs(a)
    costs = CostModel.from_matrix(a)
    print(
        f"matrix #{uid} (paper n={spec.n}, scaled n={a.nrows}, "
        f"{a.nnz / a.nrows:.1f} nnz/row)\n"
    )

    schemes = (Scheme.ONLINE_DETECTION, Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION)
    print(f"{'1/alpha':>8} | " + " | ".join(f"{s.value:>24}" for s in schemes))
    print("-" * (11 + 27 * 3))
    for mtbf in (16, 50, 100, 316, 1000, 10000):
        alpha = 1.0 / mtbf
        cells = []
        for scheme in schemes:
            s, d = model_interval_for(scheme, alpha, costs)
            cfg = SchemeConfig(
                scheme, checkpoint_interval=s, verification_interval=d, costs=costs
            )
            stats = repeat_run(
                a, b, cfg, alpha=alpha, reps=5, base_seed=7, labels=(uid, mtbf), eps=1e-6
            )
            cells.append(f"{stats.mean_time:10.1f} (s={s:3d},d={d:3d})")
        print(f"{mtbf:>8} | " + " | ".join(f"{c:>24}" for c in cells))

    print(
        "\nReading: at high fault rates (left) forward recovery keeps\n"
        "ABFT-CORRECTION ahead; as faults vanish the cheaper verifications\n"
        "win and the curves converge — the paper's Figure-1 shape."
    )


if __name__ == "__main__":
    main()
