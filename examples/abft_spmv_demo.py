#!/usr/bin/env python
"""Walk through every ABFT decode path of Algorithm 2.

Injects one error of each kind — Val, Colid, Rowidx, input vector x,
computed output y — into a protected sparse matrix–vector product and
shows how the checksum residuals localize and repair it, plus the
double-error case that forces a rollback.

Run:  python examples/abft_spmv_demo.py
"""

import numpy as np

from repro import compute_checksums, laplacian_2d, protected_spmv
from repro.faults import flip_bit_float64, flip_bit_int64


def show(title, res, extra=""):
    r = res.residuals
    print(f"--- {title}")
    print(f"    status     : {res.status.value}")
    print(f"    residuals  : dr={r.dr}  dx={r.dx}  dxp={r.dxp}")
    if res.correction is not None:
        print(f"    decode     : {res.correction.kind} — {res.correction.detail}")
    if extra:
        print(f"    {extra}")
    print()


def main() -> None:
    a = laplacian_2d(30)  # 900×900 SPD
    rng = np.random.default_rng(1)
    x = rng.standard_normal(a.ncols)
    y_true = a.matvec(x)

    # One-off reliable setup: O(2·nnz), amortized over every product.
    cks = compute_checksums(a, nchecks=2)
    print(f"checksum setup: 2 weight rows, shift k={cks.shift}\n")

    res = protected_spmv(a, x.copy(), cks)
    show("clean product", res, extra=f"max|y-Ax| = {np.abs(res.y - y_true).max():.2e}")

    # 1. Val: flip an exponent bit of a stored value.
    bad = a.copy()
    bad.val[100] = flip_bit_float64(bad.val[100], 55)
    res = protected_spmv(bad, x.copy(), cks)
    show("Val bit flip", res, extra=f"matrix repaired: {bad.equals(a)}")

    # 2. Colid: move a nonzero to the wrong column.
    bad = a.copy()
    p = int(bad.rowidx[17])
    bad.colid[p] = (int(bad.colid[p]) + 13) % bad.ncols
    res = protected_spmv(bad, x.copy(), cks)
    show("Colid corruption", res, extra=f"matrix repaired: {bad.equals(a)}")

    # 3. Rowidx: a flipped row pointer shifts two rows' extents.
    bad = a.copy()
    bad.rowidx[440] = flip_bit_int64(int(bad.rowidx[440]), 7)
    res = protected_spmv(bad, x.copy(), cks)
    show("Rowidx bit flip", res, extra=f"matrix repaired: {bad.equals(a)}")

    # 4. x: the input vector is corrupted mid-product (the reliable
    #    snapshot x' and the checksum cx were taken at entry).
    def hook_x(stage, aa, xx, yy):
        if stage == "pre":
            xx[505] += 3.75

    xc = x.copy()
    res = protected_spmv(a, xc, cks, fault_hook=hook_x)
    show("input-vector strike", res, extra=f"x restored: {np.allclose(xc, x)}")

    # 5. y: the computation of one output entry goes wrong.
    def hook_y(stage, aa, xx, yy):
        if stage == "post":
            yy[77] = flip_bit_float64(yy[77], 54)

    res = protected_spmv(a, x.copy(), cks, fault_hook=hook_y)
    show("computation strike", res, extra=f"max|y-Ax| = {np.abs(res.y - y_true).max():.2e}")

    # 6. Two errors at once: detected but beyond single-error decoding —
    #    the solver layer rolls back to its last checkpoint.
    bad = a.copy()
    bad.val[10] += 1.0
    bad.val[4000] -= 2.0
    res = protected_spmv(bad, x.copy(), cks)
    show("double error", res, extra="caller must fall back to backward recovery")


if __name__ == "__main__":
    main()
