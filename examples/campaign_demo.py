#!/usr/bin/env python
"""Run an experiment campaign: parallel fan-out, persistence, resume.

The paper's evaluation grid — (matrix × scheme × α × interval × rep) —
is embarrassingly parallel, and every repetition seeds its RNG from the
task's *identity*, never from execution order.  The campaign engine
exploits that: fan tasks over worker processes, persist each result to
a JSONL store the moment it lands, and resume a killed campaign without
recomputing a single finished task.

Run:  python examples/campaign_demo.py
"""

import tempfile
import time
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ProgressReporter,
    ResultStore,
    aggregate_table1,
    default_jobs,
    run_campaign,
)
from repro.sim.results import format_table1


def main() -> None:
    # --- declare the grid -------------------------------------------------
    spec = CampaignSpec(kind="table1", scale=48, reps=2, uids=(341, 2213), s_span=3)
    tasks = spec.expand()
    print(f"campaign: {len(tasks)} tasks over {default_jobs()} worker(s)")

    store_path = Path(tempfile.mkdtemp()) / "table1.jsonl"
    store = ResultStore(store_path)

    # --- simulate a crash: run only the first half, then "die" -----------
    half = tasks[: len(tasks) // 2]
    run_campaign(half, jobs=default_jobs(), store=store)
    done, still_pending = store.resume(tasks)
    print(f"interrupted: {len(done)} tasks safe in {store_path}, "
          f"{len(still_pending)} still pending")

    # --- resume: completed tasks come from the store, free -----------------
    t0 = time.perf_counter()
    import sys

    progress = ProgressReporter(len(tasks), stream=sys.stderr, label="resume")
    records = run_campaign(tasks, jobs=default_jobs(), store=store, progress=progress)
    print(f"resumed + finished in {time.perf_counter() - t0:.1f}s "
          f"({progress.cached} cache hits, {progress.fresh} fresh)")

    # --- aggregate into the paper's Table-1 shape --------------------------
    print()
    print(format_table1(aggregate_table1(tasks, records)))
    print("equivalent CLI:  python -m repro table1 --scale 48 --reps 2 "
          "--uids 341 2213 --jobs 4 --store table1.jsonl   # then --resume")


if __name__ == "__main__":
    main()
