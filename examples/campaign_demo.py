#!/usr/bin/env python
"""Run a declarative study campaign: parallel fan-out, persistence, resume.

The paper's evaluation grid — (matrix × scheme × α × interval × rep) —
is embarrassingly parallel, and every repetition seeds its RNG from the
task's *identity*, never from execution order.  A :class:`repro.Study`
declares such a grid once; the campaign engine underneath fans tasks
over worker processes, persists each result to a JSONL store the moment
it lands, and resumes a killed campaign without recomputing a single
finished task.

Run:  python examples/campaign_demo.py
"""

import tempfile
import time
from pathlib import Path

from repro import Study
from repro.campaign import ResultStore, default_jobs, run_campaign
from repro.sim.results import format_table1


def main() -> None:
    # --- declare the grid: the paper's Table-1 preset ---------------------
    study = Study.table1(scale=48, reps=2, uids=[341, 2213], s_span=3)
    tasks = study.tasks()
    print(f"study {study.name!r}: {len(tasks)} tasks over {default_jobs()} worker(s)")

    workdir = Path(tempfile.mkdtemp())
    store_path = workdir / "table1.jsonl"

    # The spec itself is portable: export it, run it anywhere via
    #   repro study run table1_study.json --store table1.jsonl --jobs 4
    spec_path = workdir / "table1_study.json"
    study.save(spec_path)
    print(f"spec exported to {spec_path}")

    # --- simulate a crash: run only the first half, then "die" -----------
    half = tasks[: len(tasks) // 2]
    run_campaign(half, jobs=default_jobs(), store=ResultStore(store_path))
    done, still_pending = ResultStore(store_path).resume(tasks)
    print(f"interrupted: {len(done)} tasks safe in {store_path}, "
          f"{len(still_pending)} still pending")

    # --- resume: completed tasks come from the store, free -----------------
    t0 = time.perf_counter()
    result = study.run(jobs=default_jobs(), store=store_path, progress=True)
    print(f"resumed + finished in {time.perf_counter() - t0:.1f}s "
          f"({len(result)} tasks total)")

    # --- aggregate into the paper's Table-1 shape --------------------------
    print()
    print(format_table1(result.table1_rows()))
    print("equivalent CLI:  repro table1 --scale 48 --reps 2 "
          "--uids 341 2213 --jobs 4 --store table1.jsonl   # then --resume\n"
          f"inspect the store: repro report {store_path}")


if __name__ == "__main__":
    main()
