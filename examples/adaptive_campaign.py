#!/usr/bin/env python
"""Adaptive sampling: stop each task when its CI is tight, not at rep N.

A fixed-count campaign spends the same repetition budget on every grid
point, but timing variance is wildly uneven across the paper's grid —
quiet cells pin their mean almost immediately, noisy ones need the
whole budget.  ``Study.adaptive()`` switches every task to sequential
stopping: repetitions run until the Student-t confidence interval on
the mean time falls below a target (or a rep cap is hit).  Per-rep
fault streams are seeded from the task identity and the rep index, so
an adaptive run that stops at k reps is *bit-identical* to the first k
reps of the fixed-count run — same physics, fewer repetitions.

Run:  python examples/adaptive_campaign.py
"""

import time

from repro import Study
from repro.sim.results import format_figure1

#: Stop a task once the 90% CI half-width is within 25% of the mean,
#: after at least 10 reps, giving up refinement at 24 reps.  The floor
#: matters: a handful of identical early timings would otherwise stop a
#: task with a degenerate ±0.0 interval before the variance shows up.
POLICY = "ci=0.25,conf=0.9,min=10,max=24"
CAP = 24


def run(study: Study, label: str):
    t0 = time.perf_counter()
    result = study.run(jobs=1)
    dt = time.perf_counter() - t0
    print(f"{label:>8}: {result.total_reps:3d} reps in {dt:.1f}s "
          f"(saved {result.reps_saved})")
    return result


def main() -> None:
    mtbfs = [30.0, 300.0]

    # --- the same miniature Figure-1 grid, fixed vs adaptive ---------------
    fixed = run(
        Study.figure1(scale=16, reps=CAP, uids=[2213], mtbf_values=mtbfs),
        "fixed",
    )
    adaptive = run(
        Study.figure1(scale=16, reps=CAP, uids=[2213],
                      mtbf_values=mtbfs).adaptive(POLICY),
        "adaptive",
    )

    # --- adaptive means are prefixes of the fixed run, so the two -----------
    #     estimates agree within their combined uncertainty
    print()
    for fp, ap in zip(fixed.figure1_points(), adaptive.figure1_points()):
        hw = (ap.ci_high - ap.ci_low) / 2
        hw_fixed = (fp.ci_high - fp.ci_low) / 2
        agree = abs(ap.mean_time - fp.mean_time) <= hw + hw_fixed
        print(f"  {ap.scheme:>16} mtbf={ap.normalized_mtbf:5.0f}: "
              f"adaptive {ap.mean_time:7.1f} ±{hw:5.1f} "
              f"({ap.reps_used}/{ap.reps_cap} reps) "
              f"vs fixed {fp.mean_time:7.1f} ±{hw_fixed:5.1f}  "
              f"{'agree' if agree else 'DISAGREE'}")

    # --- the rendered figure carries the CI and the savings footer ---------
    print()
    print(format_figure1(adaptive.figure1_points()))
    print("equivalent CLI:  repro figure1 --scale 16 --uids 2213 "
          f"--mtbf 30 300 --reps {CAP} --adaptive '{POLICY}'")


if __name__ == "__main__":
    main()
