#!/usr/bin/env python
"""Tune the checkpointing interval with the Section-4 performance model.

Shows the overhead surface E(s,T)/(sT), the Eq.-6 numerical optimum,
the dynamic-programming placement it approximates, and a head-to-head
against simulation — the reasoning behind the paper's Table 1.

Run:  python examples/checkpoint_tuning.py
"""

import math

from repro.core import CostModel, Scheme, SchemeConfig
from repro.model import (
    frame_overhead,
    model_for_scheme,
    optimal_checkpoint_positions,
    young_period,
)
from repro.sim.engine import make_rhs, repeat_run
from repro.sparse import stencil_spd


def main() -> None:
    a = stencil_spd(1600, kind="cross", radius=2)
    b = make_rhs(a)
    costs = CostModel.from_matrix(a)
    alpha = 1 / 16  # the paper's Table-1 fault constant
    lam = alpha

    # --- the overhead surface for ABFT-CORRECTION --------------------
    model = model_for_scheme(Scheme.ABFT_CORRECTION, lam, costs)
    print("overhead E(s,T)/(sT) for ABFT-CORRECTION at 1/alpha = 16:")
    q = model.q()
    for s in (1, 2, 4, 8, 16, 32, 64, 128):
        h = frame_overhead(s, 1.0, costs.t_cp, costs.t_rec, costs.t_verif_correct, q)
        bar = "#" * int((h - 1.0) * 120)
        print(f"  s={s:4d}  {h:7.4f}  {bar}")
    best = model.optimal(s_max=500)
    print(f"Eq.-6 optimum: s~ = {best.s} (overhead {best.overhead:.4f})")

    # --- DP placement vs the periodic policy -------------------------
    dp = optimal_checkpoint_positions(
        60, 1.0, q, costs.t_cp, costs.t_rec, costs.t_verif_correct
    )
    print(f"DP frame sizes over a 60-chunk horizon: {dp.frame_sizes}")
    print(f"(near-uniform -> the periodic policy is near-optimal)")

    # --- classic closed forms for context -----------------------------
    print(f"Young period for the same Tcp/rate: {young_period(costs.t_cp, lam):.1f} chunks")

    # --- does the model's interval survive contact with simulation? ---
    print("\nsimulated mean time (5 reps) around the model interval:")
    for s in sorted({1, best.s // 2, best.s, 2 * best.s, 4 * best.s} - {0}):
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=s, costs=costs)
        stats = repeat_run(a, b, cfg, alpha=alpha, reps=5, base_seed=1, labels=(s,), eps=1e-6)
        marker = "  <- model choice" if s == best.s else ""
        print(f"  s={s:4d}  {stats.mean_time:8.1f} ± {stats.sem_time:5.1f}{marker}")


if __name__ == "__main__":
    main()
