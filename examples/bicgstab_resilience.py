#!/usr/bin/env python
"""Fault-tolerant BiCGstab — the paper's scheme beyond CG.

Section 3: the ABFT + TMR + checkpoint combination applies to "CGNE,
BiCG, BiCGstab".  This example runs BiCGstab with both protected
products per iteration under bit-flip injection, and also shows the
ProtectedOperator API for solvers that need the transpose product.

Run:  python examples/bicgstab_resilience.py
"""

import numpy as np

from repro.abft import ProtectedOperator
from repro.core import Scheme, SchemeConfig, bicg, run_ft_bicgstab
from repro.sparse import stencil_spd


def main() -> None:
    a = stencil_spd(2500, kind="cross", radius=2)
    b = np.random.default_rng(0).standard_normal(a.nrows)
    print(f"matrix: n={a.nrows}, nnz={a.nnz}\n")

    print("fault-tolerant BiCGstab (both products ABFT-protected):")
    for scheme in (Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION):
        cfg = SchemeConfig(scheme, checkpoint_interval=10)
        res = run_ft_bicgstab(a, b, cfg, alpha=0.1, rng=7, eps=1e-8)
        c = res.counters
        print(
            f"  {scheme.value:18s} time={res.time_units:7.1f} "
            f"faults={c.faults_injected:3d} corrected={c.total_corrections:3d} "
            f"rollbacks={c.rollbacks:3d} converged={res.converged}"
        )

    # BiCG needs Aᵀ·v too: ProtectedOperator carries separate checksums
    # for the transpose, built lazily on first use.
    print("\nBiCG with a self-healing protected operator:")
    op = ProtectedOperator(a)
    op.matrix.val[123] += 4.0  # a silent strike on the live matrix
    res = bicg(a, b, eps=1e-8, matvec=op.matvec, rmatvec=op.rmatvec)
    print(
        f"  converged={res.converged} in {res.iterations} iterations; "
        f"operator stats: {op.stats.products} products, "
        f"corrections={op.stats.corrections}"
    )


if __name__ == "__main__":
    main()
