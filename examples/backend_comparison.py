#!/usr/bin/env python
"""One protected solve, every kernel backend.

The solve stack draws its numerical primitives — the SpMxV hot kernel,
the ABFT checksum setup, the residual norms — from a pluggable
**kernel backend** (``repro.backends``).  This demo runs the *same*
fault-tolerant solve (same matrix, same fault stream) on every backend
this machine can run and compares:

- **physics**: iterations, simulated time and injected faults are
  identical on every backend — the backend never enters the fault
  seed derivation, only the task hash;
- **bits**: ``reference``, ``numba`` and ``threaded`` promise the
  byte-identical solution vector; ``scipy`` and ``dense`` are
  numerically equivalent (few-ULP summation-order differences);
- **wall time**: where the compiled kernels pay — including under
  fault injection, where strikes dirty the structure stamp and only
  the numba backend keeps the guarded path compiled.

Backends whose optional dependency is missing are skipped with the
reason (install the JIT backend with ``pip install -e .[numba]``).

Run:  python examples/backend_comparison.py
"""

import time

import numpy as np

from repro import FaultSpec, solve, stencil_spd
from repro.backends import available_backends, backend_available, get_backend


def main() -> None:
    a = stencil_spd(2500, kind="cross", radius=3)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(a.nrows)
    faults = FaultSpec(alpha=0.1, seed=42)
    kwargs = dict(scheme="abft-correction", faults=faults, eps=1e-8,
                  reuse_workspace=True)

    print(f"matrix: n={a.nrows}, nnz={a.nnz} — abft-correction, "
          f"alpha={faults.alpha}, seed={faults.seed}\n")

    reference = solve(a, b, backend="reference", **kwargs)

    header = (f"{'backend':10s} {'wall':>8s} {'iters':>6s} {'faults':>6s} "
              f"{'sim time':>8s} {'solution':>12s}")
    print(header)
    print("-" * len(header))
    for name in sorted(available_backends()):
        if not backend_available(name):
            print(f"{name:10s}  skipped: optional dependency not installed "
                  f"(pip install -e .[numba])")
            continue
        be = get_backend(name)
        try:
            solve(a, b, backend=be, **kwargs)  # warm: caches, JIT, pool
        except ValueError as exc:  # e.g. the dense backend's n-cap
            print(f"{name:10s}  skipped: {exc}")
            continue
        t0 = time.perf_counter()
        report = solve(a, b, backend=be, **kwargs)
        wall = time.perf_counter() - t0

        # Identical physics on every backend ...
        assert report.iterations == reference.iterations
        assert report.time_units == reference.time_units
        assert report.counters.faults_injected == \
            reference.counters.faults_injected
        # ... and identical *bits* where the backend promises them.
        bit_identical = report.solution_sha256 == reference.solution_sha256
        if name in ("reference", "numba", "threaded"):
            assert bit_identical, f"{name} broke its bit-identity contract"
        c = report.counters
        print(f"{name:10s} {wall * 1e3:7.1f}ms {report.iterations_executed:6d} "
              f"{c.faults_injected:6d} {report.time_units:8.1f} "
              f"{'bit-identical' if bit_identical else 'equivalent':>12s}")

    print(
        "\nSame iterations, same simulated clock, same fault stream\n"
        "everywhere: the backend axis changes how fast the floats are\n"
        "computed, never the physics under study.  The full contract is\n"
        "docs/DESIGN.md §6; benchmarks/BENCH_backends.json holds the\n"
        "committed measurements."
    )


if __name__ == "__main__":
    main()
