#!/usr/bin/env python
"""A sweep the paper never ran: interval sensitivity at fixed α.

Table 1 compares only two interval choices per scheme — the model's
prediction s̃ and the empirical optimum s* found by a narrow sweep.
This study instead maps the whole execution-time-vs-interval curve at
the paper's fault constant α = 1/16, for both ABFT schemes, on one
suite matrix — showing how flat (or sharp) the optimum really is and
how much a badly chosen interval costs.

Declared in a few lines with :class:`repro.Study`; runs on the campaign
engine (fan it out with jobs=N or persist/resume with store=...).

Run:  python examples/study_custom_sweep.py
"""

from repro import CostModel, Study
from repro.core.methods import Scheme
from repro.sim.experiments import model_interval_for
from repro.sim.matrices import get_matrix

UID, SCALE, ALPHA = 2213, 32, 1.0 / 16.0


def main() -> None:
    study = (
        Study("interval-sensitivity")
        .axis("scheme", ["abft-detection", "abft-correction"])
        .axis("s", [1, 2, 3, 4, 6, 8, 12, 16, 24, 28, 32, 48])
        .fix(uid=UID, alpha=ALPHA, scale=SCALE, reps=3)
        .metrics("mean_time", "mean_rollbacks", "convergence_rate")
    )
    print(f"{len(study.tasks())} tasks; sweeping s at alpha={ALPHA:g} "
          f"on matrix #{UID} (scale {SCALE})")
    result = study.run(jobs=None, progress=True)  # None = all cores
    print()
    print(result.format_table())

    # Where does the model say the optimum is?
    costs = CostModel.from_matrix(get_matrix(UID, SCALE))
    for scheme in (Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION):
        s_model, _ = model_interval_for(scheme, ALPHA, costs)
        curve = {p.s: p.stats.mean_time for p in result.points()
                 if p.scheme == scheme.value}
        s_best = min(curve, key=curve.get)
        if s_model in curve:
            loss = (curve[s_model] - curve[s_best]) / curve[s_best] * 100
            loss_text = f"loss at s~ = {loss:.2f}%"
        else:
            loss_text = "s~ outside the swept grid"
        print(f"{scheme.value:17s}: model s~={s_model:3d}, empirical s*={s_best:3d}, "
              f"{loss_text}")

    print("\nsame sweep from the shell:\n"
          '  python -c "from repro import Study; '
          "Study('interval-sensitivity').axis('s', range(1, 49))"
          f".fix(uid={UID}, alpha=1/16, scale={SCALE}, reps=3)"
          '.save(\'sweep.json\')"\n'
          "  repro study run sweep.json --jobs 4 --store sweep.jsonl")


if __name__ == "__main__":
    main()
