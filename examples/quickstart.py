#!/usr/bin/env python
"""Quickstart: protect a solve against silent errors in three lines.

``repro.solve()`` wires matrix validation, the flop-count cost model,
the model-optimal checkpoint interval and the resilience engine behind
one call.  This demo runs the three fault-tolerant schemes of
Fasi/Robert/Uçar (PDSEC'15) under bit-flip injection and prints what
each resilience layer did.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FaultSpec, cg, solve, stencil_spd


def main() -> None:
    # An SPD matrix with the spread spectrum of a PDE discretization
    # (~2'500 unknowns, 13 nonzeros per row).
    a = stencil_spd(2500, kind="cross", radius=3)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(a.nrows)

    print(f"matrix: n={a.nrows}, nnz={a.nnz}, {a.nnz / a.nrows:.1f} nnz/row")
    baseline = cg(a, b, eps=1e-8)
    print(f"fault-free CG: {baseline.iterations} iterations\n")

    # The three-line version — one bit flip every ~10 iterations in
    # expectation, checkpoint interval chosen by the Section-4 model:
    report = solve(a, b, scheme="abft-correction",
                   faults=FaultSpec(alpha=0.1, seed=42), eps=1e-8)
    print(report.summary())
    print()

    # Scheme comparison on the same system and fault stream seed.
    header = (f"{'scheme':20s} {'time':>8s} {'iters':>6s} {'faults':>6s} "
              f"{'corrected':>9s} {'rollbacks':>9s} {'s(model)':>8s}")
    print(header)
    print("-" * len(header))
    for scheme in ("online-detection", "abft-detection", "abft-correction"):
        rep = solve(a, b, scheme=scheme,
                    faults=FaultSpec(alpha=0.1, seed=42), eps=1e-8)
        c = rep.counters
        print(
            f"{scheme:20s} {rep.time_units:8.1f} {rep.iterations_executed:6d} "
            f"{c.faults_injected:6d} {c.total_corrections:9d} {c.rollbacks:9d} "
            f"{rep.recommended_interval:8d}"
        )
        assert rep.converged
        assert rep.residual_norm <= rep.threshold

    print(
        "\nABFT-CORRECTION repairs single errors in place (forward recovery)\n"
        "and therefore rolls back far less than the detection-only schemes.\n"
        "Full machine-readable reports: report.to_json()  — and a similar\n"
        "run from the shell (different stencil/rhs/eps defaults):\n"
        "  repro solve --n 2500 --alpha 0.1 --seed 42"
    )


if __name__ == "__main__":
    main()
