#!/usr/bin/env python
"""Quickstart: protect a CG solve against silent errors.

Builds an SPD system, runs the three fault-tolerant schemes of
Fasi/Robert/Uçar (PDSEC'15) under bit-flip injection, and prints what
each resilience layer did.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CostModel,
    Scheme,
    SchemeConfig,
    cg,
    run_ft_cg,
    stencil_spd,
)


def main() -> None:
    # An SPD matrix with the spread spectrum of a PDE discretization
    # (~2'500 unknowns, 13 nonzeros per row).
    a = stencil_spd(2500, kind="cross", radius=3)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(a.nrows)

    print(f"matrix: n={a.nrows}, nnz={a.nnz}, {a.nnz / a.nrows:.1f} nnz/row")
    baseline = cg(a, b, eps=1e-8)
    print(f"fault-free CG: {baseline.iterations} iterations\n")

    # Fault model: one bit flip every ~10 iterations in expectation,
    # striking the matrix arrays or the CG vectors uniformly.
    alpha = 0.1
    costs = CostModel.from_matrix(a)

    header = f"{'scheme':20s} {'time':>8s} {'iters':>6s} {'faults':>6s} {'corrected':>9s} {'rollbacks':>9s}"
    print(header)
    print("-" * len(header))
    for scheme, d in [
        (Scheme.ONLINE_DETECTION, 5),
        (Scheme.ABFT_DETECTION, 1),
        (Scheme.ABFT_CORRECTION, 1),
    ]:
        cfg = SchemeConfig(scheme, checkpoint_interval=10, verification_interval=d, costs=costs)
        res = run_ft_cg(a, b, cfg, alpha=alpha, rng=42, eps=1e-8)
        c = res.counters
        print(
            f"{scheme.value:20s} {res.time_units:8.1f} {res.iterations_executed:6d} "
            f"{c.faults_injected:6d} {c.total_corrections:9d} {c.rollbacks:9d}"
        )
        assert res.converged
        assert res.residual_norm <= res.threshold

    print(
        "\nABFT-CORRECTION repairs single errors in place (forward recovery)\n"
        "and therefore rolls back far less than the detection-only schemes."
    )


if __name__ == "__main__":
    main()
