#!/usr/bin/env python
"""Trace a protected solve and a parallel study with ``repro.obs``.

Tracing is *pure observation*: a tracer never consumes RNG and never
enters the simulated-time ledger, so the traced solve below is
bit-identical to an untraced one (the golden-replay tests lock this).
Three surfaces are shown:

1. ``solve(trace=path)`` — one JSONL event stream for a single solve;
2. ``InMemoryTracer`` — the same events as Python dicts, for analysis;
3. ``Study.run(trace_dir=...)`` — one crash-safe shard per worker,
   aggregated offline with ``summarize_trace`` (the library behind
   ``repro trace summarize``).

Run:  python examples/trace_demo.py
"""

import json
import tempfile
from collections import Counter
from pathlib import Path

import numpy as np

from repro import FaultSpec, Study, solve, stencil_spd
from repro.obs import InMemoryTracer, format_trace_summary, summarize_trace


def main() -> None:
    workdir = Path(tempfile.mkdtemp())
    a = stencil_spd(900, kind="cross", radius=2)
    b = np.random.default_rng(0).standard_normal(a.nrows)
    faults = FaultSpec(alpha=0.05, seed=42)

    # --- 1. one solve, one JSONL event stream ------------------------------
    trace_path = workdir / "solve.jsonl"
    report = solve(a, b, scheme="abft-correction", faults=faults,
                   trace=trace_path)
    events = [json.loads(line) for line in trace_path.read_text().splitlines()]
    print(f"solve: converged={report.converged} in "
          f"{report.iterations_executed} iterations, "
          f"{len(events)} events -> {trace_path}")

    # --- 2. same events in memory: tracing never changes the answer --------
    tracer = InMemoryTracer()
    traced = solve(a, b, scheme="abft-correction", faults=faults,
                   trace=tracer)
    assert np.array_equal(report.x, traced.x)          # bit-identical
    kinds = Counter(e["kind"] for e in tracer.events)
    print(f"event kinds: {dict(sorted(kinds.items()))}")
    strikes = [e for e in tracer.events if e["kind"] == "strike"]
    print(f"fault timeline: {[(e['iter'], e['target']) for e in strikes]}")

    # --- 3. a parallel study, one shard per worker -------------------------
    trace_dir = workdir / "shards"
    study = (Study("trace-demo")
             .axis("scheme", ["abft-detection", "abft-correction"])
             .fix(uid=2213, alpha=1 / 16, scale=32, reps=2))
    study.run(jobs=2, trace_dir=trace_dir, progress=False)
    shards = sorted(trace_dir.glob("shard-*.jsonl"))
    print(f"\nstudy: {len(shards)} worker shard(s) in {trace_dir}")

    # Offline aggregation — the same code path as the CLI:
    #   repro trace summarize <dir>
    summary = summarize_trace(trace_dir)
    print(format_trace_summary(summary))
    print(f"equivalent CLI:  repro trace summarize {trace_dir}")


if __name__ == "__main__":
    main()
