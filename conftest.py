"""Repo-root pytest bootstrap.

The package lives under ``src/``; the first-class setup is an editable
install (``pip install -e .``, see pyproject.toml).  Prepending
``src/`` here keeps ``python -m pytest`` working from a fresh clone
without any install or ``PYTHONPATH`` juggling — and an installed
``repro`` still wins nothing over it, since both resolve to the same
source tree.
"""

import pathlib
import sys

_SRC = str(pathlib.Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
