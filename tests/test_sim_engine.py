"""Unit tests for the experiment engine."""

import numpy as np
import pytest

from repro.core import Scheme, SchemeConfig
from repro.sim import repeat_run, sweep_checkpoint_interval
from repro.sim.engine import make_rhs
from repro.sparse import stencil_spd


@pytest.fixture(scope="module")
def problem():
    a = stencil_spd(625, kind="cross", radius=1)
    return a, make_rhs(a)


class TestMakeRhs:
    def test_deterministic(self, problem):
        a, _ = problem
        np.testing.assert_array_equal(make_rhs(a), make_rhs(a))

    def test_not_an_eigenvector_direction(self, problem):
        a, b = problem
        # b and A·b must not be parallel (guards against the A·1 trap).
        ab = a.matvec(b)
        cos = abs(b @ ab) / (np.linalg.norm(b) * np.linalg.norm(ab))
        assert cos < 0.99


class TestRepeatRun:
    def test_aggregates(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=8)
        stats = repeat_run(a, b, cfg, alpha=0.1, reps=4, base_seed=1, eps=1e-6)
        assert stats.reps == 4
        assert stats.min_time <= stats.mean_time <= stats.max_time
        assert stats.convergence_rate == 1.0
        assert stats.mean_faults > 0

    def test_deterministic_given_seed(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=6)
        s1 = repeat_run(a, b, cfg, alpha=0.1, reps=3, base_seed=5, eps=1e-6)
        s2 = repeat_run(a, b, cfg, alpha=0.1, reps=3, base_seed=5, eps=1e-6)
        assert s1.mean_time == s2.mean_time

    def test_labels_decorrelate_streams(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=6)
        s1 = repeat_run(a, b, cfg, alpha=0.1, reps=3, base_seed=5, labels=("A",), eps=1e-6)
        s2 = repeat_run(a, b, cfg, alpha=0.1, reps=3, base_seed=5, labels=("B",), eps=1e-6)
        assert s1.mean_time != s2.mean_time

    def test_sem(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=8)
        stats = repeat_run(a, b, cfg, alpha=0.15, reps=4, base_seed=2, eps=1e-6)
        assert stats.sem_time == pytest.approx(stats.std_time / 2.0)

    def test_reps_validated(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION)
        with pytest.raises(ValueError):
            repeat_run(a, b, cfg, alpha=0.1, reps=0)


class TestSweep:
    def test_sweep_returns_all_intervals(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=1)
        out = sweep_checkpoint_interval(a, b, cfg, [2, 5, 9], alpha=0.1, reps=2, eps=1e-6)
        assert set(out) == {2, 5, 9}

    def test_sweep_uses_interval(self, problem):
        """Tiny s means frequent checkpointing: with the same fault
        stream per rep, s=1 must cost more than a moderate s at low
        fault rates."""
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=1)
        out = sweep_checkpoint_interval(a, b, cfg, [1, 30], alpha=0.01, reps=2, eps=1e-6)
        assert out[1].mean_time > out[30].mean_time
