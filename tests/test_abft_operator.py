"""Unit tests for the ProtectedOperator wrapper."""

import numpy as np
import pytest

from repro.abft import ProtectedOperator, UncorrectableError


class TestBasics:
    def test_matvec_matches_plain(self, small_lap, xvec):
        op = ProtectedOperator(small_lap)
        np.testing.assert_allclose(op.matvec(xvec), small_lap.matvec(xvec), rtol=1e-12)
        np.testing.assert_allclose(op(xvec), small_lap.matvec(xvec), rtol=1e-12)

    def test_rmatvec_matches_transpose(self, small_spd, rng):
        op = ProtectedOperator(small_spd)
        x = rng.normal(size=small_spd.nrows)
        np.testing.assert_allclose(
            op.rmatvec(x), small_spd.transpose().matvec(x), rtol=1e-12
        )

    def test_caller_matrix_untouched(self, small_lap, xvec):
        snapshot = small_lap.copy()
        op = ProtectedOperator(small_lap)
        op.matvec(xvec)
        assert small_lap.equals(snapshot)

    def test_stats_accumulate(self, small_lap, xvec):
        op = ProtectedOperator(small_lap)
        op.matvec(xvec)
        op.matvec(xvec)
        assert op.stats.products == 2

    def test_nchecks_validated(self, small_lap):
        with pytest.raises(ValueError, match="nchecks"):
            ProtectedOperator(small_lap, nchecks=3)


class TestRecovery:
    def test_single_error_self_heals(self, small_lap, xvec):
        op = ProtectedOperator(small_lap)
        op.matrix.val[42] += 5.0  # corrupt the live copy
        y = op.matvec(xvec)
        np.testing.assert_allclose(y, small_lap.matvec(xvec), rtol=1e-9)
        assert op.stats.corrections == {"val": 1}
        # The live matrix is clean again: the next product is OK.
        op.matvec(xvec)
        assert op.stats.corrections == {"val": 1}

    def test_double_error_raises(self, small_lap, xvec):
        op = ProtectedOperator(small_lap)
        op.matrix.val[1] += 1.0
        op.matrix.val[900] += 2.0
        with pytest.raises(UncorrectableError):
            op.matvec(xvec)
        assert op.stats.uncorrectable == 1

    def test_detection_mode_raises_on_any_error(self, small_lap, xvec):
        op = ProtectedOperator(small_lap, nchecks=1)
        op.matrix.val[3] += 1.0
        with pytest.raises(UncorrectableError):
            op.matvec(xvec)

    def test_transpose_checksums_independent(self, small_spd, rng):
        op = ProtectedOperator(small_spd)
        x = rng.normal(size=small_spd.nrows)
        op.rmatvec(x)  # builds Aᵀ lazily
        # Corrupt the transpose copy only: rmatvec corrects it, matvec
        # stays clean.
        op._at.val[7] += 3.0
        np.testing.assert_allclose(
            op.rmatvec(x), small_spd.transpose().matvec(x), rtol=1e-9
        )
        assert op.stats.corrections.get("val", 0) == 1

    def test_hook_injection(self, small_lap, xvec):
        def hook(stage, a, x, y):
            if stage == "post":
                y[5] += 2.0

        op = ProtectedOperator(small_lap, fault_hook=hook)
        y = op.matvec(xvec)
        np.testing.assert_allclose(y, small_lap.matvec(xvec), rtol=1e-9)
        assert op.stats.corrections.get("computation", 0) == 1
