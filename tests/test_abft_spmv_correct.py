"""Unit tests for ABFT single-error correction (Algorithm 2 decode paths)."""

import numpy as np
import pytest

from repro.abft import compute_checksums, protected_spmv, SpmvStatus
from repro.faults.bitflip import flip_bit_float64, flip_bit_int64


def assert_corrected(res, kind):
    assert res.status is SpmvStatus.CORRECTED
    assert res.correction is not None
    assert res.correction.kind == kind


class TestValCorrection:
    @pytest.mark.parametrize("pos", [0, 57, 500, -1])
    def test_additive_error_repaired(self, small_lap, checks2, xvec, pos):
        a = small_lap.copy()
        pos = pos % a.nnz
        a.val[pos] += 2.5
        res = protected_spmv(a, xvec.copy(), checks2)
        assert_corrected(res, "val")
        assert a.equals(small_lap)
        np.testing.assert_allclose(res.y, small_lap.matvec(xvec), rtol=1e-9)

    @pytest.mark.parametrize("bit", [62, 55, 40, 30])
    def test_bit_flip_repaired(self, small_lap, checks2, xvec, bit):
        a = small_lap.copy()
        a.val[123] = flip_bit_float64(a.val[123], bit)
        res = protected_spmv(a, xvec.copy(), checks2)
        assert_corrected(res, "val")
        np.testing.assert_allclose(a.val, small_lap.val, rtol=1e-8)

    def test_sign_flip_repaired(self, small_lap, checks2, xvec):
        a = small_lap.copy()
        a.val[200] = flip_bit_float64(a.val[200], 63)
        res = protected_spmv(a, xvec.copy(), checks2)
        assert_corrected(res, "val")

    def test_overflow_scale_flip_repaired_or_rolled_back(self, small_lap, checks2, xvec):
        # Exponent-top flip → ~1e300: either a clean repair or an
        # explicit UNCORRECTABLE, never a silent pass.
        a = small_lap.copy()
        a.val[77] = flip_bit_float64(a.val[77], 62)
        res = protected_spmv(a, xvec.copy(), checks2)
        assert res.status in (SpmvStatus.CORRECTED, SpmvStatus.UNCORRECTABLE)
        if res.status is SpmvStatus.CORRECTED:
            np.testing.assert_allclose(a.val, small_lap.val, rtol=1e-8)


class TestColidCorrection:
    def test_moved_entry_restored(self, small_lap, checks2, xvec):
        a = small_lap.copy()
        lo = int(a.rowidx[33])
        original = int(a.colid[lo])
        a.colid[lo] = (original + 11) % a.ncols
        res = protected_spmv(a, xvec.copy(), checks2)
        assert_corrected(res, "colid")
        assert int(a.colid[lo]) == original

    def test_out_of_range_colid_restored(self, small_lap, checks2, xvec):
        a = small_lap.copy()
        lo = int(a.rowidx[50])
        original = int(a.colid[lo])
        a.colid[lo] = flip_bit_int64(original, 45)  # far out of range
        res = protected_spmv(a, xvec.copy(), checks2)
        assert res.status is SpmvStatus.CORRECTED
        assert int(a.colid[lo]) % a.ncols == original
        np.testing.assert_allclose(res.y, small_lap.matvec(xvec), rtol=1e-9)

    def test_low_bit_flip_restored(self, small_lap, checks2, xvec):
        a = small_lap.copy()
        p = int(a.rowidx[99])
        original = int(a.colid[p])
        a.colid[p] = flip_bit_int64(original, 3)
        res = protected_spmv(a, xvec.copy(), checks2)
        # A low-bit colid flip may collide with an existing entry in the
        # same row; accept either a correction or explicit detection.
        assert res.status in (SpmvStatus.CORRECTED, SpmvStatus.UNCORRECTABLE)


class TestRowidxCorrection:
    @pytest.mark.parametrize("delta", [1, -1, 2, 37])
    def test_additive_error_repaired(self, small_lap, checks2, xvec, delta):
        a = small_lap.copy()
        a.rowidx[150] += delta
        res = protected_spmv(a, xvec.copy(), checks2)
        assert_corrected(res, "rowidx")
        assert a.equals(small_lap)
        np.testing.assert_allclose(res.y, small_lap.matvec(xvec), rtol=1e-9)

    @pytest.mark.parametrize("bit", [0, 5, 20, 50, 62, 63])
    def test_bit_flip_repaired(self, small_lap, checks2, xvec, bit):
        a = small_lap.copy()
        a.rowidx[99] = flip_bit_int64(int(a.rowidx[99]), bit)
        res = protected_spmv(a, xvec.copy(), checks2)
        assert_corrected(res, "rowidx")
        assert a.equals(small_lap)

    def test_last_pointer_flip_repaired(self, small_lap, checks2, xvec):
        a = small_lap.copy()
        a.rowidx[a.nrows] += 3
        res = protected_spmv(a, xvec.copy(), checks2)
        assert_corrected(res, "rowidx")
        assert a.equals(small_lap)


class TestXCorrection:
    @pytest.mark.parametrize("pos", [0, 100, 399])
    def test_input_error_repaired(self, small_lap, checks2, xvec, pos):
        x = xvec.copy()

        def hook(stage, a, xx, y):
            if stage == "pre":
                xx[pos] += 1.75

        res = protected_spmv(small_lap, x, checks2, fault_hook=hook)
        assert_corrected(res, "x")
        np.testing.assert_allclose(x, xvec, rtol=1e-9)
        np.testing.assert_allclose(res.y, small_lap.matvec(xvec), rtol=1e-8)

    def test_x_bit_flip_repaired(self, small_lap, checks2, xvec):
        def hook(stage, a, xx, y):
            if stage == "pre":
                xx[42] = flip_bit_float64(xx[42], 60)

        x = xvec.copy()
        res = protected_spmv(small_lap, x, checks2, fault_hook=hook)
        assert res.status is SpmvStatus.CORRECTED
        np.testing.assert_allclose(x, xvec, rtol=1e-8)


class TestComputationCorrection:
    @pytest.mark.parametrize("pos", [0, 13, 399])
    def test_output_error_repaired(self, small_lap, checks2, xvec, pos):
        def hook(stage, a, xx, y):
            if stage == "post":
                y[pos] += 3.25

        res = protected_spmv(small_lap, xvec.copy(), checks2, fault_hook=hook)
        assert_corrected(res, "computation")
        np.testing.assert_allclose(res.y, small_lap.matvec(xvec), rtol=1e-9)

    def test_output_bit_flip_repaired(self, small_lap, checks2, xvec):
        def hook(stage, a, xx, y):
            if stage == "post":
                y[7] = flip_bit_float64(y[7], 59)

        res = protected_spmv(small_lap, xvec.copy(), checks2, fault_hook=hook)
        assert res.status is SpmvStatus.CORRECTED


class TestDoubleErrors:
    def test_two_val_errors_uncorrectable(self, small_lap, checks2, xvec):
        a = small_lap.copy()
        a.val[10] += 1.0
        a.val[800] += 2.0
        res = protected_spmv(a, xvec.copy(), checks2)
        assert res.status is SpmvStatus.UNCORRECTABLE
        assert not res.trusted

    def test_val_plus_x_uncorrectable_or_detected(self, small_lap, checks2, xvec):
        a = small_lap.copy()
        a.val[10] += 1.0

        def hook(stage, aa, xx, y):
            if stage == "pre":
                xx[50] += 1.0

        res = protected_spmv(a, xvec.copy(), checks2, fault_hook=hook)
        assert res.status is SpmvStatus.UNCORRECTABLE

    def test_two_rowidx_errors_uncorrectable(self, small_lap, checks2, xvec):
        a = small_lap.copy()
        a.rowidx[100] += 1
        a.rowidx[200] += 5
        res = protected_spmv(a, xvec.copy(), checks2)
        assert res.status is SpmvStatus.UNCORRECTABLE

    def test_opposite_rowidx_errors_uncorrectable(self, small_lap, checks2, xvec):
        # dr[0] cancels; dr[1] does not — the inconsistency must be seen.
        a = small_lap.copy()
        a.rowidx[100] += 2
        a.rowidx[200] -= 2
        res = protected_spmv(a, xvec.copy(), checks2)
        assert res.status is SpmvStatus.UNCORRECTABLE

    def test_two_y_errors_uncorrectable(self, small_lap, checks2, xvec):
        def hook(stage, a, xx, y):
            if stage == "post":
                y[3] += 1.0
                y[300] -= 2.0

        res = protected_spmv(small_lap, xvec.copy(), checks2, fault_hook=hook)
        assert res.status is SpmvStatus.UNCORRECTABLE


class TestOnTheFlyChecksums:
    def test_checksums_computed_when_omitted(self, small_lap, xvec):
        res = protected_spmv(small_lap, xvec)
        assert res.status is SpmvStatus.OK
