"""The pluggable kernel-backend axis (:mod:`repro.backends`).

Locks the three contracts the backend axis stands on:

1. **Reference is the oracle.** ``backend="reference"`` — explicit,
   default, by instance — is bit-identical to the pre-backend code
   path on every entry point (``spmv``, ``protected_spmv``,
   ``solve``, ``repeat_run``).
2. **Guarded paths are backend-invariant.** Any matrix without the
   ``structure_clean`` stamp routes through the reference kernel on
   every backend, so fault emulation and ABFT detection semantics
   cannot depend on the backend choice.
3. **SciPy is numerically equivalent where it substitutes.** On
   structure-clean products it agrees with the reference kernel to
   rounding, and fault-free solves on the paper suite produce
   identical convergence histories (same iterations, same events).
"""

import numpy as np
import pytest

import repro
from repro.abft.spmv import SpmvStatus, protected_spmv
from repro.backends import (
    BackendCapacityError,
    BackendUnavailableError,
    DenseBackend,
    NumbaBackend,
    ReferenceBackend,
    ScipyBackend,
    ThreadedBackend,
    available_backends,
    backend_available,
    get_backend,
    numba_available,
    register_backend,
    resolve_backend,
)
from repro.backends import _FACTORIES, _INSTANCES
from repro.perf import SolveWorkspace
from repro.sim.engine import make_rhs, repeat_run
from repro.sim.matrices import get_matrix
from repro.sparse import CSRMatrix, stencil_spd
from repro.sparse.spmv import spmv
from repro.core.methods import Scheme, SchemeConfig


def stamped(a: CSRMatrix) -> CSRMatrix:
    a.assume_clean_structure()
    return a


@pytest.fixture
def suite_matrix():
    return get_matrix(2213, 48)


@pytest.fixture
def small_system():
    a = stencil_spd(100, kind="cross", radius=1)
    b = make_rhs(a)
    return a, b


class TestRegistry:
    def test_shipped_backends_registered(self):
        names = available_backends()
        for expected in ("reference", "scipy", "dense", "numba", "threaded"):
            assert expected in names

    def test_backend_available_probe_never_raises(self):
        assert backend_available("reference")
        assert backend_available("scipy")
        assert backend_available("threaded")
        assert not backend_available("cuda")
        # numba: True iff the optional dependency is importable; either
        # way the probe must not raise.
        assert backend_available("numba") == numba_available()

    def test_get_backend_by_name_is_shared_instance(self):
        assert get_backend("scipy") is get_backend("scipy")
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("dense"), DenseBackend)

    def test_get_backend_passes_instances_through(self):
        be = ScipyBackend()
        assert get_backend(be) is be

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="reference"):
            get_backend("cuda")

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            get_backend(42)

    def test_resolve_reference_to_none(self):
        # The fast-path contract: every spelling of "reference"
        # resolves to None so hot loops skip backend dispatch entirely.
        assert resolve_backend(None) is None
        assert resolve_backend("reference") is None
        assert resolve_backend(ReferenceBackend()) is None
        assert resolve_backend("scipy") is get_backend("scipy")

    def test_register_custom_backend(self):
        class Doubling(ReferenceBackend):
            name = "doubling"

            def spmv(self, a, x, *, out=None, scratch=None):
                return 2.0 * super().spmv(a, x, out=None, scratch=scratch)

        register_backend("doubling", Doubling)
        try:
            a = stamped(stencil_spd(25, kind="cross", radius=1))
            x = np.ones(a.ncols)
            assert np.array_equal(
                spmv(a, x, backend="doubling"), 2.0 * spmv(a, x)
            )
            with pytest.raises(ValueError, match="already registered"):
                register_backend("doubling", Doubling)
        finally:
            _FACTORIES.pop("doubling", None)
            _INSTANCES.pop("doubling", None)

    def test_shipped_names_protected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("reference", ReferenceBackend)

    def test_replaced_reference_honoured_on_every_dispatch_path(self):
        # replace=True on "reference" must change name-based dispatch
        # everywhere, not only on entry points that call get_backend.
        class Doubling(ReferenceBackend):
            def spmv(self, a, x, *, out=None, scratch=None):
                return 2.0 * super().spmv(a, x, out=None, scratch=scratch)

        original = _FACTORIES["reference"]
        register_backend("reference", Doubling, replace=True)
        try:
            a = stamped(stencil_spd(25, kind="cross", radius=1))
            x = np.ones(a.ncols)
            raw = spmv(a, x)
            assert np.array_equal(spmv(a, x, backend="reference"), 2.0 * raw)
            assert resolve_backend("reference") is get_backend("reference")
        finally:
            register_backend("reference", original, replace=True)


class TestSpmvDispatch:
    def test_reference_backend_bit_identical(self, suite_matrix):
        x = np.random.default_rng(3).standard_normal(suite_matrix.ncols)
        base = spmv(suite_matrix, x)
        assert np.array_equal(spmv(suite_matrix, x, backend="reference"), base)
        assert np.array_equal(spmv(suite_matrix, x, backend=None), base)
        assert np.array_equal(
            spmv(suite_matrix, x, backend=ReferenceBackend()), base
        )

    def test_scipy_matches_reference_to_rounding(self, suite_matrix):
        a = stamped(suite_matrix.copy())
        x = np.random.default_rng(4).standard_normal(a.ncols)
        y_ref = spmv(a, x)
        y_sp = spmv(a, x, backend="scipy")
        np.testing.assert_allclose(y_sp, y_ref, rtol=1e-12, atol=1e-14)

    def test_scipy_honours_out_buffer(self, suite_matrix):
        a = stamped(suite_matrix.copy())
        x = np.random.default_rng(5).standard_normal(a.ncols)
        out = np.full(a.nrows, np.nan)
        y = spmv(a, x, out=out, backend="scipy")
        assert y is out
        np.testing.assert_allclose(out, spmv(a, x), rtol=1e-12, atol=1e-14)

    def test_scipy_unstamped_falls_back_to_reference_bits(self, suite_matrix):
        # No structure_clean stamp -> guarded path -> reference kernel,
        # hence *bit*-identical, not merely close.
        x = np.random.default_rng(6).standard_normal(suite_matrix.ncols)
        assert not suite_matrix.structure_clean
        assert np.array_equal(
            spmv(suite_matrix, x, backend="scipy"), spmv(suite_matrix, x)
        )

    def test_scipy_corrupted_colid_keeps_wild_read_emulation(self):
        a = stamped(stencil_spd(64, kind="cross", radius=1))
        a.colid[3] = a.ncols + 17  # out-of-range wild read
        a.mark_structure_dirty()
        x = np.arange(a.ncols, dtype=float)
        assert np.array_equal(spmv(a, x, backend="scipy"), spmv(a, x))

    def test_scipy_sees_inplace_val_corruption(self):
        # A val strike leaves the stamp armed; the compiled kernel must
        # read the corrupted byte, not some stale copy.
        a = stamped(stencil_spd(64, kind="cross", radius=1))
        x = np.ones(a.ncols)
        before = spmv(a, x, backend="scipy").copy()
        a.val[5] += 1000.0
        after = spmv(a, x, backend="scipy")
        assert not np.array_equal(before, after)
        np.testing.assert_allclose(after, spmv(a, x), rtol=1e-12, atol=1e-12)

    def test_dense_matches_reference(self):
        a = stamped(stencil_spd(81, kind="cross", radius=2))
        x = np.random.default_rng(7).standard_normal(a.ncols)
        np.testing.assert_allclose(
            spmv(a, x, backend="dense"), spmv(a, x), rtol=1e-12, atol=1e-14
        )

    def test_dense_rejects_large_matrices(self):
        a = stamped(stencil_spd(81, kind="cross", radius=1))
        small_cap = DenseBackend(max_n=50)
        with pytest.raises(ValueError, match="capped"):
            small_cap.spmv(a, np.ones(a.ncols))

    def test_dense_unstamped_falls_back(self):
        a = stencil_spd(81, kind="cross", radius=1)
        x = np.ones(a.ncols)
        assert np.array_equal(spmv(a, x, backend="dense"), spmv(a, x))

    def test_empty_matrix(self):
        a = CSRMatrix(
            np.zeros(0), np.zeros(0, dtype=np.int64),
            np.zeros(4, dtype=np.int64), (3, 3),
        )
        stamped(a)
        for backend in ("scipy", "dense"):
            y = spmv(a, np.ones(3), backend=backend)
            assert np.array_equal(y, np.zeros(3))

    def test_shape_mismatch_raises_everywhere(self, suite_matrix):
        a = stamped(suite_matrix.copy())
        bad = np.ones(a.ncols + 1)
        for backend in (None, "scipy", "dense"):
            with pytest.raises(ValueError, match="shape"):
                spmv(a, bad, backend=backend)

    def test_scipy_rejects_short_out_buffer(self, suite_matrix):
        # The compiled kernel does no bounds checking; a short `out`
        # must raise cleanly instead of writing out of bounds.
        a = stamped(suite_matrix.copy())
        x = np.ones(a.ncols)
        with pytest.raises(ValueError, match="out"):
            spmv(a, x, out=np.empty(a.nrows - 1), backend="scipy")


class TestBackendPrimitives:
    def test_checksum_products_match_column_sums(self, suite_matrix):
        from repro.sparse.norms import column_sums

        w = np.vstack([np.ones(suite_matrix.nrows),
                       np.arange(1.0, suite_matrix.nrows + 1.0)])
        for name in ("reference", "scipy", "dense"):
            prods = get_backend(name).checksum_products(suite_matrix, w)
            assert prods.shape == (2, suite_matrix.ncols)
            for i in range(2):
                assert np.array_equal(prods[i], column_sums(suite_matrix, weights=w[i]))

    def test_dot_and_norm(self):
        u = np.arange(5.0)
        v = np.ones(5)
        for name in ("reference", "scipy", "dense"):
            be = get_backend(name)
            assert be.dot(u, v) == float(u @ v)
            assert be.norm2(u) == float(np.linalg.norm(u))


class TestProtectedSpmv:
    def test_fault_free_ok_on_every_backend(self, small_system):
        a, _ = small_system
        stamped(a)
        x = np.random.default_rng(8).standard_normal(a.ncols)
        for backend in (None, "reference", "scipy", "dense"):
            res = protected_spmv(a.copy(), x.copy(), backend=backend)
            assert res.status is SpmvStatus.OK

    def test_scipy_detects_val_corruption(self, small_system):
        # Large val corruption on a structure-clean matrix: the scipy
        # kernel computes the corrupted product and ABFT must flag it.
        a, _ = small_system
        live = stamped(a.copy())
        from repro.abft.checksums import compute_checksums

        cks = compute_checksums(live, nchecks=2)
        x = np.random.default_rng(9).standard_normal(a.ncols)

        def hook(stage, m, _x, _y):
            if stage == "pre":
                m.val[7] += 1e6

        res = protected_spmv(
            live, x, cks, correct=True, fault_hook=hook, backend="scipy"
        )
        assert res.status is SpmvStatus.CORRECTED
        assert res.correction.kind == "val"


class TestSolveFacade:
    def test_explicit_reference_bit_identical_to_default(self, small_system):
        a, b = small_system
        kwargs = dict(faults=repro.FaultSpec(alpha=0.05, seed=11), eps=1e-8)
        default = repro.solve(a, b, **kwargs)
        explicit = repro.solve(a, b, backend="reference", **kwargs)
        assert default.backend == explicit.backend == "reference"
        assert default.solution_sha256 == explicit.solution_sha256
        assert default.time_units == explicit.time_units
        assert default.history == explicit.history

    def test_scipy_fault_free_identical_convergence_history(self):
        # Acceptance lock: identical convergence histories on the
        # fault-free paper suite (same iterations, same simulated time;
        # residuals agree to rounding).
        for uid in (2213, 1312):
            a = get_matrix(uid, 48)
            b = make_rhs(a)
            ref = repro.solve(a, b, eps=1e-6)
            sp = repro.solve(a, b, backend="scipy", eps=1e-6)
            assert sp.backend == "scipy"
            assert sp.converged and ref.converged
            assert sp.iterations == ref.iterations
            assert sp.time_units == ref.time_units
            r_ref = [h["residual_norm"] for h in ref.history]
            r_sp = [h["residual_norm"] for h in sp.history]
            np.testing.assert_allclose(r_sp, r_ref, rtol=1e-6)

    def test_scipy_faulty_solve_converges(self, small_system):
        a, b = small_system
        report = repro.solve(
            a, b, backend="scipy",
            faults=repro.FaultSpec(alpha=0.1, seed=5), eps=1e-6,
        )
        assert report.converged
        assert report.counters.faults_injected > 0
        assert report.residual_norm <= report.threshold

    def test_dense_backend_solve(self, small_system):
        a, b = small_system
        report = repro.solve(a, b, backend="dense", eps=1e-8)
        assert report.converged
        assert report.backend == "dense"

    def test_scipy_online_detection_whole_run_on_one_axis(self, small_system):
        # ONLINE-DETECTION's verification SpMxV (chen_verify) rides the
        # run's backend too: fault-free scipy matches reference
        # iteration-for-iteration, and a faulty run still detects.
        a, b = small_system
        kwargs = dict(scheme="online-detection", eps=1e-6)
        ref = repro.solve(a, b, **kwargs)
        sp = repro.solve(a, b, backend="scipy", **kwargs)
        assert sp.iterations == ref.iterations
        assert sp.time_units == ref.time_units
        faulty = repro.solve(
            a, b, backend="scipy",
            faults=repro.FaultSpec(alpha=0.2, seed=4), **kwargs,
        )
        assert faulty.converged

    def test_backend_in_report_dict(self, small_system):
        a, b = small_system
        report = repro.solve(a, b, backend="scipy", eps=1e-8)
        assert report.to_dict()["backend"] == "scipy"

    def test_unknown_backend_rejected_before_work(self, small_system):
        a, b = small_system
        with pytest.raises(ValueError, match="unknown backend"):
            repro.solve(a, b, backend="gpu")

    def test_workspace_backend_attribute_used(self, small_system):
        # SolveWorkspace(backend=...) supplies the default kernel axis;
        # an explicit backend on the entry point still wins.
        a, b = small_system
        ws = SolveWorkspace(backend="scipy")
        via_ws = repro.solve(a, b, eps=1e-8, reuse_workspace=ws)
        pinned = repro.solve(a, b, eps=1e-8, backend="scipy")
        assert via_ws.iterations == pinned.iterations
        assert via_ws.solution_sha256 == pinned.solution_sha256
        explicit = repro.solve(
            a, b, eps=1e-8, reuse_workspace=ws, backend="reference"
        )
        ref = repro.solve(a, b, eps=1e-8)
        assert explicit.solution_sha256 == ref.solution_sha256


class TestRepeatRunAndWorkspace:
    def test_reference_repeat_run_bit_identical(self, small_system):
        a, b = small_system
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=5)
        base = repeat_run(a, b, cfg, alpha=0.05, reps=3, base_seed=7)
        explicit = repeat_run(
            a, b, cfg, alpha=0.05, reps=3, base_seed=7, backend="reference"
        )
        assert base == explicit

    def test_scipy_workspace_matches_scipy_fresh(self, small_system):
        # The workspace hot path and the fresh path must agree on the
        # scipy backend exactly as they do on reference.
        a, b = small_system
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=5)
        fresh = repeat_run(
            a, b, cfg, alpha=0.05, reps=3, base_seed=7,
            backend="scipy", reuse_workspace=False,
        )
        ws = repeat_run(
            a, b, cfg, alpha=0.05, reps=3, base_seed=7,
            backend="scipy", reuse_workspace=True,
        )
        assert fresh == ws

    def test_faulty_scipy_run_same_strike_streams(self, small_system):
        # The backend does not enter the seed derivation: both backends
        # face the same number of injected faults at the same point.
        a, b = small_system
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=5)
        ref = repeat_run(a, b, cfg, alpha=0.1, reps=3, base_seed=13)
        sp = repeat_run(a, b, cfg, alpha=0.1, reps=3, base_seed=13, backend="scipy")
        assert ref.mean_faults == sp.mean_faults
        assert ref.convergence_rate == sp.convergence_rate == 1.0


class TestStudyAndCampaign:
    def test_backend_axis_compiles_product(self):
        study = (repro.Study("kernels")
                 .axis("backend", ["reference", "scipy"])
                 .fix(uid=2213, scale=64, reps=1, s=4, d=1))
        tasks = study.tasks()
        assert [t.backend for t in tasks] == ["reference", "scipy"]
        assert len({t.task_hash() for t in tasks}) == 2

    def test_backend_axis_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            repro.Study("bad").axis("backend", ["gpu"])

    def test_backend_axis_requires_names_not_instances(self):
        with pytest.raises(ValueError, match="registered names"):
            repro.Study("bad").axis("backend", [ScipyBackend()])

    def test_study_round_trips_backend_axis(self, tmp_path):
        from repro.api.study import Study

        study = (Study("kernels")
                 .axis("backend", ["reference", "scipy"])
                 .fix(uid=2213, scale=64, reps=1, s=4))
        path = tmp_path / "spec.json"
        study.save(path)
        reloaded = Study.load(path)
        assert [t.task_hash() for t in reloaded.tasks()] == [
            t.task_hash() for t in study.tasks()
        ]

    def test_taskspec_backend_validated_and_hashed(self):
        from repro.campaign.spec import TaskSpec

        base = dict(experiment="t", uid=2213, scale=64,
                    scheme="abft-correction", alpha=0.0625, s=4)
        assert TaskSpec(**base).backend == "reference"
        assert (TaskSpec(**base, backend="scipy").task_hash()
                != TaskSpec(**base).task_hash())
        with pytest.raises(ValueError, match="unknown backend"):
            TaskSpec(**base, backend="gpu")
        rt = TaskSpec.from_json(TaskSpec(**base, backend="scipy").to_json())
        assert rt.backend == "scipy"

    def test_campaign_executes_backend_axis_end_to_end(self):
        study = (repro.Study("kernels-e2e")
                 .axis("backend", ["reference", "scipy"])
                 .fix(uid=2213, scale=64, reps=2, s=4, alpha=1 / 16))
        result = study.run(jobs=1)
        points = result.points()
        assert [p.backend for p in points] == ["reference", "scipy"]
        # Same physics parameters, same fault streams: both backends
        # must converge; simulated times agree (rounding-robust since
        # the simulated clock counts iterations, not floats).
        assert all(p.stats.convergence_rate == 1.0 for p in points)
        assert points[0].stats.mean_faults == points[1].stats.mean_faults

    def test_preset_campaign_carries_backend(self):
        study = repro.Study.table1(scale=64, reps=1, uids=[2213],
                                   s_span=0, backend="scipy")
        assert {t.backend for t in study.tasks()} == {"scipy"}

    def test_report_groups_by_backend(self, tmp_path):
        # A backend-comparison store must not average the kernels into
        # one row — backend is part of the report's group key.
        from repro.api.report import summarize_store

        store = tmp_path / "kernels.jsonl"
        study = (repro.Study("kernels-report")
                 .axis("backend", ["reference", "scipy"])
                 .fix(uid=2213, scale=64, reps=1, s=4))
        study.run(jobs=1, store=store)
        summary = summarize_store(store)
        assert [g.backend for g in summary.groups] == ["reference", "scipy"]


class TestCli:
    def test_solve_backend_flag(self, capsys):
        from repro.api.cli import main

        code = main(["solve", "--scale", "64", "--alpha", "0", "--backend",
                     "scipy", "--json"])
        assert code == 0
        out = capsys.readouterr().out
        import json

        assert json.loads(out)["backend"] == "scipy"

    def test_solve_unknown_backend_is_usage_error(self, capsys):
        from repro.api.cli import main

        assert main(["solve", "--backend", "gpu"]) == 2

    def test_table1_backend_flag_smoke(self, capsys):
        from repro.api.cli import main

        code = main(["table1", "--scale", "64", "--reps", "1", "--uids",
                     "2213", "--s-span", "0", "--jobs", "1",
                     "--backend", "scipy"])
        assert code == 0
        assert "2213" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# corrupted-structure grid, run against every registered backend
# ---------------------------------------------------------------------------

#: Directed corruptions covering all three matrix arrays the fault model
#: can strike.  Every case dirties the structure stamp, so every backend
#: must produce the *bits* of the reference guarded kernel: scipy/dense/
#: threaded by falling back to it, numba by its transcription of it.
CORRUPTIONS = {
    "colid_oob": lambda a: a.colid.__setitem__(3, a.ncols + 17),
    "colid_negative": lambda a: a.colid.__setitem__(5, -3),
    "val_large": lambda a: a.val.__setitem__(7, a.val[7] + 1e6),
    "val_nan": lambda a: a.val.__setitem__(2, np.nan),
    "rowidx_oob": lambda a: a.rowidx.__setitem__(3, a.nnz + 50),
    "rowidx_negative": lambda a: a.rowidx.__setitem__(2, -5),
    "rowidx_nonmonotone": lambda a: a.rowidx.__setitem__(4, int(a.rowidx[7]) + 3),
    "rowidx_equal_starts": lambda a: a.rowidx.__setitem__(4, int(a.rowidx[5])),
    "rowidx_shifted_boundary": lambda a: a.rowidx.__setitem__(
        4, (int(a.rowidx[3]) + int(a.rowidx[5])) // 2
    ),
}


@pytest.fixture(params=sorted(available_backends()))
def any_backend(request):
    """Every registered backend, skipping (visibly) the ones whose
    optional dependency is missing in this environment."""
    name = request.param
    if name == "numba" and not numba_available():
        pytest.skip(
            "backend 'numba' skipped: optional dependency numba is not "
            "installed (install with `pip install -e .[numba]`)"
        )
    if name == "threaded":
        # Force real threading: the registry default sizes the pool from
        # os.cpu_count() and falls back to reference below 2048 rows.
        return ThreadedBackend(threads=4, min_rows=1)
    return get_backend(name)


class TestAllBackendsCorruptionGrid:
    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_corrupted_product_bit_identical(self, any_backend, kind):
        a = stamped(stencil_spd(144, kind="cross", radius=2))
        CORRUPTIONS[kind](a)
        a.mark_structure_dirty()
        x = np.random.default_rng(21).standard_normal(a.ncols)
        y_ref = spmv(a, x)
        y = spmv(a, x, backend=any_backend)
        assert np.array_equal(y, y_ref, equal_nan=True)

    def test_fault_free_solve_runs_on_every_backend(self, any_backend):
        a = stencil_spd(100, kind="cross", radius=1)
        b = make_rhs(a)
        report = repro.solve(a, b, backend=any_backend, eps=1e-8)
        assert report.converged
        ref = repro.solve(a, b, eps=1e-8)
        assert report.iterations == ref.iterations
        assert report.time_units == ref.time_units


# ---------------------------------------------------------------------------
# threaded backend (row-partitioned clean products)
# ---------------------------------------------------------------------------


class TestThreadedBackend:
    def _be(self, threads=4):
        return ThreadedBackend(threads=threads, min_rows=1)

    def test_bit_identical_on_clean_products(self, suite_matrix):
        # Contiguous row blocks keep every row's reduceat segment whole,
        # so the threaded product is the reference product, bit for bit.
        a = stamped(suite_matrix.copy())
        be = self._be()
        rng = np.random.default_rng(31)
        for _ in range(5):
            x = rng.standard_normal(a.ncols)
            assert np.array_equal(be.spmv(a, x), spmv(a, x))

    def test_honours_out_and_scratch(self, suite_matrix):
        a = stamped(suite_matrix.copy())
        be = self._be()
        x = np.random.default_rng(32).standard_normal(a.ncols)
        out = np.full(a.nrows, np.nan)
        scratch = np.empty(a.nnz)
        y = spmv(a, x, out=out, scratch=scratch, backend=be)
        assert y is out
        assert np.array_equal(out, spmv(a, x))

    def test_unstamped_falls_back_to_reference(self, suite_matrix):
        be = self._be()
        x = np.random.default_rng(33).standard_normal(suite_matrix.ncols)
        assert not suite_matrix.structure_clean
        assert np.array_equal(be.spmv(suite_matrix, x), spmv(suite_matrix, x))
        # Guarded work never spins up the pool.
        assert be._pool is None

    def test_small_matrix_stays_serial(self):
        a = stamped(stencil_spd(100, kind="cross", radius=1))
        be = ThreadedBackend(threads=4)  # default min_rows=2048
        x = np.ones(a.ncols)
        assert np.array_equal(be.spmv(a, x), spmv(a, x))
        assert be._pool is None

    def test_single_thread_never_creates_pool(self, suite_matrix):
        a = stamped(suite_matrix.copy())
        be = ThreadedBackend(threads=1, min_rows=1)
        x = np.ones(a.ncols)
        assert np.array_equal(be.spmv(a, x), spmv(a, x))
        assert be._pool is None

    def test_prepare_warms_pool_and_partition(self, suite_matrix):
        a = stamped(suite_matrix.copy())
        be = self._be()
        be.prepare(a)
        assert be._pool is not None
        # The partition is cached per matrix: a second prepare reuses it.
        part = be._partition(a)
        assert be._partition(a) is part

    def test_empty_matrix(self):
        a = stamped(CSRMatrix(
            np.zeros(0), np.zeros(0, dtype=np.int64),
            np.zeros(4, dtype=np.int64), (3, 3),
        ))
        assert np.array_equal(self._be().spmv(a, np.ones(3)), np.zeros(3))

    def test_fault_free_solve_identical_history(self, small_system):
        # Acceptance lock: same iterations, same simulated time, same
        # solution bits as the reference backend on a fault-free solve.
        a, b = small_system
        ref = repro.solve(a, b, eps=1e-8)
        th = repro.solve(a, b, backend=self._be(), eps=1e-8)
        assert th.backend == "threaded"
        assert th.solution_sha256 == ref.solution_sha256
        assert th.time_units == ref.time_units
        assert th.history == ref.history

    def test_faulty_solve_same_strike_streams(self, small_system):
        a, b = small_system
        kwargs = dict(faults=repro.FaultSpec(alpha=0.1, seed=5), eps=1e-6)
        ref = repro.solve(a, b, **kwargs)
        th = repro.solve(a, b, backend=self._be(), **kwargs)
        assert th.counters.faults_injected == ref.counters.faults_injected
        assert th.converged and ref.converged


# ---------------------------------------------------------------------------
# dense capacity: structured error, surfaced before any O(n^2) work
# ---------------------------------------------------------------------------


class TestDenseCapacity:
    def test_capacity_error_is_structured(self):
        a = stamped(stencil_spd(81, kind="cross", radius=1))
        be = DenseBackend(max_n=50)
        with pytest.raises(BackendCapacityError) as ei:
            be.prepare(a)
        err = ei.value
        assert isinstance(err, ValueError)  # legacy handlers still catch it
        assert err.backend == "dense"
        assert err.cap == 50
        assert err.n == a.nrows
        assert "reference" in err.hint
        assert "capped" in str(err)

    def test_spmv_checks_capacity_defensively(self):
        a = stamped(stencil_spd(81, kind="cross", radius=1))
        with pytest.raises(BackendCapacityError):
            DenseBackend(max_n=50).spmv(a, np.ones(a.ncols))

    def test_study_sweeping_oversized_workload_raises_structured(self):
        # uid 2213 is n=20000 at paper scale, so scale=4 lands ~n=5000 —
        # past the 4096 cap.  The error must surface from study.run as
        # one structured BackendCapacityError, raised in prepare()
        # before the dense backend materializes anything O(n^2).
        study = (repro.Study("dense-cap")
                 .axis("backend", ["dense"])
                 .fix(uid=2213, scale=4, reps=1, s=4))
        with pytest.raises(BackendCapacityError) as ei:
            study.run(jobs=1)
        err = ei.value
        assert err.backend == "dense"
        assert err.cap == 4096
        assert err.n > 4096
        assert "threaded" in err.hint


# ---------------------------------------------------------------------------
# numba availability gating (both directions)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(numba_available(), reason="numba installed: the "
                    "unavailable-path errors cannot be triggered")
class TestNumbaUnavailable:
    def test_constructor_raises_actionable_error(self):
        with pytest.raises(BackendUnavailableError, match=r"pip install"):
            NumbaBackend()

    def test_get_backend_surfaces_unavailable(self):
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend("numba")

    def test_backend_available_reports_false_without_raising(self):
        assert backend_available("numba") is False

    def test_study_axis_rejects_with_clear_error(self):
        with pytest.raises(BackendUnavailableError, match="optional"):
            repro.Study("jit").axis("backend", ["numba"])

    def test_solve_rejects_with_clear_error(self, small_system):
        a, b = small_system
        with pytest.raises(BackendUnavailableError, match="numba"):
            repro.solve(a, b, backend="numba")

    def test_cli_flag_is_usage_error(self, capsys):
        from repro.api.cli import main

        assert main(["solve", "--scale", "64", "--backend", "numba"]) == 2
        assert "numba" in capsys.readouterr().err

    def test_interpreted_mode_still_constructs(self):
        # jit=False is the test-and-CI escape hatch: same kernel bodies,
        # interpreted — no numba needed.
        be = NumbaBackend(jit=False)
        assert be.name == "numba"
        assert not be.compiled


@pytest.mark.skipif(not numba_available(), reason="optional dependency "
                    "numba is not installed")
class TestNumbaAvailable:
    def test_registry_instance_is_compiled(self):
        be = get_backend("numba")
        assert be.compiled
        assert backend_available("numba")

    def test_solve_end_to_end(self, small_system):
        a, b = small_system
        ref = repro.solve(a, b, eps=1e-8)
        nb = repro.solve(a, b, backend="numba", eps=1e-8)
        assert nb.backend == "numba"
        assert nb.solution_sha256 == ref.solution_sha256
        assert nb.time_units == ref.time_units

    def test_cli_flag_accepted(self, capsys):
        from repro.api.cli import main

        code = main(["solve", "--scale", "64", "--alpha", "0",
                     "--backend", "numba", "--json"])
        assert code == 0
        import json

        assert json.loads(capsys.readouterr().out)["backend"] == "numba"
