"""Unit tests for the Eq.-6 interval optimization."""

import math

import pytest

from repro.model import frame_overhead, optimal_interval, optimal_online_intervals


class TestOptimalInterval:
    def test_matches_exhaustive_scan(self):
        q = 0.93
        choice = optimal_interval(1.0, q, 2.0, 1.0, 0.2, s_max=200)
        brute = min(range(1, 201), key=lambda s: frame_overhead(s, 1.0, 2.0, 1.0, 0.2, q))
        assert choice.s == brute

    def test_error_free_prefers_no_checkpoints(self):
        choice = optimal_interval(1.0, 1.0, 1.0, 1.0, 0.1, s_max=50)
        assert choice.s == 50  # checkpoints are pure overhead

    def test_higher_rate_means_smaller_s(self):
        s_vals = [
            optimal_interval(1.0, math.exp(-lam), 1.0, 1.0, 0.2).s
            for lam in (0.001, 0.01, 0.05, 0.2)
        ]
        assert s_vals == sorted(s_vals, reverse=True)
        assert s_vals[-1] < s_vals[0]

    def test_expensive_checkpoint_means_larger_s(self):
        cheap = optimal_interval(1.0, 0.95, 0.5, 1.0, 0.2).s
        pricey = optimal_interval(1.0, 0.95, 8.0, 1.0, 0.2).s
        assert pricey > cheap

    def test_overhead_value_consistent(self):
        choice = optimal_interval(1.0, 0.9, 1.0, 1.0, 0.2)
        assert choice.overhead == pytest.approx(
            frame_overhead(choice.s, 1.0, 1.0, 1.0, 0.2, 0.9)
        )

    def test_s_max_validation(self):
        with pytest.raises(ValueError):
            optimal_interval(1.0, 0.9, 1.0, 1.0, 0.2, s_max=0)

    def test_young_daly_consistency_in_cheap_verification_regime(self):
        """With negligible verification cost, s·T approaches the
        Young period sqrt(2·Tcp/λ)."""
        from repro.model import young_period

        lam = 1e-4
        t_cp = 2.0
        choice = optimal_interval(1.0, math.exp(-lam), t_cp, t_cp, 1e-9, s_max=2000)
        period = choice.s * 1.0
        assert period == pytest.approx(young_period(t_cp, lam), rel=0.15)


class TestOnlineJoint:
    def test_beats_or_matches_any_fixed_d(self):
        lam, tcp, trec, tv = 0.01, 1.5, 1.0, 0.8
        best = optimal_online_intervals(1.0, lam, tcp, trec, tv, d_max=60, s_max=60)
        for d in (1, 5, 20, 60):
            q = math.exp(-lam * d)
            fixed = optimal_interval(d * 1.0, q, tcp, trec, tv, s_max=60)
            assert best.overhead <= fixed.overhead + 1e-12

    def test_d_grows_as_rate_drops(self):
        d_vals = [
            optimal_online_intervals(1.0, lam, 1.0, 1.0, 0.8, d_max=150, s_max=40).d
            for lam in (0.05, 0.01, 0.001)
        ]
        assert d_vals == sorted(d_vals)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            optimal_online_intervals(1.0, -0.1, 1.0, 1.0, 0.5)
