"""Unit tests for the nine-matrix suite registry."""

import pytest

from repro.sim import PAPER_SUITE, get_matrix, suite_specs
from repro.sparse.validate import is_structurally_valid


class TestSuiteSpecs:
    def test_nine_entries_with_paper_ids(self):
        uids = {s.uid for s in PAPER_SUITE}
        assert uids == {341, 752, 924, 1288, 1289, 1311, 1312, 1848, 2213}

    def test_paper_dimensions_and_densities(self):
        by_id = {s.uid: s for s in PAPER_SUITE}
        assert by_id[341].n == 23052 and by_id[341].density == pytest.approx(2.15e-3)
        assert by_id[752].n == 74752 and by_id[752].density == pytest.approx(1.07e-4)
        assert by_id[2213].n == 20000 and by_id[2213].density == pytest.approx(1.39e-3)

    def test_dimension_range_matches_paper(self):
        assert min(s.n for s in PAPER_SUITE) == 17456 or min(s.n for s in PAPER_SUITE) >= 17456
        assert max(s.n for s in PAPER_SUITE) <= 74752
        assert all(s.density < 1e-2 for s in PAPER_SUITE)

    def test_filter_by_uid(self):
        specs = suite_specs([341, 1312])
        assert [s.uid for s in specs] == [341, 1312]

    def test_unknown_uid_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            suite_specs([999])


class TestInstantiation:
    def test_scaled_instantiation_valid_and_spd_shaped(self):
        for spec in PAPER_SUITE:
            a = spec.instantiate(scale=64)
            assert is_structurally_valid(a)
            assert a.nrows == a.ncols
            assert a.nrows >= 512

    def test_scaling_preserves_row_density(self):
        spec = suite_specs([341])[0]
        a_small = spec.instantiate(scale=64)
        a_mid = spec.instantiate(scale=16)
        per_row_small = a_small.nnz / a_small.nrows
        per_row_mid = a_mid.nnz / a_mid.nrows
        assert per_row_small == pytest.approx(per_row_mid, rel=0.15)

    def test_nnz_per_row_matches_paper_density(self):
        for spec in PAPER_SUITE:
            a = spec.instantiate(scale=32)
            # Interior stencil size should approximate density·n of the
            # paper entry (boundary rows pull the average down a bit).
            assert a.nnz / a.nrows == pytest.approx(spec.nnz_per_row, rel=0.45)

    def test_get_matrix_cached(self):
        a1 = get_matrix(341, scale=64)
        a2 = get_matrix(341, scale=64)
        assert a1 is a2

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            suite_specs([341])[0].instantiate(scale=0)

    def test_deterministic(self):
        spec = suite_specs([924])[0]
        assert spec.instantiate(scale=64).equals(spec.instantiate(scale=64))
