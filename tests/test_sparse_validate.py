"""Unit tests for CSR structural validation."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, StructureError, validate_structure
from repro.sparse.validate import is_structurally_valid


@pytest.fixture
def valid(small_lap):
    return small_lap.copy()


class TestValidate:
    def test_clean_matrix_passes(self, valid):
        validate_structure(valid)
        assert is_structurally_valid(valid)

    def test_colid_out_of_range(self, valid):
        valid.colid[0] = valid.ncols
        with pytest.raises(StructureError, match="column indices"):
            validate_structure(valid)

    def test_negative_colid(self, valid):
        valid.colid[0] = -1
        assert not is_structurally_valid(valid)

    def test_rowidx_first_nonzero(self, valid):
        valid.rowidx[0] = 1
        with pytest.raises(StructureError, match="rowidx\\[0\\]"):
            validate_structure(valid)

    def test_rowidx_last_mismatch(self, valid):
        valid.rowidx[-1] += 1
        with pytest.raises(StructureError, match="rowidx\\[-1\\]"):
            validate_structure(valid)

    def test_rowidx_decreasing(self, valid):
        valid.rowidx[3] = valid.rowidx[4] + 1
        with pytest.raises(StructureError, match="decreases"):
            validate_structure(valid)

    def test_non_finite_value(self, valid):
        valid.val[5] = np.inf
        with pytest.raises(StructureError, match="non-finite"):
            validate_structure(valid)

    def test_nan_value(self, valid):
        valid.val[5] = np.nan
        assert not is_structurally_valid(valid)

    def test_rowidx_wrong_length(self):
        with pytest.raises(StructureError, match="length"):
            CSRMatrix(np.array([1.0]), np.array([0]), np.array([0, 1, 1]), (1, 1))

    def test_val_colid_length_mismatch(self):
        with pytest.raises(StructureError, match="must match"):
            CSRMatrix(np.array([1.0, 2.0]), np.array([0]), np.array([0, 2]), (1, 1))

    def test_bit_flip_detected_as_invalid(self, valid, rng):
        from repro.faults.bitflip import flip_bits_array

        # Flip a high bit of a column index: must break validity.
        flip_bits_array(valid.colid, np.array([4]), np.array([40]))
        assert not is_structurally_valid(valid)
