"""Tracing is pure observation: golden replay with sinks attached.

``test_resilience_golden.py`` locks the engine to the pre-refactor
trajectories; this file replays the same golden entries with tracing
*enabled* and asserts nothing moved.  A tracer that consumed RNG,
touched solver state or changed float accounting would shift the
solution hash or the ``float.hex`` time — exactly the failure this
guards against.  Two sinks are exercised: ``NullTracer`` (the
disabled path, which :func:`repro.obs.resolve_tracer` must collapse
to the untraced branch) and ``InMemoryTracer`` (the fully-enabled
path, every event materialized).
"""

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.core import Scheme, SchemeConfig, run_ft_bicgstab, run_ft_cg
from repro.obs import InMemoryTracer, NullTracer
from repro.sparse import stencil_spd

GOLDEN = pathlib.Path(__file__).parent / "golden" / "ft_trajectories.json"

_gold = json.loads(GOLDEN.read_text())

# One entry per (driver, scheme): the replay is about the tracer axis,
# not the fault axis, so the reduced grid keeps the runtime in check.
_ENTRIES = list({(e["driver"], e["scheme"]): e for e in _gold["entries"]}.values())


def _entry_id(entry) -> str:
    return f"{entry['driver']}-{entry['scheme']}"


def _replay(problem, entry, tracer):
    a, b = problem
    cfg = SchemeConfig(
        Scheme(entry["scheme"]),
        checkpoint_interval=_gold["s"],
        verification_interval=entry["d"],
    )
    run = run_ft_cg if entry["driver"] == "ft_cg" else run_ft_bicgstab
    with np.errstate(all="ignore"):
        return run(
            a, b, cfg,
            alpha=entry["alpha"], rng=entry["seed"], eps=_gold["eps"],
            tracer=tracer,
        )


def _assert_matches_golden(res, want):
    assert hashlib.sha256(np.ascontiguousarray(res.x).tobytes()).hexdigest() \
        == want["x_sha256"]
    assert res.converged == want["converged"]
    assert res.iterations_executed == want["iterations_executed"]
    assert float(res.time_units).hex() == want["time_units"]
    assert float(res.residual_norm).hex() == want["residual_norm"]
    assert res.counters.faults_injected == want["counters"]["faults_injected"]
    assert res.counters.rollbacks == want["counters"]["rollbacks"]


@pytest.fixture(scope="module")
def problem():
    a = stencil_spd(529, kind="cross", radius=2)
    b = np.random.default_rng(_gold["rhs_seed"]).normal(size=a.nrows)
    return a, b


@pytest.mark.parametrize("entry", _ENTRIES, ids=_entry_id)
def test_null_tracer_matches_golden(problem, entry):
    res = _replay(problem, entry, NullTracer())
    _assert_matches_golden(res, entry["result"])


@pytest.mark.parametrize("entry", _ENTRIES, ids=_entry_id)
def test_in_memory_tracer_matches_golden(problem, entry):
    t = InMemoryTracer()
    res = _replay(problem, entry, t)
    _assert_matches_golden(res, entry["result"])
    # The trace itself must be consistent with the locked trajectory.
    counts = t.counts_by_kind()
    assert counts["step"] == entry["result"]["iterations_executed"]
    assert counts.get("strike", 0) == entry["result"]["counters"]["faults_injected"]
