"""Additional property-based tests: checkpointing, partitioning, faults."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint import CheckpointStore, PeriodicCheckpointPolicy
from repro.faults.bitflip import flip_bit_float64, flip_bit_int64
from repro.parallel import block_rows, partition_by_nnz
from repro.sparse import CSRMatrix, spmv


# ----------------------------------------------------------------------
# bit flips are involutions and always change the representation
# ----------------------------------------------------------------------
@given(
    value=st.floats(allow_nan=False, allow_infinity=False, width=64),
    bit=st.integers(0, 63),
)
@settings(max_examples=200, deadline=None)
def test_float_flip_involution(value, bit):
    flipped = flip_bit_float64(value, bit)
    back = flip_bit_float64(flipped, bit)
    assert np.float64(back).view(np.uint64) == np.float64(value).view(np.uint64)


@given(value=st.integers(-(2**62), 2**62), bit=st.integers(0, 63))
@settings(max_examples=200, deadline=None)
def test_int_flip_involution_and_change(value, bit):
    flipped = flip_bit_int64(value, bit)
    assert flipped != value
    assert flip_bit_int64(flipped, bit) == value


# ----------------------------------------------------------------------
# checkpoint store: restore always returns exactly what was saved
# ----------------------------------------------------------------------
@given(
    n=st.integers(1, 30),
    iteration=st.integers(0, 10**6),
    seed=st.integers(0, 2**31 - 1),
    keep=st.integers(1, 4),
    extra_saves=st.integers(0, 6),
)
@settings(max_examples=60, deadline=None)
def test_checkpoint_roundtrip(n, iteration, seed, keep, extra_saves):
    rng = np.random.default_rng(seed)
    store = CheckpointStore(keep=keep)
    last = None
    for i in range(extra_saves + 1):
        vecs = {"x": rng.normal(size=n), "r": rng.normal(size=n)}
        scal = {"rr": float(rng.normal())}
        store.save(iteration + i, vecs, scalars=scal)
        last = (dict(vecs), dict(scal), iteration + i)
    cp = store.restore()
    vecs, scal, it = last
    assert cp.iteration == it
    assert cp.scalars == scal
    for k in vecs:
        np.testing.assert_array_equal(cp.vectors[k], vecs[k])


@given(interval=st.integers(1, 20), chunks=st.integers(1, 200))
@settings(max_examples=60, deadline=None)
def test_policy_checkpoint_count(interval, chunks):
    policy = PeriodicCheckpointPolicy(interval)
    hits = sum(policy.chunk_verified() for _ in range(chunks))
    assert hits == chunks // interval


# ----------------------------------------------------------------------
# partitioning: blocks always reassemble the matrix exactly
# ----------------------------------------------------------------------
@st.composite
def matrix_and_parts(draw):
    n = draw(st.integers(4, 40))
    seed = draw(st.integers(0, 2**31 - 1))
    p = draw(st.integers(1, min(6, n)))
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((n, n)) < 0.3, rng.normal(size=(n, n)), 0.0)
    return CSRMatrix.from_dense(dense), p


@given(matrix_and_parts())
@settings(max_examples=50, deadline=None)
def test_partition_reassembles(data):
    a, p = data
    for part in (block_rows(a.nrows, p), partition_by_nnz(a, p)):
        assert part.bounds[0] == 0 and part.bounds[-1] == a.nrows
        pieces = [part.local_block(a, r).to_dense() for r in range(p)]
        np.testing.assert_array_equal(np.vstack(pieces), a.to_dense())


@given(matrix_and_parts())
@settings(max_examples=50, deadline=None)
def test_distributed_product_equals_sequential(data):
    a, p = data
    from repro.parallel import DistributedSpmv

    x = np.random.default_rng(1).normal(size=a.ncols)
    res = DistributedSpmv(a, p).multiply(x)
    np.testing.assert_allclose(res.y, spmv(a, x), rtol=1e-10, atol=1e-12)


# ----------------------------------------------------------------------
# DP placement never loses to any uniform policy
# ----------------------------------------------------------------------
@given(
    n=st.integers(2, 40),
    q=st.floats(0.5, 0.999),
    tcp=st.floats(0.1, 3.0),
    tv=st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_dp_dominates_uniform(n, q, tcp, tv):
    from repro.model import expected_frame_time, optimal_checkpoint_positions

    dp = optimal_checkpoint_positions(n, 1.0, q, tcp, 1.0, tv)
    for s in range(1, n + 1):
        frames, rem = divmod(n, s)
        uniform = frames * expected_frame_time(s, 1.0, tcp, 1.0, tv, q)
        if rem:
            uniform += expected_frame_time(rem, 1.0, tcp, 1.0, tv, q)
        assert dp.expected_time <= uniform + 1e-9
