"""Tests for fault-tolerant BiCGstab."""

import numpy as np
import pytest

from repro.core import Scheme, SchemeConfig, bicgstab, run_ft_bicgstab
from repro.sim.engine import make_rhs
from repro.sparse import stencil_spd


@pytest.fixture(scope="module")
def problem():
    a = stencil_spd(900, kind="cross", radius=2)
    return a, make_rhs(a)


def config(scheme, s=8):
    return SchemeConfig(scheme, checkpoint_interval=s)


class TestFaultFree:
    @pytest.mark.parametrize("scheme", [Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION])
    def test_converges(self, problem, scheme):
        a, b = problem
        res = run_ft_bicgstab(a, b, config(scheme), alpha=0.0, rng=0, eps=1e-6)
        assert res.converged
        assert res.counters.rollbacks == 0
        assert res.residual_norm <= res.threshold

    def test_matches_plain_bicgstab(self, problem):
        a, b = problem
        plain = bicgstab(a, b, eps=1e-6)
        ft = run_ft_bicgstab(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, rng=0, eps=1e-6)
        np.testing.assert_allclose(a.matvec(ft.x), b, atol=10 * plain.threshold)

    def test_online_scheme_rejected(self, problem):
        a, b = problem
        with pytest.raises(ValueError, match="ABFT"):
            run_ft_bicgstab(
                a, b,
                SchemeConfig(Scheme.ONLINE_DETECTION, verification_interval=4),
                alpha=0.0,
            )

    def test_breakdown_sums(self, problem):
        a, b = problem
        res = run_ft_bicgstab(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.1, rng=3, eps=1e-6)
        assert res.breakdown.total == pytest.approx(res.time_units)


class TestWithFaults:
    @pytest.mark.parametrize("scheme", [Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION])
    def test_converges_under_injection(self, problem, scheme):
        a, b = problem
        res = run_ft_bicgstab(a, b, config(scheme), alpha=0.1, rng=42, eps=1e-6)
        assert res.converged
        assert res.counters.faults_injected > 0
        assert res.residual_norm <= res.threshold

    def test_correction_forward_recovers(self, problem):
        a, b = problem
        res = run_ft_bicgstab(
            a, b, config(Scheme.ABFT_CORRECTION), alpha=0.25, rng=11, eps=1e-6
        )
        assert res.converged
        assert res.counters.total_corrections > 0
        assert res.counters.rollbacks < res.counters.total_corrections

    def test_detection_rolls_back(self, problem):
        a, b = problem
        res = run_ft_bicgstab(
            a, b, config(Scheme.ABFT_DETECTION), alpha=0.25, rng=11, eps=1e-6
        )
        assert res.converged
        assert res.counters.rollbacks > 0
        assert res.counters.total_corrections == 0

    def test_input_matrix_untouched(self, problem):
        a, b = problem
        snap = a.copy()
        run_ft_bicgstab(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.3, rng=2, eps=1e-6)
        assert a.equals(snap)

    def test_determinism(self, problem):
        a, b = problem
        r1 = run_ft_bicgstab(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.2, rng=77, eps=1e-6)
        r2 = run_ft_bicgstab(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.2, rng=77, eps=1e-6)
        assert r1.time_units == r2.time_units
        np.testing.assert_array_equal(r1.x, r2.x)

    def test_correction_faster_at_high_rate(self, problem):
        a, b = problem
        times = {}
        for scheme in (Scheme.ABFT_CORRECTION, Scheme.ABFT_DETECTION):
            vals = [
                run_ft_bicgstab(a, b, config(scheme), alpha=0.3, rng=seed, eps=1e-6).time_units
                for seed in range(4)
            ]
            times[scheme] = np.mean(vals)
        assert times[Scheme.ABFT_CORRECTION] < times[Scheme.ABFT_DETECTION]
