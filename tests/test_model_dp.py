"""Unit tests for the dynamic-programming checkpoint placement."""

import pytest

from repro.model import expected_frame_time, optimal_checkpoint_positions


class TestDP:
    def test_positions_partition_the_horizon(self):
        dp = optimal_checkpoint_positions(20, 1.0, 0.9, 1.0, 1.0, 0.2)
        assert dp.positions[-1] == 20
        assert sum(dp.frame_sizes) == 20
        assert all(s >= 1 for s in dp.frame_sizes)

    def test_expected_time_is_sum_of_frames(self):
        dp = optimal_checkpoint_positions(12, 1.0, 0.9, 1.0, 1.0, 0.2)
        total = sum(
            expected_frame_time(s, 1.0, 1.0, 1.0, 0.2, 0.9) for s in dp.frame_sizes
        )
        assert dp.expected_time == pytest.approx(total)

    def test_beats_or_matches_uniform_partitions(self):
        n, t, q, tcp, trec, tv = 24, 1.0, 0.92, 1.5, 1.0, 0.3
        dp = optimal_checkpoint_positions(n, t, q, tcp, trec, tv)
        for s in (1, 2, 3, 4, 6, 8, 12, 24):
            uniform = (n // s) * expected_frame_time(s, t, tcp, trec, tv, q)
            assert dp.expected_time <= uniform + 1e-9

    def test_near_periodic_for_homogeneous_chunks(self):
        """The ablation behind the paper's periodic policy: the exact
        optimum uses (nearly) equal frames."""
        dp = optimal_checkpoint_positions(30, 1.0, 0.9, 1.0, 1.0, 0.2)
        assert max(dp.frame_sizes) - min(dp.frame_sizes) <= 1

    def test_error_free_uses_one_frame(self):
        dp = optimal_checkpoint_positions(10, 1.0, 1.0, 1.0, 1.0, 0.1)
        assert dp.frame_sizes == (10,)

    def test_high_rate_uses_small_frames(self):
        dp = optimal_checkpoint_positions(20, 1.0, 0.5, 0.5, 0.5, 0.1)
        assert max(dp.frame_sizes) <= 3

    def test_max_frame_cap_respected(self):
        dp = optimal_checkpoint_positions(20, 1.0, 0.99, 5.0, 1.0, 0.1, max_frame=4)
        assert max(dp.frame_sizes) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_checkpoint_positions(0, 1.0, 0.9, 1.0, 1.0, 0.1)
