"""Unit tests for the Eq. 4/5 frame model."""

import math

import pytest

from repro.model import expected_frame_time, expected_time_lost, frame_overhead


class TestExpectedFrameTime:
    def test_error_free_limit(self):
        # q = 1: every chunk runs exactly once plus the checkpoint.
        assert expected_frame_time(5, 2.0, 1.0, 1.0, 0.5, 1.0) == pytest.approx(
            5 * 2.5 + 1.0
        )

    def test_continuity_at_q_near_one(self):
        exact = expected_frame_time(5, 2.0, 1.0, 1.0, 0.5, 1.0)
        near = expected_frame_time(5, 2.0, 1.0, 1.0, 0.5, 1 - 1e-12)
        assert near == pytest.approx(exact, rel=1e-6)

    def test_single_chunk_closed_form(self):
        # s=1: E = Tcp + (1/q − 1)Trec + (T+Tverif)(1−q)/(q(1−q))
        #        = Tcp + (1/q − 1)Trec + (T+Tverif)/q.
        q = 0.8
        got = expected_frame_time(1, 3.0, 1.0, 2.0, 0.5, q)
        expect = 1.0 + (1 / q - 1) * 2.0 + 3.5 / q
        assert got == pytest.approx(expect)

    def test_increases_as_q_decreases(self):
        times = [expected_frame_time(4, 1.0, 1.0, 1.0, 0.2, q) for q in (0.99, 0.9, 0.7, 0.5)]
        assert times == sorted(times)

    def test_increases_with_costs(self):
        base = expected_frame_time(4, 1.0, 1.0, 1.0, 0.2, 0.9)
        assert expected_frame_time(4, 1.0, 2.0, 1.0, 0.2, 0.9) > base
        assert expected_frame_time(4, 1.0, 1.0, 2.0, 0.2, 0.9) > base
        assert expected_frame_time(4, 1.0, 1.0, 1.0, 0.4, 0.9) > base

    def test_matches_monte_carlo(self, rng):
        """Eq. 5 against a direct simulation of the frame process."""
        s, t, tcp, trec, tverif, q = 3, 1.0, 0.8, 0.6, 0.3, 0.85
        n = 40000
        total = 0.0
        for _ in range(n):
            while True:
                failed_at = None
                for i in range(s):
                    if rng.random() > q:
                        failed_at = i
                        break
                if failed_at is None:
                    total += s * (t + tverif) + tcp
                    break
                total += (failed_at + 1) * (t + tverif) + trec
        mc = total / n
        model = expected_frame_time(s, t, tcp, trec, tverif, q)
        assert model == pytest.approx(mc, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_frame_time(0, 1.0, 1.0, 1.0, 0.1, 0.9)
        with pytest.raises(ValueError):
            expected_frame_time(1, 0.0, 1.0, 1.0, 0.1, 0.9)
        with pytest.raises(ValueError):
            expected_frame_time(1, 1.0, 1.0, 1.0, 0.1, 1.5)
        with pytest.raises(ValueError):
            expected_frame_time(1, 1.0, 1.0, 1.0, 0.1, 0.0)


class TestExpectedTimeLost:
    def test_q_one_is_zero(self):
        assert expected_time_lost(3, 1.0, 0.1, 1.0) == 0.0

    def test_single_chunk(self):
        # s=1: the whole (failed) chunk is always lost.
        assert expected_time_lost(1, 2.0, 0.5, 0.7) == pytest.approx(2.5)

    def test_bounded_by_frame_length(self):
        lost = expected_time_lost(6, 1.0, 0.2, 0.9)
        assert 1.2 <= lost <= 6 * 1.2

    def test_matches_conditional_mc(self, rng):
        s, t, tverif, q = 4, 1.0, 0.25, 0.8
        losses = []
        for _ in range(60000):
            for i in range(s):
                if rng.random() > q:
                    losses.append((i + 1) * (t + tverif))
                    break
        mc = sum(losses) / len(losses)
        assert expected_time_lost(s, t, tverif, q) == pytest.approx(mc, rel=0.02)


class TestOverhead:
    def test_definition(self):
        e = expected_frame_time(4, 2.0, 1.0, 1.0, 0.5, 0.9)
        assert frame_overhead(4, 2.0, 1.0, 1.0, 0.5, 0.9) == pytest.approx(e / 8.0)

    def test_overhead_above_one(self):
        # Overhead is time paid per useful unit: always > 1 with
        # any resilience cost.
        assert frame_overhead(4, 1.0, 0.5, 0.5, 0.2, 0.95) > 1.0

    def test_unimodal_shape_in_s(self):
        """With failures, overhead decreases then increases in s."""
        q = 0.9
        hs = [frame_overhead(s, 1.0, 2.0, 1.0, 0.1, q) for s in range(1, 80)]
        best = hs.index(min(hs))
        assert 0 < best < 78  # interior optimum
        # decreasing before, increasing after (allowing tiny noise)
        assert hs[0] > hs[best]
        assert hs[-1] > hs[best]
