"""Unit tests for Matrix-Market I/O."""

import numpy as np

from repro.sparse import load_matrix_market, save_matrix_market, random_spd


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path, small_spd):
        path = tmp_path / "mat.mtx"
        save_matrix_market(small_spd, path)
        back = load_matrix_market(path)
        assert back.shape == small_spd.shape
        np.testing.assert_allclose(back.to_dense(), small_spd.to_dense(), rtol=1e-12)

    def test_symmetric_storage_expanded(self, tmp_path):
        import scipy.io
        import scipy.sparse as sp

        a = random_spd(50, 0.1, seed=0)
        tri = sp.tril(a.to_scipy())
        path = tmp_path / "sym.mtx"
        scipy.io.mmwrite(str(path), tri, symmetry="symmetric")
        back = load_matrix_market(path)
        np.testing.assert_allclose(back.to_dense(), a.to_dense(), rtol=1e-12)

    def test_pathlib_and_str_paths(self, tmp_path, small_spd):
        save_matrix_market(small_spd, str(tmp_path / "a.mtx"))
        back = load_matrix_market(str(tmp_path / "a.mtx"))
        assert back.nnz == small_spd.nnz
