"""Unit tests for util: rng, validation, event log."""

import numpy as np
import pytest

from repro.util import (
    as_generator,
    check_nonnegative,
    check_positive,
    check_probability,
    check_square,
    check_vector,
    spawn_children,
    spawn_named,
)
from repro.util.log import Event, EventLog


class TestRng:
    def test_as_generator_from_seed(self):
        g1 = as_generator(42)
        g2 = as_generator(42)
        assert g1.random() == g2.random()

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_as_generator_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_children_independent(self):
        parent = np.random.default_rng(7)
        kids = spawn_children(parent, 3)
        vals = [k.random() for k in kids]
        assert len(set(vals)) == 3

    def test_spawn_children_negative(self):
        with pytest.raises(ValueError):
            spawn_children(np.random.default_rng(0), -1)

    def test_spawn_named_deterministic(self):
        a = spawn_named(1, "x", 0.5, 3)
        b = spawn_named(1, "x", 0.5, 3)
        assert a.random() == b.random()

    def test_spawn_named_label_sensitivity(self):
        a = spawn_named(1, "x", 0.5, 3).random()
        b = spawn_named(1, "y", 0.5, 3).random()
        c = spawn_named(2, "x", 0.5, 3).random()
        assert len({a, b, c}) == 3


class TestValidate:
    def test_check_positive(self):
        assert check_positive("v", 1.5) == 1.5
        with pytest.raises(ValueError, match="v must be positive"):
            check_positive("v", 0.0)

    def test_check_nonnegative(self):
        assert check_nonnegative("v", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_nonnegative("v", -0.1)

    def test_check_probability(self):
        assert check_probability("q", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("q", 1.01)
        with pytest.raises(ValueError):
            check_probability("q", -0.01)

    def test_check_square(self):
        assert check_square("a", (3, 3)) == 3
        with pytest.raises(ValueError, match="square"):
            check_square("a", (3, 4))

    def test_check_vector(self):
        v = check_vector("x", np.ones(4), 4)
        assert v.shape == (4,)
        with pytest.raises(ValueError):
            check_vector("x", np.ones((2, 2)))
        with pytest.raises(ValueError):
            check_vector("x", np.ones(3), 4)


class TestEventLog:
    def test_emit_and_count(self):
        log = EventLog()
        log.emit("rollback", 3, reason="chen")
        log.emit("rollback", 9)
        log.emit("checkpoint", 10)
        assert log.count("rollback") == 2
        assert log.count("checkpoint") == 1
        assert len(log) == 3

    def test_of_kind_preserves_order(self):
        log = EventLog()
        log.emit("a", 1)
        log.emit("b", 2)
        log.emit("a", 3)
        assert [e.iteration for e in log.of_kind("a")] == [1, 3]

    def test_echo_callback(self):
        lines = []
        log = EventLog(echo=lines.append)
        log.emit("correction", 4, what="val")
        assert len(lines) == 1
        assert "correction" in lines[0]

    def test_event_payload(self):
        ev = Event(kind="x", iteration=1, payload={"k": 2})
        assert ev.payload["k"] == 2

    def test_iterable(self):
        log = EventLog()
        log.emit("a", 1)
        assert [e.kind for e in log] == ["a"]
