"""Unit tests for disk-backed checkpointing."""

import numpy as np
import pytest

from repro.checkpoint import DiskCheckpointStore


class TestDiskStore:
    def test_save_restore_roundtrip(self, tmp_path, small_lap):
        store = DiskCheckpointStore(tmp_path)
        x = np.arange(5.0)
        store.save(7, {"x": x, "r": 2 * x}, matrix=small_lap, scalars={"rr": 3.5})
        cp = store.restore()
        assert cp.iteration == 7
        np.testing.assert_array_equal(cp.vectors["x"], x)
        np.testing.assert_array_equal(cp.vectors["r"], 2 * x)
        assert cp.scalars == {"rr": 3.5}
        assert cp.matrix.equals(small_lap)

    def test_restore_is_independent_copy(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        x = np.zeros(3)
        store.save(0, {"x": x})
        x[0] = 9.0  # mutate after save: the file must hold the old value
        cp = store.restore()
        assert cp.vectors["x"][0] == 0.0

    def test_keep_prunes_old_files(self, tmp_path):
        store = DiskCheckpointStore(tmp_path, keep=2)
        for i in range(5):
            store.save(i, {"x": np.full(2, float(i))})
        files = list(tmp_path.glob("ckpt-*.npz"))
        assert len(files) == 2
        assert store.restore().iteration == 4

    def test_survives_reopen(self, tmp_path):
        DiskCheckpointStore(tmp_path).save(3, {"x": np.ones(4)})
        reopened = DiskCheckpointStore(tmp_path)
        assert not reopened.empty
        cp = reopened.restore()
        assert cp.iteration == 3
        # New saves continue the sequence rather than clobbering.
        reopened.save(4, {"x": np.zeros(4)})
        assert reopened.restore().iteration == 4

    def test_empty_raises(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        assert store.empty
        with pytest.raises(LookupError):
            store.restore()

    def test_without_matrix(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"x": np.ones(3)})
        assert store.restore().matrix is None

    def test_reserved_names_rejected(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        with pytest.raises(ValueError, match="reserved"):
            store.save(0, {"matrix_val": np.ones(3)})
        with pytest.raises(ValueError, match="reserved"):
            store.save(0, {"iteration": np.ones(3)})

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCheckpointStore(tmp_path, keep=0)

    def test_counters(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        store.save(0, {"x": np.ones(1)})
        store.save(1, {"x": np.ones(1)})
        store.restore()
        assert store.saves == 2
        assert store.restores == 1


class TestAsciiPanel:
    def test_renders_all_series(self):
        from repro.sim.results import Figure1Point, ascii_panel

        pts = []
        for scheme, base in [("online-detection", 30), ("abft-detection", 20), ("abft-correction", 10)]:
            for mtbf in (16.0, 100.0, 1000.0):
                pts.append(
                    Figure1Point(
                        uid=1, scheme=scheme, alpha=1 / mtbf,
                        mean_time=base + 100 / mtbf, sem_time=0.0, s_used=1, d_used=1,
                    )
                )
        text = ascii_panel(pts, 1)
        assert "Matrix #1" in text
        for marker in (":", "-", "#"):
            assert marker in text

    def test_unknown_uid_raises(self):
        from repro.sim.results import ascii_panel

        with pytest.raises(ValueError):
            ascii_panel([], 5)
