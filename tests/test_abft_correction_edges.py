"""Edge-case tests for the CORRECTERRORS decoder."""

import numpy as np
import pytest

from repro.abft import SpmvStatus, compute_checksums, protected_spmv
from repro.sparse import CSRMatrix


@pytest.fixture
def arrow():
    """An arrow matrix: row 0 dense-ish, one row with a single entry."""
    n = 30
    dense = np.zeros((n, n))
    dense[0, :] = -1.0
    dense[:, 0] = -1.0
    np.fill_diagonal(dense, n + 1.0)
    return CSRMatrix.from_dense(dense)


class TestBoundaryPositions:
    def test_val_error_first_entry(self, arrow, rng):
        cks = compute_checksums(arrow, nchecks=2)
        x = rng.normal(size=arrow.ncols)
        a = arrow.copy()
        a.val[0] += 2.0
        res = protected_spmv(a, x.copy(), cks)
        assert res.status is SpmvStatus.CORRECTED
        assert a.equals(arrow)

    def test_val_error_last_entry(self, arrow, rng):
        cks = compute_checksums(arrow, nchecks=2)
        x = rng.normal(size=arrow.ncols)
        a = arrow.copy()
        a.val[a.nnz - 1] += 2.0
        res = protected_spmv(a, x.copy(), cks)
        assert res.status is SpmvStatus.CORRECTED
        assert a.equals(arrow)

    def test_rowidx_error_first_interior_pointer(self, arrow, rng):
        cks = compute_checksums(arrow, nchecks=2)
        x = rng.normal(size=arrow.ncols)
        a = arrow.copy()
        a.rowidx[1] += 1
        res = protected_spmv(a, x.copy(), cks)
        assert res.status is SpmvStatus.CORRECTED
        assert a.equals(arrow)

    def test_x_error_last_position(self, arrow, rng):
        cks = compute_checksums(arrow, nchecks=2)
        x = rng.normal(size=arrow.ncols)

        def hook(stage, aa, xx, yy):
            if stage == "pre":
                xx[-1] += 3.0

        xc = x.copy()
        res = protected_spmv(arrow, xc, cks, fault_hook=hook)
        assert res.status is SpmvStatus.CORRECTED
        np.testing.assert_allclose(xc, x, rtol=1e-9)

    def test_error_in_single_entry_row(self, rng):
        """A row with exactly one nonzero exercises the zC decode with
        the minimal candidate set."""
        n = 20
        dense = np.diag(np.arange(2.0, n + 2.0))
        dense[3, 7] = -1.0
        dense[7, 3] = -1.0
        a_clean = CSRMatrix.from_dense(dense)
        cks = compute_checksums(a_clean, nchecks=2)
        x = rng.normal(size=n)
        a = a_clean.copy()
        # Row 5 holds only the diagonal entry; corrupt it.
        lo = int(a.rowidx[5])
        a.val[lo] += 1.5
        res = protected_spmv(a, x.copy(), cks)
        assert res.status is SpmvStatus.CORRECTED
        assert a.equals(a_clean)


class TestNearMissErrors:
    def test_colid_flip_within_row_is_caught_or_explicit(self, small_lap, rng):
        """Flipping a colid to *another existing column of the same row*
        creates a duplicate — decode may fix it or reject it, never pass
        silently."""
        cks = compute_checksums(small_lap, nchecks=2)
        x = rng.normal(size=small_lap.ncols)
        a = small_lap.copy()
        lo, hi = int(a.rowidx[100]), int(a.rowidx[101])
        assert hi - lo >= 2
        a.colid[lo] = a.colid[hi - 1]  # duplicate an existing column
        res = protected_spmv(a, x.copy(), cks)
        assert res.status in (SpmvStatus.CORRECTED, SpmvStatus.UNCORRECTABLE)

    def test_zero_delta_is_noop(self, small_lap, rng):
        """'Corruption' that doesn't change the value must not flag."""
        cks = compute_checksums(small_lap, nchecks=2)
        x = rng.normal(size=small_lap.ncols)
        a = small_lap.copy()
        a.val[5] += 0.0
        res = protected_spmv(a, x.copy(), cks)
        assert res.status is SpmvStatus.OK

    def test_nan_val_handled(self, small_lap, rng):
        cks = compute_checksums(small_lap, nchecks=2)
        x = rng.normal(size=small_lap.ncols)
        a = small_lap.copy()
        a.val[17] = np.nan
        res = protected_spmv(a, x.copy(), cks)
        # NaN poisons the row; either repaired via the checksum rebuild
        # or explicitly uncorrectable.
        assert res.status in (SpmvStatus.CORRECTED, SpmvStatus.UNCORRECTABLE)
        if res.status is SpmvStatus.CORRECTED:
            np.testing.assert_allclose(res.y, small_lap.matvec(x), rtol=1e-8)

    def test_x_strike_with_zero_column_weighting(self, rng):
        """x-error correction must work even when the struck entry's
        column in A is empty (y unaffected, dx silent, dxp catches)."""
        n = 25
        dense = np.diag(np.full(n, 3.0))
        dense[0, 1] = dense[1, 0] = -1.0
        a = CSRMatrix.from_dense(dense)
        # Column 10 of A has only the diagonal; zero it to make the
        # column empty while keeping SPD-ish structure for the test.
        dense2 = dense.copy()
        dense2[10, 10] = 0.0
        dense2[10, 11] = 1.0  # keep row 10 nonempty
        a = CSRMatrix.from_dense(dense2)
        cks = compute_checksums(a, nchecks=2)
        x = rng.normal(size=n)

        def hook(stage, aa, xx, yy):
            if stage == "pre":
                xx[10] += 2.0

        xc = x.copy()
        res = protected_spmv(a, xc, cks, fault_hook=hook)
        assert res.status is SpmvStatus.CORRECTED
        assert res.correction.kind == "x"
        np.testing.assert_allclose(xc, x, rtol=1e-9)


class TestMainEntry:
    def test_module_banner(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "table1" in out

    def test_module_forwards_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["table1", "--scale", "48", "--reps", "1", "--uids", "2213"]) == 0
        assert "2213" in capsys.readouterr().out
