"""The zero-copy hot path is bit-identical to the fresh-allocation oracle.

Every workspace facility — preallocated SpMxV/ABFT buffers, the
per-process checksum cache, strike-undo live-matrix restore, delta
matrix checkpoints, the structure-stamped SpMxV fast path — must
reproduce the legacy path bit for bit, including runs whose faults
corrupt ``val``/``colid``/``rowidx`` and trigger corrections,
rollbacks and refreshes, and no state may leak between consecutive
runs sharing a workspace.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.abft import cached_checksums, clear_checksum_cache, compute_checksums
from repro.abft.spmv import protected_spmv
from repro.checkpoint.store import CheckpointStore
from repro.core import Scheme, SchemeConfig, run_ft_cg
from repro.core.methods import CostModel, Method
from repro.faults.bitflip import flip_bit_int64
from repro.perf import SolveWorkspace, clear_caches, default_workspace
from repro.resilience.registry import run_ft_method
from repro.sim.engine import make_rhs, repeat_run
from repro.sparse import CSRMatrix, spmv, stencil_spd
from repro.sparse.validate import structure_arrays_clean
from repro.util.rng import spawn_named

RESULT_FIELDS = (
    "converged",
    "iterations",
    "iterations_executed",
    "time_units",
    "residual_norm",
    "threshold",
)

STATS_FIELDS = (
    "mean_time",
    "std_time",
    "min_time",
    "max_time",
    "mean_iterations",
    "mean_rollbacks",
    "mean_corrections",
    "mean_faults",
    "convergence_rate",
)


def _assert_same_result(got, want):
    for f in RESULT_FIELDS:
        assert getattr(got, f) == getattr(want, f), f
    np.testing.assert_array_equal(got.x, want.x)
    assert got.counters == want.counters
    assert got.breakdown == want.breakdown


@pytest.fixture
def problem():
    a = stencil_spd(529, kind="cross", radius=2)
    return a, make_rhs(a)


# ----------------------------------------------------------------------
# spmv: out/scratch buffers and the structure stamp
# ----------------------------------------------------------------------
class TestSpmvBuffers:
    def _both(self, a, x):
        """spmv fresh vs spmv with out+scratch (poisoned buffers)."""
        fresh = spmv(a, x)
        out = np.full(a.nrows, np.e)  # poison: must be fully overwritten
        scratch = np.full(max(a.nnz, 1), -np.pi)
        buffered = spmv(a, x, out=out, scratch=scratch)
        assert buffered is out
        np.testing.assert_array_equal(fresh, buffered)
        return fresh

    def test_clean_matrix(self, stencil, rng):
        self._both(stencil, rng.standard_normal(stencil.ncols))

    def test_clean_matrix_stamped(self, stencil, rng):
        x = rng.standard_normal(stencil.ncols)
        fresh = spmv(stencil, x)
        stamped = stencil.copy()
        stamped.assume_clean_structure()
        np.testing.assert_array_equal(fresh, self._both(stamped, x))

    def test_corrupted_colid_out_of_range(self, small_lap, rng):
        a = small_lap.copy()
        a.colid[7] = a.ncols + 13
        self._both(a, rng.standard_normal(a.ncols))

    def test_corrupted_colid_negative(self, small_lap, rng):
        a = small_lap.copy()
        a.colid[3] = -5
        self._both(a, rng.standard_normal(a.ncols))

    def test_corrupted_rowidx_nonmonotone_loop_path(self, small_lap, rng):
        a = small_lap.copy()
        a.rowidx[5] = int(a.rowidx[9])
        a.rowidx[6] = 1  # non-monotone: forces the row-loop fallback
        self._both(a, rng.standard_normal(a.ncols))

    def test_corrupted_rowidx_huge(self, small_lap, rng):
        a = small_lap.copy()
        a.rowidx[11] = flip_bit_int64(int(a.rowidx[11]), 62)
        self._both(a, rng.standard_normal(a.ncols))

    def test_stamp_lifecycle(self, small_lap):
        a = small_lap.copy()
        assert not a.structure_clean  # opt-in only
        assert structure_arrays_clean(a)
        a.assume_clean_structure()
        assert a.structure_clean
        assert a.copy().structure_clean  # copies inherit the stamp
        a.mark_structure_dirty()
        assert not a.structure_clean

    def test_empty_rows_stamped(self, rng):
        dense = np.zeros((6, 6))
        dense[0, 0] = 2.0
        dense[3, 2] = -1.0  # rows 1,2,4,5 empty
        a = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(6)
        fresh = spmv(a, x)
        a.assume_clean_structure()
        np.testing.assert_array_equal(fresh, self._both(a, x))


# ----------------------------------------------------------------------
# checksum cache
# ----------------------------------------------------------------------
class TestChecksumCache:
    def test_identity_and_equality(self, small_lap):
        clear_checksum_cache()
        c1 = cached_checksums(small_lap, nchecks=2)
        assert cached_checksums(small_lap, nchecks=2) is c1
        assert cached_checksums(small_lap, nchecks=1) is not c1
        fresh = compute_checksums(small_lap, nchecks=2)
        np.testing.assert_array_equal(c1.column_checksums, fresh.column_checksums)
        np.testing.assert_array_equal(c1.rowidx_checksums, fresh.rowidx_checksums)
        assert c1.rowidx_checksums_exact == fresh.rowidx_checksums_exact
        assert c1.shift == fresh.shift

    def test_clear_hook(self, small_lap):
        c1 = cached_checksums(small_lap, nchecks=2)
        clear_checksum_cache()
        assert cached_checksums(small_lap, nchecks=2) is not c1

    def test_keyed_by_object_identity(self, small_lap):
        c1 = cached_checksums(small_lap, nchecks=2)
        assert cached_checksums(small_lap.copy(), nchecks=2) is not c1

    def test_precomputed_w_minus_c(self, small_lap):
        cks = compute_checksums(small_lap, nchecks=2)
        np.testing.assert_array_equal(
            cks.weights_minus_checksums, cks.weights - cks.column_checksums
        )


# ----------------------------------------------------------------------
# protected_spmv with workspace buffers
# ----------------------------------------------------------------------
class TestProtectedSpmvWorkspace:
    CASES = [
        ("clean", lambda a: None),
        ("val", lambda a: a.val.__setitem__(10, a.val[10] + 7.5)),
        ("colid", lambda a: a.colid.__setitem__(4, (int(a.colid[4]) + 3) % a.ncols)),
        ("rowidx", lambda a: a.rowidx.__setitem__(30, int(a.rowidx[30]) + 1)),
    ]

    @pytest.mark.parametrize("label,corrupt", CASES, ids=[c[0] for c in CASES])
    @pytest.mark.parametrize("correct", [False, True])
    def test_bit_identical(self, small_lap, rng, label, corrupt, correct):
        cks = compute_checksums(small_lap, nchecks=2 if correct else 1)
        x = rng.standard_normal(small_lap.ncols)
        ws = SolveWorkspace()
        a1, a2 = small_lap.copy(), small_lap.copy()
        corrupt(a1)
        corrupt(a2)
        r_fresh = protected_spmv(a1, x.copy(), cks, correct=correct)
        r_ws = protected_spmv(a2, x.copy(), cks, correct=correct, workspace=ws)
        assert r_fresh.status == r_ws.status
        np.testing.assert_array_equal(r_fresh.y, r_ws.y)
        np.testing.assert_array_equal(a1.val, a2.val)
        np.testing.assert_array_equal(a1.colid, a2.colid)
        np.testing.assert_array_equal(a1.rowidx, a2.rowidx)


# ----------------------------------------------------------------------
# engine: workspace runs vs the fresh oracle
# ----------------------------------------------------------------------
GRID = [
    (Method.CG, Scheme.ONLINE_DETECTION, 4),
    (Method.CG, Scheme.ABFT_DETECTION, 1),
    (Method.CG, Scheme.ABFT_CORRECTION, 1),
    (Method.BICGSTAB, Scheme.ABFT_DETECTION, 1),
    (Method.BICGSTAB, Scheme.ABFT_CORRECTION, 1),
    (Method.PCG, Scheme.ABFT_DETECTION, 1),
    (Method.PCG, Scheme.ABFT_CORRECTION, 1),
]


class TestEngineWorkspace:
    @pytest.mark.parametrize(
        "method,scheme,d", GRID, ids=[f"{m.value}-{s.value}" for m, s, _ in GRID]
    )
    @pytest.mark.parametrize("alpha", [0.0, 0.4])
    def test_run_bit_identical_shared_workspace(self, problem, method, scheme, d, alpha):
        """One workspace across reps == fresh engine per rep, for every
        scheme×method, at a fault rate that corrupts all three matrix
        arrays (corrections, rollbacks, TMR votes, refreshes)."""
        a, b = problem
        cfg = SchemeConfig(scheme, checkpoint_interval=3, verification_interval=d)
        ws = SolveWorkspace()
        for rep in range(4):
            with np.errstate(all="ignore"):
                want = run_ft_method(
                    method, a, b, cfg, alpha=alpha, rng=1000 + rep, eps=1e-6
                )
                got = run_ft_method(
                    method, a, b, cfg, alpha=alpha, rng=1000 + rep, eps=1e-6, workspace=ws
                )
            _assert_same_result(got, want)
        if alpha > 0:
            assert ws.live_restores >= 3  # reps actually reused the live copy

    def test_grid_covers_all_matrix_arrays(self, problem):
        """The α = 0.4 grid above must actually corrupt val, colid and
        rowidx — otherwise the bit-identity claims are vacuous."""
        from repro.resilience.cg import CGPlugin
        from repro.resilience.engine import run_protected

        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=3)
        struck = set()
        for rep in range(6):
            ws = SolveWorkspace()
            with np.errstate(all="ignore"):
                run_protected(
                    CGPlugin(), a, b, cfg, alpha=0.4, rng=1000 + rep, eps=1e-6, workspace=ws
                )
            struck |= {name for name, s in ws._taint.items() if s}
        assert struck == {"val", "colid", "rowidx"}

    def test_strike_undo_restores_live_bit_exact(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=3)
        ws = SolveWorkspace()
        with np.errstate(all="ignore"):
            run_ft_cg(a, b, cfg, alpha=0.6, rng=5, eps=1e-6, workspace=ws)
        live = ws.acquire_live(a)  # triggers strike-undo restore
        assert ws.live_restores == 1
        np.testing.assert_array_equal(live.val, a.val)
        np.testing.assert_array_equal(live.colid, a.colid)
        np.testing.assert_array_equal(live.rowidx, a.rowidx)
        assert live.structure_clean  # verdict re-armed with the bytes

    def test_workspace_switches_matrices(self, problem, small_lap):
        """Re-binding a workspace to a different matrix rebuilds the
        live copy and stays bit-identical on both."""
        a, b = problem
        b2 = make_rhs(small_lap)
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=3)
        ws = SolveWorkspace()
        for mat, rhs in ((a, b), (small_lap, b2), (a, b), (small_lap, b2)):
            with np.errstate(all="ignore"):
                want = run_ft_cg(mat, rhs, cfg, alpha=0.3, rng=9, eps=1e-6)
                got = run_ft_cg(mat, rhs, cfg, alpha=0.3, rng=9, eps=1e-6, workspace=ws)
            _assert_same_result(got, want)

    def test_no_leak_between_unfaulted_and_faulted(self, problem):
        """A heavily faulted run must not contaminate the next clean
        run sharing the workspace, and vice versa."""
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=3)
        ws = SolveWorkspace()
        with np.errstate(all="ignore"):
            clean_fresh = run_ft_cg(a, b, cfg, alpha=0.0, rng=0, eps=1e-6)
            run_ft_cg(a, b, cfg, alpha=0.8, rng=1, eps=1e-6, workspace=ws)
            clean_ws = run_ft_cg(a, b, cfg, alpha=0.0, rng=0, eps=1e-6, workspace=ws)
        _assert_same_result(clean_ws, clean_fresh)


# ----------------------------------------------------------------------
# repeat_run / campaign / facade knobs
# ----------------------------------------------------------------------
class TestRepeatRunWorkspace:
    @pytest.mark.parametrize("alpha", [0.0, 0.35])
    def test_repeat_run_identical(self, problem, alpha):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=4)
        with np.errstate(all="ignore"):
            fresh = repeat_run(
                a, b, cfg, alpha=alpha, reps=5, base_seed=2, eps=1e-6,
                reuse_workspace=False,
            )
            ws = repeat_run(
                a, b, cfg, alpha=alpha, reps=5, base_seed=2, eps=1e-6,
                reuse_workspace=True,
            )
        for f in STATS_FIELDS:
            assert getattr(fresh, f) == getattr(ws, f), f

    def test_reps_match_isolated_runs(self, problem):
        """Each repetition in a workspace-shared sequence equals the
        same repetition run in a fresh process state — the no-leak
        property expressed at the campaign level."""
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=4)
        ws = SolveWorkspace()
        for rep in range(5):
            rng_ws = spawn_named(2, cfg.scheme.value, 0.35, rep)
            rng_fresh = spawn_named(2, cfg.scheme.value, 0.35, rep)
            with np.errstate(all="ignore"):
                got = run_ft_cg(a, b, cfg, alpha=0.35, rng=rng_ws, eps=1e-6, workspace=ws)
                want = run_ft_cg(a, b, cfg, alpha=0.35, rng=rng_fresh, eps=1e-6)
            _assert_same_result(got, want)

    def test_executor_record_identical(self):
        from repro.campaign.executor import execute_task
        from repro.campaign.spec import TaskSpec

        task = TaskSpec(
            experiment="table1", uid=2213, scale=48, scheme="abft-correction",
            alpha=0.25, s=4, d=1, reps=3, base_seed=11, eps=1e-6,
            labels=("t",), s_model=4,
        )
        with np.errstate(all="ignore"):
            rec_ws = execute_task(task, reuse_workspace=True)
            rec_fresh = execute_task(task, reuse_workspace=False)
        assert rec_ws["hash"] == rec_fresh["hash"]
        assert rec_ws["stats"] == rec_fresh["stats"]

    def test_solve_facade_knob(self, small_lap):
        from repro import FaultSpec, solve

        b = make_rhs(small_lap)
        r1 = solve(small_lap, b, scheme="abft-correction", faults=FaultSpec(0.3, seed=3))
        r2 = solve(
            small_lap, b, scheme="abft-correction", faults=FaultSpec(0.3, seed=3),
            reuse_workspace=True,
        )
        ws = SolveWorkspace()
        r3 = solve(
            small_lap, b, scheme="abft-correction", faults=FaultSpec(0.3, seed=3),
            reuse_workspace=ws,
        )
        assert r1.solution_sha256 == r2.solution_sha256 == r3.solution_sha256
        assert r1.time_units == r2.time_units == r3.time_units
        assert ws.live_copies == 1

    def test_default_workspace_is_shared(self):
        assert default_workspace() is default_workspace()
        clear_caches()  # resets it
        assert isinstance(default_workspace(), SolveWorkspace)


# ----------------------------------------------------------------------
# golden trajectories through the workspace path
# ----------------------------------------------------------------------
GOLDEN = pathlib.Path(__file__).parent / "golden" / "ft_trajectories.json"
_gold = json.loads(GOLDEN.read_text())


class TestGoldenThroughWorkspace:
    def test_golden_trajectories_workspace(self):
        """Every golden FT-CG/BiCGstab trajectory reproduces bit for bit
        through ONE workspace shared across all entries — schemes,
        alphas and solvers interleaved, exactly the campaign pattern."""
        from repro.core import run_ft_bicgstab

        a = stencil_spd(529, kind="cross", radius=2)
        b = np.random.default_rng(_gold["rhs_seed"]).normal(size=a.nrows)
        ws = SolveWorkspace()
        for entry in _gold["entries"]:
            cfg = SchemeConfig(
                Scheme(entry["scheme"]),
                checkpoint_interval=_gold["s"],
                verification_interval=entry["d"],
            )
            run = run_ft_cg if entry["driver"] == "ft_cg" else run_ft_bicgstab
            with np.errstate(all="ignore"):
                res = run(
                    a, b, cfg, alpha=entry["alpha"], rng=entry["seed"],
                    eps=_gold["eps"], workspace=ws,
                )
            want = entry["result"]
            assert (
                hashlib.sha256(np.ascontiguousarray(res.x).tobytes()).hexdigest()
                == want["x_sha256"]
            ), entry
            assert float(res.time_units).hex() == want["time_units"], entry
            assert res.iterations_executed == want["iterations_executed"], entry


# ----------------------------------------------------------------------
# checkpoint store recycling
# ----------------------------------------------------------------------
class TestCheckpointRecycle:
    def test_recycled_saves_match_fresh(self, small_lap, rng):
        plain = CheckpointStore(keep=1)
        recyc = CheckpointStore(keep=1, recycle=True)
        vecs = {"x": rng.standard_normal(8), "r": rng.standard_normal(8)}
        for it in range(4):
            for v in vecs.values():
                v += 1.0
            small_lap.val[0] += 1.0
            cp_p = plain.save(it, vectors=vecs, matrix=small_lap, scalars={"rr": float(it)})
            cp_r = recyc.save(it, vectors=vecs, matrix=small_lap, scalars={"rr": float(it)})
            for k in vecs:
                np.testing.assert_array_equal(cp_p.vectors[k], cp_r.vectors[k])
            np.testing.assert_array_equal(cp_p.matrix.val, cp_r.matrix.val)
            assert cp_p.scalars == cp_r.scalars
        # steady state: the recycling store reuses the evicted arrays
        before = recyc.latest.vectors["x"]
        for v in vecs.values():
            v += 1.0
        evicted = recyc.latest
        recyc.save(9, vectors=vecs, matrix=small_lap)
        assert recyc.latest.vectors["x"] is not before or evicted is not recyc.latest

    def test_borrow_latest_counts_restore(self, rng):
        store = CheckpointStore(keep=1)
        store.save(0, vectors={"x": rng.standard_normal(4)})
        cp = store.borrow_latest()
        assert store.restores == 1
        assert cp is store.latest


# ----------------------------------------------------------------------
# matrix cache
# ----------------------------------------------------------------------
class TestMatrixCache:
    def test_unbounded_and_clearable(self):
        from repro.sim.matrices import clear_matrix_cache, get_matrix

        m1 = get_matrix(2213, 64)
        assert get_matrix(2213, 64) is m1  # shared instance (identity key)
        from repro.sim.matrices import _synthesize

        assert _synthesize.cache_info().maxsize is None  # no mid-campaign eviction
        clear_matrix_cache()
        assert get_matrix(2213, 64) is not m1
