"""Unit tests for per-scheme model instantiation (Section 4.2)."""

import math

import pytest

from repro.core import CostModel, Scheme
from repro.model import (
    AbftCorrectionModel,
    AbftDetectionModel,
    OnlineDetectionModel,
    model_for_scheme,
)


@pytest.fixture
def costs():
    return CostModel(t_cp=1.2, t_rec=0.9, t_verif_online=0.8, t_verif_detect=0.2, t_verif_correct=0.35)


class TestSuccessProbabilities:
    def test_detection_q(self, costs):
        m = AbftDetectionModel(lam=0.1, costs=costs)
        assert m.q() == pytest.approx(math.exp(-0.1))

    def test_correction_q_includes_single_error(self, costs):
        m = AbftCorrectionModel(lam=0.1, costs=costs)
        assert m.q() == pytest.approx(math.exp(-0.1) * 1.1)

    def test_correction_q_strictly_larger(self, costs):
        for lam in (0.01, 0.1, 0.5, 1.0):
            det = AbftDetectionModel(lam=lam, costs=costs)
            cor = AbftCorrectionModel(lam=lam, costs=costs)
            assert cor.q() > det.q()

    def test_online_q_scales_with_d(self, costs):
        m = OnlineDetectionModel(lam=0.05, costs=costs, d=4)
        assert m.q() == pytest.approx(math.exp(-0.2))

    def test_zero_rate_q_is_one(self, costs):
        assert AbftDetectionModel(lam=0.0, costs=costs).q() == 1.0
        assert AbftCorrectionModel(lam=0.0, costs=costs).q() == 1.0


class TestOptimalIntervals:
    def test_correction_allows_larger_interval(self, costs):
        """Higher per-chunk success probability ⇒ sparser checkpoints —
        the paper's central claim about ABFT-CORRECTION."""
        lam = 0.1
        det = AbftDetectionModel(lam=lam, costs=costs).optimal(s_max=500)
        cor = AbftCorrectionModel(lam=lam, costs=costs).optimal(s_max=500)
        assert cor.s > det.s

    def test_correction_lower_overhead_at_high_rate(self, costs):
        lam = 0.2
        det = AbftDetectionModel(lam=lam, costs=costs).optimal()
        cor = AbftCorrectionModel(lam=lam, costs=costs).optimal()
        assert cor.overhead < det.overhead

    def test_detection_lower_overhead_at_tiny_rate(self, costs):
        """At very low λ the extra checksum cost dominates — the
        crossover the paper reports for very small fault rates."""
        lam = 1e-5
        det = AbftDetectionModel(lam=lam, costs=costs).optimal(s_max=3000)
        cor = AbftCorrectionModel(lam=lam, costs=costs).optimal(s_max=3000)
        assert det.overhead < cor.overhead

    def test_online_joint_optimization(self, costs):
        m = OnlineDetectionModel(lam=0.02, costs=costs)
        joint = m.optimal_joint(d_max=50, s_max=50)
        assert joint.d >= 1 and joint.s >= 1


class TestModelEvaluation:
    def test_expected_frame_time_positive(self, costs):
        m = AbftCorrectionModel(lam=0.1, costs=costs)
        assert m.expected_frame_time(5) > 0

    def test_overhead_at_least_one(self, costs):
        m = AbftDetectionModel(lam=0.05, costs=costs)
        assert m.overhead(m.optimal().s) > 1.0

    def test_expected_solve_time_scales_linearly(self, costs):
        m = AbftCorrectionModel(lam=0.05, costs=costs)
        assert m.expected_solve_time(200) == pytest.approx(2 * m.expected_solve_time(100))

    def test_factory(self, costs):
        assert isinstance(
            model_for_scheme(Scheme.ONLINE_DETECTION, 0.1, costs, d=3), OnlineDetectionModel
        )
        assert isinstance(model_for_scheme(Scheme.ABFT_DETECTION, 0.1, costs), AbftDetectionModel)
        assert isinstance(model_for_scheme(Scheme.ABFT_CORRECTION, 0.1, costs), AbftCorrectionModel)

    def test_validation(self, costs):
        with pytest.raises(ValueError):
            AbftDetectionModel(lam=-0.1, costs=costs)
        with pytest.raises(ValueError):
            OnlineDetectionModel(lam=0.1, costs=costs, d=0)
