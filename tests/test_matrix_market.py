"""Matrix-Market ingestion and the real-workload registry.

The paper's UFL matrices ship in Matrix-Market format; these tests
lock the ingestion path end to end: symmetric-storage expansion,
round-tripping through :mod:`repro.sparse.io`, the
``REPRO_MATRIX_DIR`` workload registry behind
:func:`repro.sim.matrices.get_matrix`, and a full ``solve()`` on a
loaded file matching the same matrix built in-process.
"""

import numpy as np
import pytest

import repro
from repro.sim.matrices import (
    MATRIX_DIR_ENV,
    clear_matrix_cache,
    get_matrix,
    workload_registry,
)
from repro.sparse import CSRMatrix, stencil_spd
from repro.sparse.io import load_matrix_market, save_matrix_market

#: A hand-written symmetric-storage Matrix-Market file: the lower
#: triangle of the SPD matrix [[4,1,0],[1,4,2],[0,2,5]].
SYMMETRIC_MTX = """%%MatrixMarket matrix coordinate real symmetric
3 3 5
1 1 4.0
2 1 1.0
2 2 4.0
3 2 2.0
3 3 5.0
"""


@pytest.fixture(autouse=True)
def _isolate_matrix_cache():
    # File-backed entries are keyed by path and the registry by env
    # var; keep tests hermetic on both sides of each run.
    clear_matrix_cache()
    yield
    clear_matrix_cache()


class TestRoundTrip:
    def test_save_load_preserves_matrix(self, tmp_path):
        a = stencil_spd(100, kind="cross", radius=2)
        path = tmp_path / "stencil.mtx"
        save_matrix_market(a, path)
        loaded = load_matrix_market(path)
        assert loaded.shape == a.shape
        assert loaded.nnz == a.nnz
        assert loaded.equals(a, rtol=0, atol=1e-15)

    def test_symmetric_storage_expanded_to_full(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(SYMMETRIC_MTX)
        a = load_matrix_market(path)
        # 5 stored entries, 7 logical nonzeros after expansion — the
        # ABFT checksums need the explicit representation.
        assert a.shape == (3, 3)
        assert a.nnz == 7
        expected = np.array([[4.0, 1.0, 0.0], [1.0, 4.0, 2.0], [0.0, 2.0, 5.0]])
        assert np.array_equal(a.to_dense(), expected)

    def test_symmetric_round_trip_through_save(self, tmp_path):
        # save (full) -> load -> identical again, proving expansion
        # didn't double-count the diagonal.
        path = tmp_path / "sym.mtx"
        path.write_text(SYMMETRIC_MTX)
        a = load_matrix_market(path)
        path2 = tmp_path / "full.mtx"
        save_matrix_market(a, path2)
        again = load_matrix_market(path2)
        assert again.equals(a, rtol=0, atol=1e-15)


class TestGetMatrixWorkloads:
    def test_explicit_path(self, tmp_path):
        a = stencil_spd(64, kind="cross", radius=1)
        path = tmp_path / "m.mtx"
        save_matrix_market(a, path)
        loaded = get_matrix(str(path))
        assert loaded.equals(a, rtol=0, atol=1e-15)
        # Path-keyed cache: same path returns the same instance.
        assert get_matrix(str(path)) is loaded

    def test_path_accepts_os_pathlike(self, tmp_path):
        a = stencil_spd(64, kind="cross", radius=1)
        path = tmp_path / "m.mtx"
        save_matrix_market(a, path)
        assert get_matrix(path).equals(a, rtol=0, atol=1e-15)

    def test_file_backed_workloads_cannot_be_rescaled(self, tmp_path):
        path = tmp_path / "m.mtx"
        save_matrix_market(stencil_spd(64, kind="cross", radius=1), path)
        with pytest.raises(ValueError, match="scale must be 1"):
            get_matrix(str(path), scale=8)

    def test_registry_scan_and_name_lookup(self, tmp_path, monkeypatch):
        a = stencil_spd(64, kind="cross", radius=1)
        save_matrix_market(a, tmp_path / "bcsstk.mtx")
        monkeypatch.setenv(MATRIX_DIR_ENV, str(tmp_path))
        assert set(workload_registry()) == {"bcsstk"}
        assert get_matrix("bcsstk").equals(a, rtol=0, atol=1e-15)

    def test_registry_empty_without_env(self, monkeypatch):
        monkeypatch.delenv(MATRIX_DIR_ENV, raising=False)
        assert workload_registry() == {}

    def test_registry_missing_dir_is_empty(self, monkeypatch, tmp_path):
        monkeypatch.setenv(MATRIX_DIR_ENV, str(tmp_path / "nope"))
        assert workload_registry() == {}

    def test_unknown_name_lists_registered(self, tmp_path, monkeypatch):
        save_matrix_market(stencil_spd(64, kind="cross", radius=1),
                           tmp_path / "known.mtx")
        monkeypatch.setenv(MATRIX_DIR_ENV, str(tmp_path))
        with pytest.raises(KeyError, match="known"):
            get_matrix("something-else")

    def test_uid_override_at_paper_scale(self, tmp_path, monkeypatch):
        # A file named after a paper uid replaces the synthetic entry
        # at scale=1 (the paper's own dimensions) and only there.
        real = stencil_spd(81, kind="cross", radius=1)
        save_matrix_market(real, tmp_path / "2213.mtx")
        monkeypatch.setenv(MATRIX_DIR_ENV, str(tmp_path))
        loaded = get_matrix(2213, scale=1)
        assert loaded.equals(real, rtol=0, atol=1e-15)
        # Scaled-down requests keep the synthetic suite entry.
        synth = get_matrix(2213, scale=64)
        assert synth.nrows != real.nrows

    def test_uid_without_override_synthesizes(self, monkeypatch):
        monkeypatch.delenv(MATRIX_DIR_ENV, raising=False)
        a = get_matrix(2213, scale=64)
        assert a.nrows == 529  # the synthetic stand-in (23² grid)


class TestProvenance:
    def test_matrix_source_synthetic_vs_real(self, tmp_path, monkeypatch):
        from repro.sim.matrices import matrix_source

        monkeypatch.delenv(MATRIX_DIR_ENV, raising=False)
        assert matrix_source(2213, scale=1) == "synthetic"
        real = tmp_path / "2213.mtx"
        save_matrix_market(stencil_spd(81, kind="cross", radius=1), real)
        monkeypatch.setenv(MATRIX_DIR_ENV, str(tmp_path))
        assert matrix_source(2213, scale=1) == str(real)
        assert matrix_source(2213, scale=16) == "synthetic"
        assert matrix_source(str(real)) == str(real)

    def test_campaign_record_carries_matrix_source(self, monkeypatch):
        from repro.campaign.executor import execute_task
        from repro.campaign.spec import TaskSpec

        monkeypatch.delenv(MATRIX_DIR_ENV, raising=False)
        task = TaskSpec("t", uid=2213, scale=64, scheme="abft-correction",
                        alpha=0.0, s=4, reps=1)
        rec = execute_task(task)
        assert rec["matrix_source"] == "synthetic"


class TestEndToEnd:
    def test_solve_on_loaded_mtx_matches_in_process(self, tmp_path):
        # Acceptance lock: a solve on the file-loaded matrix is
        # bit-identical to the same matrix built in-process (loading
        # reproduces the exact CSR bytes, and the solve is
        # deterministic given the bytes).
        a = stencil_spd(100, kind="cross", radius=1)
        path = tmp_path / "system.mtx"
        save_matrix_market(a, path)
        loaded = get_matrix(str(path))
        b = np.random.default_rng(17).standard_normal(a.nrows)
        kwargs = dict(faults=repro.FaultSpec(alpha=0.05, seed=23), eps=1e-8)
        ref = repro.solve(a, b, **kwargs)
        via_file = repro.solve(loaded, b, **kwargs)
        assert via_file.converged == ref.converged
        assert via_file.iterations == ref.iterations
        assert via_file.solution_sha256 == ref.solution_sha256
        assert via_file.time_units == ref.time_units

    def test_cli_solve_on_mtx_file(self, tmp_path, capsys):
        from repro.api.cli import main

        a = stencil_spd(100, kind="cross", radius=1)
        path = tmp_path / "cli.mtx"
        save_matrix_market(a, path)
        code = main(["solve", "--matrix", str(path), "--alpha", "0", "--json"])
        assert code == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["n"] == 100
        assert report["converged"] is True

    def test_cli_solve_on_missing_workload_is_usage_error(self, capsys, monkeypatch):
        from repro.api.cli import main

        monkeypatch.delenv(MATRIX_DIR_ENV, raising=False)
        assert main(["solve", "--matrix", "no-such-workload"]) == 2

    def test_cli_refuses_scale_with_matrix(self, tmp_path, capsys):
        # --scale is a suite-matrix knob; silently dropping it on a
        # file-backed workload would solve the wrong-size system.
        from repro.api.cli import main

        path = tmp_path / "m.mtx"
        save_matrix_market(stencil_spd(64, kind="cross", radius=1), path)
        assert main(["solve", "--matrix", str(path), "--scale", "8"]) == 2
        assert "cannot be rescaled" in capsys.readouterr().err
