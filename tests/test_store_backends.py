"""Pluggable store backends: protocol, URLs, shards, SQLite, migration."""

import json
import multiprocessing
import pathlib
import time

import pytest

from repro.api.report import format_summary, summarize_store
from repro.campaign import CampaignSpec, ResultStore, StoreError, run_campaign
from repro.store import (
    DEFAULT_STORE_SCHEME,
    ShardedStore,
    SqliteStore,
    StoreBackend,
    available_store_schemes,
    migrate_store,
    open_store,
    parse_store_url,
    register_store,
    store_exists,
)


def _record(h, **extra):
    return {"hash": h, "task": {"uid": 1}, "stats": {"mean_time": 1.5}, **extra}


BACKENDS = {
    "jsonl": lambda tmp: ResultStore(tmp / "r.jsonl"),
    "sharded": lambda tmp: ShardedStore(tmp / "r.d"),
    "sqlite": lambda tmp: SqliteStore(tmp / "r.db"),
}

CONCURRENT = {k: v for k, v in BACKENDS.items() if k != "jsonl"}


@pytest.fixture(params=sorted(BACKENDS))
def any_store(request, tmp_path):
    return BACKENDS[request.param](tmp_path)


@pytest.fixture(params=sorted(CONCURRENT))
def lease_store(request, tmp_path):
    return CONCURRENT[request.param](tmp_path)


# ----------------------------------------------------------------------
# URL parsing and the registry
# ----------------------------------------------------------------------
class TestStoreUrls:
    def test_bare_path_is_jsonl(self):
        assert parse_store_url("results.jsonl") == ("jsonl", "results.jsonl")

    def test_pathlike_is_jsonl(self, tmp_path):
        scheme, path = parse_store_url(tmp_path / "r.jsonl")
        assert scheme == DEFAULT_STORE_SCHEME and path.endswith("r.jsonl")

    @pytest.mark.parametrize("scheme,cls", [
        ("jsonl", ResultStore), ("sharded", ShardedStore), ("sqlite", SqliteStore),
    ])
    def test_scheme_selects_backend(self, scheme, cls, tmp_path):
        store = open_store(f"{scheme}:{tmp_path / 'x'}")
        assert isinstance(store, cls)

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError, match="unknown store scheme"):
            parse_store_url("zzz:whatever")

    def test_scheme_without_path_raises(self):
        with pytest.raises(ValueError, match="missing a path"):
            parse_store_url("sqlite:")

    def test_single_letter_prefix_is_a_path(self):
        # Windows drive letters must never parse as schemes.
        assert parse_store_url(r"C:\campaign\r.jsonl")[0] == "jsonl"

    def test_open_store_passes_backends_through(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        assert open_store(store) is store

    def test_open_store_rejects_non_backends(self):
        with pytest.raises(TypeError):
            open_store(42)

    def test_url_roundtrips_through_open_store(self, any_store):
        again = open_store(any_store.url)
        assert type(again) is type(any_store)
        assert pathlib.Path(again.path) == pathlib.Path(any_store.path)

    def test_available_schemes_default_first(self):
        schemes = available_store_schemes()
        assert schemes[0] == DEFAULT_STORE_SCHEME
        assert set(schemes) >= {"jsonl", "sharded", "sqlite"}

    def test_register_rejects_shipped_scheme(self):
        with pytest.raises(ValueError, match="already registered"):
            register_store("sqlite", SqliteStore)

    def test_register_rejects_short_scheme(self):
        with pytest.raises(ValueError, match="at least two characters"):
            register_store("x", SqliteStore)


# ----------------------------------------------------------------------
# the shared protocol contract, all backends
# ----------------------------------------------------------------------
class TestProtocolContract:
    def test_isinstance_store_backend(self, any_store):
        assert isinstance(any_store, StoreBackend)

    def test_construction_touches_no_disk(self, tmp_path):
        for make in BACKENDS.values():
            make(tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_reads_of_absent_store_are_empty(self, any_store):
        assert list(any_store.iter_records()) == []
        assert any_store.load() == {}
        assert any_store.count() == 0 and len(any_store) == 0
        assert not store_exists(any_store.url)

    def test_append_load_roundtrip(self, any_store):
        with any_store as store:
            store.append(_record("aaa"))
            store.append(_record("bbb", n=512))
        loaded = any_store.load()
        assert set(loaded) == {"aaa", "bbb"}
        assert loaded["bbb"]["n"] == 512
        assert store_exists(any_store.url)

    def test_floats_roundtrip_exactly(self, any_store):
        value = 0.1 + 0.2
        with any_store as store:
            store.append({"hash": "x", "stats": {"mean_time": value}})
        assert any_store.load()["x"]["stats"]["mean_time"] == value

    def test_duplicate_hash_last_wins_first_position(self, any_store):
        with any_store as store:
            store.append(_record("aaa", rev=1))
            store.append(_record("bbb", rev=1))
            store.append(_record("aaa", rev=2))
        loaded = any_store.load()
        assert loaded["aaa"]["rev"] == 2
        assert list(loaded) == ["aaa", "bbb"]  # first-insertion order
        assert any_store.count() == 2

    def test_record_without_hash_rejected(self, any_store):
        with pytest.raises(ValueError):
            any_store.append({"stats": {}})

    def test_resume_splits_done_and_pending(self, any_store):
        tasks = CampaignSpec(
            kind="table1", scale=48, reps=1, uids=(2213,), s_span=1
        ).expand()[:4]
        with any_store as store:
            store.append(_record(tasks[0].task_hash()))
            store.append(_record(tasks[2].task_hash()))
        done, pending = any_store.resume(tasks)
        assert set(done) == {tasks[0].task_hash(), tasks[2].task_hash()}
        assert pending == [tasks[1], tasks[3]]

    def test_info_reports_layout(self, any_store):
        info = any_store.info()
        assert info["records"] == 0 and info["exists"] is False
        with any_store as store:
            store.append(_record("aaa"))
        info = any_store.info()
        assert info["records"] == 1 and info["exists"] is True
        assert info["url"] == any_store.url
        assert info["bytes"] > 0


# ----------------------------------------------------------------------
# sharded specifics
# ----------------------------------------------------------------------
class TestShardedStore:
    def test_records_route_to_their_hash_shard(self, tmp_path):
        store = ShardedStore(tmp_path / "r.d", shards=4)
        hashes = [f"{i:08x}ffff" for i in range(8)]
        with store:
            for h in hashes:
                store.append(_record(h))
        for h in hashes:
            shard = tmp_path / "r.d" / f"shard-{store.shard_index(h):02x}.jsonl"
            assert h in shard.read_text()
        assert set(store.load()) == set(hashes)

    def test_non_hex_hash_still_routes(self, tmp_path):
        store = ShardedStore(tmp_path / "r.d")
        with store:
            store.append(_record("telemetry:deadbeef"))
        assert store.count() == 1

    def test_shard_count_comes_from_metadata(self, tmp_path):
        with ShardedStore(tmp_path / "r.d", shards=4) as store:
            store.append(_record("aaa"))
        reopened = ShardedStore(tmp_path / "r.d", shards=32)
        assert reopened.shards == 4  # store.json wins over the request

    def test_shards_without_metadata_raise(self, tmp_path):
        (tmp_path / "r.d").mkdir()
        (tmp_path / "r.d" / "shard-00.jsonl").write_text(
            json.dumps(_record("aaa")) + "\n"
        )
        with pytest.raises(StoreError, match="store.json"):
            ShardedStore(tmp_path / "r.d").load()

    def test_torn_tail_salvage_is_per_shard(self, tmp_path):
        store = ShardedStore(tmp_path / "r.d", shards=4)
        hashes = [f"{i:08x}ffff" for i in range(8)]
        with store:
            for h in hashes:
                store.append(_record(h))
        # Tear the tails of two different shards (a two-worker crash).
        torn = []
        for i, h in enumerate(("f0000000aa", "f1000000bb")):
            shard = tmp_path / "r.d" / f"shard-{store.shard_index(h):02x}.jsonl"
            with open(shard, "a") as fh:
                fh.write(json.dumps(_record(h))[: 20 + i])  # no newline
            torn.append(h)
        fresh = ShardedStore(tmp_path / "r.d")
        assert set(fresh.load()) == set(hashes)  # torn fragments dropped
        with fresh:
            fresh.append(_record("f2000000cc"))  # repairs its shard only
        assert set(ShardedStore(tmp_path / "r.d").load()) == {*hashes, "f2000000cc"}
        for h in torn:
            assert h not in json.dumps(ShardedStore(tmp_path / "r.d").load())

    def test_corrupt_midshard_line_skipped_and_counted(self, tmp_path):
        # Shards are shared-writer files, so bit-rot in one line must
        # not take down the rest of the store: tolerant readers skip
        # it with a counted warning (docs/DESIGN.md §10); `repro store
        # verify` / `repair` are the recovery tools.
        from repro.campaign.store import StoreIntegrityWarning

        with ShardedStore(tmp_path / "r.d", shards=1) as store:
            store.append(_record("aaa"))
        shard = tmp_path / "r.d" / "shard-00.jsonl"
        shard.write_text("garbage\n" + shard.read_text())
        fresh = ShardedStore(tmp_path / "r.d")
        with pytest.warns(StoreIntegrityWarning, match="skipping corrupt"):
            assert set(fresh.load()) == {"aaa"}
        assert fresh.corrupt_skipped == 1
        assert fresh.verify()["corrupt"] == 1

    def test_info_shard_fill(self, tmp_path):
        store = ShardedStore(tmp_path / "r.d", shards=4)
        with store:
            for i in range(8):
                store.append(_record(f"{i:08x}ffff"))
        info = store.info()
        assert info["shards"] == 4
        assert sum(info["shard_records"]) == 8 == info["records"]


# ----------------------------------------------------------------------
# sqlite specifics
# ----------------------------------------------------------------------
class TestSqliteStore:
    def test_corrupt_body_raises(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        with store:
            store.append(_record("aaa"))
        import sqlite3

        conn = sqlite3.connect(tmp_path / "r.db")
        with conn:
            conn.execute("UPDATE records SET body = 'not json'")
        conn.close()
        with pytest.raises(StoreError, match="corrupt record"):
            SqliteStore(tmp_path / "r.db").load()

    def test_body_hash_mismatch_raises(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        with store:
            store.append(_record("aaa"))
        import sqlite3

        conn = sqlite3.connect(tmp_path / "r.db")
        with conn:
            conn.execute(
                "UPDATE records SET body = ?", (json.dumps(_record("bbb")),)
            )
        conn.close()
        with pytest.raises(StoreError, match="does not match"):
            SqliteStore(tmp_path / "r.db").load()

    def test_two_instances_see_each_other(self, tmp_path):
        a = SqliteStore(tmp_path / "r.db")
        b = SqliteStore(tmp_path / "r.db")
        with a, b:
            a.append(_record("aaa"))
            b.append(_record("bbb"))
            assert set(a.load()) == set(b.load()) == {"aaa", "bbb"}


# ----------------------------------------------------------------------
# concurrent multi-process writers
# ----------------------------------------------------------------------
def _writer(url, start, shared):
    from repro.store import open_store

    with open_store(url) as store:
        for i in range(start, start + 25):
            store.append(_record(f"{i:08x}b0dy"))
        for h in shared:
            store.append(_record(h, shared=True))


@pytest.mark.parametrize("scheme", sorted(CONCURRENT))
def test_two_processes_write_concurrently(scheme, tmp_path):
    store = CONCURRENT[scheme](tmp_path)
    shared = [f"c{0:07x}same", f"c{1:07x}same"]  # both workers write these
    procs = [
        multiprocessing.get_context().Process(
            target=_writer, args=(store.url, start, shared)
        )
        for start in (0, 1000)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
        assert p.exitcode == 0
    loaded = store.load()
    assert len(loaded) == store.count() == 52
    # every record is whole (no interleaved lines / torn bodies)
    for h, rec in loaded.items():
        assert rec["hash"] == h and rec["stats"]["mean_time"] == 1.5


# ----------------------------------------------------------------------
# migration
# ----------------------------------------------------------------------
class TestMigration:
    def _populated(self, tmp_path):
        src = ResultStore(tmp_path / "src.jsonl")
        with src:
            for i in range(20):
                src.append(_record(f"{i:08x}feed", i=i, t=0.1 * i))
            src.append(_record(f"{3:08x}feed", i=3, t=99.0))  # duplicate
        return src

    def test_round_trip_is_lossless(self, tmp_path):
        src = self._populated(tmp_path)
        a = f"sharded:{tmp_path / 'a.d'}"
        b = f"sqlite:{tmp_path / 'b.db'}"
        c = str(tmp_path / "c.jsonl")
        assert migrate_store(src, a) == 20
        assert migrate_store(a, b) == 20
        assert migrate_store(b, c) == 20
        assert open_store(c).load() == src.load()

    def test_report_bit_identical_across_backends(self, tmp_path):
        tasks = CampaignSpec(
            kind="table1", scale=48, reps=1, uids=(2213,), s_span=1
        ).expand()
        src = tmp_path / "src.jsonl"
        run_campaign(tasks, jobs=1, store=src)
        stops = [
            f"sharded:{tmp_path / 'a.d'}",
            f"sqlite:{tmp_path / 'b.db'}",
            str(tmp_path / "c.jsonl"),
        ]
        prev = str(src)
        for dst in stops:
            migrate_store(prev, dst)
            prev = dst
        texts = {
            spec: format_summary(summarize_store(spec)).split("\n", 1)[1]
            for spec in [str(src), *stops]  # drop the path line, keep the fold
        }
        assert len(set(texts.values())) == 1, texts

    def test_refuses_populated_destination(self, tmp_path):
        src = self._populated(tmp_path)
        dst = SqliteStore(tmp_path / "dst.db")
        with dst:
            dst.append(_record("occupied"))
        with pytest.raises(ValueError, match="already has records"):
            migrate_store(src, dst)

    def test_refuses_self_migration(self, tmp_path):
        src = self._populated(tmp_path)
        with pytest.raises(ValueError, match="onto itself"):
            migrate_store(src, str(src.path))


# ----------------------------------------------------------------------
# resume across backends (campaign-level equivalence)
# ----------------------------------------------------------------------
class TestResumeAcrossBackends:
    def test_migrated_store_resumes_with_zero_recompute(self, tmp_path):
        tasks = CampaignSpec(
            kind="table1", scale=48, reps=1, uids=(2213,), s_span=0
        ).expand()
        src = tmp_path / "run.jsonl"
        original = run_campaign(tasks, jobs=1, store=src)
        for dst in (f"sharded:{tmp_path / 'r.d'}", f"sqlite:{tmp_path / 'r.db'}"):
            migrate_store(str(src), dst)
            done, pending = open_store(dst).resume(tasks)
            assert pending == []  # task hashes survived the migration
            resumed = run_campaign(tasks, jobs=1, store=dst)
            assert resumed == original  # served from store, bit-identical

    @pytest.mark.parametrize("scheme", ["sharded", "sqlite"])
    def test_fresh_campaign_through_backend_matches_jsonl(self, scheme, tmp_path):
        tasks = CampaignSpec(
            kind="table1", scale=48, reps=1, uids=(2213,), s_span=0
        ).expand()
        baseline = run_campaign(tasks, jobs=1, store=tmp_path / "base.jsonl")
        url = (
            f"sharded:{tmp_path / 'x.d'}" if scheme == "sharded"
            else f"sqlite:{tmp_path / 'x.db'}"
        )
        assert run_campaign(tasks, jobs=2, store=url) == baseline


# ----------------------------------------------------------------------
# leases
# ----------------------------------------------------------------------
class TestLeases:
    def test_claim_is_exclusive(self, lease_store):
        assert lease_store.try_claim("k", "alice", ttl=60.0)
        assert not lease_store.try_claim("k", "bob", ttl=60.0)
        assert lease_store.holds("k", "alice")
        assert not lease_store.holds("k", "bob")

    def test_release_frees_the_key(self, lease_store):
        assert lease_store.try_claim("k", "alice", ttl=60.0)
        lease_store.release("k", "alice")
        assert lease_store.try_claim("k", "bob", ttl=60.0)

    def test_release_by_non_holder_is_a_noop(self, lease_store):
        assert lease_store.try_claim("k", "alice", ttl=60.0)
        lease_store.release("k", "bob")
        assert lease_store.holds("k", "alice")

    def test_expired_lease_is_stolen(self, lease_store):
        assert lease_store.try_claim("k", "alice", ttl=0.05)
        time.sleep(0.15)
        assert lease_store.try_claim("k", "bob", ttl=60.0)
        assert lease_store.holds("k", "bob")
        assert not lease_store.holds("k", "alice")

    def test_heartbeat_keeps_the_lease_alive(self, lease_store):
        assert lease_store.try_claim("k", "alice", ttl=0.3)
        for _ in range(4):
            time.sleep(0.1)
            assert lease_store.heartbeat("k", "alice", ttl=0.3)
        assert not lease_store.try_claim("k", "bob", ttl=0.3)

    def test_heartbeat_by_non_holder_fails(self, lease_store):
        assert lease_store.try_claim("k", "alice", ttl=60.0)
        assert not lease_store.heartbeat("k", "bob", ttl=60.0)

    def test_jsonl_has_no_leases(self, tmp_path):
        assert ResultStore(tmp_path / "r.jsonl").supports_leases is False
