"""Unit tests for Young/Daly closed forms and Chen's intervals."""

import math

import pytest

from repro.model import chen_intervals, daly_period, young_period


class TestYoung:
    def test_formula(self):
        assert young_period(2.0, 0.01) == pytest.approx(math.sqrt(400.0))

    def test_scales_with_sqrt(self):
        assert young_period(8.0, 0.01) == pytest.approx(2 * young_period(2.0, 0.01))
        assert young_period(2.0, 0.04) == pytest.approx(young_period(2.0, 0.01) / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            young_period(0.0, 0.1)
        with pytest.raises(ValueError):
            young_period(1.0, 0.0)


class TestDaly:
    def test_close_to_young_for_small_rate(self):
        assert daly_period(1.0, 1e-6) == pytest.approx(young_period(1.0, 1e-6), rel=1e-2)

    def test_below_young_for_large_cost(self):
        # Daly subtracts δ; the correction matters when δ is significant.
        assert daly_period(10.0, 0.01) < young_period(10.0, 0.01)

    def test_degenerate_regime(self):
        # δ ≥ 2M: Daly prescribes the MTBF itself.
        assert daly_period(10.0, 1.0) == pytest.approx(1.0)


class TestChenIntervals:
    def test_intervals_positive(self):
        ch = chen_intervals(1.0, 0.01, 1.5, 0.8)
        assert ch.d >= 1 and ch.c >= 1
        assert ch.waste > 0

    def test_d_grows_as_rate_drops(self):
        ds = [chen_intervals(1.0, lam, 1.0, 0.8).d for lam in (0.1, 0.01, 0.001)]
        assert ds == sorted(ds)

    def test_c_tracks_cost_ratio(self):
        cheap_cp = chen_intervals(1.0, 0.01, 0.5, 0.5)
        pricey_cp = chen_intervals(1.0, 0.01, 8.0, 0.5)
        assert pricey_cp.c > cheap_cp.c

    def test_first_order_d_formula(self):
        lam, tv = 0.02, 0.9
        ch = chen_intervals(1.0, lam, 1.0, tv)
        assert ch.d == max(1, round(math.sqrt(2 * tv / lam)))

    def test_validation(self):
        with pytest.raises(ValueError):
            chen_intervals(0.0, 0.1, 1.0, 0.5)
        with pytest.raises(ValueError):
            chen_intervals(1.0, 0.1, 1.0, 0.0)
