"""Unit tests for the SpMxV kernels (vectorized vs reference oracle)."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, spmv, spmv_reference
from tests.conftest import dense_random_csr


class TestAgainstDense:
    @pytest.mark.parametrize("shape", [(1, 1), (5, 5), (13, 7), (7, 13), (40, 40)])
    def test_matches_dense_product(self, rng, shape):
        a = dense_random_csr(rng, *shape, 0.4)
        x = rng.normal(size=shape[1])
        np.testing.assert_allclose(spmv(a, x), a.to_dense() @ x, rtol=1e-12)

    def test_vectorized_matches_reference(self, small_spd, rng):
        x = rng.normal(size=small_spd.ncols)
        np.testing.assert_allclose(spmv(small_spd, x), spmv_reference(small_spd, x), rtol=1e-12)

    def test_empty_matrix(self):
        a = CSRMatrix(np.array([]), np.array([], dtype=np.int64), np.zeros(4, dtype=np.int64), (3, 3))
        np.testing.assert_array_equal(spmv(a, np.ones(3)), np.zeros(3))

    def test_empty_rows(self):
        # Row 1 has no nonzeros.
        a = CSRMatrix(
            np.array([1.0, 2.0]), np.array([0, 2]), np.array([0, 1, 1, 2]), (3, 3)
        )
        np.testing.assert_array_equal(spmv(a, np.ones(3)), [1.0, 0.0, 2.0])

    def test_wrong_x_length_rejected(self, small_lap):
        with pytest.raises(ValueError, match="shape"):
            spmv(small_lap, np.ones(small_lap.ncols + 1))
        with pytest.raises(ValueError, match="shape"):
            spmv_reference(small_lap, np.ones(small_lap.ncols + 1))


class TestCorruptedStructure:
    """Corrupted matrices must produce *wrong answers*, never crashes."""

    def test_out_of_range_colid_is_wrapped(self, small_lap, rng):
        a = small_lap.copy()
        a.colid[10] = a.ncols + 5  # out of range
        x = rng.normal(size=a.ncols)
        y = spmv(a, x)
        assert np.all(np.isfinite(y))
        ref = spmv_reference(a, x)
        np.testing.assert_allclose(y, ref, rtol=1e-12)

    def test_negative_colid_is_wrapped(self, small_lap, rng):
        a = small_lap.copy()
        a.colid[10] = -3
        x = rng.normal(size=a.ncols)
        np.testing.assert_allclose(spmv(a, x), spmv_reference(a, x), rtol=1e-12)

    def test_huge_rowidx_clipped(self, small_lap, rng):
        a = small_lap.copy()
        a.rowidx[5] = 2**40
        x = rng.normal(size=a.ncols)
        y = spmv(a, x)
        assert y.shape == (a.nrows,)

    def test_decreasing_rowidx_falls_back_to_loop(self, small_lap, rng):
        a = small_lap.copy()
        a.rowidx[5] = 0  # non-monotone
        x = rng.normal(size=a.ncols)
        y = spmv(a, x)
        ref = spmv_reference(a, x)
        np.testing.assert_allclose(y, ref, rtol=1e-12)

    def test_corruption_actually_changes_result(self, small_lap, rng):
        x = rng.normal(size=small_lap.ncols)
        clean = spmv(small_lap, x)
        a = small_lap.copy()
        a.val[17] += 10.0
        assert not np.allclose(spmv(a, x), clean)


class TestCorruptedRowidxBranches:
    """Directed coverage of spmv's two corrupted-``rowidx`` code paths.

    The vectorized kernel has two rarely-taken branches that only a
    corrupted row-pointer array can reach: the ``_spmv_loop`` fallback
    (non-monotone segments break ``np.add.reduceat``'s precondition)
    and the overshoot-trimming pass (a shrunk trailing pointer makes
    ``reduceat`` sum past a row's true end).  Both must agree with the
    reference oracle on the *same corrupted bytes* — that equivalence
    is what lets the ABFT study treat the kernels interchangeably.
    """

    def _assert_matches_reference(self, a, rng):
        x = rng.normal(size=a.ncols)
        y = spmv(a, x)
        assert y.shape == (a.nrows,)
        np.testing.assert_allclose(y, spmv_reference(a, x), rtol=1e-12)
        return y

    def test_non_monotone_rowidx_takes_loop_fallback(self, small_lap, rng, monkeypatch):
        import importlib

        mod = importlib.import_module("repro.sparse.spmv")
        a = small_lap.copy()
        a.rowidx[7] = int(a.rowidx[9])  # start[7] > start[8]: non-monotone
        a.rowidx[8] = 1
        calls = []
        real = mod._spmv_loop
        monkeypatch.setattr(
            mod, "_spmv_loop", lambda *args: calls.append(1) or real(*args)
        )
        self._assert_matches_reference(a, rng)
        assert calls, "corrupted rowidx should have routed through _spmv_loop"

    def test_clean_matrix_avoids_loop_fallback(self, small_lap, rng, monkeypatch):
        import importlib

        mod = importlib.import_module("repro.sparse.spmv")
        monkeypatch.setattr(
            mod, "_spmv_loop",
            lambda *args: pytest.fail("clean matrix must stay vectorized"),
        )
        x = rng.normal(size=small_lap.ncols)
        np.testing.assert_allclose(
            spmv(small_lap, x), spmv_reference(small_lap, x), rtol=1e-12
        )

    def test_end_below_start_takes_loop_fallback(self, small_lap, rng):
        a = small_lap.copy()
        # ends[4] < starts[4] while starts stay monotone after clipping.
        a.rowidx[5] = -17
        self._assert_matches_reference(a, rng)

    def test_shrunk_final_pointer_takes_overshoot_trim(self, small_lap, rng):
        a = small_lap.copy()
        # The last nonempty segment now ends before nnz, so reduceat
        # sums the tail of `products` past the row's true end; the trim
        # pass must re-sum exactly products[start:end].
        a.rowidx[-1] = int(a.rowidx[-2]) + 1
        y = self._assert_matches_reference(a, rng)
        # The last row must only see its single remaining nonzero.
        lo = int(a.rowidx[-2])
        x_used = np.zeros(a.ncols)
        x_used[a.colid[lo]] = 1.0
        assert spmv(a, x_used)[-1] == pytest.approx(a.val[lo])

    def test_shrunk_middle_trailing_pointers_trim_each_segment(self, small_lap, rng):
        a = small_lap.copy()
        # Shrink the last three pointers: several nonempty segments end
        # early, so more than one overshoot entry needs trimming.
        base = int(a.rowidx[-4])
        a.rowidx[-3] = base + 1
        a.rowidx[-2] = base + 2
        a.rowidx[-1] = base + 3
        self._assert_matches_reference(a, rng)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_rowidx_corruption_matches_reference(self, small_lap, seed):
        rng = np.random.default_rng(seed)
        a = small_lap.copy()
        for _ in range(3):
            pos = int(rng.integers(a.rowidx.size))
            a.rowidx[pos] = int(rng.integers(-5, a.nnz + 5))
        self._assert_matches_reference(a, rng)
