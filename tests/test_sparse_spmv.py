"""Unit tests for the SpMxV kernels (vectorized vs reference oracle)."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, spmv, spmv_reference
from tests.conftest import dense_random_csr


class TestAgainstDense:
    @pytest.mark.parametrize("shape", [(1, 1), (5, 5), (13, 7), (7, 13), (40, 40)])
    def test_matches_dense_product(self, rng, shape):
        a = dense_random_csr(rng, *shape, 0.4)
        x = rng.normal(size=shape[1])
        np.testing.assert_allclose(spmv(a, x), a.to_dense() @ x, rtol=1e-12)

    def test_vectorized_matches_reference(self, small_spd, rng):
        x = rng.normal(size=small_spd.ncols)
        np.testing.assert_allclose(spmv(small_spd, x), spmv_reference(small_spd, x), rtol=1e-12)

    def test_empty_matrix(self):
        a = CSRMatrix(np.array([]), np.array([], dtype=np.int64), np.zeros(4, dtype=np.int64), (3, 3))
        np.testing.assert_array_equal(spmv(a, np.ones(3)), np.zeros(3))

    def test_empty_rows(self):
        # Row 1 has no nonzeros.
        a = CSRMatrix(
            np.array([1.0, 2.0]), np.array([0, 2]), np.array([0, 1, 1, 2]), (3, 3)
        )
        np.testing.assert_array_equal(spmv(a, np.ones(3)), [1.0, 0.0, 2.0])

    def test_wrong_x_length_rejected(self, small_lap):
        with pytest.raises(ValueError, match="shape"):
            spmv(small_lap, np.ones(small_lap.ncols + 1))
        with pytest.raises(ValueError, match="shape"):
            spmv_reference(small_lap, np.ones(small_lap.ncols + 1))


class TestCorruptedStructure:
    """Corrupted matrices must produce *wrong answers*, never crashes."""

    def test_out_of_range_colid_is_wrapped(self, small_lap, rng):
        a = small_lap.copy()
        a.colid[10] = a.ncols + 5  # out of range
        x = rng.normal(size=a.ncols)
        y = spmv(a, x)
        assert np.all(np.isfinite(y))
        ref = spmv_reference(a, x)
        np.testing.assert_allclose(y, ref, rtol=1e-12)

    def test_negative_colid_is_wrapped(self, small_lap, rng):
        a = small_lap.copy()
        a.colid[10] = -3
        x = rng.normal(size=a.ncols)
        np.testing.assert_allclose(spmv(a, x), spmv_reference(a, x), rtol=1e-12)

    def test_huge_rowidx_clipped(self, small_lap, rng):
        a = small_lap.copy()
        a.rowidx[5] = 2**40
        x = rng.normal(size=a.ncols)
        y = spmv(a, x)
        assert y.shape == (a.nrows,)

    def test_decreasing_rowidx_falls_back_to_loop(self, small_lap, rng):
        a = small_lap.copy()
        a.rowidx[5] = 0  # non-monotone
        x = rng.normal(size=a.ncols)
        y = spmv(a, x)
        ref = spmv_reference(a, x)
        np.testing.assert_allclose(y, ref, rtol=1e-12)

    def test_corruption_actually_changes_result(self, small_lap, rng):
        x = rng.normal(size=small_lap.ncols)
        clean = spmv(small_lap, x)
        a = small_lap.copy()
        a.val[17] += 10.0
        assert not np.allclose(spmv(a, x), clean)
