"""Unit tests for the execution-time breakdown of FT-CG runs."""

import numpy as np
import pytest

from repro.core import Scheme, SchemeConfig, run_ft_cg, TimeBreakdown
from repro.sim.engine import make_rhs
from repro.sparse import stencil_spd


@pytest.fixture(scope="module")
def problem():
    a = stencil_spd(900, kind="cross", radius=2)
    return a, make_rhs(a)


class TestTimeBreakdown:
    def test_components_sum_to_total(self, problem):
        a, b = problem
        for alpha in (0.0, 0.15):
            cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=7)
            res = run_ft_cg(a, b, cfg, alpha=alpha, rng=4, eps=1e-6)
            assert res.breakdown.total == pytest.approx(res.time_units)

    def test_fault_free_has_no_waste(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=7)
        res = run_ft_cg(a, b, cfg, alpha=0.0, rng=0, eps=1e-6)
        bd = res.breakdown
        assert bd.wasted_work == 0.0
        assert bd.recovery == 0.0
        assert bd.useful_work == pytest.approx(res.iterations_executed * 1.0)
        assert bd.checkpoint == pytest.approx(res.counters.checkpoints * cfg.costs.t_cp)

    def test_faulty_run_accrues_waste(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=7)
        res = run_ft_cg(a, b, cfg, alpha=0.25, rng=8, eps=1e-6)
        assert res.counters.rollbacks > 0
        assert res.breakdown.wasted_work > 0
        assert res.breakdown.recovery > 0

    def test_useful_work_counts_surviving_iterations(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=7)
        res = run_ft_cg(a, b, cfg, alpha=0.2, rng=8, eps=1e-6)
        bd = res.breakdown
        assert bd.useful_work + bd.wasted_work == pytest.approx(
            res.iterations_executed * 1.0
        )

    def test_overhead_ratio_matches_model_direction(self, problem):
        """Higher fault rate ⇒ higher measured overhead ratio."""
        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=7)
        low = run_ft_cg(a, b, cfg, alpha=0.02, rng=3, eps=1e-6).breakdown.overhead_ratio
        high = run_ft_cg(a, b, cfg, alpha=0.3, rng=3, eps=1e-6).breakdown.overhead_ratio
        assert high > low > 1.0

    def test_online_breakdown_consistent(self, problem):
        a, b = problem
        cfg = SchemeConfig(Scheme.ONLINE_DETECTION, checkpoint_interval=4, verification_interval=4)
        res = run_ft_cg(a, b, cfg, alpha=0.1, rng=5, eps=1e-6)
        assert res.breakdown.total == pytest.approx(res.time_units)
        assert res.breakdown.verification == pytest.approx(
            res.counters.verifications * cfg.costs.t_verif_online
        )

    def test_empty_breakdown_ratio(self):
        assert TimeBreakdown().overhead_ratio == float("inf")
