"""Unit tests for the distributed ABFT-protected SpMxV."""

import numpy as np
import pytest

from repro.abft import SpmvStatus
from repro.parallel import DistributedSpmv, partition_by_nnz, platform_mtbf, platform_rate


class TestCleanProducts:
    @pytest.mark.parametrize("p", [1, 2, 3, 8])
    def test_matches_sequential(self, small_lap, rng, p):
        op = DistributedSpmv(small_lap, p)
        x = rng.normal(size=small_lap.ncols)
        res = op.multiply(x)
        assert res.global_status is SpmvStatus.OK
        assert res.trusted
        np.testing.assert_allclose(res.y, small_lap.matvec(x), rtol=1e-12)

    def test_custom_partition(self, small_lap, rng):
        part = partition_by_nnz(small_lap, 4)
        op = DistributedSpmv(small_lap, 4, partition=part)
        x = rng.normal(size=small_lap.ncols)
        np.testing.assert_allclose(op.multiply(x).y, small_lap.matvec(x), rtol=1e-12)

    def test_reusable_across_inputs(self, small_lap, rng):
        op = DistributedSpmv(small_lap, 4)
        for _ in range(3):
            x = rng.normal(size=small_lap.ncols)
            assert op.multiply(x).global_status is SpmvStatus.OK

    def test_comm_volume_accounted(self, small_lap, rng):
        op = DistributedSpmv(small_lap, 4)
        op.multiply(rng.normal(size=small_lap.ncols))
        assert op.comm.stats.words == small_lap.ncols * 3  # allgather volume
        assert op.comm.stats.collectives["allgather"] == 1

    def test_input_shape_checked(self, small_lap):
        op = DistributedSpmv(small_lap, 2)
        with pytest.raises(ValueError, match="shape"):
            op.multiply(np.ones(small_lap.ncols + 1))

    def test_partition_count_checked(self, small_lap):
        part = partition_by_nnz(small_lap, 3)
        with pytest.raises(ValueError, match="parts"):
            DistributedSpmv(small_lap, 4, partition=part)


class TestLocalRecovery:
    """Local detection/correction ⇒ global detection/correction."""

    def test_local_val_error_corrected_globally(self, small_lap, rng):
        op = DistributedSpmv(small_lap, 4, correct=True)
        x = rng.normal(size=small_lap.ncols)

        def hook(stage, blk, xx, yy):
            if stage == "pre":
                blk.val[5] += 3.0

        res = op.multiply(x, rank_hooks={1: hook})
        assert res.global_status is SpmvStatus.CORRECTED
        assert res.trusted
        np.testing.assert_allclose(res.y, small_lap.matvec(x), rtol=1e-9)
        assert [r.status for r in res.rank_results].count(SpmvStatus.CORRECTED) == 1

    def test_errors_on_two_ranks_both_corrected(self, small_lap, rng):
        """One error *per rank* is still locally single — the parallel
        scheme's advantage over a global single-error budget."""
        op = DistributedSpmv(small_lap, 4, correct=True)
        x = rng.normal(size=small_lap.ncols)

        def mk(pos):
            def hook(stage, blk, xx, yy):
                if stage == "pre":
                    blk.val[pos] += 2.0
            return hook

        res = op.multiply(x, rank_hooks={0: mk(3), 2: mk(8)})
        assert res.global_status is SpmvStatus.CORRECTED
        np.testing.assert_allclose(res.y, small_lap.matvec(x), rtol=1e-9)

    def test_double_error_one_rank_uncorrectable(self, small_lap, rng):
        op = DistributedSpmv(small_lap, 4, correct=True)
        x = rng.normal(size=small_lap.ncols)

        def hook(stage, blk, xx, yy):
            if stage == "pre":
                blk.val[3] += 1.0
                blk.val[40] += 2.0

        res = op.multiply(x, rank_hooks={2: hook})
        assert res.global_status is SpmvStatus.UNCORRECTABLE
        assert not res.trusted

    def test_detection_only_mode(self, small_lap, rng):
        op = DistributedSpmv(small_lap, 3, correct=False)
        x = rng.normal(size=small_lap.ncols)

        def hook(stage, blk, xx, yy):
            if stage == "pre":
                blk.val[0] += 1.0

        res = op.multiply(x, rank_hooks={0: hook})
        assert res.global_status is SpmvStatus.DETECTED

    def test_local_x_error_corrected(self, small_lap, rng):
        """A rank's received copy of x is protected by its local block
        checksums (rectangular-block input test)."""
        op = DistributedSpmv(small_lap, 4, correct=True)
        x = rng.normal(size=small_lap.ncols)

        def hook(stage, blk, xx, yy):
            if stage == "pre":
                xx[17] += 4.0

        res = op.multiply(x, rank_hooks={3: hook})
        assert res.global_status is SpmvStatus.CORRECTED
        np.testing.assert_allclose(res.y, small_lap.matvec(x), rtol=1e-9)


class TestMtbfScaling:
    def test_platform_mtbf(self):
        assert platform_mtbf(1000.0, 10) == 100.0

    def test_platform_rate(self):
        assert platform_rate(0.001, 10) == pytest.approx(0.01)

    def test_inverse_relation(self):
        mu, p = 500.0, 8
        assert platform_mtbf(mu, p) == pytest.approx(1.0 / platform_rate(1.0 / mu, p))

    def test_validation(self):
        with pytest.raises(ValueError):
            platform_mtbf(0.0, 4)
        with pytest.raises(ValueError):
            platform_rate(0.1, 0)
