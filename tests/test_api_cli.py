"""The ``repro`` subcommand CLI: exit codes, help, end-to-end flows."""

import json

import pytest

from repro import Study
from repro.api.cli import main
from repro.campaign import ResultStore


class TestHelpAndDispatch:
    def test_help_exits_zero_with_usage_on_stdout(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("usage: repro")
        for sub in ("solve", "table1", "figure1", "study", "report"):
            assert sub in out

    def test_h_short_flag(self, capsys):
        assert main(["-h"]) == 0
        assert "usage: repro" in capsys.readouterr().out

    def test_subcommand_help_exits_zero(self, capsys):
        for sub in ("solve", "table1", "figure1", "report"):
            assert main([sub, "--help"]) == 0
            assert "usage: repro" in capsys.readouterr().out

    def test_bare_invocation_prints_banner_and_usage(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "PDSEC 2015" in out and "usage:" in out

    def test_unknown_subcommand_exits_2(self, capsys):
        assert main(["tabel1"]) == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err and "tabel1" in err

    def test_unknown_flag_exits_2(self, capsys):
        assert main(["table1", "--such-flag"]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_version(self, capsys):
        import repro

        assert main(["--version"]) == 0
        assert repro.__version__ in capsys.readouterr().out


class TestSolveCommand:
    def test_solve_suite_matrix(self, capsys):
        rc = main(["solve", "--scale", "48", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged" in out and "abft-correction" in out

    def test_solve_generated_system_json(self, capsys):
        rc = main(["solve", "--n", "400", "--method", "pcg", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["converged"] is True
        assert data["method"] == "pcg"
        assert data["n"] == 400  # stencil grids land on perfect squares

    def test_solve_pinned_interval(self, capsys):
        rc = main(["solve", "--scale", "48", "--interval", "5", "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["checkpoint_interval"] == 5

    def test_solve_bad_method_exits_2(self, capsys):
        assert main(["solve", "--method", "gmres"]) == 2
        assert "cg, bicgstab, pcg" in capsys.readouterr().err

    def test_solve_bad_scheme_exits_2(self, capsys):
        assert main(["solve", "--scheme", "abft"]) == 2
        assert "abft-correction" in capsys.readouterr().err

    def test_solve_bad_combo_exits_2(self, capsys):
        assert main(["solve", "--method", "pcg", "--scheme", "online-detection"]) == 2
        assert "does not support" in capsys.readouterr().err

    def test_solve_bad_interval_exits_2(self, capsys):
        assert main(["solve", "--interval", "soon"]) == 2
        assert "--interval" in capsys.readouterr().err

    def test_solve_unknown_uid_exits_2(self, capsys):
        assert main(["solve", "--uid", "999"]) == 2
        assert "unknown matrix ids" in capsys.readouterr().err


class TestExperimentCommands:
    def test_table1_smoke(self, capsys):
        rc = main(["table1", "--scale", "48", "--reps", "1", "--uids", "2213",
                   "--s-span", "1", "--jobs", "1"])
        assert rc == 0
        assert "2213" in capsys.readouterr().out

    def test_figure1_custom_mtbf(self, capsys):
        rc = main(["figure1", "--scale", "48", "--reps", "1", "--uids", "2213",
                   "--mtbf", "16", "500", "--jobs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Matrix #2213" in out and "1/alpha" in out

    def test_adaptive_figure1_reports_savings(self, capsys):
        rc = main(["figure1", "--scale", "48", "--uids", "2213",
                   "--mtbf", "16", "--jobs", "1",
                   "--adaptive", "ci=0.5,conf=0.9,min=2,max=6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Matrix #2213" in out
        assert "CI half-width" in out
        assert "adaptive sampling:" in out

    def test_adaptive_bad_spec_exits_2(self, capsys):
        assert main(["figure1", "--adaptive", "ci=nope"]) == 2
        assert "--adaptive" in capsys.readouterr().err

    def test_invalid_jobs_exits_2(self, capsys):
        assert main(["table1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_bad_method_exits_2(self, capsys):
        assert main(["table1", "--method", "cg,gmres"]) == 2
        assert "unknown method" in capsys.readouterr().err


class TestStudyCommand:
    @pytest.fixture()
    def spec(self, tmp_path):
        path = tmp_path / "study.json"
        (Study("cli-sweep")
         .axis("s", [2, 4])
         .fix(uid=2213, scale=48, reps=1, alpha=1 / 16.0)).save(path)
        return path

    def test_dry_run_lists_tasks(self, spec, capsys):
        assert main(["study", "run", str(spec), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "2 tasks" in out and "uid=2213" in out

    def test_missing_action_exits_2(self, capsys):
        assert main(["study"]) == 2
        assert "study run" in capsys.readouterr().err

    def test_unreadable_spec_exits_2(self, tmp_path, capsys):
        assert main(["study", "run", str(tmp_path / "nope.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_run_and_resume_round_trip(self, spec, tmp_path, capsys):
        # The satellite acceptance flow: export a Study to JSON, run it
        # with a store, re-run with --resume — everything must come
        # from the cache (store unchanged, identical output).
        store = tmp_path / "study.jsonl"
        rc = main(["study", "run", str(spec), "--store", str(store), "--jobs", "1"])
        assert rc == 0
        first_out = capsys.readouterr().out
        stored = store.read_text()
        loaded = ResultStore(store).load()
        assert sum(1 for r in loaded.values() if r.get("kind") != "telemetry") == 2

        rc = main(["study", "run", str(spec), "--store", str(store),
                   "--resume", "--jobs", "1"])
        assert rc == 0
        assert capsys.readouterr().out == first_out
        assert store.read_text() == stored  # zero recomputation

    def test_run_with_adaptive_override(self, spec, tmp_path, capsys):
        store = tmp_path / "ad.jsonl"
        rc = main(["study", "run", str(spec), "--jobs", "1",
                   "--store", str(store), "--progress", "none",
                   "--adaptive", "ci=0.5,conf=0.9,min=2,max=6"])
        assert rc == 0
        from repro.campaign import ResultStore

        recs = [
            r for r in ResultStore(store).load().values()
            if r.get("kind") not in ("telemetry", "partial")
        ]
        assert recs
        for r in recs:
            assert r["task"]["sampling"] == "ci=0.5,conf=0.9,min=2,max=6"
            assert r["task"]["reps"] == 6
            assert 2 <= r["stats"]["reps"] <= 6

    def test_run_with_bad_adaptive_exits_2(self, spec, capsys):
        assert main(["study", "run", str(spec), "--adaptive", "wat"]) == 2
        assert "--adaptive" in capsys.readouterr().err

    def test_store_clobber_refused(self, spec, tmp_path, capsys):
        store = tmp_path / "study.jsonl"
        store.write_text('{"hash": "x"}\n')
        assert main(["study", "run", str(spec), "--store", str(store)]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_csv_export(self, spec, tmp_path, capsys):
        csv_path = tmp_path / "points.csv"
        rc = main(["study", "run", str(spec), "--jobs", "1", "--csv", str(csv_path)])
        assert rc == 0
        capsys.readouterr()
        content = csv_path.read_text()
        assert "mean_time" in content.splitlines()[0]
        assert len(content.splitlines()) == 3  # header + 2 points


class TestReportCommand:
    @pytest.fixture()
    def store(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        study = Study("rep").axis("s", [2, 4]).fix(uid=2213, scale=48, reps=1)
        study.run(jobs=1, store=path)
        return path

    def test_report_summarizes_groups(self, store, capsys):
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "records: 2" in out
        assert "study:rep" in out and "abft-correction" in out

    def test_report_json(self, store, capsys):
        assert main(["report", str(store), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["records"] == 2
        assert data["groups"][0]["scheme"] == "abft-correction"
        assert data["groups"][0]["tasks"] == 2

    def test_report_counts_foreign_records(self, store, capsys):
        with open(store, "a") as fh:
            fh.write('{"hash": "handmade"}\n')
            # Partial stats (mean_time but no min/max/convergence) must
            # also be skipped, not crash the aggregation.
            fh.write('{"hash": "partial", "task": {}, '
                     '"stats": {"mean_time": 1.0, "reps": 1}}\n')
        assert main(["report", str(store)]) == 0
        assert "2 without usable statistics" in capsys.readouterr().out

    def test_report_shows_adaptive_savings_and_partials(self, tmp_path, capsys):
        from repro.campaign.executor import make_partial_record
        from repro.store import open_store

        path = tmp_path / "adaptive.jsonl"
        st = open_store(str(path))
        st.append({
            "hash": "h1",
            "task": {"experiment": "figure1", "scheme": "abft-detection",
                     "reps": 50},
            "stats": {"mean_time": 10.0, "min_time": 9.0, "max_time": 11.0,
                      "convergence_rate": 1.0, "reps": 9},
        })
        st.append(make_partial_record("h2", {
            "times": [1.0], "iterations": [3], "rollbacks": [0],
            "corrections": [0], "faults": [0], "converged": [True],
        }))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        # Partial checkpoints are their own line, never "records"/skips.
        assert "records: 1" in out
        assert "partials: 1 in-flight" in out
        assert "saved" in out  # the adaptive column
        assert "adaptive sampling saved 41 of 50 repetition(s) (82.0%)" in out

    def test_report_fixed_store_has_no_adaptive_lines(self, store, capsys):
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "saved" not in out
        assert "partials" not in out

    def test_report_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such store" in capsys.readouterr().err

    def test_report_corrupt_store_exits_1(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        assert main(["report", str(path)]) == 1
        assert "corrupt" in capsys.readouterr().err


class TestStoreCommand:
    @pytest.fixture()
    def store(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        study = Study("st").axis("s", [2, 4]).fix(uid=2213, scale=48, reps=1)
        study.run(jobs=1, store=path)
        return path

    def test_info_text(self, store, capsys):
        assert main(["store", "info", str(store)]) == 0
        out = capsys.readouterr().out
        assert "backend: jsonl" in out and "records: 3" in out  # 2 + telemetry

    def test_info_json(self, store, capsys):
        assert main(["store", "info", str(store), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["backend"] == "jsonl" and data["records"] == 3

    def test_info_sharded_shows_fill(self, store, tmp_path, capsys):
        dst = f"sharded:{tmp_path / 'c.d'}"
        assert main(["store", "migrate", str(store), dst]) == 0
        capsys.readouterr()
        assert main(["store", "info", dst]) == 0
        out = capsys.readouterr().out
        assert "shards: 16" in out and "shard fill:" in out

    def test_info_bad_scheme_exits_2(self, capsys):
        assert main(["store", "info", "zzz:x"]) == 2
        assert "unknown store scheme" in capsys.readouterr().err

    def test_missing_action_exits_2(self, capsys):
        assert main(["store"]) == 2
        assert "store info" in capsys.readouterr().err

    def test_migrate_round_trip_report_identical(self, store, tmp_path, capsys):
        # jsonl -> sharded -> sqlite -> jsonl, with `repro report`
        # bit-identical at every stop (modulo the store path line).
        assert main(["report", str(store)]) == 0
        baseline = capsys.readouterr().out.split("\n", 1)[1]
        prev = str(store)
        for dst in (f"sharded:{tmp_path / 'c.d'}",
                    f"sqlite:{tmp_path / 'c.db'}",
                    str(tmp_path / "back.jsonl")):
            assert main(["store", "migrate", prev, dst]) == 0
            assert "migrated 3 record(s)" in capsys.readouterr().out
            assert main(["report", dst]) == 0
            assert capsys.readouterr().out.split("\n", 1)[1] == baseline
            prev = dst

    def test_migrate_into_populated_exits_2(self, store, tmp_path, capsys):
        dst = f"sqlite:{tmp_path / 'c.db'}"
        assert main(["store", "migrate", str(store), dst]) == 0
        capsys.readouterr()
        assert main(["store", "migrate", str(store), dst]) == 2
        assert "already has records" in capsys.readouterr().err

    def test_resume_after_migration_recomputes_nothing(self, store, tmp_path,
                                                       capsys):
        spec = tmp_path / "study.json"
        (Study("st").axis("s", [2, 4])
         .fix(uid=2213, scale=48, reps=1)).save(spec)
        dst = f"sqlite:{tmp_path / 'c.db'}"
        assert main(["store", "migrate", str(store), dst]) == 0
        capsys.readouterr()
        assert main(["study", "run", str(spec), "--store", dst,
                     "--resume", "--jobs", "1"]) == 0
        capsys.readouterr()
        # Still exactly 3 records: every task came from the store.
        assert main(["store", "info", dst, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["records"] == 3

    def test_campaign_store_url_validation(self, capsys):
        assert main(["table1", "--store", "zzz:x"]) == 2
        assert "unknown store scheme" in capsys.readouterr().err


class TestServeCommand:
    @pytest.fixture()
    def spec(self, tmp_path):
        path = tmp_path / "study.json"
        (Study("serve-sweep")
         .axis("s", [2, 4])
         .fix(uid=2213, scale=48, reps=1, alpha=1 / 16.0)).save(path)
        return path

    def test_serve_runs_fleet_and_reports(self, spec, tmp_path, capsys):
        url = f"sqlite:{tmp_path / 'serve.db'}"
        rc = main(["serve", str(spec), "--store", url,
                   "--workers", "2", "--progress", "none"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "records: 2" in out and "study:serve-sweep" in out

    def test_serve_matches_study_run_output(self, spec, tmp_path, capsys):
        jsonl = tmp_path / "serial.jsonl"
        assert main(["study", "run", str(spec), "--store", str(jsonl),
                     "--jobs", "1"]) == 0
        capsys.readouterr()
        url = f"sharded:{tmp_path / 'serve.d'}"
        assert main(["serve", str(spec), "--store", url,
                     "--workers", "2", "--progress", "none"]) == 0
        capsys.readouterr()
        # Per-task records identical to --jobs 1 (the tentpole bar).
        from repro.store import open_store

        def task_records(spec_url):
            return {h: r for h, r in open_store(spec_url).load().items()
                    if r.get("kind") != "telemetry"}

        assert task_records(url) == task_records(str(jsonl))

    def test_serve_rejects_jsonl_store(self, spec, tmp_path, capsys):
        rc = main(["serve", str(spec), "--store", str(tmp_path / "r.jsonl")])
        assert rc == 2
        assert "concurrent backend" in capsys.readouterr().err

    def test_serve_rejects_bad_workers(self, spec, tmp_path, capsys):
        assert main(["serve", str(spec), "--store",
                     f"sqlite:{tmp_path / 'r.db'}", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_rejects_unreadable_spec(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope.json"), "--store",
                     f"sqlite:{tmp_path / 'r.db'}"]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestModuleEntryCompat:
    def test_python_m_repro_still_routes_table1(self, capsys):
        from repro.__main__ import main as module_main

        rc = module_main(["table1", "--scale", "48", "--reps", "1",
                          "--uids", "2213", "--s-span", "1", "--jobs", "1"])
        assert rc == 0
        assert "2213" in capsys.readouterr().out

    def test_experiments_main_is_cli_alias(self, capsys):
        from repro.sim.experiments import _main

        assert _main(["figure1", "--scale", "48", "--reps", "1", "--uids", "2213",
                      "--mtbf", "16", "--jobs", "1"]) == 0
        assert "Matrix #2213" in capsys.readouterr().out
