"""Unit tests for Chen's verification (ONLINE-DETECTION tests)."""

import numpy as np
import pytest

from repro.core import cg, chen_verify, orthogonality_check, residual_check
from repro.core.stability import VerificationReport
from repro.sparse import spmv


def run_cg_state(a, b, iters):
    """Run `iters` plain CG iterations, returning (x, r, p_next, q)."""
    x = np.zeros(a.nrows)
    r = b - spmv(a, x)
    p = r.copy()
    rr = float(r @ r)
    q = np.zeros_like(r)
    for _ in range(iters):
        q = spmv(a, p)
        alpha = rr / float(p @ q)
        x += alpha * p
        r -= alpha * q
        rr_new = float(r @ r)
        beta = rr_new / rr
        p = r + beta * p
        rr = rr_new
    return x, r, p, q


class TestOrthogonality:
    def test_clean_cg_passes(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        _, _, p, q = run_cg_state(small_lap, b, 5)
        ok, score = orthogonality_check(p, q)
        assert ok
        assert score < 1e-10

    def test_corrupted_p_fails(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        _, _, p, q = run_cg_state(small_lap, b, 5)
        p[3] += 10.0 * np.abs(p).max()
        ok, score = orthogonality_check(p, q)
        assert not ok
        assert score > 1e-8

    def test_zero_vector_fails(self):
        ok, score = orthogonality_check(np.zeros(5), np.ones(5))
        assert not ok

    def test_nan_fails(self):
        v = np.ones(5)
        v[0] = np.nan
        ok, _ = orthogonality_check(v, np.ones(5))
        assert not ok


class TestResidual:
    def test_clean_cg_passes(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        x, r, _, _ = run_cg_state(small_lap, b, 8)
        ok, gap = residual_check(small_lap, b, x, r)
        assert ok
        assert gap < 1e-10

    def test_corrupted_r_fails(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        x, r, _, _ = run_cg_state(small_lap, b, 8)
        r = r + 1e-3 * np.linalg.norm(b)
        ok, gap = residual_check(small_lap, b, x, r)
        assert not ok

    def test_corrupted_x_fails(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        x, r, _, _ = run_cg_state(small_lap, b, 8)
        x[7] += 1.0
        ok, _ = residual_check(small_lap, b, x, r)
        assert not ok

    def test_corrupted_matrix_fails(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        x, r, _, _ = run_cg_state(small_lap, b, 8)
        a = small_lap.copy()
        a.val[4] += 1.0
        ok, _ = residual_check(a, b, x, r)
        assert not ok


class TestChenVerify:
    def test_report_fields(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        x, r, p, q = run_cg_state(small_lap, b, 5)
        report = chen_verify(small_lap, b, x, r, p, q)
        assert isinstance(report, VerificationReport)
        assert report.passed
        assert report.orthogonality < 1e-10
        assert report.residual_gap < 1e-10

    def test_skip_orthogonality_at_convergence(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        res = cg(small_lap, b, eps=1e-12)
        # At (near) convergence p and q are ~0: the conjugacy ratio is
        # meaningless and must be skippable.
        r = b - spmv(small_lap, res.x)
        report = chen_verify(
            small_lap, b, res.x, r, np.zeros_like(b), np.zeros_like(b),
            check_orthogonality=False,
        )
        assert report.passed
        assert np.isnan(report.orthogonality)

    def test_detects_single_fault_after_iterations(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        x, r, p, q = run_cg_state(small_lap, b, 5)
        x[0] += np.abs(x).max() + 1.0
        report = chen_verify(small_lap, b, x, r, p, q)
        assert not report.passed
