"""Declarative Study sweeps: compilation, presets, serialization, runs."""

import json

import pytest

from repro import Study
from repro.campaign import CampaignSpec, ResultStore
from repro.core.methods import CostModel, Scheme
from repro.sim.experiments import model_interval_for, run_table1
from repro.sim.matrices import get_matrix


class TestCompilation:
    def test_product_order_is_canonical(self):
        # Axis declaration order must not matter: uid → method → scheme
        # → alpha → s → d is the fixed nesting, so hashes are stable.
        s1 = Study("x").axis("s", [2, 4]).axis("method", ["cg", "pcg"]).fix(scale=48)
        s2 = Study("x").axis("method", ["cg", "pcg"]).axis("s", [2, 4]).fix(scale=48)
        assert [t.task_hash() for t in s1.tasks()] == [t.task_hash() for t in s2.tasks()]
        methods = [t.method for t in s1.tasks()]
        assert methods == ["cg", "cg", "pcg", "pcg"]  # method outside s

    def test_unsupported_combos_skipped(self):
        study = (Study("combo")
                 .axis("method", ["cg", "bicgstab"])
                 .axis("scheme", ["online-detection", "abft-correction"])
                 .fix(s=5, d=1, scale=48))
        pairs = [(t.method, t.scheme) for t in study.tasks()]
        assert ("cg", "online-detection") in pairs
        assert ("bicgstab", "abft-correction") in pairs
        assert ("bicgstab", "online-detection") not in pairs

    def test_abft_with_d_above_one_skipped(self):
        # ABFT schemes verify every iteration; a d axis must only
        # apply to ONLINE-DETECTION instead of compiling tasks that
        # would abort the campaign inside the executor.
        study = (Study("d-axis")
                 .axis("scheme", ["online-detection", "abft-detection"])
                 .axis("d", [1, 5])
                 .fix(s=8, scale=48))
        combos = [(t.scheme, t.d) for t in study.tasks()]
        assert ("online-detection", 5) in combos
        assert ("abft-detection", 1) in combos
        assert ("abft-detection", 5) not in combos

    def test_compilation_memoized_and_invalidated(self):
        study = Study("memo").axis("s", [2, 4]).fix(uid=2213, scale=48)
        first = study.tasks()
        assert study.tasks() == first
        assert study.tasks() is not first  # callers get a fresh copy
        study.axis("s", [2, 4, 8])        # mutation invalidates the memo
        assert len(study.tasks()) == 3

    def test_auto_interval_resolves_through_model(self):
        study = Study("auto").fix(uid=2213, scale=48, alpha=1 / 16.0)
        (task,) = study.tasks()
        costs = CostModel.from_matrix(get_matrix(2213, 48))
        s, _ = model_interval_for(Scheme.ABFT_CORRECTION, 1 / 16.0, costs)
        assert task.s == s == task.s_model

    def test_pinned_intervals_never_build_the_matrix(self, monkeypatch):
        # Compiling a sweep with explicit s (ABFT scheme, so d='auto'
        # trivially resolves to 1) must not instantiate suite matrices
        # just to enumerate tasks — that would make --dry-run at
        # paper scale expensive for nothing.
        import repro.sim.matrices as matrices

        def boom(*args, **kwargs):
            raise AssertionError("matrix built during pinned-interval compile")

        monkeypatch.setattr(matrices, "get_matrix", boom)
        study = Study("pinned").axis("s", [2, 4]).fix(uid=2213, scale=1)
        tasks = study.tasks()
        assert [t.s for t in tasks] == [2, 4]
        assert all(t.d == 1 for t in tasks)

    def test_mtbf_axis_is_reciprocal_alpha(self):
        study = Study("m").axis("mtbf", [100.0, 1000.0]).fix(s=5, scale=48)
        alphas = [t.alpha for t in study.tasks()]
        assert alphas == [0.01, 0.001]

    def test_alpha_and_mtbf_conflict(self):
        with pytest.raises(ValueError, match="both"):
            Study("bad").axis("alpha", [0.1]).axis("mtbf", [100.0])

    def test_unknown_axis_lists_valid_names(self):
        with pytest.raises(ValueError, match="uid, method, backend, scheme"):
            Study("bad").axis("matrix", [1])

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            Study("bad").metrics("p99_time")

    def test_numpy_values_coerced_to_plain_scalars(self):
        # numpy scalars repr differently and would poison the
        # repr-based task hash; the builder must normalize them.
        import numpy as np

        study = (Study("np")
                 .axis("alpha", np.logspace(-3, -1, 3))
                 .axis("s", np.array([2, 4]))
                 .fix(scale=48))
        for t in study.tasks():
            assert type(t.alpha) is float
            assert type(t.s) is int

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            Study("bad").axis("s", [])

    def test_preset_studies_reject_axes(self):
        with pytest.raises(ValueError, match="preset"):
            Study.table1(scale=48).axis("s", [2])


class TestPresets:
    def test_table1_preset_matches_campaign_spec(self):
        study = Study.table1(scale=48, reps=2, uids=[2213], s_span=2)
        spec = CampaignSpec(kind="table1", scale=48, reps=2, uids=(2213,), s_span=2)
        assert [t.task_hash() for t in study.tasks()] == [
            t.task_hash() for t in spec.expand()
        ]

    def test_figure1_preset_matches_campaign_spec(self):
        study = Study.figure1(scale=48, reps=2, uids=[2213], mtbf_values=[16.0, 500.0])
        spec = CampaignSpec(
            kind="figure1", scale=48, reps=2, uids=(2213,), mtbf_values=(16.0, 500.0)
        )
        assert [t.task_hash() for t in study.tasks()] == [
            t.task_hash() for t in spec.expand()
        ]

    def test_run_table1_driver_rides_on_study(self):
        # The rewired driver must produce the same rows as running the
        # preset study by hand — same tasks, same aggregation.
        rows = run_table1(scale=48, reps=2, uids=[2213], s_span=2)
        study_rows = Study.table1(
            scale=48, reps=2, uids=[2213], s_span=2
        ).run(jobs=1).table1_rows()
        assert rows == study_rows


class TestSerialization:
    def test_generic_round_trip_preserves_hashes(self):
        study = (Study("sweep")
                 .axis("s", [2, 4, 8])
                 .axis("mtbf", [100.0, 1000.0])
                 .fix(uid=2213, scale=48, reps=3, method="pcg")
                 .metrics("mean_time"))
        data = json.loads(json.dumps(study.to_json()))
        clone = Study.from_json(data)
        assert clone.name == "sweep"
        assert [t.task_hash() for t in clone.tasks()] == [
            t.task_hash() for t in study.tasks()
        ]

    def test_preset_round_trip_preserves_hashes(self):
        study = Study.table1(scale=48, reps=2, uids=[2213], s_span=1, methods=["cg", "pcg"])
        clone = Study.from_json(json.loads(json.dumps(study.to_json())))
        assert [t.task_hash() for t in clone.tasks()] == [
            t.task_hash() for t in study.tasks()
        ]

    def test_save_load(self, tmp_path):
        path = tmp_path / "study.json"
        study = Study("disk").axis("s", [2, 4]).fix(uid=2213, scale=48, reps=1)
        study.save(path)
        clone = Study.load(path)
        assert [t.task_hash() for t in clone.tasks()] == [
            t.task_hash() for t in study.tasks()
        ]

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Study.from_json({"study": "x"})
        with pytest.raises(ValueError, match="unknown study kind"):
            Study.from_json({"kind": "table2"})


class TestExecution:
    @pytest.fixture(scope="class")
    def small_study(self):
        return (Study("exec")
                .axis("s", [2, 4])
                .fix(uid=2213, scale=48, reps=2, alpha=1 / 16.0))

    def test_points_are_typed(self, small_study):
        result = small_study.run(jobs=1)
        points = result.points()
        assert len(points) == len(result) == 2
        assert [p.s for p in points] == [2, 4]
        for p in points:
            assert p.uid == 2213 and p.method == "cg"
            assert p.stats.mean_time > 0
            assert p.normalized_mtbf == 16.0

    def test_parallel_matches_serial(self, small_study):
        serial = small_study.run(jobs=1)
        parallel = small_study.run(jobs=2)
        assert serial.records == parallel.records

    def test_store_resume_serves_cache(self, small_study, tmp_path):
        store = tmp_path / "study.jsonl"
        first = small_study.run(jobs=1, store=store)
        lines = store.read_text().splitlines()
        # one line per task plus the campaign's telemetry record
        assert len(lines) == len(first) + 1
        second = small_study.run(jobs=1, store=store)
        assert second.records == first.records
        # Nothing recomputed: the store did not grow.
        assert store.read_text().splitlines() == lines

    def test_format_table_lists_metrics(self, small_study):
        result = small_study.run(jobs=1)
        text = result.format_table()
        assert "mean_time" in text and "convergence_rate" in text
        assert "2213" in text

    def test_store_records_keyed_by_hash(self, small_study, tmp_path):
        store = tmp_path / "s.jsonl"
        small_study.run(jobs=1, store=store)
        loaded = {
            h: r for h, r in ResultStore(store).load().items()
            if r.get("kind") != "telemetry"
        }
        assert set(loaded) == {t.task_hash() for t in small_study.tasks()}


class TestAdaptiveSampling:
    SPEC = "ci=0.5,conf=0.9,min=2,max=6"

    def test_adaptive_canonicalizes_generic_study(self):
        study = (Study("ad")
                 .axis("s", [2, 4])
                 .fix(uid=2213, scale=48, alpha=1 / 16.0)
                 .adaptive("max=6,min=2,conf=0.9,ci=0.5"))
        tasks = study.tasks()
        assert all(t.sampling == self.SPEC for t in tasks)
        # The cap becomes the task's rep count, whatever reps was.
        assert all(t.reps == 6 for t in tasks)

    def test_adaptive_on_presets(self):
        study = Study.figure1(scale=48, uids=[2213], mtbf_values=[16.0],
                              sampling=self.SPEC)
        assert all(t.sampling == self.SPEC for t in study.tasks())
        cleared = study.adaptive("")
        assert all(t.sampling == "" for t in cleared.tasks())

    def test_adaptive_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            Study("bad").axis("s", [2]).adaptive("ci=nope")

    def test_adaptive_survives_save_load(self, tmp_path):
        path = tmp_path / "ad.json"
        (Study("ad")
         .axis("s", [2, 4])
         .fix(uid=2213, scale=48, alpha=1 / 16.0)
         .adaptive(self.SPEC)).save(path)
        clone = Study.load(path)
        assert [t.task_hash() for t in clone.tasks()] == [
            t.task_hash()
            for t in (Study("ad").axis("s", [2, 4])
                      .fix(uid=2213, scale=48, alpha=1 / 16.0)
                      .adaptive(self.SPEC)).tasks()
        ]

    def test_adaptive_run_reports_savings(self):
        study = (Study("ad-run")
                 .axis("s", [2, 4])
                 .fix(uid=2213, scale=48, alpha=1 / 16.0)
                 .adaptive(self.SPEC))
        result = study.run(jobs=1)
        caps = sum(t.reps for t in result.tasks)
        assert 0 < result.total_reps <= caps
        assert result.reps_saved == caps - result.total_reps
        for p in result.points():
            assert 2 <= p.stats.reps <= 6

    def test_fixed_run_reports_zero_savings(self):
        study = (Study("fx")
                 .axis("s", [2])
                 .fix(uid=2213, scale=48, reps=2, alpha=1 / 16.0))
        result = study.run(jobs=1)
        assert result.total_reps == 2
        assert result.reps_saved == 0
