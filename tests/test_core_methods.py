"""Unit tests for scheme descriptors and the cost model."""

import pytest

from repro.core import CostModel, Scheme, SchemeConfig


class TestScheme:
    def test_flags(self):
        assert not Scheme.ONLINE_DETECTION.uses_abft
        assert Scheme.ABFT_DETECTION.uses_abft
        assert Scheme.ABFT_CORRECTION.uses_abft
        assert Scheme.ABFT_CORRECTION.corrects
        assert not Scheme.ABFT_DETECTION.corrects

    def test_parse_accepts_strings_and_members(self):
        assert Scheme.parse("abft-correction") is Scheme.ABFT_CORRECTION
        assert Scheme.parse("ABFT-Detection") is Scheme.ABFT_DETECTION
        assert Scheme.parse(Scheme.ONLINE_DETECTION) is Scheme.ONLINE_DETECTION

    def test_parse_error_lists_valid_values(self):
        with pytest.raises(ValueError) as excinfo:
            Scheme.parse("abft")
        msg = str(excinfo.value)
        assert "abft" in msg
        for s in Scheme:
            assert s.value in msg


class TestMethodParse:
    def test_parse_accepts_strings_and_members(self):
        from repro.core import Method

        assert Method.parse("cg") is Method.CG
        assert Method.parse("PCG") is Method.PCG
        assert Method.parse(Method.BICGSTAB) is Method.BICGSTAB

    def test_parse_error_lists_valid_values(self):
        from repro.core import Method

        with pytest.raises(ValueError, match="cg, bicgstab, pcg"):
            Method.parse("gmres")


class TestCostModel:
    def test_defaults_ordering(self):
        c = CostModel()
        assert c.t_verif_detect < c.t_verif_correct < c.t_verif_online

    def test_verification_cost_dispatch(self):
        c = CostModel()
        assert c.verification_cost(Scheme.ONLINE_DETECTION) == c.t_verif_online
        assert c.verification_cost(Scheme.ABFT_DETECTION) == c.t_verif_detect
        assert c.verification_cost(Scheme.ABFT_CORRECTION) == c.t_verif_correct

    def test_from_matrix_hierarchy(self, small_spd):
        c = CostModel.from_matrix(small_spd)
        # The paper's cost hierarchy: ABFT checksum overhead below
        # Chen's (one extra SpMxV) verification; detection below
        # correction.
        assert c.t_verif_detect < c.t_verif_correct < c.t_verif_online
        assert c.t_iter == 1.0

    def test_from_matrix_abft_cheaper_for_denser_matrices(self):
        from repro.sparse import stencil_spd

        sparse = stencil_spd(900, kind="cross", radius=1)  # 5/row
        dense = stencil_spd(900, kind="box", radius=3)  # 49/row
        c_sparse = CostModel.from_matrix(sparse)
        c_dense = CostModel.from_matrix(dense)
        assert c_dense.t_verif_correct < c_sparse.t_verif_correct

    def test_include_tmr_increases_abft_costs(self, small_spd):
        base = CostModel.from_matrix(small_spd)
        tmr = CostModel.from_matrix(small_spd, include_tmr=True)
        assert tmr.t_verif_detect > base.t_verif_detect
        assert tmr.t_verif_correct > base.t_verif_correct
        assert tmr.t_verif_online == base.t_verif_online


class TestSchemeConfig:
    def test_defaults(self):
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION)
        assert cfg.checkpoint_interval == 10
        assert cfg.verification_interval == 1
        assert cfg.chunk_time == 1.0

    def test_online_chunk_time(self):
        cfg = SchemeConfig(Scheme.ONLINE_DETECTION, verification_interval=5)
        assert cfg.chunk_time == 5.0

    def test_abft_requires_d_one(self):
        with pytest.raises(ValueError, match="every iteration"):
            SchemeConfig(Scheme.ABFT_DETECTION, verification_interval=3)

    def test_with_intervals(self):
        cfg = SchemeConfig(Scheme.ONLINE_DETECTION, checkpoint_interval=4, verification_interval=2)
        new = cfg.with_intervals(s=7)
        assert new.checkpoint_interval == 7
        assert new.verification_interval == 2
        new2 = cfg.with_intervals(d=9)
        assert new2.verification_interval == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=0)
        with pytest.raises(ValueError):
            SchemeConfig(Scheme.ONLINE_DETECTION, verification_interval=0)

    def test_verification_cost_property(self):
        costs = CostModel(t_verif_correct=0.42)
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, costs=costs)
        assert cfg.verification_cost == 0.42
