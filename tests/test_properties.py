"""Property-based tests (hypothesis) for the core invariants.

The headline property is the paper's Theorem 1 / Algorithm 2 guarantee:
*any* single error — any position, any magnitude above the Theorem-2
tolerance, in any of the five protected locations — is detected, and in
correction mode repaired to the exact clean product.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abft import SpmvStatus, compute_checksums, protected_spmv, majority_vote
from repro.faults.bitflip import flip_bit_float64, flip_bit_int64
from repro.model import expected_frame_time, frame_overhead
from repro.sparse import CSRMatrix, laplacian_2d, spmv, spmv_reference

# One fixed protected matrix for the ABFT properties (checksums are
# per-matrix; rebuilding them per example would dominate runtime).
_A = laplacian_2d(12)  # 144×144
_CKS2 = compute_checksums(_A, nchecks=2)
_CKS1 = compute_checksums(_A, nchecks=1)
_X = np.random.default_rng(0).normal(size=_A.ncols)


# ----------------------------------------------------------------------
# CSR / SpMxV properties
# ----------------------------------------------------------------------
@st.composite
def csr_and_vector(draw):
    nrows = draw(st.integers(1, 12))
    ncols = draw(st.integers(1, 12))
    density = draw(st.floats(0.05, 0.9))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((nrows, ncols)) < density, rng.normal(size=(nrows, ncols)), 0.0)
    x = rng.normal(size=ncols)
    return CSRMatrix.from_dense(dense), dense, x


@given(csr_and_vector())
@settings(max_examples=60, deadline=None)
def test_spmv_matches_dense(data):
    a, dense, x = data
    np.testing.assert_allclose(spmv(a, x), dense @ x, rtol=1e-10, atol=1e-12)


@given(csr_and_vector())
@settings(max_examples=40, deadline=None)
def test_vectorized_kernel_matches_reference(data):
    a, _, x = data
    np.testing.assert_allclose(spmv(a, x), spmv_reference(a, x), rtol=1e-10, atol=1e-12)


@given(csr_and_vector())
@settings(max_examples=40, deadline=None)
def test_dense_roundtrip(data):
    a, dense, _ = data
    np.testing.assert_array_equal(a.to_dense(), dense)


@given(csr_and_vector(), st.floats(-5, 5), st.floats(-5, 5))
@settings(max_examples=30, deadline=None)
def test_spmv_linearity(data, alpha, beta):
    a, _, x = data
    y = np.random.default_rng(1).normal(size=a.ncols)
    lhs = spmv(a, alpha * x + beta * y)
    rhs = alpha * spmv(a, x) + beta * spmv(a, y)
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)


# ----------------------------------------------------------------------
# ABFT properties: any single error above tolerance is caught/repaired
# ----------------------------------------------------------------------
@given(
    pos=st.integers(0, _A.nnz - 1),
    bit=st.integers(30, 62),  # above-tolerance magnitude flips
)
@settings(max_examples=60, deadline=None)
def test_any_val_bitflip_detected_and_corrected(pos, bit):
    a = _A.copy()
    old = a.val[pos]
    a.val[pos] = flip_bit_float64(old, bit)
    if a.val[pos] == old:  # degenerate flip
        return
    res = protected_spmv(a, _X.copy(), _CKS2)
    assert res.status in (SpmvStatus.CORRECTED, SpmvStatus.UNCORRECTABLE)
    if res.status is SpmvStatus.CORRECTED:
        np.testing.assert_allclose(res.y, _A.matvec(_X), rtol=1e-8)
        np.testing.assert_allclose(a.val, _A.val, rtol=1e-8)


@given(pos=st.integers(1, _A.nrows), bit=st.integers(0, 63))
@settings(max_examples=60, deadline=None)
def test_any_rowidx_bitflip_corrected(pos, bit):
    a = _A.copy()
    old = int(a.rowidx[pos])
    new = flip_bit_int64(old, bit)
    if new == old:
        return
    a.rowidx[pos] = new
    res = protected_spmv(a, _X.copy(), _CKS2)
    assert res.status is SpmvStatus.CORRECTED
    assert res.correction.kind == "rowidx"
    assert a.equals(_A)
    np.testing.assert_allclose(res.y, _A.matvec(_X), rtol=1e-8)


@given(pos=st.integers(0, _A.ncols - 1), delta=st.floats(0.05, 1e6))
@settings(max_examples=60, deadline=None)
def test_any_x_perturbation_corrected(pos, delta):
    def hook(stage, a, x, y):
        if stage == "pre":
            x[pos] += delta

    x = _X.copy()
    res = protected_spmv(_A, x, _CKS2, fault_hook=hook)
    assert res.status is SpmvStatus.CORRECTED
    assert res.correction.kind == "x"
    np.testing.assert_allclose(x, _X, rtol=1e-7, atol=1e-9)


@given(pos=st.integers(0, _A.nrows - 1), delta=st.floats(0.05, 1e6))
@settings(max_examples=60, deadline=None)
def test_any_y_perturbation_corrected(pos, delta):
    def hook(stage, a, x, y):
        if stage == "post":
            y[pos] += delta

    res = protected_spmv(_A, _X.copy(), _CKS2, fault_hook=hook)
    assert res.status is SpmvStatus.CORRECTED
    np.testing.assert_allclose(res.y, _A.matvec(_X), rtol=1e-8)


@given(pos=st.integers(0, _A.nnz - 1), delta=st.floats(0.05, 1e3))
@settings(max_examples=40, deadline=None)
def test_detection_mode_flags_val_errors(pos, delta):
    a = _A.copy()
    a.val[pos] += delta
    res = protected_spmv(a, _X.copy(), _CKS1, correct=False)
    assert res.status is SpmvStatus.DETECTED


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_clean_product_never_flagged(seed):
    """No false positives, whatever the input vector's scale."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=_A.ncols) * 10.0 ** rng.integers(-8, 8)
    assert protected_spmv(_A, x, _CKS2).status is SpmvStatus.OK


# ----------------------------------------------------------------------
# TMR properties
# ----------------------------------------------------------------------
@given(
    vals=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=20),
    corrupt_idx=st.integers(0, 2),
    offset=st.floats(0.5, 1e6),
)
@settings(max_examples=50, deadline=None)
def test_tmr_masks_any_single_corruption(vals, corrupt_idx, offset):
    truth = np.array(vals)
    replicas = [truth.copy() for _ in range(3)]
    replicas[corrupt_idx] = replicas[corrupt_idx] + offset
    np.testing.assert_array_equal(majority_vote(replicas), truth)


# ----------------------------------------------------------------------
# Performance-model properties
# ----------------------------------------------------------------------
@given(
    s=st.integers(1, 50),
    t=st.floats(0.1, 10),
    tcp=st.floats(0, 5),
    trec=st.floats(0, 5),
    tv=st.floats(0, 2),
    q=st.floats(0.2, 1.0),
)
@settings(max_examples=100, deadline=None)
def test_frame_time_bounds(s, t, tcp, trec, tv, q):
    e = expected_frame_time(s, t, tcp, trec, tv, q)
    # Never cheaper than the error-free execution.
    assert e >= s * (t + tv) + tcp - 1e-9
    # Finite for q bounded away from 0.
    assert np.isfinite(e)


@given(
    s=st.integers(1, 30),
    q1=st.floats(0.3, 0.999),
    q2=st.floats(0.3, 0.999),
)
@settings(max_examples=60, deadline=None)
def test_frame_time_monotone_in_q(s, q1, q2):
    lo, hi = sorted((q1, q2))
    e_hi_q = expected_frame_time(s, 1.0, 1.0, 1.0, 0.2, hi)
    e_lo_q = expected_frame_time(s, 1.0, 1.0, 1.0, 0.2, lo)
    assert e_lo_q >= e_hi_q - 1e-9


@given(st.integers(1, 100))
@settings(max_examples=30, deadline=None)
def test_overhead_exceeds_one(s):
    assert frame_overhead(s, 1.0, 0.5, 0.5, 0.1, 0.95) > 1.0
