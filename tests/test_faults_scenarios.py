"""Unit tests for CG-targeted injection plans."""

import numpy as np
import pytest

from repro.faults import CGTargets, IterationFaultPlan


@pytest.fixture
def targets(small_lap):
    n = small_lap.nrows
    return CGTargets(
        matrix=small_lap.copy(),
        vectors={
            "x": np.zeros(n),
            "r": np.zeros(n),
            "p": np.zeros(n),
            "q": np.zeros(n),
        },
    )


class TestCGTargets:
    def test_memory_words(self, targets, small_lap):
        assert targets.memory_words == small_lap.memory_words + 4 * small_lap.nrows


class TestIterationFaultPlan:
    def test_strike_hits_registered_state(self, targets):
        plan = IterationFaultPlan(alpha=0.9, targets=targets, rng=0)
        recs = plan.strike(0, n_strikes=10)
        assert len(recs) == 10
        names = {r.target for r in recs}
        assert names <= {"val", "colid", "rowidx", "x", "r", "p", "q"}

    def test_matrix_only(self, targets):
        plan = IterationFaultPlan(alpha=0.5, targets=targets, rng=1, include_vectors=False)
        recs = plan.strike(0, n_strikes=20)
        assert {r.target for r in recs} <= {"val", "colid", "rowidx"}

    def test_vectors_only(self, targets):
        plan = IterationFaultPlan(alpha=0.5, targets=targets, rng=1, include_matrix=False)
        recs = plan.strike(0, n_strikes=20)
        assert {r.target for r in recs} <= {"x", "r", "p", "q"}

    def test_rebind_vector(self, targets):
        plan = IterationFaultPlan(alpha=0.5, targets=targets, rng=2)
        fresh = np.zeros(targets.matrix.nrows)
        plan.rebind_vector("x", fresh)
        # Force strikes until one hits x (bounded loop, deterministic rng).
        for i in range(50):
            recs = plan.strike(i, n_strikes=5)
            if any(r.target == "x" for r in recs):
                break
        assert np.any(fresh != 0.0)

    def test_rebind_matrix(self, targets, small_lap):
        plan = IterationFaultPlan(alpha=0.5, targets=targets, rng=3)
        restored = small_lap.copy()
        plan.rebind_matrix(restored)
        assert plan.targets.matrix is restored

    def test_records_accumulate(self, targets):
        plan = IterationFaultPlan(alpha=0.5, targets=targets, rng=4)
        plan.strike(0, n_strikes=2)
        plan.strike(1, n_strikes=3)
        assert len(plan.records) == 5
        assert [r.iteration for r in plan.records] == [0, 0, 1, 1, 1]
