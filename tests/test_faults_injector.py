"""Unit tests for the Poisson fault model and injector."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultModel


class TestFaultModel:
    def test_rates(self):
        m = FaultModel(alpha=0.25, memory_words=1000)
        assert m.word_rate == pytest.approx(0.25 / 1000)
        assert m.rate == pytest.approx(0.25)
        assert m.normalized_mtbf == pytest.approx(4.0)

    def test_chunk_success_probability(self):
        m = FaultModel(alpha=0.1, memory_words=100)
        assert m.chunk_success_probability(1.0) == pytest.approx(np.exp(-0.1))
        assert m.chunk_success_probability(5.0) == pytest.approx(np.exp(-0.5))

    def test_mean_strikes_matches_alpha(self, rng):
        m = FaultModel(alpha=0.5, memory_words=100)
        samples = [m.strikes_per_iteration(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(0.5, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(alpha=0.0, memory_words=10)
        with pytest.raises(ValueError):
            FaultModel(alpha=0.1, memory_words=0)


class TestInjector:
    @pytest.fixture
    def injector(self):
        m = FaultModel(alpha=0.5, memory_words=30)
        inj = FaultInjector(m, rng=0)
        inj.register("a", np.zeros(10))
        inj.register("b", np.zeros(20, dtype=np.int64))
        return inj

    def test_registry(self, injector):
        assert set(injector.target_names) == {"a", "b"}
        assert injector.total_words == 30

    def test_unregister(self, injector):
        injector.unregister("a")
        assert injector.target_names == ["b"]

    def test_register_rejects_bad_dtype(self, injector):
        with pytest.raises(TypeError):
            injector.register("c", np.zeros(5, dtype=np.float32))

    def test_sample_does_not_apply(self, injector):
        strikes = injector.sample_strikes(n_strikes=5)
        assert len(strikes) == 5
        assert injector.records == []

    def test_apply_strike_mutates_and_records(self, injector):
        rec = injector.apply_strike(3, ("a", 2, 63))
        assert rec.iteration == 3
        assert rec.target == "a"
        assert rec.old_value == 0.0
        assert rec.new_value != 0.0 or rec.new_value == -0.0
        assert len(injector.records) == 1

    def test_revert_restores(self, injector):
        rec = injector.apply_strike(0, ("b", 5, 10))
        injector.revert(rec)
        # access the registered array through a fresh strike to confirm
        strikes = injector.sample_strikes(n_strikes=0)
        assert strikes == []
        assert injector._targets["b"][5] == 0

    def test_inject_iteration_deterministic(self):
        m = FaultModel(alpha=0.5, memory_words=30)
        arrays = [np.zeros(30), np.zeros(30)]
        recs = []
        for arr in arrays:
            inj = FaultInjector(m, rng=42)
            inj.register("a", arr)
            recs.append([(r.target, r.position, r.bit) for r in inj.inject_iteration(0, n_strikes=4)])
        assert recs[0] == recs[1]
        np.testing.assert_array_equal(arrays[0], arrays[1])

    def test_strike_distribution_proportional_to_size(self):
        m = FaultModel(alpha=1.0, memory_words=1000)
        inj = FaultInjector(m, rng=7)
        inj.register("small", np.zeros(100))
        inj.register("large", np.zeros(900))
        strikes = inj.sample_strikes(n_strikes=3000)
        frac_large = sum(1 for s in strikes if s[0] == "large") / 3000
        assert frac_large == pytest.approx(0.9, abs=0.03)

    def test_no_targets_no_strikes(self):
        m = FaultModel(alpha=1.0, memory_words=10)
        inj = FaultInjector(m, rng=0)
        assert inj.sample_strikes(n_strikes=3) == []
