"""Unit and property tests for repro.adaptive — the sequential
stopping rule, its online accumulator and the policy grammar."""

import math
import random
import statistics

import pytest

from repro.adaptive import (
    SamplingPolicy,
    Welford,
    ci_bounds,
    half_width,
    resolve_sampling,
    t_critical,
)


class TestTCritical:
    def test_published_table_values(self):
        # Student-t two-sided critical values from standard tables.
        table = {
            (0.95, 1): 12.706, (0.95, 2): 4.303, (0.95, 5): 2.571,
            (0.95, 10): 2.228, (0.95, 30): 2.042, (0.95, 100): 1.984,
            (0.99, 5): 4.032, (0.99, 30): 2.750, (0.90, 10): 1.812,
        }
        for (conf, df), expected in table.items():
            assert t_critical(conf, df) == pytest.approx(expected, abs=5e-4)

    def test_monotone_decreasing_in_df(self):
        vals = [t_critical(0.95, df) for df in range(1, 200)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_monotone_increasing_in_confidence(self):
        vals = [t_critical(c, 9) for c in (0.5, 0.8, 0.9, 0.95, 0.99, 0.999)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_approaches_normal_quantile(self):
        # t -> z as df -> inf; z_{0.975} = 1.959964...
        assert t_critical(0.95, 100000) == pytest.approx(1.95996, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            t_critical(0.0, 5)
        with pytest.raises(ValueError):
            t_critical(1.0, 5)
        with pytest.raises(ValueError):
            t_critical(0.95, 0)


class TestWelford:
    def test_matches_statistics_within_one_ulp(self):
        # Across 14 orders of magnitude the compensated accumulator
        # must agree with the exact two-pass reference to <= 1 ulp.
        for scale_exp in (-12, -3, 0, 3, 12):
            for seed in range(30):
                rng = random.Random((scale_exp, seed).__hash__() & 0xffffffff)
                n = rng.randint(4, 48)
                xs = [rng.uniform(1.0, 2.0) * 10.0 ** scale_exp for _ in range(n)]
                acc = Welford(xs)
                ref_mean = statistics.mean(xs)
                ref_std = statistics.stdev(xs)
                assert abs(acc.mean - ref_mean) <= math.ulp(ref_mean), (
                    scale_exp, seed)
                assert abs(acc.std - ref_std) <= math.ulp(ref_std), (
                    scale_exp, seed)

    def test_incremental_equals_bulk(self):
        xs = [3.0, 1.0, 4.0, 1.5, 9.2, 6.5]
        acc = Welford()
        for x in xs:
            acc.push(x)
        bulk = Welford(xs)
        assert acc.n == bulk.n == len(xs)
        assert acc.mean == bulk.mean
        assert acc.std == bulk.std

    def test_degenerate_counts(self):
        acc = Welford()
        assert acc.n == 0 and acc.mean == 0.0 and acc.std == 0.0
        acc.push(7.0)
        assert acc.n == 1 and acc.mean == 7.0 and acc.std == 0.0

    def test_zero_variance(self):
        acc = Welford([5.0] * 10)
        assert acc.std == 0.0
        assert acc.variance == 0.0

    def test_variance_never_negative(self):
        # Catastrophic cancellation must clamp at 0, not go negative.
        acc = Welford([1e15 + 1.0] * 50)
        assert acc.variance >= 0.0


class TestHalfWidth:
    def test_zero_below_two_samples(self):
        assert half_width(0, 1.0, 0.95) == 0.0
        assert half_width(1, 1.0, 0.95) == 0.0

    def test_monotone_nonincreasing_in_n(self):
        # At fixed std the half-width must shrink (weakly) with every
        # extra repetition — the property that guarantees the stopping
        # loop terminates before the cap whenever variance stabilizes.
        widths = [half_width(n, 2.5, 0.95) for n in range(2, 120)]
        assert all(a >= b for a, b in zip(widths, widths[1:]))

    def test_formula(self):
        hw = half_width(10, 3.0, 0.95)
        assert hw == pytest.approx(t_critical(0.95, 9) * 3.0 / math.sqrt(10))


class TestCiBounds:
    def test_none_below_two_samples(self):
        assert ci_bounds(5.0, 0.0, 1, 0.95) is None
        assert ci_bounds(5.0, 0.0, 0, 0.95) is None

    def test_symmetric_around_mean(self):
        lo, hi = ci_bounds(10.0, 2.0, 8, 0.95)
        assert lo < 10.0 < hi
        assert (10.0 - lo) == pytest.approx(hi - 10.0)

    def test_zero_variance_degenerate_interval(self):
        lo, hi = ci_bounds(10.0, 0.0, 5, 0.95)
        assert lo == hi == 10.0


class TestSamplingPolicy:
    def test_parse_roundtrip(self):
        p = SamplingPolicy.parse("ci=0.05,conf=0.95,min=5,max=200")
        assert p == SamplingPolicy(ci=0.05, confidence=0.95, min_reps=5,
                                   max_reps=200)
        assert p.spec() == "ci=0.05,conf=0.95,min=5,max=200"
        assert SamplingPolicy.parse(p.spec()) == p

    def test_parse_any_order_and_optionals(self):
        p = SamplingPolicy.parse("max=50,min=3,conf=0.9,ci=2.5,target=abs,batch=4")
        assert p.ci == 2.5 and not p.relative and p.batch == 4
        assert SamplingPolicy.parse(p.spec()) == p

    def test_parse_defaults_for_omitted_keys(self):
        assert SamplingPolicy.parse("") == SamplingPolicy()
        assert SamplingPolicy.parse("ci=0.02") == SamplingPolicy(ci=0.02)

    @pytest.mark.parametrize("bad", [
        "ci=0.05,conf=0.95,min=5,max=200,bogus=1",
        "ci=0.05,conf=0.95,min=5,max=200,ci=0.1",
        "ci=x,conf=0.95,min=5,max=200",
        "ci=0.05,conf=1.5,min=5,max=200",
        "ci=0.05,conf=0.95,min=0,max=200",
        "ci=0.05,conf=0.95,min=10,max=5",
        "ci=-1,conf=0.95,min=5,max=200",
        "ci=0.05,conf=0.95,min=5,max=200,target=weird",
        "ci=0.05,conf=0.95,min=5,max=200,batch=0",
        "nonsense",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            SamplingPolicy.parse(bad)

    def test_resolve_sampling(self):
        assert resolve_sampling("") is None
        assert resolve_sampling(None) is None
        p = SamplingPolicy()
        assert resolve_sampling(p) is p
        assert resolve_sampling("ci=0.1,conf=0.9,min=2,max=9").max_reps == 9

    def test_min_and_max_reps_respected(self):
        p = SamplingPolicy(ci=1e9, confidence=0.95, min_reps=4, max_reps=10)
        # A huge target still cannot stop before min_reps...
        assert not p.should_stop(3, 100.0, 50.0)
        assert p.should_stop(4, 100.0, 50.0)
        # ...and an unreachable target must stop at the cap.
        tight = SamplingPolicy(ci=1e-12, confidence=0.95, min_reps=2,
                               max_reps=10)
        assert not tight.should_stop(9, 100.0, 50.0)
        assert tight.should_stop(10, 100.0, 50.0)

    def test_zero_variance_stops_at_min_reps(self):
        p = SamplingPolicy(ci=0.01, confidence=0.99, min_reps=3, max_reps=500)
        assert not p.should_stop(2, 42.0, 0.0)
        assert p.should_stop(3, 42.0, 0.0)

    def test_relative_vs_absolute_target(self):
        rel = SamplingPolicy(ci=0.1, confidence=0.95, min_reps=2, max_reps=100)
        ab = SamplingPolicy(ci=5.0, confidence=0.95, min_reps=2, max_reps=100,
                            relative=False)
        assert rel.target_width(200.0) == pytest.approx(20.0)
        assert ab.target_width(200.0) == 5.0
        # std such that hw(n=10) ~= t * std / sqrt(10)
        std = 10.0 / t_critical(0.95, 9) * math.sqrt(10)
        assert rel.should_stop(10, 200.0, std)  # hw ~10 <= 20
        assert not ab.should_stop(10, 200.0, std)  # hw ~10 > 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(ci=0.0)
        with pytest.raises(ValueError):
            SamplingPolicy(confidence=1.0)
        with pytest.raises(ValueError):
            SamplingPolicy(min_reps=0)
        with pytest.raises(ValueError):
            SamplingPolicy(min_reps=20, max_reps=10)
        with pytest.raises(ValueError):
            SamplingPolicy(batch=0)
