"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro.core import CostModel, Scheme, SchemeConfig, cg, run_ft_cg
from repro.model import model_for_scheme
from repro.sim.engine import make_rhs, repeat_run
from repro.sim.matrices import suite_specs
from repro.sparse import stencil_spd


@pytest.fixture(scope="module")
def suite_matrix():
    spec = suite_specs([1311])[0]
    a = spec.instantiate(scale=48)
    return a, make_rhs(a)


class TestSchemesAgree:
    """All three schemes must land on the same solution under faults."""

    def test_same_solution_all_schemes(self, suite_matrix):
        a, b = suite_matrix
        plain = cg(a, b, eps=1e-8)
        xs = []
        for scheme, d in [
            (Scheme.ONLINE_DETECTION, 3),
            (Scheme.ABFT_DETECTION, 1),
            (Scheme.ABFT_CORRECTION, 1),
        ]:
            cfg = SchemeConfig(scheme, checkpoint_interval=6, verification_interval=d)
            res = run_ft_cg(a, b, cfg, alpha=0.08, rng=2, eps=1e-8)
            assert res.converged, scheme
            xs.append(res.x)
        for x in xs:
            np.testing.assert_allclose(a.matvec(x), b, atol=10 * plain.threshold)


class TestModelPredictsSimulation:
    """The Eq.-6 model must rank checkpoint intervals like the simulator
    does — the essence of Table 1."""

    def test_model_interval_near_empirical(self):
        a = stencil_spd(900, kind="cross", radius=2)
        b = make_rhs(a)
        costs = CostModel.from_matrix(a)
        alpha = 1 / 8  # high rate so interval choice matters
        model = model_for_scheme(Scheme.ABFT_DETECTION, alpha, costs)
        s_model = model.optimal(s_max=100).s

        cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=1, costs=costs)
        times = {}
        for s in (1, s_model, 4 * s_model + 8):
            stats = repeat_run(
                a, b, cfg.with_intervals(s=s), alpha=alpha, reps=6, base_seed=3, eps=1e-6
            )
            times[s] = stats.mean_time
        # The model's choice beats both a far-too-small and a
        # far-too-large interval.
        assert times[s_model] < times[1]
        assert times[s_model] < times[4 * s_model + 8]

    def test_correction_model_q_matches_simulation(self):
        """Fraction of iterations with ≤1 strike ≈ e^{-α}(1+α)."""
        a = stencil_spd(625, kind="cross", radius=1)
        b = make_rhs(a)
        alpha = 0.5
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=5)
        res = run_ft_cg(a, b, cfg, alpha=alpha, rng=7, eps=1e-6, maxiter=4000)
        # Iterations that did not roll back ÷ executed ≈ q.
        q_model = np.exp(-alpha) * (1 + alpha)
        q_sim = 1 - res.counters.rollbacks / res.iterations_executed
        assert q_sim == pytest.approx(q_model, abs=0.12)


class TestParallelConsistency:
    def test_distributed_matches_protected_sequential(self, suite_matrix, rng):
        from repro.abft import compute_checksums, protected_spmv
        from repro.parallel import DistributedSpmv

        a, _ = suite_matrix
        x = rng.normal(size=a.ncols)
        seq = protected_spmv(a, x.copy(), compute_checksums(a, nchecks=2))
        par = DistributedSpmv(a, 4).multiply(x)
        np.testing.assert_allclose(par.y, seq.y, rtol=1e-12)


class TestRecoveryAudit:
    def test_counters_consistent_with_events(self, suite_matrix):
        from repro.util.log import EventLog

        a, b = suite_matrix
        log = EventLog()
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=5)
        res = run_ft_cg(a, b, cfg, alpha=0.2, rng=1, eps=1e-6, event_log=log)
        assert log.count("checkpoint") == res.counters.checkpoints
        assert log.count("correction") == res.counters.total_corrections
        assert (
            log.count("rollback") + log.count("refresh-rollback")
            == res.counters.rollbacks
        )

    def test_fault_records_match_counter(self, suite_matrix):
        a, b = suite_matrix
        cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=5)
        res = run_ft_cg(a, b, cfg, alpha=0.15, rng=4, eps=1e-6)
        assert res.counters.faults_injected > 0
