"""Tests for the resilience engine, its plugins and the method axis."""

import numpy as np
import pytest

from repro.core import (
    Method,
    Scheme,
    SchemeConfig,
    pcg,
    run_ft_bicgstab,
    run_ft_cg,
    run_ft_method,
    run_ft_pcg,
)
from repro.resilience import (
    BiCGstabPlugin,
    CGPlugin,
    JacobiPCGPlugin,
    make_plugin,
    run_protected,
)
from repro.sim.engine import make_rhs, repeat_run
from repro.sparse import stencil_spd
from repro.util.log import EventLog


@pytest.fixture(scope="module")
def problem():
    a = stencil_spd(900, kind="cross", radius=2)
    return a, make_rhs(a)


def config(scheme, s=8, d=1):
    return SchemeConfig(scheme, checkpoint_interval=s, verification_interval=d)


class TestMethodEnum:
    def test_parse(self):
        assert Method.parse("cg") is Method.CG
        assert Method.parse("PCG") is Method.PCG
        assert Method.parse(Method.BICGSTAB) is Method.BICGSTAB

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown method"):
            Method.parse("gmres")

    def test_scheme_support(self):
        assert Method.CG.supports(Scheme.ONLINE_DETECTION)
        assert not Method.PCG.supports(Scheme.ONLINE_DETECTION)
        assert not Method.BICGSTAB.supports(Scheme.ONLINE_DETECTION)
        for m in Method:
            assert m.supports(Scheme.ABFT_DETECTION)
            assert m.supports(Scheme.ABFT_CORRECTION)

    def test_registry_covers_every_method(self):
        for m in Method:
            plugin = make_plugin(m)
            assert plugin.name == m.value


class TestDispatch:
    def test_run_ft_method_matches_wrappers(self, problem):
        a, b = problem
        cfg = config(Scheme.ABFT_CORRECTION)
        via_method = run_ft_method(Method.CG, a, b, cfg, alpha=0.1, rng=7, eps=1e-6)
        via_wrapper = run_ft_cg(a, b, cfg, alpha=0.1, rng=7, eps=1e-6)
        assert via_method.time_units == via_wrapper.time_units
        np.testing.assert_array_equal(via_method.x, via_wrapper.x)

    def test_run_ft_method_accepts_strings(self, problem):
        a, b = problem
        cfg = config(Scheme.ABFT_DETECTION)
        r1 = run_ft_method("bicgstab", a, b, cfg, alpha=0.1, rng=3, eps=1e-6)
        r2 = run_ft_bicgstab(a, b, cfg, alpha=0.1, rng=3, eps=1e-6)
        assert r1.time_units == r2.time_units

    def test_plugins_are_single_use_fresh(self):
        assert make_plugin("cg") is not make_plugin("cg")


class TestFTPCG:
    @pytest.mark.parametrize("scheme", [Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION])
    def test_converges_without_faults(self, problem, scheme):
        a, b = problem
        res = run_ft_pcg(a, b, config(scheme), alpha=0.0, rng=0, eps=1e-6)
        assert res.converged
        assert res.residual_norm <= res.threshold
        assert res.counters.rollbacks == 0

    def test_matches_plain_pcg_iterations(self, problem):
        """Fault-free FT-PCG is plain Jacobi-PCG plus protection."""
        a, b = problem
        from repro.core import jacobi_preconditioner

        plain = pcg(a, b, preconditioner=jacobi_preconditioner(a), eps=1e-6)
        ft = run_ft_pcg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, rng=0, eps=1e-6)
        assert ft.converged
        np.testing.assert_allclose(ft.x, plain.x, rtol=1e-6, atol=1e-8)

    def test_preconditioning_beats_plain_cg(self, problem):
        """The diagonal preconditioner must pay for itself in iterations."""
        a, b = problem
        ft_cg = run_ft_cg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, rng=0, eps=1e-6)
        ft_pcg = run_ft_pcg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, rng=0, eps=1e-6)
        assert ft_pcg.iterations < ft_cg.iterations

    @pytest.mark.parametrize("scheme", [Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION])
    def test_converges_under_injection(self, problem, scheme):
        a, b = problem
        res = run_ft_pcg(a, b, config(scheme), alpha=0.1, rng=42, eps=1e-6)
        assert res.converged
        assert res.counters.faults_injected > 0
        assert res.residual_norm <= res.threshold

    def test_correction_forward_recovers(self, problem):
        a, b = problem
        res = run_ft_pcg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.25, rng=11, eps=1e-6)
        assert res.converged
        assert res.counters.total_corrections > 0
        assert res.counters.rollbacks < res.counters.total_corrections

    def test_detection_rolls_back(self, problem):
        a, b = problem
        res = run_ft_pcg(a, b, config(Scheme.ABFT_DETECTION), alpha=0.25, rng=11, eps=1e-6)
        assert res.converged
        assert res.counters.rollbacks > 0
        assert res.counters.total_corrections == 0

    def test_determinism(self, problem):
        a, b = problem
        r1 = run_ft_pcg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.2, rng=5, eps=1e-6)
        r2 = run_ft_pcg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.2, rng=5, eps=1e-6)
        assert r1.time_units == r2.time_units
        np.testing.assert_array_equal(r1.x, r2.x)

    def test_input_matrix_never_mutated(self, problem):
        a, b = problem
        snap = a.copy()
        run_ft_pcg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.3, rng=2, eps=1e-6)
        assert a.equals(snap)

    def test_online_scheme_rejected(self, problem):
        a, b = problem
        with pytest.raises(ValueError, match="ABFT"):
            run_ft_pcg(a, b, SchemeConfig(Scheme.ONLINE_DETECTION, verification_interval=4))

    def test_zero_diagonal_rejected(self):
        from repro.sparse import CSRMatrix

        dense = np.array([[0.0, 1.0], [1.0, 2.0]])
        a = CSRMatrix.from_dense(dense)
        with pytest.raises(ValueError, match="zero-free diagonal"):
            run_ft_pcg(a, np.ones(2), config(Scheme.ABFT_DETECTION))

    def test_breakdown_sums(self, problem):
        a, b = problem
        res = run_ft_pcg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.15, rng=9, eps=1e-6)
        assert res.breakdown.total == pytest.approx(res.time_units)

    def test_event_log_records_recoveries(self, problem):
        a, b = problem
        log = EventLog()
        res = run_ft_pcg(
            a, b, config(Scheme.ABFT_CORRECTION), alpha=0.3, rng=11, eps=1e-6, event_log=log
        )
        kinds = {ev.kind for ev in log.events}
        assert "checkpoint" in kinds
        if res.counters.total_corrections:
            assert "correction" in kinds


class TestEngineGenerics:
    def test_run_protected_rejects_scheme_before_work(self, problem):
        a, b = problem
        with pytest.raises(ValueError, match="ABFT"):
            run_protected(
                BiCGstabPlugin(), a, b,
                SchemeConfig(Scheme.ONLINE_DETECTION, verification_interval=4),
            )

    def test_plugin_vector_registration_order(self, problem):
        """The injector registration order is part of the RNG contract."""
        assert list(_init_plugin(CGPlugin(), problem).vectors) == ["x", "r", "p", "q"]
        assert list(_init_plugin(BiCGstabPlugin(), problem).vectors) == [
            "x", "r", "r_hat", "p", "v", "s",
        ]
        assert list(_init_plugin(JacobiPCGPlugin(), problem).vectors) == [
            "x", "r", "p", "q", "z",
        ]

    def test_memory_words_scale_with_vector_count(self, problem):
        """λ = α/M must count each plugin's actual protected state."""
        a, b = problem
        cg_plugin = _init_plugin(CGPlugin(), problem)
        pcg_plugin = _init_plugin(JacobiPCGPlugin(), problem)
        assert len(pcg_plugin.vectors) == len(cg_plugin.vectors) + 1

    def test_max_time_units_bails(self, problem):
        a, b = problem
        res = run_ft_pcg(
            a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, rng=0, eps=1e-14,
            max_time_units=10.0,
        )
        assert res.time_units <= 13.0  # one iteration of slack

    def test_maxiter_bails(self, problem):
        a, b = problem
        res = run_ft_pcg(
            a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, rng=0, eps=1e-14, maxiter=7
        )
        assert res.iterations_executed == 7
        assert not res.converged


def _init_plugin(plugin, problem):
    a, b = problem
    plugin.init_state(a, a.copy(), b, None, config(Scheme.ABFT_DETECTION))
    return plugin


class TestRepeatRunMethodAxis:
    def test_cg_seeding_unchanged(self, problem):
        """method=cg must reproduce the historical seed derivation."""
        a, b = problem
        cfg = config(Scheme.ABFT_DETECTION)
        base = repeat_run(a, b, cfg, alpha=0.1, reps=2, base_seed=9, labels=("t", 1))
        via_enum = repeat_run(
            a, b, cfg, alpha=0.1, reps=2, base_seed=9, labels=("t", 1), method=Method.CG
        )
        via_str = repeat_run(
            a, b, cfg, alpha=0.1, reps=2, base_seed=9, labels=("t", 1), method="cg"
        )
        assert base == via_enum == via_str

    def test_methods_get_distinct_fault_streams(self, problem):
        a, b = problem
        cfg = config(Scheme.ABFT_DETECTION)
        kw = dict(alpha=0.1, reps=2, base_seed=9, labels=("t", 1))
        r_cg = repeat_run(a, b, cfg, method="cg", **kw)
        r_pcg = repeat_run(a, b, cfg, method="pcg", **kw)
        r_bi = repeat_run(a, b, cfg, method="bicgstab", **kw)
        assert len({r_cg.mean_time, r_pcg.mean_time, r_bi.mean_time}) == 3
