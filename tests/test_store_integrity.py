"""Record seals (CRC32), verify/repair/compact, and crash salvage.

Covers the store half of docs/DESIGN.md §10: every JSONL-family append
is checksummed, corruption is detected (and either raised or skipped,
per backend contract), torn tails left by killed writers are salvaged,
and the ``repro store verify | repair | compact`` tooling turns a
damaged store back into a clean one that resumes with zero recompute
of the surviving records.
"""

import json
import multiprocessing
import os
import pathlib
import signal
import time

import pytest

from repro.api.cli import main
from repro.campaign import CampaignSpec, ResultStore, StoreError, run_campaign
from repro.campaign.store import StoreIntegrityWarning
from repro.store import (
    ShardedStore,
    SqliteStore,
    compact_store,
    open_store,
    repair_store,
    verify_store,
)
from repro.store.integrity import (
    CRC_SCHEMA,
    check_record,
    seal_record,
    strip_seal,
)


def _record(h, **extra):
    return {"hash": h, "task": {"uid": 1}, "stats": {"mean_time": 1.5}, **extra}


BACKENDS = {
    "jsonl": lambda tmp: ResultStore(tmp / "r.jsonl"),
    "sharded": lambda tmp: ShardedStore(tmp / "r.d"),
    "sqlite": lambda tmp: SqliteStore(tmp / "r.db"),
}


@pytest.fixture(params=sorted(BACKENDS))
def any_store(request, tmp_path):
    return BACKENDS[request.param](tmp_path)


@pytest.fixture(scope="module")
def small_tasks():
    return CampaignSpec(
        kind="table1", scale=48, reps=1, uids=(2213,), s_span=0
    ).expand()


@pytest.fixture(scope="module")
def serial_records(small_tasks):
    return run_campaign(small_tasks, jobs=1)


# ----------------------------------------------------------------------
# the seal itself
# ----------------------------------------------------------------------
class TestSeal:
    def test_seal_is_final_key_and_verifies(self):
        rec = _record("aaa")
        sealed = seal_record(rec)
        assert list(sealed)[-1] == "crc"
        assert sealed["crc"].startswith(f"{CRC_SCHEMA}:")
        body, verdict = check_record(sealed)
        assert verdict is True and body == rec

    def test_reseal_is_idempotent(self):
        sealed = seal_record(_record("aaa"))
        assert seal_record(sealed) == sealed

    def test_tamper_is_detected(self):
        sealed = seal_record(_record("aaa"))
        tampered = dict(sealed)
        tampered["stats"] = {"mean_time": 9.5}
        body, verdict = check_record(tampered)
        assert verdict is False and "crc" not in body

    def test_unsealed_record_is_unjudged(self):
        rec = _record("aaa")
        assert check_record(rec) == (rec, None)

    def test_unknown_seal_version_is_stripped_not_judged(self):
        rec = _record("aaa")
        rec["crc"] = "999:deadbeef"
        body, verdict = check_record(rec)
        assert verdict is None and body == _record("aaa")
        assert strip_seal(rec) == _record("aaa")

    def test_strip_seal_passthrough_without_crc(self):
        rec = _record("aaa")
        assert strip_seal(rec) is rec


class TestSealedRoundTrip:
    def test_loaded_records_equal_appended(self, any_store):
        recs = [_record("aaa"), _record("bbb", kind="quarantine")]
        for rec in recs:
            any_store.append(rec)
        loaded = any_store.load()
        assert loaded == {r["hash"]: r for r in recs}
        assert all("crc" not in r for r in loaded.values())

    def test_seal_written_to_disk_jsonl(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("aaa"))
        line = json.loads((tmp_path / "r.jsonl").read_text().splitlines()[0])
        assert line["crc"].startswith(f"{CRC_SCHEMA}:")

    def test_preseal_stores_still_read(self, tmp_path):
        # A store written before checksumming existed: plain lines.
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(_record("aaa")) + "\n")
        store = ResultStore(path)
        assert store.load() == {"aaa": _record("aaa")}
        report = store.verify()
        assert report["unsealed"] == 1 and report["corrupt"] == 0


# ----------------------------------------------------------------------
# bit rot per backend contract
# ----------------------------------------------------------------------
def _rot_jsonl_line(path: pathlib.Path, index: int = 0) -> None:
    """Flip a payload digit on line ``index`` without breaking JSON —
    the CRC must be what catches it."""
    lines = path.read_text().splitlines()
    assert '"mean_time": 1.5' in lines[index]
    lines[index] = lines[index].replace('"mean_time": 1.5', '"mean_time": 9.5')
    path.write_text("".join(line + "\n" for line in lines))


class TestBitRot:
    def test_jsonl_strict_raises(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("aaa"))
        store.append(_record("bbb"))
        _rot_jsonl_line(tmp_path / "r.jsonl", 0)
        with pytest.raises(StoreError, match="checksum"):
            list(ResultStore(tmp_path / "r.jsonl").iter_records())

    def test_jsonl_iter_intact_skips_and_counts(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("aaa"))
        store.append(_record("bbb"))
        _rot_jsonl_line(tmp_path / "r.jsonl", 0)
        fresh = ResultStore(tmp_path / "r.jsonl")
        with pytest.warns(StoreIntegrityWarning, match="skipping corrupt"):
            kept = [r["hash"] for r in fresh.iter_intact()]
        assert kept == ["bbb"] and fresh.corrupt_skipped == 1

    def test_sharded_reader_skips_and_counts(self, tmp_path):
        store = ShardedStore(tmp_path / "r.d")
        store.append(_record("aaa"))
        store.append(_record("bbb"))
        shard = next(
            p
            for p in sorted((tmp_path / "r.d").glob("shard-*.jsonl"))
            if '"aaa"' in p.read_text()
        )
        _rot_jsonl_line(shard, 0)
        fresh = ShardedStore(tmp_path / "r.d")
        with pytest.warns(StoreIntegrityWarning, match="skipping corrupt"):
            assert set(fresh.load()) == {"bbb"}
        assert fresh.corrupt_skipped == 1

    def test_sqlite_strict_raises_but_intact_skips(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        store.append(_record("aaa"))
        store.append(_record("bbb"))
        store.close()
        import sqlite3

        conn = sqlite3.connect(tmp_path / "r.db")
        conn.execute(
            "UPDATE records SET body = replace(body, '1.5', '9.5') "
            "WHERE hash = 'aaa'"
        )
        conn.commit()
        conn.close()
        fresh = SqliteStore(tmp_path / "r.db")
        with pytest.raises(StoreError, match="checksum"):
            list(fresh.iter_records())
        # transactional appends leave no benign crash footprint, so
        # corruption raises on the normal path; repair's intact walk
        # still skips and counts instead.
        assert [r["hash"] for r in fresh.iter_intact()] == ["bbb"]
        assert fresh.verify()["corrupt"] == 1


# ----------------------------------------------------------------------
# verify / repair / compact
# ----------------------------------------------------------------------
class TestVerifyStore:
    def test_healthy_store(self, any_store):
        any_store.append(_record("aaa"))
        any_store.append(_record("bbb"))
        report = verify_store(any_store)
        assert report["records"] == 2
        assert report["sealed"] == 2 and report["unsealed"] == 0
        assert report["corrupt"] == 0 and report["torn_tail"] is False
        assert report["url"] == any_store.url

    def test_torn_tail_is_reported(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("aaa"))
        with open(tmp_path / "r.jsonl", "ab") as fh:
            fh.write(b'{"hash": "torn", "task"')
        report = verify_store(f"{tmp_path / 'r.jsonl'}")
        assert report["torn_tail"] is True and report["records"] == 1

    def test_corrupt_is_counted(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("aaa"))
        store.append(_record("bbb"))
        _rot_jsonl_line(tmp_path / "r.jsonl", 1)
        report = verify_store(str(tmp_path / "r.jsonl"))
        assert report["corrupt"] == 1 and report["records"] == 1


class TestRepairStore:
    def test_repair_keeps_intact_drops_corrupt(self, tmp_path):
        src = ResultStore(tmp_path / "src.jsonl")
        for h in ("aaa", "bbb", "ccc"):
            src.append(_record(h))
        _rot_jsonl_line(tmp_path / "src.jsonl", 1)
        with pytest.warns(StoreIntegrityWarning):
            kept, dropped = repair_store(
                str(tmp_path / "src.jsonl"), str(tmp_path / "dst.jsonl")
            )
        assert (kept, dropped) == (2, 1)
        dst = ResultStore(tmp_path / "dst.jsonl")
        assert set(dst.load()) == {"aaa", "ccc"}
        assert dst.verify()["corrupt"] == 0


class TestCompactStore:
    def _populated(self, tmp_path):
        src = ResultStore(tmp_path / "src.jsonl")
        src.append(_record("aaa", v=1))
        src.append(_record("bbb"))
        src.append(_record("aaa", v=2))  # duplicate: last wins
        src.append({"hash": "telemetry:x", "kind": "telemetry", "counters": {}})
        src.append(_record("ccc", kind="quarantine"))
        return src

    def test_folds_last_wins_and_drops_telemetry(self, tmp_path):
        self._populated(tmp_path)
        kept = compact_store(
            str(tmp_path / "src.jsonl"), str(tmp_path / "dst.jsonl")
        )
        assert kept == 3
        loaded = ResultStore(tmp_path / "dst.jsonl").load()
        assert loaded == {
            "aaa": _record("aaa", v=2),
            "bbb": _record("bbb"),
            "ccc": _record("ccc", kind="quarantine"),
        }
        # first-appearance order is preserved on disk
        order = [
            json.loads(line)["hash"]
            for line in (tmp_path / "dst.jsonl").read_text().splitlines()
        ]
        assert order == ["aaa", "bbb", "ccc"]

    def test_drop_quarantined_unsettles_the_task(self, tmp_path):
        self._populated(tmp_path)
        kept = compact_store(
            str(tmp_path / "src.jsonl"),
            str(tmp_path / "dst.jsonl"),
            drop_quarantined=True,
        )
        assert kept == 2
        assert set(ResultStore(tmp_path / "dst.jsonl").load()) == {"aaa", "bbb"}

    def test_drop_quarantined_removes_earlier_record_too(self, tmp_path):
        src = ResultStore(tmp_path / "src.jsonl")
        src.append(_record("aaa", v=1))
        src.append(_record("aaa", kind="quarantine"))
        compact_store(
            str(tmp_path / "src.jsonl"),
            str(tmp_path / "dst.jsonl"),
            drop_quarantined=True,
        )
        assert ResultStore(tmp_path / "dst.jsonl").load() == {}

    def test_drops_partials_of_settled_tasks_only(self, tmp_path):
        from repro.campaign.executor import make_partial_record

        per_rep = {
            "times": [1.0], "iterations": [3], "rollbacks": [0],
            "corrections": [0], "faults": [0], "converged": [True],
        }
        src = ResultStore(tmp_path / "src.jsonl")
        # "aaa" finished after its checkpoint; "bbb" is still in flight.
        src.append(make_partial_record("aaa", per_rep))
        src.append(_record("aaa"))
        src.append(make_partial_record("bbb", per_rep))
        kept = compact_store(
            str(tmp_path / "src.jsonl"), str(tmp_path / "dst.jsonl")
        )
        assert kept == 2
        loaded = ResultStore(tmp_path / "dst.jsonl").load()
        assert set(loaded) == {"aaa", "partial:bbb"}

    def test_drop_quarantined_revives_the_partial_checkpoint(self, tmp_path):
        from repro.campaign.executor import make_partial_record

        per_rep = {
            "times": [1.0], "iterations": [3], "rollbacks": [0],
            "corrections": [0], "faults": [0], "converged": [True],
        }
        src = ResultStore(tmp_path / "src.jsonl")
        src.append(make_partial_record("aaa", per_rep))
        src.append(_record("aaa", kind="quarantine"))
        # Keeping the quarantine settles the task: the checkpoint dies.
        compact_store(str(tmp_path / "src.jsonl"), str(tmp_path / "q.jsonl"))
        assert set(ResultStore(tmp_path / "q.jsonl").load()) == {"aaa"}
        # Dropping it un-settles the task: the checkpoint survives, so
        # the retried task resumes from its prefix.
        compact_store(
            str(tmp_path / "src.jsonl"), str(tmp_path / "dst.jsonl"),
            drop_quarantined=True,
        )
        assert set(ResultStore(tmp_path / "dst.jsonl").load()) == {
            "partial:aaa"
        }

    def test_refuses_populated_destination(self, tmp_path):
        self._populated(tmp_path)
        ResultStore(tmp_path / "dst.jsonl").append(_record("zzz"))
        with pytest.raises(ValueError, match="already has records"):
            compact_store(
                str(tmp_path / "src.jsonl"), str(tmp_path / "dst.jsonl")
            )

    def test_refuses_self_target(self, tmp_path):
        self._populated(tmp_path)
        with pytest.raises(ValueError, match="onto itself"):
            compact_store(
                str(tmp_path / "src.jsonl"), str(tmp_path / "src.jsonl")
            )

    def test_cross_backend_compaction(self, tmp_path):
        self._populated(tmp_path)
        kept = compact_store(
            str(tmp_path / "src.jsonl"), f"sqlite:{tmp_path / 'dst.db'}"
        )
        assert kept == 3
        assert set(open_store(f"sqlite:{tmp_path / 'dst.db'}").load()) == {
            "aaa",
            "bbb",
            "ccc",
        }


# ----------------------------------------------------------------------
# the CLI face
# ----------------------------------------------------------------------
class TestStoreCli:
    def test_verify_healthy_exits_0(self, tmp_path, capsys):
        ResultStore(tmp_path / "r.jsonl").append(_record("aaa"))
        assert main(["store", "verify", str(tmp_path / "r.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "corrupt: 0" in out and "sealed: 1" in out

    def test_verify_corrupt_exits_1_and_json(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("aaa"))
        store.append(_record("bbb"))
        _rot_jsonl_line(tmp_path / "r.jsonl", 0)
        assert main(["store", "verify", "--json", str(tmp_path / "r.jsonl")]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["corrupt"] == 1 and report["records"] == 1

    def test_compact_and_repair_commands(self, tmp_path, capsys):
        src = ResultStore(tmp_path / "src.jsonl")
        src.append(_record("aaa", v=1))
        src.append(_record("aaa", v=2))
        src.append({"hash": "telemetry:x", "kind": "telemetry", "counters": {}})
        src.append(_record("qqq", kind="quarantine"))
        assert (
            main(
                [
                    "store",
                    "compact",
                    "--drop-quarantined",
                    str(tmp_path / "src.jsonl"),
                    str(tmp_path / "dst.jsonl"),
                ]
            )
            == 0
        )
        assert "compacted to 1 record(s)" in capsys.readouterr().out
        assert set(ResultStore(tmp_path / "dst.jsonl").load()) == {"aaa"}

        _rot_jsonl_line(tmp_path / "src.jsonl", 1)
        assert (
            main(
                [
                    "store",
                    "repair",
                    str(tmp_path / "src.jsonl"),
                    str(tmp_path / "fixed.jsonl"),
                ]
            )
            == 0
        )
        assert "dropped 1 corrupt" in capsys.readouterr().out

    def test_compact_refuses_populated_dst_exits_2(self, tmp_path, capsys):
        ResultStore(tmp_path / "src.jsonl").append(_record("aaa"))
        ResultStore(tmp_path / "dst.jsonl").append(_record("bbb"))
        code = main(
            ["store", "compact", str(tmp_path / "src.jsonl"), str(tmp_path / "dst.jsonl")]
        )
        assert code == 2
        assert "already has records" in capsys.readouterr().err

    def test_bare_store_action_usage_error(self, capsys):
        assert main(["store"]) == 2
        assert "verify" in capsys.readouterr().err


# ----------------------------------------------------------------------
# SIGKILLed concurrent writer: salvage + zero-recompute resume
# ----------------------------------------------------------------------
def _writer_main(url, kind, tasks, sentinel):
    """Child: persist a few real records, leave a torn half-record the
    way a process dying mid-``write()`` would, then hang until killed."""
    from repro.campaign import run_campaign

    run_campaign(tasks, jobs=1, store=url)
    target = None
    if kind == "jsonl":
        target = pathlib.Path(url)
    elif kind == "sharded":
        root = pathlib.Path(url.partition(":")[2])
        target = sorted(root.glob("shard-*.jsonl"))[0]
    if target is not None:
        with open(target, "ab") as fh:
            fh.write(b'{"hash": "torn-mid-write", "task"')  # no newline
    pathlib.Path(sentinel).touch()
    time.sleep(60)


class TestKilledWriterSalvage:
    @pytest.mark.parametrize("kind", ["jsonl", "sharded", "sqlite"])
    def test_salvage_and_resume_recomputes_only_missing(
        self, kind, tmp_path, small_tasks, serial_records, monkeypatch
    ):
        if kind == "jsonl":
            url = str(tmp_path / "r.jsonl")
        elif kind == "sharded":
            url = f"sharded:{tmp_path / 'r.d'}"
        else:
            url = f"sqlite:{tmp_path / 'r.db'}"
        sentinel = tmp_path / "written"
        done = 3
        proc = multiprocessing.Process(
            target=_writer_main,
            args=(url, kind, small_tasks[:done], str(sentinel)),
        )
        proc.start()
        deadline = time.monotonic() + 120
        while not sentinel.exists() and time.monotonic() < deadline:
            assert proc.is_alive(), "writer died before finishing"
            time.sleep(0.02)
        assert sentinel.exists()
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(30)

        # Salvage: the torn tail never hides the intact records.
        expected = {
            t.task_hash(): r
            for t, r in zip(small_tasks[:done], serial_records[:done])
        }
        loaded = open_store(url).load()
        tasks_only = {
            h: r for h, r in loaded.items() if r.get("kind") != "telemetry"
        }
        assert tasks_only == expected

        # Resume: only the tasks the dead writer never finished run.
        import repro.campaign.executor as executor

        real = executor.execute_task
        executed = []

        def counting(task, **kw):
            executed.append(task.task_hash())
            return real(task, **kw)

        monkeypatch.setattr(executor, "execute_task", counting)
        records = run_campaign(small_tasks, jobs=1, store=url)
        assert records == serial_records
        assert sorted(executed) == sorted(
            t.task_hash() for t in small_tasks[done:]
        )
