"""Unit tests for the SPD matrix generators."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.sparse import (
    anisotropic_2d,
    banded_spd,
    graph_laplacian_spd,
    laplacian_2d,
    laplacian_3d,
    random_spd,
    stencil_spd,
)
from repro.sparse.generators import diagonally_dominant_spd
from repro.sparse.validate import is_structurally_valid


def _is_spd(a, k: int = 3) -> bool:
    """Check SPD via the smallest eigenvalues (sparse Lanczos)."""
    s = a.to_scipy()
    if s.shape[0] <= 50:
        vals = np.linalg.eigvalsh(s.toarray())
        return bool(vals.min() > 0)
    vals = spla.eigsh(s, k=k, which="SA", return_eigenvectors=False, maxiter=5000)
    return bool(vals.min() > 0)


def _is_symmetric(a) -> bool:
    s = a.to_scipy()
    return bool(abs(s - s.T).max() == 0)


class TestLaplacians:
    def test_laplacian_2d_shape_and_spd(self):
        a = laplacian_2d(12)
        assert a.shape == (144, 144)
        assert _is_symmetric(a)
        assert _is_spd(a)

    def test_laplacian_2d_rectangular_grid(self):
        a = laplacian_2d(6, 9)
        assert a.shape == (54, 54)

    def test_laplacian_3d(self):
        a = laplacian_3d(5)
        assert a.shape == (125, 125)
        assert _is_symmetric(a)
        assert _is_spd(a)

    def test_anisotropic_spd(self):
        a = anisotropic_2d(10, eps=0.1)
        assert _is_spd(a)

    def test_anisotropic_rejects_bad_eps(self):
        with pytest.raises(ValueError, match="eps"):
            anisotropic_2d(10, eps=0.0)


class TestRandomFamilies:
    def test_random_spd_is_spd(self):
        a = random_spd(200, 0.05, seed=1)
        assert _is_symmetric(a)
        assert _is_spd(a)

    def test_random_spd_density_close(self):
        a = random_spd(400, 0.03, seed=2)
        assert a.density == pytest.approx(0.03, rel=0.35)

    def test_random_spd_deterministic(self):
        assert random_spd(100, 0.1, seed=5).equals(random_spd(100, 0.1, seed=5))

    def test_random_spd_seed_changes_matrix(self):
        assert not random_spd(100, 0.1, seed=5).equals(random_spd(100, 0.1, seed=6))

    def test_random_spd_rejects_bad_density(self):
        with pytest.raises(ValueError, match="density"):
            random_spd(10, 0.0)

    def test_banded_spd(self):
        a = banded_spd(150, 4, seed=0)
        assert _is_symmetric(a)
        assert _is_spd(a)
        # Bandwidth respected.
        assert np.all(np.abs(a.colid - np.repeat(np.arange(150), a.row_nnz())) <= 4)

    def test_banded_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            banded_spd(10, 10)

    def test_diagonally_dominant(self):
        a = diagonally_dominant_spd(150, nnz_per_row=6, seed=3)
        assert _is_spd(a)


class TestGraphLaplacian:
    def test_small_uses_networkx_and_is_spd(self):
        a = graph_laplacian_spd(100, avg_degree=4, seed=0)
        assert _is_symmetric(a)
        assert _is_spd(a)

    def test_large_path_is_spd(self):
        a = graph_laplacian_spd(2500, avg_degree=6, seed=0)
        assert _is_symmetric(a)
        assert _is_spd(a)

    def test_unshifted_columns_sum_to_shift(self):
        # Laplacian columns sum to zero, so the shifted matrix's columns
        # sum exactly to the shift — the paper's zero-checksum case.
        a = graph_laplacian_spd(80, avg_degree=4, seed=1, shift=2.5)
        from repro.sparse import column_sums

        np.testing.assert_allclose(column_sums(a), 2.5)


class TestStencil:
    @pytest.mark.parametrize("kind,radius,expect", [("cross", 1, 5), ("cross", 3, 13), ("box", 1, 9), ("box", 2, 25)])
    def test_interior_row_nnz(self, kind, radius, expect):
        a = stencil_spd(400, kind=kind, radius=radius)
        assert a.row_nnz().max() == expect

    def test_spd_and_symmetric(self):
        a = stencil_spd(400, kind="box", radius=2)
        assert _is_symmetric(a)
        assert _is_spd(a)

    def test_row_sums_equal_shift(self):
        a = stencil_spd(300, kind="cross", radius=2, shift=0.125)
        from repro.sparse import row_sums

        np.testing.assert_allclose(row_sums(a), 0.125, atol=1e-12)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="radius"):
            stencil_spd(100, radius=0)
        with pytest.raises(ValueError, match="kind"):
            stencil_spd(100, kind="hex")
        with pytest.raises(ValueError, match="shift"):
            stencil_spd(100, shift=0.0)

    def test_anisotropy_changes_values_not_pattern(self):
        a = stencil_spd(400, kind="cross", radius=2, anisotropy=1.0)
        b = stencil_spd(400, kind="cross", radius=2, anisotropy=2.0)
        np.testing.assert_array_equal(a.colid, b.colid)
        assert not np.allclose(a.val, b.val)

    def test_all_generators_structurally_valid(self):
        for a in (
            laplacian_2d(8),
            laplacian_3d(4),
            random_spd(100, 0.05, seed=0),
            graph_laplacian_spd(100, 4, seed=0),
            stencil_spd(100),
            banded_spd(100, 3),
        ):
            assert is_structurally_valid(a)
