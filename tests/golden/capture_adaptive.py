"""Regenerate the adaptive prefix-sharing golden fixture.

Pins the exact per-rep trajectories (hex-encoded times, iteration and
fault counts, SHA-256 of the full per-rep payload) of one adaptive
``repeat_run_batched`` cell.  ``tests/test_adaptive_prefix.py`` asserts
the sequential-sampling engine reproduces it bit for bit — any drift in
seed derivation, stopping arithmetic or per-rep bookkeeping fails the
comparison exactly.

Run from the repo root::

    python tests/golden/capture_adaptive.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

OUT = pathlib.Path(__file__).resolve().parent / "adaptive_prefix.json"


def main() -> None:
    from test_adaptive_prefix import encode_cell

    OUT.write_text(json.dumps(encode_cell(), indent=1) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
