"""Regenerate the golden-trajectory fixtures for the FT drivers.

The JSON written here pins the *exact* trajectories (simulated time,
solution-vector bytes, recovery counters, time breakdown) of
``run_ft_cg`` and ``run_ft_bicgstab`` for a grid of (scheme, alpha,
seed) points.  The fixtures were first captured from the pre-refactor
monolithic drivers (PR 1 tree); ``tests/test_resilience_golden.py``
asserts that the plugin-based resilience engine reproduces them
bit-for-bit.  Floats are stored via ``float.hex()`` so the comparison
is exact, and the solution vector is pinned by the SHA-256 of its raw
bytes.

Run from the repo root::

    python tests/golden/capture.py
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

import numpy as np  # noqa: E402

from repro.core import Scheme, SchemeConfig, run_ft_cg, run_ft_bicgstab  # noqa: E402
from repro.sparse import stencil_spd  # noqa: E402

OUT = pathlib.Path(__file__).resolve().parent / "ft_trajectories.json"

#: The capture grid: enough fault pressure to exercise corrections,
#: TMR votes, rollbacks and (at alpha=0.3) refresh-rollbacks.
CG_POINTS = [
    (Scheme.ONLINE_DETECTION, 4, 0.1), (Scheme.ONLINE_DETECTION, 4, 0.3),
    (Scheme.ABFT_DETECTION, 1, 0.1), (Scheme.ABFT_DETECTION, 1, 0.3),
    (Scheme.ABFT_CORRECTION, 1, 0.1), (Scheme.ABFT_CORRECTION, 1, 0.3),
]
BICGSTAB_POINTS = [
    (Scheme.ABFT_DETECTION, 0.1), (Scheme.ABFT_DETECTION, 0.25),
    (Scheme.ABFT_CORRECTION, 0.1), (Scheme.ABFT_CORRECTION, 0.25),
]
SEEDS = (0, 42)


def encode(res) -> dict:
    """Exact, JSON-stable encoding of one FTCGResult."""
    return {
        "x_sha256": hashlib.sha256(np.ascontiguousarray(res.x).tobytes()).hexdigest(),
        "converged": bool(res.converged),
        "iterations": int(res.iterations),
        "iterations_executed": int(res.iterations_executed),
        "time_units": float(res.time_units).hex(),
        "residual_norm": float(res.residual_norm).hex(),
        "threshold": float(res.threshold).hex(),
        "counters": {
            "faults_injected": res.counters.faults_injected,
            "detections": res.counters.detections,
            "corrections": dict(sorted(res.counters.corrections.items())),
            "rollbacks": res.counters.rollbacks,
            "checkpoints": res.counters.checkpoints,
            "verifications": res.counters.verifications,
            "tmr_corrections": res.counters.tmr_corrections,
            "tmr_detections": res.counters.tmr_detections,
            "final_check_failures": res.counters.final_check_failures,
        },
        "breakdown": {
            "useful_work": float(res.breakdown.useful_work).hex(),
            "wasted_work": float(res.breakdown.wasted_work).hex(),
            "verification": float(res.breakdown.verification).hex(),
            "checkpoint": float(res.breakdown.checkpoint).hex(),
            "recovery": float(res.breakdown.recovery).hex(),
        },
    }


def main() -> None:
    a = stencil_spd(529, kind="cross", radius=2)
    b = np.random.default_rng(77).normal(size=a.nrows)
    entries = []
    for scheme, d, alpha in CG_POINTS:
        for seed in SEEDS:
            cfg = SchemeConfig(scheme, checkpoint_interval=8, verification_interval=d)
            res = run_ft_cg(a, b, cfg, alpha=alpha, rng=seed, eps=1e-6)
            entries.append(
                {
                    "driver": "ft_cg",
                    "scheme": scheme.value,
                    "d": d,
                    "alpha": alpha,
                    "seed": seed,
                    "result": encode(res),
                }
            )
    for scheme, alpha in BICGSTAB_POINTS:
        for seed in SEEDS:
            cfg = SchemeConfig(scheme, checkpoint_interval=8)
            res = run_ft_bicgstab(a, b, cfg, alpha=alpha, rng=seed, eps=1e-6)
            entries.append(
                {
                    "driver": "ft_bicgstab",
                    "scheme": scheme.value,
                    "d": 1,
                    "alpha": alpha,
                    "seed": seed,
                    "result": encode(res),
                }
            )
    OUT.write_text(json.dumps({"matrix": "stencil_spd(529, kind='cross', radius=2)",
                               "rhs_seed": 77, "s": 8, "eps": 1e-6,
                               "entries": entries}, indent=1))
    print(f"wrote {len(entries)} golden trajectories to {OUT}")


if __name__ == "__main__":
    main()
