"""Campaign specs: grid expansion, content hashing, picklability."""

import pickle

import pytest

from repro.campaign import CampaignSpec, TaskSpec
from repro.core import CostModel, Scheme, SchemeConfig
from repro.sim.engine import RunStatistics


class TestTaskSpec:
    def test_hash_is_content_derived(self):
        a = TaskSpec("table1", uid=2213, scale=48, scheme="abft-detection",
                     alpha=1 / 16, s=5, labels=("table1", 2213, "s", 5))
        b = TaskSpec("table1", uid=2213, scale=48, scheme="abft-detection",
                     alpha=1 / 16, s=5, labels=("table1", 2213, "s", 5))
        assert a.task_hash() == b.task_hash()

    def test_hash_distinguishes_fields(self):
        base = dict(experiment="table1", uid=2213, scale=48,
                    scheme="abft-detection", alpha=1 / 16, s=5)
        ref = TaskSpec(**base).task_hash()
        for tweak in (dict(s=6), dict(uid=341), dict(alpha=1 / 32),
                      dict(reps=11), dict(base_seed=7), dict(labels=("x",))):
            assert TaskSpec(**{**base, **tweak}).task_hash() != ref

    def test_hash_stable_across_sessions(self):
        # Regression pin: a changed hash silently invalidates every
        # existing result store.  (Schema v4: the `sampling` policy —
        # adaptive sequential stopping — entered the hash, after v3's
        # `backend` kernel axis and v2's `method` solver axis.)
        t = TaskSpec("table1", uid=2213, scale=48, scheme="abft-detection",
                     alpha=0.0625, s=5, labels=("table1", 2213, "s", 5))
        assert t.task_hash() == (
            "96e27dde61b7f2dff3c6dda5a25318f828d169f446cda4473846b93b66bf6482"
        )

    def test_method_in_hash(self):
        base = dict(experiment="table1", uid=2213, scale=48,
                    scheme="abft-detection", alpha=0.0625, s=5)
        assert (TaskSpec(**base, method="pcg").task_hash()
                != TaskSpec(**base).task_hash())

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            TaskSpec("table1", uid=1, scale=1, scheme="abft-detection",
                     alpha=0.1, s=1, method="gmres")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            TaskSpec("table1", uid=1, scale=1, scheme="abft",
                     alpha=0.1, s=1)

    def test_from_json_inverts_to_json(self):
        t = TaskSpec("figure1", uid=341, scale=16, scheme="online-detection",
                     alpha=0.01, s=9, d=3, labels=("figure1", 341, 100.0),
                     method="cg")
        clone = TaskSpec.from_json(t.to_json())
        assert clone == t
        assert clone.task_hash() == t.task_hash()

    def test_from_json_rejects_unknown_fields(self):
        t = TaskSpec("table1", uid=1, scale=1, scheme="abft-detection",
                     alpha=0.1, s=1)
        data = t.to_json()
        data["solver"] = "cg"
        with pytest.raises(ValueError, match="unknown TaskSpec fields"):
            TaskSpec.from_json(data)

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSpec("table1", uid=1, scale=1, scheme="abft-detection",
                     alpha=0.1, s=0)
        with pytest.raises(ValueError):
            TaskSpec("table1", uid=1, scale=1, scheme="abft-detection",
                     alpha=0.1, s=1, reps=0)

    def test_to_json_roundtrips_labels(self):
        t = TaskSpec("figure1", uid=341, scale=16, scheme="online-detection",
                     alpha=0.01, s=9, d=3, labels=("figure1", 341, 100.0))
        d = t.to_json()
        assert d["labels"] == ["figure1", 341, 100.0]
        assert d["scheme"] == "online-detection"


class TestTaskSpecSampling:
    SPEC = "ci=0.05,conf=0.95,min=5,max=20"

    def _task(self, **kw):
        base = dict(experiment="table1", uid=1, scale=1,
                    scheme="abft-detection", alpha=0.1, s=5)
        return TaskSpec(**{**base, **kw})

    def test_sampling_is_task_identity(self):
        # The policy changes *which result the task stands for* (rep
        # count becomes data-dependent), so it must enter the hash.
        fixed = self._task(reps=20)
        adaptive = self._task(reps=20, sampling=self.SPEC)
        assert fixed.task_hash() != adaptive.task_hash()
        other = self._task(reps=20,
                           sampling="ci=0.1,conf=0.95,min=5,max=20")
        assert other.task_hash() != adaptive.task_hash()

    def test_sampling_must_be_canonical(self):
        # Hash aliasing guard: two spellings of one policy must not
        # produce two hashes, so only the canonical spelling is legal.
        with pytest.raises(ValueError, match="canonical"):
            self._task(reps=20, sampling="max=20,min=5,conf=0.95,ci=0.05")

    def test_reps_must_equal_policy_cap(self):
        with pytest.raises(ValueError, match="policy rep cap"):
            self._task(reps=10, sampling=self.SPEC)

    def test_adaptive_task_roundtrips_json(self):
        t = self._task(reps=20, sampling=self.SPEC)
        clone = TaskSpec.from_json(t.to_json())
        assert clone == t
        assert clone.task_hash() == t.task_hash()

    def test_campaign_spec_canonicalizes_and_sets_cap(self):
        spec = CampaignSpec(
            kind="figure1", scale=16, reps=3, uids=(2213,),
            mtbf_values=(100.0,),
            sampling="max=20,min=5,conf=0.95,ci=0.05",
        )
        assert spec.sampling == self.SPEC
        tasks = spec.expand()
        assert tasks
        # Adaptive expansion ignores `reps` in favour of the policy cap
        # (reps - stats.reps is then the per-task savings).
        assert all(t.reps == 20 for t in tasks)
        assert all(t.sampling == self.SPEC for t in tasks)

    def test_campaign_spec_without_sampling_unchanged(self):
        spec = CampaignSpec(kind="figure1", scale=16, reps=3, uids=(2213,),
                            mtbf_values=(100.0,))
        assert spec.sampling == ""
        assert all(t.reps == 3 and t.sampling == "" for t in spec.expand())


class TestCampaignSpecExpansion:
    def test_table1_matches_serial_grid(self):
        from repro.sim.experiments import (
            TABLE1_ALPHA, default_s_grid, model_interval_for,
        )
        from repro.sim.matrices import get_matrix

        spec = CampaignSpec(kind="table1", scale=48, reps=2, uids=(2213,), s_span=2)
        tasks = spec.expand()
        costs = CostModel.from_matrix(get_matrix(2213, 48))
        expected = []
        for scheme in (Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION):
            s_model, _ = model_interval_for(scheme, TABLE1_ALPHA, costs)
            expected += [(scheme.value, s, s_model)
                         for s in default_s_grid(s_model, span=2)]
        assert [(t.scheme, t.s, t.s_model) for t in tasks] == expected
        # labels are exactly the serial drivers' seed tuple
        assert all(t.labels == ("table1", 2213, "s", t.s) for t in tasks)

    def test_figure1_grid_shape(self):
        spec = CampaignSpec(kind="figure1", scale=48, reps=2, uids=(2213,),
                            mtbf_values=(16.0, 500.0))
        tasks = spec.expand()
        assert len(tasks) == 2 * 3  # mtbfs x schemes
        assert {t.scheme for t in tasks} == {
            "online-detection", "abft-detection", "abft-correction"}
        assert all(t.alpha in (1 / 16.0, 1 / 500.0) for t in tasks)
        online = [t for t in tasks if t.scheme == "online-detection"]
        assert all(t.d >= 1 for t in online)

    def test_expansion_is_deterministic(self):
        spec = CampaignSpec(kind="table1", scale=48, reps=2, uids=(2213,), s_span=2)
        h1 = [t.task_hash() for t in spec.expand()]
        h2 = [t.task_hash() for t in spec.expand()]
        assert h1 == h2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(kind="table2")

    def test_clipped_model_interval_fails_at_expansion(self):
        # α small enough that the Eq.-6 optimum exceeds the sweep
        # ceiling: the campaign must refuse up front, not after hours
        # of compute when aggregation misses Et(s~).
        spec = CampaignSpec(kind="table1", scale=48, uids=(2213,), alpha=1e-4)
        with pytest.raises(ValueError, match="outside the sweep grid"):
            spec.expand()

    def test_negative_s_span_rejected(self):
        with pytest.raises(ValueError, match="s_span"):
            CampaignSpec(kind="table1", s_span=-3)

    def test_empty_uids_expands_to_nothing(self):
        # () means "no matrices", matching the serial drivers' old
        # suite_specs([]) behavior — not "the whole suite".
        assert CampaignSpec(kind="table1", uids=()).expand() == []
        assert CampaignSpec(kind="figure1", uids=()).expand() == []

    def test_empty_uids_through_drivers(self):
        from repro.sim import run_figure1, run_table1

        assert run_table1(scale=48, reps=1, uids=[]) == []
        assert run_figure1(scale=48, reps=1, uids=[], mtbf_values=[16.0]) == []

    def test_model_s_max_widens_search(self):
        from repro.sim.experiments import model_interval_for

        costs = CostModel()
        # A tiny ceiling clamps the optimum; the default does not.
        s_clamped, _ = model_interval_for(Scheme.ABFT_CORRECTION, 1 / 16,
                                          costs, s_max=2)
        s_free, _ = model_interval_for(Scheme.ABFT_CORRECTION, 1 / 16, costs)
        assert s_clamped <= 2 < s_free


class TestPicklability:
    """Everything that crosses the worker-process boundary must pickle."""

    def test_core_config_objects_roundtrip(self):
        for obj in (
            Scheme.ABFT_CORRECTION,
            CostModel(),
            SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=5),
            SchemeConfig(Scheme.ONLINE_DETECTION, checkpoint_interval=3,
                         verification_interval=4),
        ):
            assert pickle.loads(pickle.dumps(obj)) == obj

    def test_task_and_stats_roundtrip(self):
        t = TaskSpec("table1", uid=2213, scale=48, scheme="abft-detection",
                     alpha=1 / 16, s=5, labels=("table1", 2213, "s", 5))
        assert pickle.loads(pickle.dumps(t)) == t
        st = RunStatistics(mean_time=1.0, std_time=0.1, min_time=0.9,
                           max_time=1.2, mean_iterations=10.0,
                           mean_rollbacks=0.0, mean_corrections=0.0,
                           mean_faults=0.5, convergence_rate=1.0, reps=2)
        assert pickle.loads(pickle.dumps(st)) == st
