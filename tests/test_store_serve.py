"""Serve mode: worker fleets, lease coordination, crash stealing."""

import time

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.store import (
    LeaseUnsupported,
    ResultStore,
    ShardedStore,
    SqliteStore,
    open_store,
    serve_campaign,
)


@pytest.fixture(scope="module")
def small_tasks():
    return CampaignSpec(
        kind="table1", scale=48, reps=1, uids=(2213,), s_span=0
    ).expand()


@pytest.fixture(scope="module")
def serial_records(small_tasks):
    return run_campaign(small_tasks, jobs=1)


def _task_records(loaded: dict) -> dict:
    return {h: r for h, r in loaded.items() if r.get("kind") != "telemetry"}


class TestServeCampaign:
    @pytest.mark.parametrize("scheme", ["sharded", "sqlite"])
    def test_two_workers_match_jobs1(self, scheme, tmp_path, small_tasks,
                                     serial_records):
        # The acceptance bar: a lease-coordinated fleet must produce
        # per-task results identical to --jobs 1.
        url = (
            f"sharded:{tmp_path / 'serve.d'}" if scheme == "sharded"
            else f"sqlite:{tmp_path / 'serve.db'}"
        )
        records = serve_campaign(small_tasks, url, workers=2, lease_ttl=30.0)
        assert records == serial_records
        # ...and the store holds exactly those records (plus telemetry).
        stored = _task_records(open_store(url).load())
        assert stored == {t.task_hash(): r
                          for t, r in zip(small_tasks, serial_records)}

    def test_serve_resumes_from_populated_store(self, tmp_path, small_tasks,
                                                serial_records):
        url = f"sqlite:{tmp_path / 'serve.db'}"
        run_campaign(small_tasks, jobs=1, store=url)
        t0 = time.time()
        records = serve_campaign(small_tasks, url, workers=2, lease_ttl=30.0)
        assert records == serial_records
        assert time.time() - t0 < 10  # served from the store, not recomputed

    def test_partial_store_only_runs_whats_missing(self, tmp_path, small_tasks,
                                                   serial_records):
        url = f"sqlite:{tmp_path / 'serve.db'}"
        store = open_store(url)
        with store:
            for task, rec in list(zip(small_tasks, serial_records))[:-3]:
                store.append(rec)
        assert serve_campaign(small_tasks, url, workers=2,
                              lease_ttl=30.0) == serial_records

    def test_stale_lease_from_dead_worker_is_stolen(self, tmp_path,
                                                    small_tasks,
                                                    serial_records):
        # A "crashed worker": a lease on a pending task whose owner
        # never heartbeats.  The fleet must steal it after the TTL and
        # still complete everything.
        url = f"sharded:{tmp_path / 'serve.d'}"
        store = open_store(url)
        dead = small_tasks[0].task_hash()
        assert store.try_claim(dead, "pid-dead-00000000", ttl=0.5)
        records = serve_campaign(small_tasks, url, workers=2, lease_ttl=0.5)
        assert records == serial_records

    def test_jsonl_store_is_rejected(self, tmp_path, small_tasks):
        with pytest.raises(LeaseUnsupported, match="serve mode"):
            serve_campaign(small_tasks, tmp_path / "r.jsonl", workers=2)

    def test_bad_worker_count_rejected(self, tmp_path, small_tasks):
        with pytest.raises(ValueError, match="workers"):
            serve_campaign(small_tasks, f"sqlite:{tmp_path / 'r.db'}",
                           workers=0)

    def test_bad_ttl_rejected(self, tmp_path, small_tasks):
        with pytest.raises(ValueError, match="lease_ttl"):
            serve_campaign(small_tasks, f"sqlite:{tmp_path / 'r.db'}",
                           workers=1, lease_ttl=0.0)

    def test_worker_telemetry_carries_owner(self, tmp_path, small_tasks):
        url = f"sqlite:{tmp_path / 'serve.db'}"
        serve_campaign(small_tasks, url, workers=2, lease_ttl=30.0)
        tele = [r for r in open_store(url).load().values()
                if r.get("kind") == "telemetry"]
        assert tele and all(t["serve_worker"].startswith("pid-") for t in tele)
        assert sum(t["fresh"] for t in tele) == len(small_tasks)


class TestServeSupportsFlags:
    def test_backends_advertise_lease_support(self, tmp_path):
        assert ShardedStore(tmp_path / "a.d").supports_leases
        assert SqliteStore(tmp_path / "a.db").supports_leases
        assert not ResultStore(tmp_path / "a.jsonl").supports_leases


class TestServeAdaptive:
    @pytest.fixture(scope="class")
    def adaptive_tasks(self):
        return CampaignSpec(
            kind="table1", scale=48, uids=(2213,), s_span=0,
            sampling="ci=0.5,conf=0.9,min=2,max=6",
        ).expand()

    def test_fleet_matches_jobs1_and_resumes_partials(
        self, tmp_path, adaptive_tasks
    ):
        # Adaptive tasks through the lease-coordinated fleet: same
        # records as the serial executor, and a partial checkpoint
        # seeded into the store is honoured (the worker resumes the
        # prefix rather than recomputing it).
        serial = run_campaign(adaptive_tasks, jobs=1)
        url = f"sqlite:{tmp_path / 'ad.db'}"
        records = serve_campaign(adaptive_tasks, url, workers=2,
                                 lease_ttl=30.0)
        assert records == serial

    def test_seeded_partial_is_resumed_not_recomputed(
        self, tmp_path, adaptive_tasks
    ):
        from repro.campaign.executor import execute_task

        serial = run_campaign(adaptive_tasks, jobs=1)
        task = adaptive_tasks[0]
        captured = []

        class Sink:
            def append(self, rec):
                captured.append(rec)

        execute_task(task, partial_store=Sink())
        assert captured
        url = f"sqlite:{tmp_path / 'seeded.db'}"
        store = open_store(url)
        store.append(captured[0])  # checkpoint after rep 1
        records = serve_campaign(adaptive_tasks, url, workers=2,
                                 lease_ttl=30.0)
        assert records == serial
