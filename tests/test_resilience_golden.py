"""Golden-trajectory lock: the engine reproduces the seed drivers.

``tests/golden/ft_trajectories.json`` was captured from the
pre-refactor monolithic drivers (``core/ft_cg.py`` / ``core/ft_krylov
.py`` at PR 1) by ``tests/golden/capture.py``.  These tests assert the
plugin-based resilience engine reproduces every trajectory *bit for
bit*: simulated time (compared through ``float.hex``), the SHA-256 of
the solution vector's raw bytes, every recovery counter and every
breakdown component.

If one of these fails, the refactor changed the physics — the RNG
consumption order, the float accounting order, or the recurrence
arithmetic — and the paper's regenerated tables silently shift.
"""

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.core import Scheme, SchemeConfig, run_ft_bicgstab, run_ft_cg
from repro.sparse import stencil_spd

GOLDEN = pathlib.Path(__file__).parent / "golden" / "ft_trajectories.json"

_gold = json.loads(GOLDEN.read_text())
_BREAKDOWN_FIELDS = ("useful_work", "wasted_work", "verification", "checkpoint", "recovery")


@pytest.fixture(scope="module")
def problem():
    a = stencil_spd(529, kind="cross", radius=2)
    b = np.random.default_rng(_gold["rhs_seed"]).normal(size=a.nrows)
    return a, b


def _entry_id(entry) -> str:
    return f"{entry['driver']}-{entry['scheme']}-a{entry['alpha']}-seed{entry['seed']}"


@pytest.mark.parametrize("entry", _gold["entries"], ids=_entry_id)
def test_bit_identical_to_pre_refactor_driver(problem, entry):
    a, b = problem
    cfg = SchemeConfig(
        Scheme(entry["scheme"]),
        checkpoint_interval=_gold["s"],
        verification_interval=entry["d"],
    )
    run = run_ft_cg if entry["driver"] == "ft_cg" else run_ft_bicgstab
    with np.errstate(all="ignore"):
        res = run(a, b, cfg, alpha=entry["alpha"], rng=entry["seed"], eps=_gold["eps"])
    want = entry["result"]

    assert hashlib.sha256(np.ascontiguousarray(res.x).tobytes()).hexdigest() == want["x_sha256"]
    assert res.converged == want["converged"]
    assert res.iterations == want["iterations"]
    assert res.iterations_executed == want["iterations_executed"]
    assert float(res.time_units).hex() == want["time_units"]
    assert float(res.residual_norm).hex() == want["residual_norm"]
    assert float(res.threshold).hex() == want["threshold"]

    c, wc = res.counters, want["counters"]
    assert c.faults_injected == wc["faults_injected"]
    assert c.detections == wc["detections"]
    assert dict(sorted(c.corrections.items())) == wc["corrections"]
    assert c.rollbacks == wc["rollbacks"]
    assert c.checkpoints == wc["checkpoints"]
    assert c.verifications == wc["verifications"]
    assert c.tmr_corrections == wc["tmr_corrections"]
    assert c.tmr_detections == wc["tmr_detections"]
    assert c.final_check_failures == wc["final_check_failures"]

    for f in _BREAKDOWN_FIELDS:
        assert float(getattr(res.breakdown, f)).hex() == want["breakdown"][f], f


# One golden entry per (driver, scheme) pair, replayed with the kernel
# backend pinned *explicitly*: backend="reference" must be the same
# code path as the default, not merely a close cousin.
_BACKEND_ENTRIES = list(
    {
        (e["driver"], e["scheme"]): e for e in _gold["entries"]
    }.values()
)


@pytest.mark.parametrize("entry", _BACKEND_ENTRIES, ids=_entry_id)
def test_explicit_reference_backend_matches_golden(problem, entry):
    from repro.core import Method, run_ft_method

    a, b = problem
    cfg = SchemeConfig(
        Scheme(entry["scheme"]),
        checkpoint_interval=_gold["s"],
        verification_interval=entry["d"],
    )
    method = Method.CG if entry["driver"] == "ft_cg" else Method.BICGSTAB
    with np.errstate(all="ignore"):
        res = run_ft_method(
            method, a, b, cfg,
            alpha=entry["alpha"], rng=entry["seed"], eps=_gold["eps"],
            backend="reference",
        )
    want = entry["result"]
    assert hashlib.sha256(np.ascontiguousarray(res.x).tobytes()).hexdigest() == want["x_sha256"]
    assert float(res.time_units).hex() == want["time_units"]
    assert res.counters.rollbacks == want["counters"]["rollbacks"]
