"""Unit tests for CSR norms and checksum reductions."""

import numpy as np
import pytest

from repro.sparse import norm1, norm_inf, column_sums, row_sums
from repro.sparse.norms import max_col_nnz, max_row_nnz
from tests.conftest import dense_random_csr


class TestNorms:
    def test_norm1_matches_dense(self, rng):
        a = dense_random_csr(rng, 15, 10, 0.4)
        assert norm1(a) == pytest.approx(np.abs(a.to_dense()).sum(axis=0).max())

    def test_norm_inf_matches_dense(self, rng):
        a = dense_random_csr(rng, 15, 10, 0.4)
        assert norm_inf(a) == pytest.approx(np.abs(a.to_dense()).sum(axis=1).max())

    def test_norms_of_laplacian(self, small_lap):
        # Symmetric matrix: 1-norm equals inf-norm.
        assert norm1(small_lap) == pytest.approx(norm_inf(small_lap))
        assert norm1(small_lap) <= 8.0 + 1e-12  # 5-point stencil bound


class TestColumnSums:
    def test_unweighted_matches_dense(self, rng):
        a = dense_random_csr(rng, 12, 9, 0.5)
        np.testing.assert_allclose(column_sums(a), a.to_dense().sum(axis=0))

    def test_weighted_matches_dense(self, rng):
        a = dense_random_csr(rng, 12, 9, 0.5)
        w = rng.normal(size=12)
        np.testing.assert_allclose(column_sums(a, weights=w), w @ a.to_dense())

    def test_weight_length_checked(self, small_lap):
        with pytest.raises(ValueError, match="weights"):
            column_sums(small_lap, weights=np.ones(3))

    def test_row_sums_matches_dense(self, rng):
        a = dense_random_csr(rng, 12, 9, 0.5)
        np.testing.assert_allclose(row_sums(a), a.to_dense().sum(axis=1))

    def test_row_sums_with_empty_rows(self, rng):
        a = dense_random_csr(rng, 30, 30, 0.05)  # some rows likely empty
        np.testing.assert_allclose(row_sums(a), a.to_dense().sum(axis=1))


class TestNnzCounts:
    def test_max_row_nnz(self, rng):
        a = dense_random_csr(rng, 20, 20, 0.3)
        assert max_row_nnz(a) == int((a.to_dense() != 0).sum(axis=1).max())

    def test_max_col_nnz(self, rng):
        a = dense_random_csr(rng, 20, 20, 0.3)
        assert max_col_nnz(a) == int((a.to_dense() != 0).sum(axis=0).max())

    def test_laplacian_max_col_nnz_is_stencil_size(self, small_lap):
        assert max_col_nnz(small_lap) == 5
