"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSRMatrix, laplacian_2d, random_spd, stencil_spd
from repro.abft import compute_checksums


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_lap() -> CSRMatrix:
    """400×400 5-point Laplacian (SPD, zero-free diagonal)."""
    return laplacian_2d(20)


@pytest.fixture
def small_spd() -> CSRMatrix:
    """300×300 random SPD matrix, ~12 nnz/row."""
    return random_spd(300, 0.04, seed=7)


@pytest.fixture
def stencil() -> CSRMatrix:
    """529×529 stencil SPD matrix with spread spectrum (slow CG)."""
    return stencil_spd(529, kind="cross", radius=2)


@pytest.fixture
def checks2(small_lap):
    """Two-row (detect-2/correct-1) checksums for small_lap."""
    return compute_checksums(small_lap, nchecks=2)


@pytest.fixture
def checks1(small_lap):
    """One-row (detect-1) checksums for small_lap."""
    return compute_checksums(small_lap, nchecks=1)


@pytest.fixture
def xvec(small_lap, rng) -> np.ndarray:
    """A generic input vector for small_lap."""
    return rng.normal(size=small_lap.ncols)


def dense_random_csr(rng: np.random.Generator, nrows: int, ncols: int, density: float) -> CSRMatrix:
    """Helper: random (non-symmetric) CSR matrix for structural tests."""
    mask = rng.random((nrows, ncols)) < density
    dense = np.where(mask, rng.normal(size=(nrows, ncols)), 0.0)
    return CSRMatrix.from_dense(dense)
