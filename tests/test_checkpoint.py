"""Unit tests for checkpoint storage and policy."""

import numpy as np
import pytest

from repro.checkpoint import CheckpointStore, PeriodicCheckpointPolicy


class TestCheckpointStore:
    def test_save_and_latest(self, small_lap):
        store = CheckpointStore()
        x = np.arange(3.0)
        cp = store.save(5, {"x": x}, matrix=small_lap, scalars={"rr": 2.0})
        assert store.latest is cp
        assert cp.iteration == 5
        assert cp.scalars["rr"] == 2.0

    def test_snapshot_is_deep(self, small_lap):
        store = CheckpointStore()
        x = np.arange(3.0)
        a = small_lap.copy()
        store.save(0, {"x": x}, matrix=a)
        x[0] = 99.0
        a.val[0] = 99.0
        assert store.latest.vectors["x"][0] == 0.0
        assert store.latest.matrix.val[0] == small_lap.val[0]

    def test_restore_returns_fresh_copies(self):
        store = CheckpointStore()
        store.save(0, {"x": np.zeros(4)})
        r1 = store.restore()
        r1.vectors["x"][0] = 7.0
        r2 = store.restore()
        assert r2.vectors["x"][0] == 0.0
        assert store.restores == 2

    def test_keep_limits_stack(self):
        store = CheckpointStore(keep=2)
        for i in range(5):
            store.save(i, {"x": np.full(2, float(i))})
        assert store.latest.iteration == 4
        assert store.saves == 5

    def test_empty_store_raises(self):
        store = CheckpointStore()
        assert store.empty
        with pytest.raises(LookupError):
            _ = store.latest

    def test_size_words(self, small_lap):
        store = CheckpointStore()
        cp = store.save(0, {"x": np.zeros(10), "r": np.zeros(10)}, matrix=small_lap)
        assert cp.size_words == 20 + small_lap.memory_words
        assert store.words_written == cp.size_words

    def test_keep_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointStore(keep=0)

    def test_checkpoint_without_matrix(self):
        store = CheckpointStore()
        cp = store.save(0, {"x": np.zeros(3)})
        assert cp.matrix is None
        assert store.restore().matrix is None


class TestPeriodicPolicy:
    def test_triggers_every_interval(self):
        policy = PeriodicCheckpointPolicy(3)
        hits = [policy.chunk_verified() for _ in range(9)]
        assert hits == [False, False, True] * 3

    def test_interval_one_always_triggers(self):
        policy = PeriodicCheckpointPolicy(1)
        assert all(policy.chunk_verified() for _ in range(5))

    def test_rollback_resets_progress(self):
        policy = PeriodicCheckpointPolicy(3)
        policy.chunk_verified()
        policy.chunk_verified()
        policy.rolled_back()
        assert policy.chunks_since_checkpoint == 0
        assert not policy.chunk_verified()
        assert not policy.chunk_verified()
        assert policy.chunk_verified()

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            PeriodicCheckpointPolicy(0)
