"""Unit tests for result containers and renderers."""

import pytest

from repro.sim.results import (
    Figure1Point,
    Table1Row,
    ascii_panel,
    format_figure1,
    format_table1,
    to_csv,
)


@pytest.fixture
def rows():
    return [
        Table1Row(341, 1000, 2e-3, "abft-detection", 5, 70.0, 7, 65.0, 10),
        Table1Row(341, 1000, 2e-3, "abft-correction", 20, 60.0, 20, 60.0, 10),
    ]


@pytest.fixture
def points():
    out = []
    for scheme in ("online-detection", "abft-detection", "abft-correction"):
        for mtbf in (16.0, 100.0):
            out.append(
                Figure1Point(
                    uid=341, scheme=scheme, alpha=1 / mtbf,
                    mean_time=50.0 + mtbf / 10, sem_time=1.0, s_used=3, d_used=2,
                )
            )
    return out


class TestTable1Row:
    def test_loss_percent(self, rows):
        assert rows[0].loss_percent == pytest.approx((70 - 65) / 65 * 100)
        assert rows[1].loss_percent == 0.0

    def test_loss_zero_time_guard(self):
        r = Table1Row(1, 1, 1e-3, "abft-detection", 1, 0.0, 1, 0.0, 1)
        assert r.loss_percent == 0.0


class TestFigure1Point:
    def test_normalized_mtbf(self, points):
        assert points[0].normalized_mtbf == pytest.approx(16.0)


class TestRenderers:
    def test_table_renders_both_halves(self, rows):
        text = format_table1(rows)
        assert "341" in text
        assert text.count("|") >= 3

    def test_table_renders_missing_half(self, rows):
        text = format_table1(rows[:1])
        assert "-" in text  # blank correction half

    def test_figure_renders_all_schemes(self, points):
        text = format_figure1(points)
        for scheme in ("online-detection", "abft-detection", "abft-correction"):
            assert scheme in text

    def test_ascii_panel_dimensions(self, points):
        text = ascii_panel(points, 341, width=40, height=10)
        lines = text.splitlines()
        assert len([l for l in lines if l.startswith("|")]) == 10
        assert all(len(l) <= 42 for l in lines if l.startswith("|"))

    def test_single_rep_point_renders_na_error(self):
        # Regression: reps=1 has no standard error; sem_time is None
        # and the cell must render "±n/a", never divide by zero or
        # claim a numeric ±0.0 uncertainty.
        p = Figure1Point(
            uid=7, scheme="abft-detection", alpha=0.01,
            mean_time=42.0, sem_time=None, s_used=3, d_used=1,
        )
        text = format_figure1([p])
        assert "±n/a" in text
        assert "±0.0" not in text

    def test_ci_points_render_half_width_and_savings(self):
        pts = [
            Figure1Point(
                uid=7, scheme="abft-detection", alpha=0.01,
                mean_time=42.0, sem_time=2.0, s_used=3, d_used=1,
                ci_low=38.0, ci_high=46.0, reps_used=9, reps_cap=50,
            )
        ]
        text = format_figure1(pts)
        assert "± is the CI half-width" in text
        assert "±4.0" in text  # (46 - 38) / 2, preferred over sem
        assert "adaptive sampling: 9/50 reps executed (saved 41, 82.0%)" in text

    def test_legacy_points_render_without_ci_columns(self, points):
        # Pre-adaptive points (no CI, no rep budget) keep the historical
        # layout: no half-width banner, no savings footer.
        text = format_figure1(points)
        assert "CI half-width" not in text
        assert "adaptive sampling" not in text

    def test_table_ci_columns_and_footer(self, rows):
        with_ci = [
            Table1Row(
                341, 1000, 2e-3, "abft-detection", 5, 70.0, 7, 65.0, 10,
                ci_low=68.0, ci_high=72.0, reps_used=33, reps_cap=130,
            ),
            Table1Row(
                341, 1000, 2e-3, "abft-correction", 20, 60.0, 20, 60.0, 10,
                reps_used=26, reps_cap=130,
            ),
        ]
        text = format_table1(with_ci)
        assert "±1" in text and "±2" in text
        assert "2.00" in text   # detection half-width
        assert "n/a" in text    # correction row carries no CI
        assert "adaptive sampling: 59/260 reps executed" in text
        # And the legacy layout is unchanged when no row carries CI.
        legacy = format_table1(rows)
        assert "±1" not in legacy
        assert "adaptive sampling" not in legacy


class TestCsv:
    def test_roundtrip_headers(self, rows, tmp_path):
        path = tmp_path / "rows.csv"
        to_csv(rows, str(path))
        header = path.read_text().splitlines()[0]
        assert header.startswith("uid,n,density,scheme")

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="nothing"):
            to_csv([], str(tmp_path / "x.csv"))
