"""Unit tests for ABFT detection (Theorem 1, single checksum row)."""

import numpy as np
import pytest

from repro.abft import compute_checksums, protected_spmv, SpmvStatus
from repro.sparse import graph_laplacian_spd


class TestDetectionMode:
    def test_clean_passes(self, small_lap, checks1, xvec):
        res = protected_spmv(small_lap, xvec, checks1, correct=False)
        assert res.status is SpmvStatus.OK
        assert res.trusted
        np.testing.assert_allclose(res.y, small_lap.matvec(xvec), rtol=1e-12)

    def test_val_error_detected(self, small_lap, checks1, xvec):
        a = small_lap.copy()
        a.val[11] += 1.0
        res = protected_spmv(a, xvec.copy(), checks1, correct=False)
        assert res.status is SpmvStatus.DETECTED
        assert not res.trusted

    def test_colid_error_detected(self, small_lap, checks1, xvec):
        a = small_lap.copy()
        a.colid[11] = (a.colid[11] + 7) % a.ncols
        res = protected_spmv(a, xvec.copy(), checks1, correct=False)
        assert res.status is SpmvStatus.DETECTED

    def test_rowidx_error_detected(self, small_lap, checks1, xvec):
        a = small_lap.copy()
        a.rowidx[20] += 1
        res = protected_spmv(a, xvec.copy(), checks1, correct=False)
        assert res.status is SpmvStatus.DETECTED
        assert res.residuals.rowidx_flagged

    def test_x_error_detected(self, small_lap, checks1, xvec):
        def hook(stage, a, x, y):
            if stage == "pre":
                x[100] += 2.0

        res = protected_spmv(small_lap, xvec.copy(), checks1, correct=False, fault_hook=hook)
        assert res.status is SpmvStatus.DETECTED
        assert res.residuals.dxp_flagged

    def test_y_error_detected(self, small_lap, checks1, xvec):
        def hook(stage, a, x, y):
            if stage == "post":
                y[37] -= 5.0

        res = protected_spmv(small_lap, xvec.copy(), checks1, correct=False, fault_hook=hook)
        assert res.status is SpmvStatus.DETECTED
        assert res.residuals.dx_flagged

    def test_correct_true_requires_two_checksums(self, small_lap, checks1, xvec):
        with pytest.raises(ValueError, match="nchecks=2"):
            protected_spmv(small_lap, xvec, checks1, correct=True)

    def test_shape_mismatch_rejected(self, small_lap, checks1):
        from repro.sparse import laplacian_2d

        other = laplacian_2d(5)
        with pytest.raises(ValueError, match="shape"):
            protected_spmv(other, np.ones(25), checks1, correct=False)


class TestShiftNecessity:
    """The Section-3.2 scenario: zero column sums hide x-errors from the
    unshifted Shantharam test; the shifted test (Theorem 1) catches them."""

    def test_x_error_on_zero_sum_column_detected(self):
        # Laplacian + tiny diagonal: column sums ≈ shift ≈ 1e-9 — far
        # below the magnitude where an unshifted cᵀx' test could see
        # anything over the rounding threshold.
        a = graph_laplacian_spd(80, 4, seed=2, shift=1e-9)
        cks = compute_checksums(a, nchecks=1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=a.ncols)

        def hook(stage, aa, xx, yy):
            if stage == "pre":
                xx[13] += 3.0

        res = protected_spmv(a, x.copy(), cks, correct=False, fault_hook=hook)
        assert res.status is SpmvStatus.DETECTED

    def test_unshifted_test_would_miss_it(self):
        """Demonstrate the failure mode the shift exists to fix."""
        a = graph_laplacian_spd(80, 4, seed=2, shift=1e-9)
        rng = np.random.default_rng(0)
        x = rng.normal(size=a.ncols)
        x_ref = x.copy()
        x_bad = x.copy()
        x_bad[13] += 3.0
        y = a.matvec(x_bad)
        colsums = a.to_dense().sum(axis=0)
        # Unshifted Shantharam test: cᵀx' vs Σy — the error contributes
        # colsums[13]·3 ≈ 3e-9, indistinguishable from rounding noise of
        # the O(‖A‖·‖x‖) sums.
        gap = abs(colsums @ x_ref - y.sum())
        assert gap < 1e-6  # would need threshold below noise to catch


class TestDetectionVsToleranceInterplay:
    def test_detection_only_never_mutates_state(self, small_lap, checks1, xvec):
        a = small_lap.copy()
        a.val[9] += 4.0
        snapshot = a.val.copy()
        protected_spmv(a, xvec.copy(), checks1, correct=False)
        np.testing.assert_array_equal(a.val, snapshot)
