"""Unit tests for checksum weights and the shift constant."""

import numpy as np
import pytest

from repro.abft import choose_shift, ones_weights, ramp_weights, weight_matrix
from repro.abft.weights import random_weights


class TestWeights:
    def test_ones(self):
        np.testing.assert_array_equal(ones_weights(5), np.ones(5))

    def test_ramp_is_one_based(self):
        np.testing.assert_array_equal(ramp_weights(4), [1.0, 2.0, 3.0, 4.0])

    def test_weight_matrix_one_row(self):
        w = weight_matrix(6, 1)
        assert w.shape == (1, 6)
        np.testing.assert_array_equal(w[0], np.ones(6))

    def test_weight_matrix_two_rows(self):
        w = weight_matrix(6, 2)
        assert w.shape == (2, 6)
        np.testing.assert_array_equal(w[1], np.arange(1, 7))

    @pytest.mark.parametrize("bad", [0, 3, -1])
    def test_weight_matrix_rejects_bad_nchecks(self, bad):
        with pytest.raises(ValueError, match="nchecks"):
            weight_matrix(6, bad)

    @pytest.mark.parametrize("n", [0, -2])
    def test_rejects_nonpositive_n(self, n):
        with pytest.raises(ValueError):
            ones_weights(n)
        with pytest.raises(ValueError):
            ramp_weights(n)


class TestRandomWeights:
    def test_bounded_away_from_zero(self):
        w = random_weights(500, rng=0)
        assert w.shape == (500,)
        assert w.min() >= 0.5 and w.max() < 1.5

    def test_deterministic_by_seed(self):
        np.testing.assert_array_equal(random_weights(10, rng=3), random_weights(10, rng=3))

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            random_weights(0)


class TestShift:
    def test_shift_avoids_all_zeros(self):
        colsums = np.zeros(10)
        k = choose_shift(colsums)
        assert np.all(np.abs(colsums + k) > 0)

    def test_shift_avoids_adversarial_colsums(self):
        # Column sums placed exactly at −k candidates.
        colsums = -np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        k = choose_shift(colsums, margin=1.0)
        assert np.all(np.abs(colsums + k) >= 0.5)

    def test_shift_scales_with_magnitude(self):
        colsums = np.array([1e6, -1e6, 0.0])
        k = choose_shift(colsums)
        assert np.all(np.abs(colsums + k) >= 0.5e6)

    def test_empty_colsums(self):
        assert choose_shift(np.array([])) > 0

    def test_deterministic(self):
        c = np.array([0.0, -1.0, 3.0])
        assert choose_shift(c) == choose_shift(c)

    def test_separation_margin_holds(self):
        rng = np.random.default_rng(0)
        colsums = rng.normal(size=200)
        k = choose_shift(colsums, margin=1.0)
        scale = max(1.0, np.abs(colsums).max())
        assert np.all(np.abs(colsums + k) >= 0.5 * scale - 1e-12)
