"""Campaign execution: determinism across jobs, resume, aggregation."""

import pytest

from repro.campaign import (
    CampaignSpec,
    ProgressReporter,
    ResultStore,
    aggregate_figure1,
    aggregate_table1,
    execute_task,
    run_campaign,
)
from repro.sim import run_figure1, run_table1


@pytest.fixture(scope="module")
def small_spec():
    return CampaignSpec(kind="table1", scale=48, reps=2, uids=(2213,), s_span=2)


@pytest.fixture(scope="module")
def small_tasks(small_spec):
    return small_spec.expand()


@pytest.fixture(scope="module")
def serial_records(small_tasks):
    return run_campaign(small_tasks, jobs=1)


class TestDeterminism:
    def test_jobs2_matches_jobs1(self, small_tasks, serial_records):
        # The acceptance bar: parallel fan-out must be bit-identical to
        # serial execution, statistics included.
        parallel = run_campaign(small_tasks, jobs=2)
        assert parallel == serial_records

    def test_run_table1_jobs2_identical_rows(self):
        rows1 = run_table1(scale=48, reps=2, uids=[2213], s_span=2, jobs=1)
        rows2 = run_table1(scale=48, reps=2, uids=[2213], s_span=2, jobs=2)
        assert rows1 == rows2  # RunStatistics floats compare exactly

    def test_run_figure1_jobs2_identical_points(self):
        kw = dict(scale=48, reps=2, uids=[2213], mtbf_values=[16.0, 500.0])
        assert run_figure1(jobs=1, **kw) == run_figure1(jobs=2, **kw)

    def test_rewired_driver_matches_known_shape(self):
        rows = run_table1(scale=48, reps=2, uids=[2213], s_span=2)
        assert {r.scheme for r in rows} == {"abft-detection", "abft-correction"}
        for r in rows:
            assert r.uid == 2213 and r.reps == 2
            assert r.loss_percent >= -1e-9


def _task_records(loaded: dict) -> dict:
    """Drop the executor's ``telemetry`` record(s) from a loaded store."""
    return {h: r for h, r in loaded.items() if r.get("kind") != "telemetry"}


class TestResume:
    def test_store_records_everything(self, small_tasks, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        records = run_campaign(small_tasks, jobs=1, store=store)
        assert set(_task_records(store.load())) == {t.task_hash() for t in small_tasks}
        assert records == run_campaign(small_tasks, jobs=1)

    def test_resume_skips_completed_tasks(self, small_tasks, tmp_path):
        # Pre-populate the store with sentinel results for half the
        # tasks; the campaign must serve those verbatim (proving no
        # recomputation) and execute only the rest.
        store = ResultStore(tmp_path / "c.jsonl")
        sentinel_tasks = small_tasks[::2]
        with store:
            for t in sentinel_tasks:
                store.append({"hash": t.task_hash(), "task": t.to_json(),
                              "n": -1, "density": -1.0,
                              "stats": {"sentinel": True}})
        records = run_campaign(small_tasks, jobs=1, store=store)
        for t, rec in zip(small_tasks, records):
            if t in sentinel_tasks:
                assert rec["stats"] == {"sentinel": True}
            else:
                assert "mean_time" in rec["stats"]
        # ... and the freshly computed half landed in the store.
        assert len(_task_records(store.load())) == len(small_tasks)

    def test_resumed_campaign_bit_identical(self, small_tasks, serial_records,
                                            tmp_path):
        # Interrupt after k tasks, then resume: the final records must
        # equal an uninterrupted run (floats survive the JSON trip).
        store = ResultStore(tmp_path / "c.jsonl")
        k = len(small_tasks) // 2
        with store:
            for rec in serial_records[:k]:
                store.append(rec)
        resumed = run_campaign(small_tasks, jobs=1, store=store)
        assert resumed == serial_records

    def test_progress_counts_cached(self, small_tasks, serial_records,
                                    tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        with store:
            for rec in serial_records[:3]:
                store.append(rec)
        progress = ProgressReporter(len(small_tasks))
        run_campaign(small_tasks, jobs=1, store=store, progress=progress)
        assert progress.done == len(small_tasks)
        assert progress.cached == 3
        assert progress.fresh == len(small_tasks) - 3


class TestExecutorContract:
    def test_worker_failure_propagates_and_keeps_store_valid(self, small_tasks,
                                                             tmp_path):
        # One poisoned task (unknown scheme -> ValueError in the
        # worker): the error must propagate, the campaign must not
        # hang, and whatever finished must land in a loadable store
        # for --resume rather than being silently discarded.
        # TaskSpec validates the scheme at construction now, so the
        # poison has to bypass the frozen dataclass to model a task
        # corrupted after validation (e.g. a hand-edited spec file).
        import copy

        bad = copy.copy(small_tasks[0])
        object.__setattr__(bad, "scheme", "no-such-scheme")
        tasks = [bad] + list(small_tasks[1:5])
        store = ResultStore(tmp_path / "fail.jsonl")
        with pytest.raises(ValueError):
            run_campaign(tasks, jobs=2, store=store, chunksize=1)
        loaded = store.load()  # must parse cleanly
        good_hashes = {t.task_hash() for t in tasks[1:]}
        assert set(loaded) <= good_hashes

    def test_jobs_must_be_positive(self, small_tasks):
        with pytest.raises(ValueError):
            run_campaign(small_tasks, jobs=0)

    def test_empty_campaign(self):
        assert run_campaign([], jobs=2) == []

    def test_execute_task_record_schema(self, small_tasks):
        rec = execute_task(small_tasks[0])
        assert rec["hash"] == small_tasks[0].task_hash()
        assert rec["n"] >= 512 and 0 < rec["density"] < 1
        stats = rec["stats"]
        assert stats["reps"] == 2
        assert stats["mean_time"] > 0
        assert 0.0 <= stats["convergence_rate"] <= 1.0

    def test_store_accepts_plain_path(self, small_tasks, tmp_path):
        path = tmp_path / "by_path.jsonl"
        run_campaign(small_tasks[:2], jobs=1, store=path)
        assert len(_task_records(ResultStore(path).load())) == 2


class TestAggregation:
    def test_table1_aggregate_requires_model_point(self, small_tasks,
                                                   serial_records):
        # Dropping the model-interval task from a group must fail loudly
        # rather than fabricate a row.
        s_model = small_tasks[0].s_model
        keep = [i for i, t in enumerate(small_tasks)
                if not (t.scheme == small_tasks[0].scheme and t.s == s_model)]
        with pytest.raises(ValueError, match="missing from sweep"):
            aggregate_table1([small_tasks[i] for i in keep],
                             [serial_records[i] for i in keep])

    def test_mismatched_lengths_rejected(self, small_tasks, serial_records):
        with pytest.raises(ValueError):
            aggregate_table1(small_tasks, serial_records[:-1])

    def test_wrong_experiment_rejected(self, small_tasks, serial_records):
        with pytest.raises(ValueError, match="figure1"):
            aggregate_figure1(small_tasks, serial_records)


class TestStoreAggregation:
    """Streaming aggregation straight out of a store (any backend)."""

    @pytest.fixture()
    def store(self, small_tasks, tmp_path):
        path = tmp_path / "agg.jsonl"
        run_campaign(small_tasks, jobs=1, store=path)
        return path

    def test_table1_from_store_matches_in_memory(self, small_tasks,
                                                 serial_records, store):
        from repro.campaign import aggregate_table1_store

        assert aggregate_table1_store(small_tasks, str(store)) \
            == aggregate_table1(small_tasks, serial_records)

    def test_missing_records_raise_unless_partial(self, small_tasks,
                                                  tmp_path):
        from repro.campaign import aggregate_table1_store

        empty = tmp_path / "empty.jsonl"
        with pytest.raises(ValueError, match="missing"):
            aggregate_table1_store(small_tasks, str(empty))
        assert aggregate_table1_store(small_tasks, str(empty),
                                      partial=True) == []

    def test_partial_store_keeps_complete_groups(self, small_tasks,
                                                 serial_records, store,
                                                 tmp_path):
        from repro.campaign import aggregate_table1_store

        # Drop one scheme's records entirely: its group disappears, the
        # other group's row survives bit-identically.
        victim = small_tasks[0].scheme
        partial = tmp_path / "partial.jsonl"
        with ResultStore(partial) as dst:
            for task, rec in zip(small_tasks, serial_records):
                if task.scheme != victim:
                    dst.append(rec)
        rows = aggregate_table1_store(small_tasks, str(partial), partial=True)
        full = aggregate_table1(small_tasks, serial_records)
        assert rows == [r for r in full if r.scheme != victim]

    def test_figure1_partial_omits_missing_points(self, tmp_path):
        from repro.campaign import (
            CampaignSpec,
            aggregate_figure1,
            aggregate_figure1_store,
        )

        tasks = CampaignSpec(kind="figure1", scale=48, reps=1, uids=(2213,),
                             mtbf_values=(16.0, 500.0)).expand()
        records = run_campaign(tasks, jobs=1)
        partial = tmp_path / "partial.jsonl"
        with ResultStore(partial) as dst:
            for rec in records[:-2]:
                dst.append(rec)
        points = aggregate_figure1_store(tasks, str(partial), partial=True)
        assert points == aggregate_figure1(tasks, records)[:-2]

    def test_records_for_tasks_streams_last_wins(self, small_tasks, store):
        from repro.campaign import records_for_tasks

        with ResultStore(store) as dst:
            rewritten = {**records_for_tasks(small_tasks, str(store))[0],
                         "marker": 1}
            dst.append(rewritten)
        out = records_for_tasks(small_tasks, str(store))
        assert out[0]["marker"] == 1
        assert all(r is not None for r in out)


class TestCli:
    def test_cli_jobs_and_store(self, capsys, tmp_path):
        from repro.sim.experiments import _main

        store = tmp_path / "cli.jsonl"
        rc = _main(["table1", "--scale", "48", "--reps", "1",
                    "--uids", "2213", "--s-span", "1",
                    "--jobs", "2", "--store", str(store)])
        assert rc == 0
        assert "2213" in capsys.readouterr().out
        assert len(ResultStore(store).load()) > 0

    def test_cli_resume_completes_without_recompute(self, capsys, tmp_path):
        from repro.sim.experiments import _main

        store = tmp_path / "cli.jsonl"
        args = ["table1", "--scale", "48", "--reps", "1", "--uids", "2213",
                "--s-span", "1", "--jobs", "1", "--store", str(store)]
        _main(args)
        first = capsys.readouterr().out
        done = ResultStore(store).load()
        _main(args + ["--resume"])
        second = capsys.readouterr().out
        assert second == first
        # Resume appended nothing: every task was already stored.
        assert ResultStore(store).load() == done
        assert sum(1 for _ in open(store)) == len(done)

    def test_cli_refuses_clobbering_store(self, tmp_path, capsys):
        from repro.sim.experiments import _main

        store = tmp_path / "cli.jsonl"
        store.write_text('{"hash": "x"}\n')
        assert _main(["table1", "--store", str(store)]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_cli_resume_requires_store(self, capsys):
        from repro.sim.experiments import _main

        assert _main(["table1", "--resume"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_unknown_subcommand_fails_nonzero(self, capsys):
        from repro.__main__ import main

        assert main(["tabl1"]) == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err and "tabl1" in err
        assert main([]) == 0  # bare invocation still prints the banner
        assert "table1" in capsys.readouterr().out

    def test_cli_negative_s_span_rejected(self, capsys):
        from repro.sim.experiments import _main

        assert _main(["table1", "--s-span", "-3"]) == 2
        assert "--s-span" in capsys.readouterr().err

    def test_cli_base_seed_changes_results(self, capsys):
        from repro.sim.experiments import _main

        base = ["table1", "--scale", "48", "--reps", "2", "--uids", "2213",
                "--s-span", "1", "--jobs", "1"]
        _main(base)
        out_default = capsys.readouterr().out
        _main(base + ["--base-seed", "99"])
        out_reseeded = capsys.readouterr().out
        assert out_default != out_reseeded
