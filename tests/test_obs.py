"""Observability layer: tracers, metrics, summaries, CLI, telemetry.

The one invariant everything here leans on: tracing and metrics are
*pure observation*.  Solves, studies and campaigns must produce
bit-identical results with tracing off, on, or fanned out to multiple
sinks — the golden-replay half of that claim lives in
``test_obs_golden.py``; this file covers the plumbing.
"""

import json
import warnings

import numpy as np
import pytest

from repro.core import Scheme, SchemeConfig
from repro.obs import (
    EVENT_KINDS,
    FAULT_EVENT_KINDS,
    SCHEMA_VERSION,
    CallbackTracer,
    InMemoryTracer,
    JsonlTracer,
    Metrics,
    MultiTracer,
    NullTracer,
    NULL_TRACER,
    Tracer,
    diff_snapshots,
    get_metrics,
    merge_snapshots,
    resolve_tracer,
    summarize_trace,
)
from repro.sparse import stencil_spd


@pytest.fixture(scope="module")
def problem():
    a = stencil_spd(144)
    b = np.random.default_rng(7).standard_normal(a.nrows)
    return a, b


def _run(a, b, **kw):
    # Through run_ft_method so engine-level kwargs (tracer, and the
    # deprecated observer) all reach run_protected.
    from repro.core import Method, run_ft_method

    cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=8)
    return run_ft_method(Method.CG, a, b, cfg, alpha=1 / 16, rng=3, **kw)


# ----------------------------------------------------------------------
# tracer protocol
# ----------------------------------------------------------------------
class TestTracers:
    def test_null_tracer_resolves_to_none(self):
        assert resolve_tracer(None) is None
        assert resolve_tracer(NullTracer()) is None
        assert resolve_tracer(NULL_TRACER) is None

    def test_real_tracers_pass_through(self):
        t = InMemoryTracer()
        assert resolve_tracer(t) is t
        m = MultiTracer([t])
        assert resolve_tracer(m) is m

    def test_non_tracer_rejected(self):
        with pytest.raises(TypeError, match="Tracer"):
            resolve_tracer(object())
        with pytest.raises(TypeError):
            resolve_tracer(lambda e: None)  # callables are not sinks

    def test_event_schema(self):
        t = InMemoryTracer()
        t.emit("strike", 12, bit=3)
        (ev,) = t.events
        assert ev == {"v": SCHEMA_VERSION, "kind": "strike", "iter": 12, "bit": 3}

    def test_context_merged_into_events(self):
        t = InMemoryTracer(context={"task": "abc"})
        t.emit("step", 1)
        t.context["rep"] = 4
        t.emit("step", 2)
        assert t.events[0]["task"] == "abc" and "rep" not in t.events[0]
        assert t.events[1]["rep"] == 4

    def test_in_memory_helpers(self):
        t = InMemoryTracer()
        t.emit("step", 1)
        t.emit("step", 2)
        t.emit("strike", 2)
        assert len(t) == 3
        assert [e["iter"] for e in t.of_kind("step")] == [1, 2]
        assert t.counts_by_kind() == {"step": 2, "strike": 1}
        t.clear()
        assert len(t) == 0

    def test_multi_tracer_fans_out(self):
        t1, t2 = InMemoryTracer(), InMemoryTracer()
        m = MultiTracer([t1, t2])
        m.emit("checkpoint", 5, time_units=1.0)
        assert t1.events == t2.events and len(t1) == 1

    def test_callback_tracer(self):
        events, iters = [], []
        t = CallbackTracer(
            on_iteration=lambda ctx: iters.append(ctx), on_event=events.append
        )
        t.emit("step", 1)
        t.iteration("ctx")
        assert [e["kind"] for e in events] == ["step"] and iters == ["ctx"]

    def test_known_kinds_cover_engine_vocabulary(self):
        assert FAULT_EVENT_KINDS <= EVENT_KINDS
        for kind in ("solve-start", "solve-converge", "step", "strike",
                     "abft-correction", "checkpoint", "rollback"):
            assert kind in EVENT_KINDS

    def test_jsonl_tracer_appends_and_survives_reopen(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as t:
            t.emit("step", 1)
        with JsonlTracer(path) as t:  # append, not truncate
            t.emit("step", 2)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["iter"] for e in lines] == [1, 2]

    def test_jsonl_tracer_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlTracer(path) as t:
            t.emit("step", 1)
        assert path.exists()

    def test_tracer_base_write_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Tracer().emit("step", 1)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counters(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 4)
        assert m.count("a") == 5 and m.count("missing") == 0

    def test_timers(self):
        m = Metrics()
        with m.time_section("t"):
            pass
        m.observe("t", 2.0)
        t = m.timer("t")
        assert t["count"] == 2 and t["max"] >= 2.0 and t["min"] >= 0.0

    def test_snapshot_is_deep_copy(self):
        m = Metrics()
        m.inc("a")
        snap = m.snapshot()
        m.inc("a")
        assert snap["counters"]["a"] == 1

    def test_reset(self):
        m = Metrics()
        m.inc("a")
        m.reset()
        assert m.snapshot() == {"counters": {}, "timers": {}}

    def test_merge_snapshots(self):
        s1 = {"counters": {"a": 1}, "timers": {"t": {"count": 1, "total": 1.0, "min": 1.0, "max": 1.0}}}
        s2 = {"counters": {"a": 2, "b": 1}, "timers": {"t": {"count": 1, "total": 3.0, "min": 3.0, "max": 3.0}}}
        merged = merge_snapshots([s1, s2])
        assert merged["counters"] == {"a": 3, "b": 1}
        assert merged["timers"]["t"] == {"count": 2, "total": 4.0, "min": 1.0, "max": 3.0}

    def test_diff_snapshots_drops_inherited_values(self):
        # The fork-safety property the campaign telemetry relies on:
        # counters a worker inherited from its parent vanish from the
        # per-chunk delta.
        base = {"counters": {"a": 5, "b": 2}, "timers": {}}
        end = {"counters": {"a": 8, "b": 2}, "timers": {}}
        assert diff_snapshots(end, base)["counters"] == {"a": 3}

    def test_global_metrics_singleton(self):
        from repro.obs.metrics import METRICS

        assert get_metrics() is METRICS

    def test_engine_folds_counters_once_per_solve(self, problem):
        a, b = problem
        m = get_metrics()
        before = m.snapshot()
        res = _run(a, b)
        delta = diff_snapshots(m.snapshot(), before)["counters"]
        assert delta["engine.solves"] == 1
        assert delta["engine.iterations_executed"] == res.iterations_executed
        assert delta["engine.time_units.useful"] == pytest.approx(
            res.breakdown.useful_work
        )


# ----------------------------------------------------------------------
# engine emission
# ----------------------------------------------------------------------
class TestEngineTracing:
    def test_lifecycle_events_present(self, problem):
        a, b = problem
        t = InMemoryTracer()
        res = _run(a, b, tracer=t)
        counts = t.counts_by_kind()
        assert counts["solve-start"] == 1
        assert counts["solve-converge" if res.converged else "solve-diverge"] == 1
        assert counts["step"] == res.iterations_executed
        assert counts.get("strike", 0) == res.counters.faults_injected
        assert all(ev["kind"] in EVENT_KINDS for ev in t.events)

    def test_solve_start_carries_configuration(self, problem):
        a, b = problem
        t = InMemoryTracer()
        _run(a, b, tracer=t)
        (start,) = t.of_kind("solve-start")
        assert start["method"] == "cg"
        assert start["scheme"] == "abft-correction"
        assert start["n"] == a.nrows and start["nnz"] == a.nnz
        assert start["backend"] == "reference"

    def test_observer_is_deprecated_shim(self, problem):
        a, b = problem
        seen = []
        with pytest.warns(DeprecationWarning, match="observer"):
            res = _run(a, b, observer=seen.append)
        assert len(seen) == res.iterations_executed

    def test_observer_combines_with_tracer(self, problem):
        a, b = problem
        t = InMemoryTracer()
        seen = []
        with pytest.warns(DeprecationWarning):
            res = _run(a, b, observer=seen.append, tracer=t)
        assert len(seen) == res.iterations_executed
        assert t.counts_by_kind()["step"] == res.iterations_executed

    def test_repeat_run_binds_rep_context(self, problem):
        from repro.sim.engine import repeat_run

        a, b = problem
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=8)
        t = InMemoryTracer()
        stats = repeat_run(a, b, cfg, alpha=1 / 16, reps=3, tracer=t)
        assert stats.reps == 3
        assert {e["rep"] for e in t.events} == {0, 1, 2}
        assert "rep" not in t.context  # cleaned up after the loop


# ----------------------------------------------------------------------
# facade
# ----------------------------------------------------------------------
class TestSolveTrace:
    @staticmethod
    def _faults():
        from repro.api.facade import FaultSpec

        return FaultSpec(alpha=1 / 16, seed=11)

    def test_trace_path_writes_jsonl(self, problem, tmp_path):
        import repro

        a, b = problem
        path = tmp_path / "solve.jsonl"
        rep = repro.solve(a, b, faults=self._faults(), trace=path)
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert any(e["kind"] == "solve-start" for e in events)
        steps = [e for e in events if e["kind"] == "step"]
        assert len(steps) == rep.iterations_executed

    def test_trace_does_not_change_solution_or_history(self, problem):
        import repro

        a, b = problem
        plain = repro.solve(a, b, faults=self._faults())
        t = InMemoryTracer()
        traced = repro.solve(a, b, faults=self._faults(), trace=t)
        assert np.array_equal(plain.x, traced.x)
        assert plain.history == traced.history
        assert len(t) > 0

    def test_facade_emits_no_deprecation_warning(self, problem):
        # The facade's history recorder rides the Tracer protocol now;
        # only user code passing observer= should ever see the warning.
        import repro

        a, b = problem
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.solve(a, b, faults=self._faults(), trace=InMemoryTracer())


# ----------------------------------------------------------------------
# summarize + CLI
# ----------------------------------------------------------------------
class TestSummarize:
    @pytest.fixture()
    def trace_file(self, problem, tmp_path):
        a, b = problem
        path = tmp_path / "run.jsonl"
        with JsonlTracer(path) as t:
            _run(a, b, tracer=t)
        return path

    def test_summarize_single_file(self, trace_file):
        s = summarize_trace(trace_file)
        assert s.shards == 1 and s.solves == 1 and s.converged == 1
        assert s.kinds["step"] > 0
        assert s.phase_totals["useful"] > 0

    def test_summarize_tolerates_torn_final_line(self, trace_file):
        with open(trace_file, "a") as fh:
            fh.write('{"v": 1, "kind": "ste')  # crash mid-append
        full = summarize_trace(trace_file)
        assert full.events == summarize_trace(trace_file).events

    def test_summarize_rejects_mid_file_corruption(self, trace_file, tmp_path):
        lines = trace_file.read_text().splitlines()
        lines.insert(1, "not json")
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            summarize_trace(bad)

    def test_cli_trace_summarize(self, trace_file, capsys):
        from repro.api.cli import main

        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "events by kind" in out and "step" in out

    def test_cli_trace_summarize_json(self, trace_file, capsys):
        from repro.api.cli import main

        assert main(["trace", "summarize", str(trace_file), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["solves"] == 1 and data["events"] > 0

    def test_cli_trace_missing_path(self, tmp_path, capsys):
        from repro.api.cli import main

        assert main(["trace", "summarize", str(tmp_path / "nope")]) == 2
        assert "no such trace" in capsys.readouterr().err


# ----------------------------------------------------------------------
# progress reporter
# ----------------------------------------------------------------------
class TestProgress:
    def test_json_mode_emits_parseable_lines(self):
        import io

        from repro.campaign.progress import ProgressReporter

        buf = io.StringIO()
        p = ProgressReporter(2, stream=buf, mode="json", min_interval=0.0)
        p.update()
        p.update(cached=True)
        p.finish()
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert lines[-1]["done"] == 2 and lines[-1]["cached"] == 1
        assert "\r" not in buf.getvalue()

    def test_total_zero_never_divides(self):
        import io

        from repro.campaign.progress import ProgressReporter

        for mode in ("bar", "json"):
            buf = io.StringIO()
            p = ProgressReporter(0, stream=buf, mode=mode, min_interval=0.0)
            p.finish()  # render with done == total == 0
            assert p.rate() == 0.0 and p.eta_seconds() is None
            assert "100.0" in buf.getvalue()  # vacuously complete

    def test_cache_only_campaign_rate_is_zero(self):
        from repro.campaign.progress import ProgressReporter

        p = ProgressReporter(3)
        for _ in range(3):
            p.update(cached=True)
        assert p.fresh == 0 and p.rate() == 0.0

    def test_invalid_mode_rejected(self):
        from repro.campaign.progress import ProgressReporter

        with pytest.raises(ValueError, match="mode"):
            ProgressReporter(1, mode="fancy")

    def test_study_progress_mode_validated(self):
        from repro.api.study import Study

        with pytest.raises(ValueError, match="progress"):
            Study("x").axis("s", [2]).run(progress="fancy")


# ----------------------------------------------------------------------
# campaign shards + telemetry
# ----------------------------------------------------------------------
class TestCampaignObservability:
    @pytest.fixture(scope="class")
    def tasks(self):
        from repro.campaign import CampaignSpec

        return CampaignSpec(kind="table1", scale=64, reps=2, uids=(2213,),
                            s_span=1).expand()

    def _event_counts_per_task(self, trace_dir):
        counts = {}
        for sf in sorted(trace_dir.glob("*.jsonl")):
            for line in sf.read_text().splitlines():
                ev = json.loads(line)
                key = (ev["task"], ev["kind"])
                counts[key] = counts.get(key, 0) + 1
        return counts

    def test_parallel_shards_merge_to_serial_counts(self, tasks, tmp_path):
        # The tentpole acceptance: jobs=4 shard files, merged, reproduce
        # the exact per-task event counts of a serial run.
        from repro.campaign import run_campaign

        serial_dir = tmp_path / "serial"
        par_dir = tmp_path / "par"
        r1 = run_campaign(tasks, jobs=1, trace_dir=serial_dir)
        r2 = run_campaign(tasks, jobs=4, chunksize=1, trace_dir=par_dir)
        assert r1 == r2  # tracing never perturbs records either
        assert len(list(serial_dir.glob("shard-*.jsonl"))) == 1
        assert len(list(par_dir.glob("shard-*.jsonl"))) >= 2
        assert self._event_counts_per_task(serial_dir) == \
            self._event_counts_per_task(par_dir)

    def test_telemetry_record_written_and_reported(self, tasks, tmp_path, capsys):
        from repro.api.cli import main
        from repro.api.report import summarize_store
        from repro.campaign import run_campaign

        store = tmp_path / "store.jsonl"
        run_campaign(tasks, jobs=2, store=store)
        tele = [json.loads(l) for l in store.read_text().splitlines()
                if json.loads(l).get("kind") == "telemetry"]
        assert len(tele) == 1
        rec = tele[0]
        assert rec["hash"].startswith("telemetry:")
        assert rec["schema"] == 1
        assert rec["fresh"] == len(tasks) and rec["cached"] == 0
        assert rec["counters"]["engine.solves"] == sum(t.reps for t in tasks)

        summary = summarize_store(store)
        assert summary.telemetry is not None
        assert summary.records == len(tasks)
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "telemetry" in out and "time shares" in out

    def test_cached_rerun_appends_no_telemetry(self, tasks, tmp_path):
        from repro.campaign import run_campaign

        store = tmp_path / "store.jsonl"
        run_campaign(tasks, jobs=1, store=store)
        before = store.read_text()
        run_campaign(tasks, jobs=1, store=store)  # fully cached
        assert store.read_text() == before

    def test_report_tolerates_pre_telemetry_store(self, tasks, tmp_path):
        from repro.api.report import summarize_store
        from repro.campaign import run_campaign

        store = tmp_path / "old.jsonl"
        run_campaign(tasks, jobs=1, store=store)
        pruned = [l for l in store.read_text().splitlines()
                  if '"telemetry"' not in l]
        old = tmp_path / "pre.jsonl"
        old.write_text("\n".join(pruned) + "\n")
        summary = summarize_store(old)
        assert summary.telemetry is None
        assert summary.records == len(tasks)
