"""Unit tests for the simulated communicator."""

import numpy as np
import pytest

from repro.parallel import SimComm


class TestCollectives:
    def test_bcast(self):
        comm = SimComm(4)
        out = comm.bcast({"k": 1}, root=2)
        assert len(out) == 4
        assert all(o == {"k": 1} for o in out)

    def test_scatter(self):
        comm = SimComm(3)
        out = comm.scatter([1, 2, 3])
        assert out == [1, 2, 3]

    def test_gather(self):
        comm = SimComm(3)
        out = comm.gather(["a", "b", "c"], root=1)
        assert out[1] == ["a", "b", "c"]
        assert out[0] is None and out[2] is None

    def test_allgather(self):
        comm = SimComm(2)
        out = comm.allgather([10, 20])
        assert out == [[10, 20], [10, 20]]

    def test_allgather_concat(self):
        comm = SimComm(3)
        slices = [np.array([1.0]), np.array([2.0, 3.0]), np.array([4.0])]
        out = comm.allgather_concat(slices)
        for full in out:
            np.testing.assert_array_equal(full, [1.0, 2.0, 3.0, 4.0])
        # Each rank owns an independent copy.
        out[0][0] = 99.0
        assert out[1][0] == 1.0

    def test_allreduce_sum_scalars(self):
        comm = SimComm(4)
        assert comm.allreduce_sum([1.0, 2.0, 3.0, 4.0]) == [10.0] * 4

    def test_allreduce_sum_arrays(self):
        comm = SimComm(2)
        out = comm.allreduce_sum([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        np.testing.assert_array_equal(out[0], [4.0, 6.0])
        out[0][0] = 7.0
        assert out[1][0] == 4.0  # independent copies


class TestAccounting:
    def test_allgather_volume(self):
        comm = SimComm(4)
        comm.allgather_concat([np.ones(10)] * 4)
        assert comm.stats.words == 40 * 3
        assert comm.stats.messages == 4 * 3
        assert comm.stats.collectives == {"allgather": 1}

    def test_bcast_volume(self):
        comm = SimComm(5)
        comm.bcast(np.ones(7))
        assert comm.stats.words == 7 * 4

    def test_barrier_counts_no_words(self):
        comm = SimComm(3)
        comm.barrier()
        assert comm.stats.words == 0
        assert comm.stats.collectives == {"barrier": 1}

    def test_single_rank_moves_nothing(self):
        comm = SimComm(1)
        comm.allgather_concat([np.ones(5)])
        assert comm.stats.words == 0


class TestValidation:
    def test_size_positive(self):
        with pytest.raises(ValueError):
            SimComm(0)

    def test_contribution_count_checked(self):
        comm = SimComm(3)
        with pytest.raises(ValueError, match="contribution"):
            comm.allgather([1, 2])

    def test_root_range_checked(self):
        comm = SimComm(2)
        with pytest.raises(ValueError, match="rank"):
            comm.bcast(1, root=5)
