"""Unit tests for triple modular redundancy."""

import numpy as np
import pytest

from repro.abft import TMRError, majority_vote, tmr_axpy, tmr_dot, tmr_norm2


class TestMajorityVote:
    def test_all_agree(self):
        assert majority_vote([1.0, 1.0, 1.0]) == 1.0

    def test_one_scalar_corrupted(self):
        assert majority_vote([1.0, 99.0, 1.0]) == 1.0
        assert majority_vote([99.0, 1.0, 1.0]) == 1.0
        assert majority_vote([1.0, 1.0, 99.0]) == 1.0

    def test_array_replicas(self):
        good = np.arange(4.0)
        bad = good.copy()
        bad[2] = -7.0
        np.testing.assert_array_equal(majority_vote([good, bad, good.copy()]), good)

    def test_all_disagree_raises(self):
        with pytest.raises(TMRError, match="disagree"):
            majority_vote([1.0, 2.0, 3.0])

    def test_wrong_replica_count(self):
        with pytest.raises(ValueError, match="3 replicas"):
            majority_vote([1.0, 2.0])

    def test_rtol_agreement(self):
        assert majority_vote([1.0, 1.0 + 1e-12, 5.0], rtol=1e-9) == 1.0


class TestKernels:
    def test_dot_clean(self, rng):
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert tmr_dot(x, y) == pytest.approx(float(x @ y))

    def test_norm2_clean(self, rng):
        x = rng.normal(size=50)
        assert tmr_norm2(x) == pytest.approx(float(x @ x))

    def test_axpy_clean(self, rng):
        x, y = rng.normal(size=50), rng.normal(size=50)
        np.testing.assert_allclose(tmr_axpy(2.5, x, y), y + 2.5 * x)

    def test_axpy_does_not_mutate_inputs(self, rng):
        x, y = rng.normal(size=10), rng.normal(size=10)
        x0, y0 = x.copy(), y.copy()
        tmr_axpy(1.5, x, y)
        np.testing.assert_array_equal(x, x0)
        np.testing.assert_array_equal(y, y0)

    def test_dot_single_replica_corruption_masked(self, rng):
        x, y = rng.normal(size=50), rng.normal(size=50)
        truth = float(x @ y)

        def corrupt(i, v):
            return v + 100.0 if i == 1 else v

        assert tmr_dot(x, y, corrupt=corrupt) == pytest.approx(truth)

    def test_axpy_single_replica_corruption_masked(self, rng):
        x, y = rng.normal(size=20), rng.normal(size=20)

        def corrupt(i, v):
            if i == 0:
                v = np.array(v, copy=True)
                v[3] += 50.0
            return v

        np.testing.assert_allclose(tmr_axpy(1.0, x, y, corrupt=corrupt), y + x)

    def test_double_corruption_detected(self, rng):
        x = rng.normal(size=10)

        def corrupt(i, v):
            return v + float(i + 1)  # all three replicas differ

        with pytest.raises(TMRError):
            tmr_norm2(x, corrupt=corrupt)

    def test_consistent_double_corruption_wins_vote(self, rng):
        # Two replicas corrupted identically out-vote the truth: the
        # documented TMR failure mode ("two out of three are correct"
        # is an assumption, not a guarantee).
        x = rng.normal(size=10)
        truth = float(x @ x)

        def corrupt(i, v):
            return v + 7.0 if i in (0, 2) else v

        assert tmr_norm2(x, corrupt=corrupt) == pytest.approx(truth + 7.0)
