"""Unit tests for the CSR container."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, StructureError
from tests.conftest import dense_random_csr


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = np.where(rng.random((7, 9)) < 0.4, rng.normal(size=(7, 9)), 0.0)
        a = CSRMatrix.from_dense(dense)
        assert a.shape == (7, 9)
        np.testing.assert_array_equal(a.to_dense(), dense)

    def test_from_scipy_roundtrip(self, small_lap):
        back = CSRMatrix.from_scipy(small_lap.to_scipy())
        assert back.equals(small_lap)

    def test_from_coo_sums_duplicates(self):
        a = CSRMatrix.from_coo(
            np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([2.0, 3.0, 4.0]), (2, 2)
        )
        assert a.to_dense()[0, 1] == 5.0
        assert a.to_dense()[1, 0] == 4.0

    def test_dtypes_coerced(self):
        a = CSRMatrix(
            np.array([1, 2], dtype=np.float32),
            np.array([0, 1], dtype=np.int32),
            np.array([0, 1, 2], dtype=np.int32),
            (2, 2),
        )
        assert a.val.dtype == np.float64
        assert a.colid.dtype == np.int64
        assert a.rowidx.dtype == np.int64

    def test_invalid_structure_rejected(self):
        with pytest.raises(StructureError):
            CSRMatrix(np.array([1.0]), np.array([5]), np.array([0, 1]), (1, 2))

    def test_check_false_allows_corruption(self):
        a = CSRMatrix(np.array([1.0]), np.array([5]), np.array([0, 1]), (1, 2), check=False)
        assert a.nnz == 1

    def test_from_dense_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            CSRMatrix.from_dense(np.zeros((2, 2, 2)))


class TestProperties:
    def test_shape_accessors(self, small_lap):
        assert small_lap.nrows == small_lap.ncols == 400
        assert small_lap.shape == (400, 400)

    def test_nnz_and_density(self, small_lap):
        assert small_lap.nnz == small_lap.val.size
        assert small_lap.density == pytest.approx(small_lap.nnz / 400**2)

    def test_memory_words_counts_all_arrays(self, small_lap):
        expected = small_lap.nnz * 2 + small_lap.nrows + 1
        assert small_lap.memory_words == expected

    def test_row_nnz_sums_to_nnz(self, small_spd):
        assert small_spd.row_nnz().sum() == small_spd.nnz

    def test_row_view_matches_dense(self, small_spd):
        dense = small_spd.to_dense()
        cols, vals = small_spd.row(5)
        row = np.zeros(small_spd.ncols)
        row[cols] = vals
        np.testing.assert_allclose(row, dense[5])

    def test_diagonal(self, small_lap):
        np.testing.assert_allclose(small_lap.diagonal(), np.diag(small_lap.to_dense()))


class TestOperations:
    def test_matmul_operator(self, small_lap, xvec):
        np.testing.assert_allclose(small_lap @ xvec, small_lap.matvec(xvec))

    def test_transpose_of_symmetric_is_equal(self, small_lap):
        assert small_lap.transpose().equals(small_lap)

    def test_transpose_rectangular(self, rng):
        a = dense_random_csr(rng, 5, 8, 0.5)
        np.testing.assert_allclose(a.transpose().to_dense(), a.to_dense().T)

    def test_copy_is_deep(self, small_lap):
        c = small_lap.copy()
        c.val[0] += 1.0
        c.colid[0] += 1
        c.rowidx[1] += 1
        assert small_lap.val[0] != c.val[0]
        assert small_lap.colid[0] != c.colid[0]
        assert small_lap.rowidx[1] != c.rowidx[1]

    def test_equals_detects_value_change(self, small_lap):
        c = small_lap.copy()
        c.val[3] *= 2.0
        assert not c.equals(small_lap)

    def test_equals_detects_structure_change(self, small_lap):
        c = small_lap.copy()
        c.colid[3] = (c.colid[3] + 1) % c.ncols
        assert not c.equals(small_lap)
