"""Adaptive partial records: mid-task crash, resume, zero recompute.

An adaptive task checkpoints its per-rep trajectory into the store as
``kind="partial"`` records (one per completed batch).  These tests pin
the recovery contract on every store backend: kill a worker mid-task,
resume against the same store, and the campaign (a) re-executes only
the repetitions the dead worker never finished — counted exactly via
the ``adaptive.reps`` metric — and (b) converges to records
bit-identical to an uninterrupted run, on a store ``repro store
verify`` calls clean.
"""

import multiprocessing
import os
import signal

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.executor import (
    execute_task,
    load_partials,
    make_partial_record,
    partial_hash,
)
from repro.obs.metrics import METRICS
from repro.store import open_store, verify_store

#: A relative CI target of 1e-6 is unreachable for fault-perturbed
#: timings, so every task with timing variance runs to its cap —
#: which makes "how many reps remain after the crash" deterministic.
SAMPLING = "ci=1e-06,conf=0.95,min=2,max=40"


def _spec() -> CampaignSpec:
    return CampaignSpec(
        kind="figure1", scale=16, uids=(2213,), mtbf_values=(100.0,),
        sampling=SAMPLING,
    )


@pytest.fixture(scope="module")
def adaptive_tasks():
    return _spec().expand()


@pytest.fixture(scope="module")
def baseline_records(adaptive_tasks):
    """Records of an uninterrupted serial adaptive run."""
    return run_campaign(adaptive_tasks, jobs=1)


def _task_records(loaded: dict) -> dict:
    return {
        h: r for h, r in loaded.items()
        if r.get("kind") not in ("telemetry", "partial")
    }


def _expected_fresh_reps(url, tasks, baseline) -> "tuple[int, int]":
    """(reps a resume must execute, reps it must restore) given the
    store's current partials/finals and the uninterrupted baseline."""
    store = open_store(url)
    done = {
        r["hash"] for r in store.iter_records()
        if r.get("kind") not in ("telemetry", "partial")
    }
    partials = load_partials(store, {t.task_hash() for t in tasks})
    execute = resumed = 0
    for task, rec in zip(tasks, baseline):
        h = task.task_hash()
        if h in done:
            continue
        prior = len(partials[h]["times"]) if h in partials else 0
        # Prefix sharing makes the resumed task stop at exactly the
        # rep count the uninterrupted run stopped at.
        execute += rec["stats"]["reps"] - prior
        resumed += prior
    return execute, resumed


def _writer_main(url, n_partials):
    """Child: run the adaptive campaign serially, SIGKILL ourselves the
    instant the ``n_partials``-th partial checkpoint hits the store —
    i.e. mid-task, between two repetitions."""
    store = open_store(url)
    real_append = store.append
    seen = [0]

    def tapped(rec):
        real_append(rec)
        if rec.get("kind") == "partial":
            seen[0] += 1
            if seen[0] >= n_partials:
                os.kill(os.getpid(), signal.SIGKILL)

    store.append = tapped
    run_campaign(_spec().expand(), jobs=1, store=store)


class TestKilledAdaptiveWorkerResume:
    @pytest.mark.parametrize("kind", ["jsonl", "sharded", "sqlite"])
    def test_resume_recomputes_zero_reps(
        self, kind, tmp_path, adaptive_tasks, baseline_records
    ):
        if kind == "jsonl":
            url = str(tmp_path / "r.jsonl")
        elif kind == "sharded":
            url = f"sharded:{tmp_path / 'r.d'}"
        else:
            url = f"sqlite:{tmp_path / 'r.db'}"
        proc = multiprocessing.Process(target=_writer_main, args=(url, 4))
        proc.start()
        proc.join(180)
        assert proc.exitcode == -signal.SIGKILL

        # The crash footprint: at least one partial checkpoint, no
        # record yet for the task it belongs to.
        store = open_store(url)
        partials = load_partials(
            store, {t.task_hash() for t in adaptive_tasks}
        )
        assert partials, "child died before writing any partial"
        done = _task_records(store.load())
        assert all(h not in done for h in partials)

        expect_execute, expect_resume = _expected_fresh_reps(
            url, adaptive_tasks, baseline_records
        )
        assert expect_resume > 0
        before = METRICS.count("adaptive.reps")
        before_resumed = METRICS.count("adaptive.reps_resumed")
        records = run_campaign(adaptive_tasks, jobs=1, store=url)
        assert METRICS.count("adaptive.reps") - before == expect_execute
        assert (
            METRICS.count("adaptive.reps_resumed") - before_resumed
            == expect_resume
        )

        # Bit-identical to the uninterrupted run, and the store is
        # integrity-clean after the crash/resume cycle.
        assert records == baseline_records
        report = verify_store(url)
        assert report["corrupt"] == 0
        assert not report["torn_tail"]

    def test_resumed_store_reaggregates_identically(
        self, tmp_path, adaptive_tasks, baseline_records
    ):
        # A full record set reached via crash+resume must aggregate
        # exactly like one written in a single run.
        url = str(tmp_path / "resumed.jsonl")
        proc = multiprocessing.Process(target=_writer_main, args=(url, 2))
        proc.start()
        proc.join(180)
        assert proc.exitcode == -signal.SIGKILL
        run_campaign(adaptive_tasks, jobs=1, store=url)

        from repro.campaign.aggregate import aggregate_figure1_store

        points = aggregate_figure1_store(adaptive_tasks, url)
        direct = {
            t.task_hash(): r
            for t, r in zip(adaptive_tasks, baseline_records)
        }
        for task, p in zip(adaptive_tasks, points):
            stats = direct[task.task_hash()]["stats"]
            assert p.mean_time == stats["mean_time"]
            assert p.reps_used == stats["reps"]
            assert p.reps_cap == task.reps


class TestPartialRecordPlumbing:
    def test_partial_prior_resumes_exact_prefix(self, tmp_path, adaptive_tasks):
        # Deterministic variant without process murder: capture the
        # k-th checkpoint an adaptive task emits, seed a store with it,
        # and prove the resume executes exactly (total - k) reps while
        # reproducing the fresh record bit for bit.
        task = adaptive_tasks[0]

        captured = []

        class Sink:
            def append(self, rec):
                captured.append(rec)

        fresh = execute_task(task, partial_store=Sink())
        total = fresh["stats"]["reps"]
        assert total > 3
        prior = captured[2]  # checkpoint after rep 3
        assert prior["kind"] == "partial"
        assert prior["reps_done"] == 3
        assert prior["hash"] == partial_hash(task.task_hash())

        url = str(tmp_path / "seeded.jsonl")
        store = open_store(url)
        store.append(prior)
        before = METRICS.count("adaptive.reps")
        records = run_campaign([task], jobs=1, store=store)
        assert METRICS.count("adaptive.reps") - before == total - 3
        assert records[0] == fresh

    def test_make_partial_record_roundtrip(self, tmp_path):
        per_rep = {
            "times": [1.5, 2.5], "iterations": [10, 11],
            "rollbacks": [0, 1], "corrections": [2, 0],
            "faults": [1, 1], "converged": [True, True],
        }
        rec = make_partial_record("abc123", per_rep)
        assert rec["reps_done"] == 2
        assert rec["schema"] == 1
        # The payload is copied, not aliased.
        per_rep["times"].append(9.9)
        assert rec["per_rep"]["times"] == [1.5, 2.5]
        store = open_store(str(tmp_path / "p.jsonl"))
        store.append(rec)
        assert load_partials(store, {"abc123"}) == {
            "abc123": rec["per_rep"]
        }

    def test_load_partials_last_wins_and_filters(self, tmp_path):
        store = open_store(str(tmp_path / "p.jsonl"))
        store.append(make_partial_record("aaa", {
            "times": [1.0], "iterations": [5], "rollbacks": [0],
            "corrections": [0], "faults": [0], "converged": [True],
        }))
        store.append(make_partial_record("aaa", {
            "times": [1.0, 2.0], "iterations": [5, 6], "rollbacks": [0, 0],
            "corrections": [0, 0], "faults": [0, 1], "converged": [True, True],
        }))
        store.append(make_partial_record("bbb", {
            "times": [3.0], "iterations": [7], "rollbacks": [0],
            "corrections": [0], "faults": [0], "converged": [True],
        }))
        got = load_partials(store, {"aaa"})
        assert set(got) == {"aaa"}
        assert got["aaa"]["times"] == [1.0, 2.0]


class TestChaosHealsAdaptiveCampaign:
    def test_injected_kills_heal_with_zero_lost_work(
        self, tmp_path, adaptive_tasks, baseline_records
    ):
        # The self-healing harness (repro.chaos) around adaptive tasks:
        # injected worker kills must retry/heal to the uninterrupted
        # result, and the surviving store must be verify-clean.
        url = f"sharded:{tmp_path / 'chaos.d'}"
        records = run_campaign(
            adaptive_tasks, jobs=2, store=url,
            retries=6, chaos="kill=0.3,seed=7",
        )
        assert records == baseline_records
        assert _task_records(open_store(url).load()) == {
            t.task_hash(): r
            for t, r in zip(adaptive_tasks, baseline_records)
        }
        report = verify_store(url)
        assert report["corrupt"] == 0
