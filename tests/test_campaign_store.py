"""JSONL result store: round-trip, crash recovery, resume splitting."""

import json

import pytest

from repro.campaign import ResultStore, StoreError, TaskSpec


def _record(h, **extra):
    return {"hash": h, "task": {"uid": 1}, "stats": {"mean_time": 1.5}, **extra}


def _task(s):
    return TaskSpec("table1", uid=2213, scale=48, scheme="abft-detection",
                    alpha=1 / 16, s=s, labels=("table1", 2213, "s", s))


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        with store:
            store.append(_record("aaa"))
            store.append(_record("bbb", n=512))
        loaded = store.load()
        assert set(loaded) == {"aaa", "bbb"}
        assert loaded["bbb"]["n"] == 512
        assert loaded["aaa"]["stats"]["mean_time"] == 1.5

    def test_floats_roundtrip_exactly(self, tmp_path):
        value = 0.1 + 0.2  # not representable prettily; repr round-trips
        store = ResultStore(tmp_path / "r.jsonl")
        with store:
            store.append({"hash": "x", "stats": {"mean_time": value}})
        assert store.load()["x"]["stats"]["mean_time"] == value

    def test_load_missing_file_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").load() == {}

    def test_duplicate_hash_last_wins(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        with store:
            store.append(_record("aaa", rev=1))
            store.append(_record("aaa", rev=2))
        assert store.load()["aaa"]["rev"] == 2

    def test_record_without_hash_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        with pytest.raises(ValueError):
            store.append({"stats": {}})


class TestCrashRecovery:
    def test_corrupt_trailing_line_dropped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        with store:
            store.append(_record("aaa"))
            store.append(_record("bbb"))
        with open(path, "a") as fh:
            fh.write('{"hash": "ccc", "stats": {"mean_ti')  # torn write
        assert set(store.load()) == {"aaa", "bbb"}

    def test_trailing_partial_then_append_still_loads(self, tmp_path):
        # A resumed campaign appends after the torn line; the append
        # must first truncate the fragment, or it would become a
        # corrupt mid-file line and poison every later load.
        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(_record("aaa")) + "\n")
            fh.write('{"torn')
        store = ResultStore(path)
        assert set(store.load()) == {"aaa"}
        with store:
            store.append(_record("bbb"))
        assert set(store.load()) == {"aaa", "bbb"}
        assert '{"torn' not in path.read_text()

    def test_parseable_torn_tail_also_dropped(self, tmp_path):
        # A flush cut exactly at the closing brace leaves valid JSON
        # with no newline.  It must still count as torn: the next
        # append truncates it from disk, so load() serving it as a
        # cached record would silently lose a "completed" task.
        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(_record("aaa")) + "\n")
            fh.write(json.dumps(_record("bbb")))  # no trailing newline
        store = ResultStore(path)
        assert set(store.load()) == {"aaa"}
        with store:
            store.append(_record("ccc"))
        assert set(store.load()) == {"aaa", "ccc"}

    def test_corrupt_but_complete_final_line_raises(self, tmp_path):
        # A newline-terminated corrupt record is NOT the torn-write
        # footprint (appends write line+"\n" atomically from the
        # store's side); dropping it would hide real damage.
        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(_record("aaa")) + "\n")
            fh.write("garbage\n")
        with pytest.raises(StoreError, match="corrupt record"):
            ResultStore(path).load()

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(_record("aaa")) + "\n\n")
            fh.write(json.dumps(_record("bbb")) + "\n")
        assert set(ResultStore(path).load()) == {"aaa", "bbb"}

    def test_corrupt_midfile_raises(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(_record("aaa")) + "\n")
            fh.write("garbage not json\n")
            fh.write(json.dumps(_record("bbb")) + "\n")
        with pytest.raises(StoreError, match="corrupt record"):
            ResultStore(path).load()

    def test_non_dict_line_midfile_raises(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            fh.write("[1, 2, 3]\n")
            fh.write(json.dumps(_record("bbb")) + "\n")
        with pytest.raises(StoreError):
            ResultStore(path).load()


class TestStreamingReads:
    def test_iter_records_keeps_file_order_and_duplicates(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        with store:
            store.append(_record("aaa", rev=1))
            store.append(_record("bbb"))
            store.append(_record("aaa", rev=2))
        seen = [(r["hash"], r.get("rev")) for r in store.iter_records()]
        assert seen == [("aaa", 1), ("bbb", None), ("aaa", 2)]

    def test_iter_records_drops_torn_tail(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(_record("aaa")) + "\n")
            fh.write('{"torn')
        assert [r["hash"] for r in ResultStore(path).iter_records()] == ["aaa"]

    def test_count_is_distinct_hashes(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        with store:
            store.append(_record("aaa", rev=1))
            store.append(_record("bbb"))
            store.append(_record("aaa", rev=2))
        assert store.count() == 2 == len(store)

    def test_count_handles_foreign_key_order(self, tmp_path):
        # Hand-written records that don't start with the library's
        # '{"hash": "' prefix must fall back to a real parse.
        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            fh.write('{"stats": {}, "hash": "zzz"}\n')
            fh.write(json.dumps(_record("aaa")) + "\n")
        assert ResultStore(path).count() == 2

    def test_count_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            fh.write("garbage\n")
        with pytest.raises(StoreError, match="corrupt record"):
            ResultStore(path).count()


class TestResume:
    def test_resume_splits_done_and_pending(self, tmp_path):
        tasks = [_task(s) for s in (1, 2, 3, 4)]
        store = ResultStore(tmp_path / "r.jsonl")
        with store:
            store.append(_record(tasks[0].task_hash()))
            store.append(_record(tasks[2].task_hash()))
        done, pending = store.resume(tasks)
        assert set(done) == {tasks[0].task_hash(), tasks[2].task_hash()}
        assert pending == [tasks[1], tasks[3]]

    def test_resume_empty_store(self, tmp_path):
        tasks = [_task(1)]
        done, pending = ResultStore(tmp_path / "r.jsonl").resume(tasks)
        assert done == {} and pending == tasks

    def test_len_counts_records(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        assert len(store) == 0
        with store:
            store.append(_record("aaa"))
        assert len(store) == 1
