"""Unit tests for k-error detection (technical-report extension)."""

import numpy as np
import pytest

from repro.abft import compute_multi_checksums, detect_multi
from repro.sparse import laplacian_2d


@pytest.fixture(scope="module")
def setup():
    a = laplacian_2d(15)  # 225×225
    x = np.random.default_rng(3).normal(size=a.ncols)
    return a, x


class TestCleanProducts:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_clean_passes(self, setup, k):
        a, x = setup
        cks = compute_multi_checksums(a, k)
        y = a.matvec(x)
        clean, residuals = detect_multi(a, x, y, cks)
        assert clean
        assert residuals.shape == (k,)

    def test_clean_across_scales(self, setup):
        a, _ = setup
        cks = compute_multi_checksums(a, 3)
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.normal(size=a.ncols) * 10.0 ** rng.integers(-6, 7)
            assert detect_multi(a, x, a.matvec(x), cks)[0]

    def test_k_validated(self, setup):
        with pytest.raises(ValueError):
            compute_multi_checksums(setup[0], 0)


class TestMultiErrorDetection:
    @pytest.mark.parametrize("k,nerrors", [(2, 1), (2, 2), (3, 2), (3, 3), (4, 4)])
    def test_up_to_k_output_errors_detected(self, setup, k, nerrors):
        a, x = setup
        cks = compute_multi_checksums(a, k)
        rng = np.random.default_rng(k * 10 + nerrors)
        for _ in range(20):
            y = a.matvec(x)
            pos = rng.choice(a.nrows, size=nerrors, replace=False)
            y[pos] += rng.uniform(0.5, 5.0, size=nerrors) * rng.choice([-1, 1], size=nerrors)
            clean, _ = detect_multi(a, x, y, cks)
            assert not clean

    def test_matrix_errors_detected(self, setup):
        a, x = setup
        cks = compute_multi_checksums(a, 3)
        bad = a.copy()
        bad.val[10] += 1.0
        bad.val[300] -= 2.0
        bad.val[700] += 0.7
        y = bad.matvec(x)
        clean, _ = detect_multi(bad, x, y, cks)
        assert not clean

    def test_adversarial_cancellation_beyond_k_possible(self, setup):
        """More than k errors *can* evade k checksums: pick a
        perturbation orthogonal to all k weight rows."""
        a, x = setup
        k = 2
        cks = compute_multi_checksums(a, k)
        y = a.matvec(x)
        # Build a 3-error perturbation in the null space of the 2
        # weight rows (restricted to 3 coordinates).
        cols = np.array([4, 90, 200])
        w = cks.weights[:, cols]  # 2×3
        null = np.linalg.svd(w)[2][-1]  # right-singular vector, w @ null = 0
        y[cols] += 10.0 * null
        clean, _ = detect_multi(a, x, y, cks)
        assert clean  # documented limitation: k checksums detect ≤ k errors

    def test_same_evasion_caught_with_larger_k(self, setup):
        a, x = setup
        cks2 = compute_multi_checksums(a, 2)
        cks4 = compute_multi_checksums(a, 4)
        cols = np.array([4, 90, 200])
        null = np.linalg.svd(cks2.weights[:, cols])[2][-1]
        y = a.matvec(x)
        y[cols] += 10.0 * null
        assert detect_multi(a, x, y, cks2)[0]
        assert not detect_multi(a, x, y, cks4)[0]


class TestOverheadScaling:
    def test_setup_linear_in_k(self, setup):
        a, _ = setup
        for k in (1, 2, 4):
            cks = compute_multi_checksums(a, k)
            assert cks.column_checksums.shape == (k, a.ncols)
            assert cks.weights.shape == (k, a.nrows)
