"""The solver axis through the campaign stack (spec → executor →
aggregate → formatters)."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    aggregate_figure1,
    aggregate_table1,
    run_campaign,
)
from repro.sim.results import format_figure1, format_table1

UID = 2213  # smallest suite matrix at high scale


class TestSpecExpansion:
    def test_default_is_classic_cg(self):
        spec = CampaignSpec(kind="figure1", scale=64, uids=(UID,), mtbf_values=(16.0,))
        tasks = spec.expand()
        assert {t.method for t in tasks} == {"cg"}
        assert [t.scheme for t in tasks] == [
            "online-detection", "abft-detection", "abft-correction",
        ]

    def test_online_dropped_for_non_cg(self):
        spec = CampaignSpec(
            kind="figure1", scale=64, uids=(UID,), mtbf_values=(16.0,),
            methods=("cg", "bicgstab", "pcg"),
        )
        tasks = spec.expand()
        per_method = {}
        for t in tasks:
            per_method.setdefault(t.method, []).append(t.scheme)
        assert len(per_method["cg"]) == 3
        assert per_method["bicgstab"] == ["abft-detection", "abft-correction"]
        assert per_method["pcg"] == ["abft-detection", "abft-correction"]

    def test_table1_grid_per_method(self):
        one = CampaignSpec(kind="table1", scale=64, uids=(UID,), s_span=1).expand()
        three = CampaignSpec(
            kind="table1", scale=64, uids=(UID,), s_span=1,
            methods=("cg", "bicgstab", "pcg"),
        ).expand()
        assert len(three) == 3 * len(one)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            CampaignSpec(kind="table1", methods=("cg", "gmres"))

    def test_empty_methods_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            CampaignSpec(kind="table1", methods=())

    def test_method_distinguishes_tasks(self):
        kw = dict(kind="figure1", scale=64, uids=(UID,), mtbf_values=(16.0,))
        cg = CampaignSpec(**kw).expand()
        pcg = CampaignSpec(**kw, methods=("pcg",)).expand()
        assert {t.task_hash() for t in cg}.isdisjoint(t.task_hash() for t in pcg)


@pytest.fixture(scope="module")
def solver_scheme_sweep():
    """One tiny figure-1 campaign across 3 methods x 3 schemes."""
    spec = CampaignSpec(
        kind="figure1", scale=64, reps=2, uids=(UID,), mtbf_values=(16.0,),
        methods=("cg", "bicgstab", "pcg"),
    )
    tasks = spec.expand()
    records = run_campaign(tasks, jobs=1)
    return tasks, records


class TestExecutionAndAggregation:
    def test_methods_take_distinct_trajectories(self, solver_scheme_sweep):
        tasks, records = solver_scheme_sweep
        by_key = {
            (t.method, t.scheme): r["stats"]["mean_time"]
            for t, r in zip(tasks, records)
        }
        # Same scheme, different solver -> different fault stream and
        # recurrence, hence (almost surely) different mean time.
        assert by_key[("cg", "abft-detection")] != by_key[("pcg", "abft-detection")]
        assert by_key[("cg", "abft-detection")] != by_key[("bicgstab", "abft-detection")]

    def test_figure1_points_carry_method(self, solver_scheme_sweep):
        tasks, records = solver_scheme_sweep
        points = aggregate_figure1(tasks, records)
        assert len(points) == 7  # 3 (cg) + 2 (bicgstab) + 2 (pcg)
        assert {p.method for p in points} == {"cg", "bicgstab", "pcg"}
        for p in points:
            assert np.isfinite(p.mean_time) and p.mean_time > 0

    def test_format_figure1_labels_multi_method_series(self, solver_scheme_sweep):
        tasks, records = solver_scheme_sweep
        out = format_figure1(aggregate_figure1(tasks, records))
        assert "cg:abft-detection" in out
        assert "pcg:abft-correction" in out
        assert "bicgstab:abft-detection" in out
        # online-detection exists only as a CG series
        assert "pcg:online-detection" not in out

    def test_format_figure1_single_method_unchanged(self, solver_scheme_sweep):
        tasks, records = solver_scheme_sweep
        cg_only = [(t, r) for t, r in zip(tasks, records) if t.method == "cg"]
        out = format_figure1(aggregate_figure1(*map(list, zip(*cg_only))))
        # classic scheme-only labels, no method prefix
        assert "cg:" not in out
        assert "online-detection" in out


class TestTable1MethodAxis:
    @pytest.fixture(scope="class")
    def rows(self):
        spec = CampaignSpec(
            kind="table1", scale=64, reps=2, uids=(UID,), s_span=0,
            methods=("cg", "pcg"),
        )
        tasks = spec.expand()
        records = run_campaign(tasks, jobs=1)
        return aggregate_table1(tasks, records)

    def test_one_row_per_method_scheme(self, rows):
        keys = {(r.method, r.scheme) for r in rows}
        assert keys == {
            ("cg", "abft-detection"), ("cg", "abft-correction"),
            ("pcg", "abft-detection"), ("pcg", "abft-correction"),
        }

    def test_format_emits_method_blocks(self, rows):
        out = format_table1(rows)
        assert "method: cg" in out
        assert "method: pcg" in out

    def test_format_single_method_has_no_block_header(self, rows):
        out = format_table1([r for r in rows if r.method == "cg"])
        assert "method:" not in out
