"""The ``repro.solve()`` facade: wiring, reporting, and the golden lock."""

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro import CheckpointSpec, CostModel, FaultSpec, solve
from repro.api.facade import SolveReport
from repro.sim.experiments import model_interval_for
from repro.core.methods import Scheme
from repro.sparse import stencil_spd

GOLDEN = pathlib.Path(__file__).parent / "golden" / "ft_trajectories.json"
_gold = json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def problem():
    a = stencil_spd(900, kind="cross", radius=2)
    b = np.random.default_rng(3).standard_normal(a.nrows)
    return a, b


class TestBasics:
    def test_three_line_protected_solve(self, problem):
        a, b = problem
        report = solve(a, b, method="pcg", scheme="abft-correction",
                       faults=FaultSpec(alpha=0.1, seed=42))
        assert report.converged
        assert report.residual_norm <= report.threshold
        assert report.method == "pcg" and report.scheme == "abft-correction"
        assert report.counters.faults_injected > 0
        assert report.breakdown.total == pytest.approx(report.time_units)
        np.testing.assert_allclose(a.matvec(report.x), b, atol=1e-4)

    def test_default_is_unfaulted_cg(self, problem):
        a, b = problem
        report = solve(a, b)
        assert report.converged
        assert report.method == "cg"
        assert report.alpha == 0.0
        assert report.counters.faults_injected == 0
        assert report.recommended_interval is None
        assert report.checkpoint_interval == CheckpointSpec.DEFAULT_INTERVAL

    def test_shorthand_coercions(self, problem):
        a, b = problem
        r1 = solve(a, b, faults=0.05, checkpoint=7)
        r2 = solve(a, b, faults=FaultSpec(alpha=0.05), checkpoint=CheckpointSpec(interval=7))
        assert r1.checkpoint_interval == r2.checkpoint_interval == 7
        assert r1.alpha == r2.alpha == 0.05

    def test_seeded_runs_reproduce(self, problem):
        a, b = problem
        kw = dict(faults=FaultSpec(alpha=0.1, seed=11))
        r1, r2 = solve(a, b, **kw), solve(a, b, **kw)
        assert r1.time_units == r2.time_units
        assert r1.solution_sha256 == r2.solution_sha256
        assert r1.history == r2.history

    def test_auto_interval_matches_model(self, problem):
        a, b = problem
        alpha = 1.0 / 16.0
        report = solve(a, b, scheme="abft-detection", faults=alpha)
        s, _ = model_interval_for(Scheme.ABFT_DETECTION, alpha, CostModel.from_matrix(a))
        assert report.checkpoint_interval == s == report.recommended_interval

    def test_online_auto_d_from_chen(self, problem):
        a, b = problem
        report = solve(a, b, scheme="online-detection", faults=1.0 / 500.0)
        assert report.verification_interval > 1  # Chen's d grows with MTBF

    def test_dense_and_scipy_inputs(self):
        rng = np.random.default_rng(0)
        m = rng.standard_normal((40, 40))
        dense = m @ m.T + 40 * np.eye(40)
        b = rng.standard_normal(40)
        r1 = solve(dense, b, scheme="abft-detection")
        assert r1.converged
        import scipy.sparse

        r2 = solve(scipy.sparse.csr_matrix(dense), b, scheme="abft-detection")
        assert r2.converged
        assert r1.solution_sha256 == r2.solution_sha256


class TestValidationErrors:
    def test_unknown_method_lists_valid_values(self, problem):
        a, b = problem
        with pytest.raises(ValueError, match="cg, bicgstab, pcg"):
            solve(a, b, method="gmres")

    def test_unknown_scheme_lists_valid_values(self, problem):
        a, b = problem
        with pytest.raises(ValueError, match="online-detection, abft-detection"):
            solve(a, b, scheme="abft")

    def test_unsupported_combo_names_supported_schemes(self, problem):
        a, b = problem
        with pytest.raises(ValueError, match="does not support"):
            solve(a, b, method="bicgstab", scheme="online-detection")

    def test_shape_mismatch(self, problem):
        a, _ = problem
        with pytest.raises(ValueError, match="shape"):
            solve(a, np.ones(3))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            FaultSpec(alpha=-0.5)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            CheckpointSpec(interval=0)
        with pytest.raises(ValueError, match="interval"):
            CheckpointSpec(interval="sometimes")

    def test_bad_coercions_rejected(self, problem):
        a, b = problem
        with pytest.raises(TypeError):
            solve(a, b, faults="lots")
        with pytest.raises(TypeError):
            solve(a, b, checkpoint=3.5)

    def test_non_matrix_rejected(self):
        with pytest.raises(TypeError, match="matrix"):
            solve([1, 2, 3], np.ones(3))


class TestReportSerialization:
    @pytest.fixture(scope="class")
    def report(self):
        a = stencil_spd(400, kind="cross", radius=1)
        b = np.random.default_rng(5).standard_normal(a.nrows)
        return solve(a, b, faults=FaultSpec(alpha=0.1, seed=9))

    def test_to_dict_roundtrips_through_json(self, report):
        d = json.loads(report.to_json())
        assert d["converged"] == report.converged
        assert d["time_units"] == report.time_units  # exact float round trip
        assert d["counters"]["faults_injected"] == report.counters.faults_injected
        assert d["solution_sha256"] == report.solution_sha256
        assert "x" not in d

    def test_solution_opt_in(self, report):
        d = report.to_dict(solution=True)
        assert np.asarray(d["x"]).shape == report.x.shape
        digest = hashlib.sha256(
            np.ascontiguousarray(np.asarray(d["x"])).tobytes()
        ).hexdigest()
        assert digest == report.solution_sha256

    def test_history_is_per_executed_iteration(self, report):
        assert len(report.history) == report.iterations_executed
        times = [h["time_units"] for h in report.history]
        assert times == sorted(times)
        assert report.history[-1]["residual_norm"] < report.history[0]["residual_norm"]

    def test_history_opt_out(self):
        a = stencil_spd(100, kind="cross", radius=1)
        b = np.ones(a.nrows)
        report = solve(a, b, record_history=False)
        assert report.history == []

    def test_summary_mentions_the_essentials(self, report):
        text = report.summary()
        assert "converged" in text
        assert "cg" in text and "abft-correction" in text
        assert str(report.checkpoint_interval) in text

    def test_reports_compare_and_hash_by_identity(self, report):
        # The ndarray field would make a generated __eq__ raise; the
        # dataclass opts out (eq=False), so == and hash() must work.
        other = solve(stencil_spd(100, kind="cross", radius=1),
                      np.ones(100))
        assert report == report
        assert not (report == other)
        assert len({report, other}) == 2


class TestGoldenLock:
    """``solve()`` must reproduce the golden FT-CG trajectories bit for bit.

    Same fixtures as ``test_resilience_golden.py``: the facade adds
    wiring, never physics — identical (matrix, b, scheme, s, d, alpha,
    seed, eps, costs) must give the identical trajectory, down to the
    float accounting.
    """

    @pytest.fixture(scope="class")
    def golden_problem(self):
        a = stencil_spd(529, kind="cross", radius=2)
        b = np.random.default_rng(_gold["rhs_seed"]).normal(size=a.nrows)
        return a, b

    @pytest.mark.parametrize(
        "entry",
        [e for e in _gold["entries"] if e["driver"] == "ft_cg"],
        ids=lambda e: f"{e['scheme']}-a{e['alpha']}-seed{e['seed']}",
    )
    def test_bit_identical_to_golden_ft_cg(self, golden_problem, entry):
        a, b = golden_problem
        with np.errstate(all="ignore"):
            report = solve(
                a,
                b,
                method="cg",
                scheme=entry["scheme"],
                faults=FaultSpec(alpha=entry["alpha"], seed=entry["seed"]),
                checkpoint=CheckpointSpec(
                    interval=_gold["s"], verification_interval=entry["d"]
                ),
                costs=CostModel(),  # the golden runs used the default model
                eps=_gold["eps"],
            )
        want = entry["result"]
        assert report.solution_sha256 == want["x_sha256"]
        assert report.converged == want["converged"]
        assert report.iterations == want["iterations"]
        assert report.iterations_executed == want["iterations_executed"]
        assert float(report.time_units).hex() == want["time_units"]
        assert float(report.residual_norm).hex() == want["residual_norm"]
        c, wc = report.counters, want["counters"]
        assert c.faults_injected == wc["faults_injected"]
        assert c.rollbacks == wc["rollbacks"]
        assert c.checkpoints == wc["checkpoints"]
        assert dict(sorted(c.corrections.items())) == wc["corrections"]
