"""Unit tests for the Theorem-2 floating-point tolerance."""

import numpy as np
import pytest

from repro.abft import compute_checksums, gamma, protected_spmv, spmv_checksum_tolerance, SpmvStatus
from repro.abft.tolerance import ToleranceModel, UNIT_ROUNDOFF
from repro.sparse import random_spd, stencil_spd


class TestGamma:
    def test_small_m(self):
        assert gamma(1) == pytest.approx(UNIT_ROUNDOFF, rel=1e-10)

    def test_monotone_in_m(self):
        assert gamma(10) < gamma(100) < gamma(10**6)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            gamma(-1)

    def test_rejects_mu_ge_one(self):
        with pytest.raises(ValueError, match="undefined"):
            gamma(2**60)

    def test_zero(self):
        assert gamma(0) == 0.0


class TestBound:
    def test_formula(self):
        got = spmv_checksum_tolerance(n=100, c_inf=2.0, norm1_a=3.0, x_inf=4.0)
        expect = 2.0 * gamma(200) * 100 * 2.0 * 3.0 * 4.0
        assert got == pytest.approx(expect)

    def test_threshold_scales_with_x(self, small_lap):
        cks = compute_checksums(small_lap, nchecks=2)
        t1 = cks.tolerance.thresholds(1.0)
        t10 = cks.tolerance.thresholds(10.0)
        np.testing.assert_allclose(t10, 10 * t1)

    def test_threshold_positive_even_for_zero_x(self, small_lap):
        cks = compute_checksums(small_lap, nchecks=2)
        assert np.all(cks.tolerance.thresholds(0.0) > 0)


class TestNoFalsePositives:
    """The paper's guarantee: a fault-free run never trips the detector."""

    @pytest.mark.parametrize("nchecks", [1, 2])
    def test_many_clean_products(self, nchecks):
        rng = np.random.default_rng(99)
        a = random_spd(400, 0.03, seed=4)
        cks = compute_checksums(a, nchecks=nchecks)
        for _ in range(50):
            x = rng.normal(size=a.ncols) * rng.choice([1e-6, 1.0, 1e6])
            res = protected_spmv(a, x, cks, correct=(nchecks == 2))
            assert res.status is SpmvStatus.OK

    def test_clean_products_ill_conditioned(self):
        rng = np.random.default_rng(3)
        a = stencil_spd(900, kind="box", radius=2)
        cks = compute_checksums(a, nchecks=2)
        for _ in range(25):
            x = rng.normal(size=a.ncols)
            assert protected_spmv(a, x, cks).status is SpmvStatus.OK

    def test_residuals_below_threshold_clean(self, small_lap, rng):
        from repro.abft.spmv import detect_errors

        cks = compute_checksums(small_lap, nchecks=2)
        x = rng.normal(size=small_lap.ncols)
        y = small_lap.matvec(x)
        res = detect_errors(small_lap, x, y, x.copy(), cks)
        assert res.clean
        assert np.all(np.abs(res.dx) <= res.thresholds)


class TestFalseNegativesAreSmall:
    """Sub-threshold errors exist (the paper allows them) but their
    magnitude is bounded by the tolerance itself."""

    def test_tiny_perturbation_passes_silently(self, small_lap, rng):
        cks = compute_checksums(small_lap, nchecks=2)
        x = rng.normal(size=small_lap.ncols)
        a = small_lap.copy()
        a.val[0] += 1e-14  # far below tolerance
        res = protected_spmv(a, x.copy(), cks)
        assert res.status is SpmvStatus.OK
        # And the induced output error is negligible.
        assert np.abs(res.y - small_lap.matvec(x)).max() < 1e-10

    def test_moderate_perturbation_caught(self, small_lap, rng):
        cks = compute_checksums(small_lap, nchecks=2)
        x = rng.normal(size=small_lap.ncols)
        a = small_lap.copy()
        a.val[0] += 1e-3
        res = protected_spmv(a, x.copy(), cks)
        assert res.status is SpmvStatus.CORRECTED


class TestToleranceModel:
    def test_for_matrix_shapes(self):
        tm = ToleranceModel.for_matrix(
            n=50, norm1_a=4.0, weights_inf=np.array([1.0, 50.0]), shifted_c_inf=6.0
        )
        assert tm.per_check_factor.shape == (2,)
        assert np.all(tm.per_check_factor > 0)
        # Ramp-weight row has the larger factor.
        assert tm.per_check_factor[1] > tm.per_check_factor[0]
