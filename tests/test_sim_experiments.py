"""Unit tests for the Table-1 / Figure-1 drivers (scaled down)."""

import pytest

from repro.core import CostModel, Scheme
from repro.sim import format_figure1, format_table1, run_figure1, run_table1
from repro.sim.experiments import default_s_grid, model_interval_for
from repro.sim.results import to_csv


class TestModelIntervalFor:
    def test_abft_schemes_d_is_one(self):
        costs = CostModel()
        for scheme in (Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION):
            s, d = model_interval_for(scheme, 1 / 16, costs)
            assert d == 1
            assert s >= 1

    def test_online_uses_chen(self):
        costs = CostModel()
        s, d = model_interval_for(Scheme.ONLINE_DETECTION, 1 / 100, costs)
        assert d > 1  # Chen's d grows with MTBF

    def test_correction_interval_larger(self):
        costs = CostModel()
        s_det, _ = model_interval_for(Scheme.ABFT_DETECTION, 1 / 16, costs)
        s_cor, _ = model_interval_for(Scheme.ABFT_CORRECTION, 1 / 16, costs)
        assert s_cor > s_det


class TestSGrid:
    def test_grid_brackets_center(self):
        grid = default_s_grid(10, span=3)
        assert set(range(7, 14)) <= set(grid)
        assert 1 in grid

    def test_grid_respects_cap(self):
        grid = default_s_grid(100, span=5, s_max=20)
        assert max(grid) <= 20


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(scale=48, reps=2, uids=[2213], s_span=2)

    def test_rows_cover_both_schemes(self, rows):
        assert {r.scheme for r in rows} == {"abft-detection", "abft-correction"}

    def test_loss_nonnegative(self, rows):
        # s* is the argmin of the sweep, so Et(s̃) ≥ Et(s*) by
        # construction whenever s̃ was in the grid.
        for r in rows:
            assert r.loss_percent >= -1e-9

    def test_formatting_contains_ids(self, rows):
        text = format_table1(rows)
        assert "2213" in text
        assert "l1%" in text and "l2%" in text

    def test_csv_dump(self, rows, tmp_path):
        path = tmp_path / "t1.csv"
        to_csv(rows, str(path))
        content = path.read_text()
        assert "uid" in content and "2213" in content


class TestFigure1:
    @pytest.fixture(scope="class")
    def points(self):
        return run_figure1(scale=48, reps=2, uids=[2213], mtbf_values=[16.0, 500.0])

    def test_all_schemes_and_mtbfs_present(self, points):
        schemes = {p.scheme for p in points}
        assert schemes == {"online-detection", "abft-detection", "abft-correction"}
        assert {p.normalized_mtbf for p in points} == {16.0, 500.0}

    def test_times_positive(self, points):
        assert all(p.mean_time > 0 for p in points)

    def test_times_decrease_with_mtbf(self, points):
        for scheme in ("abft-detection", "online-detection"):
            by_mtbf = {p.normalized_mtbf: p.mean_time for p in points if p.scheme == scheme}
            assert by_mtbf[500.0] <= by_mtbf[16.0] * 1.25  # allow noise

    def test_formatting(self, points):
        text = format_figure1(points)
        assert "Matrix #2213" in text
        assert "1/alpha" in text


class TestCli:
    def test_main_table1(self, capsys):
        from repro.sim.experiments import _main

        rc = _main(["table1", "--scale", "48", "--reps", "1", "--uids", "2213"])
        assert rc == 0
        assert "2213" in capsys.readouterr().out
