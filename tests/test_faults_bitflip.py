"""Unit tests for bit-flip primitives."""

import numpy as np
import pytest

from repro.faults import flip_bit_float64, flip_bit_int64, flip_bits_array
from repro.faults.bitflip import random_flip


class TestScalarFlips:
    def test_float_flip_is_involution(self):
        v = 3.14159
        for bit in (0, 20, 52, 62, 63):
            assert flip_bit_float64(flip_bit_float64(v, bit), bit) == v

    def test_float_sign_bit(self):
        assert flip_bit_float64(2.0, 63) == -2.0

    def test_float_mantissa_lsb_is_tiny(self):
        v = 1.0
        flipped = flip_bit_float64(v, 0)
        assert flipped != v
        assert abs(flipped - v) < 1e-15

    def test_float_exponent_flip_is_huge(self):
        v = 1.0
        flipped = flip_bit_float64(v, 62)
        assert abs(flipped) > 1e100 or abs(flipped) < 1e-100

    def test_int_flip_is_involution(self):
        for bit in (0, 31, 62, 63):
            assert flip_bit_int64(flip_bit_int64(1234, bit), bit) == 1234

    def test_int_sign_bit_makes_negative(self):
        assert flip_bit_int64(5, 63) < 0

    def test_bit_range_checked(self):
        with pytest.raises(ValueError):
            flip_bit_float64(1.0, 64)
        with pytest.raises(ValueError):
            flip_bit_int64(1, -1)


class TestArrayFlips:
    def test_float_array_flip(self):
        arr = np.array([1.0, 2.0, 3.0])
        flip_bits_array(arr, np.array([1]), np.array([63]))
        np.testing.assert_array_equal(arr, [1.0, -2.0, 3.0])

    def test_int_array_flip(self):
        arr = np.array([10, 20, 30], dtype=np.int64)
        flip_bits_array(arr, np.array([2]), np.array([0]))
        assert arr[2] == 31

    def test_multiple_flips(self):
        arr = np.ones(5)
        flip_bits_array(arr, np.array([0, 4]), np.array([63, 63]))
        np.testing.assert_array_equal(arr, [-1.0, 1.0, 1.0, 1.0, -1.0])

    def test_dtype_rejected(self):
        with pytest.raises(TypeError, match="dtype"):
            flip_bits_array(np.ones(3, dtype=np.float32), np.array([0]), np.array([1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            flip_bits_array(np.ones(3), np.array([0, 1]), np.array([1]))

    def test_random_flip_reports_location(self, rng):
        arr = np.ones(100)
        pos, bit = random_flip(arr, rng)
        assert 0 <= pos < 100
        assert 0 <= bit < 64
        assert arr[pos] != 1.0 or bit == 0  # bit 0 flip of 1.0 still changes it
        assert (arr != 1.0).sum() == 1

    def test_random_flip_empty_rejected(self, rng):
        with pytest.raises(ValueError, match="empty"):
            random_flip(np.array([]), rng)
