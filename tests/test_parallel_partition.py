"""Unit tests for row partitioning."""

import numpy as np
import pytest

from repro.parallel import block_rows, partition_by_nnz
from repro.sparse import stencil_spd


class TestBlockRows:
    def test_bounds_cover_all_rows(self):
        part = block_rows(100, 7)
        assert part.bounds[0] == 0
        assert part.bounds[-1] == 100
        assert part.nparts == 7

    def test_balanced_row_counts(self):
        part = block_rows(100, 4)
        sizes = [part.rows_of(r)[1] - part.rows_of(r)[0] for r in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_owner_of(self):
        part = block_rows(10, 2)
        assert part.owner_of(0) == 0
        assert part.owner_of(4) == 0
        assert part.owner_of(5) == 1
        assert part.owner_of(9) == 1
        with pytest.raises(IndexError):
            part.owner_of(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            block_rows(5, 6)
        with pytest.raises(ValueError):
            block_rows(5, 0)


class TestLocalBlocks:
    def test_blocks_reassemble_matrix(self, small_lap):
        part = block_rows(small_lap.nrows, 3)
        rows = []
        for r in range(3):
            blk = part.local_block(small_lap, r)
            rows.append(blk.to_dense())
        np.testing.assert_array_equal(np.vstack(rows), small_lap.to_dense())

    def test_block_is_copy(self, small_lap):
        part = block_rows(small_lap.nrows, 2)
        blk = part.local_block(small_lap, 0)
        blk.val[0] += 5.0
        assert small_lap.val[0] != blk.val[0]

    def test_block_rowidx_starts_at_zero(self, small_lap):
        part = block_rows(small_lap.nrows, 4)
        for r in range(4):
            blk = part.local_block(small_lap, r)
            assert blk.rowidx[0] == 0
            assert blk.rowidx[-1] == blk.nnz

    def test_slice_vector(self):
        part = block_rows(10, 2)
        x = np.arange(10.0)
        np.testing.assert_array_equal(part.slice_vector(x, 1), np.arange(5.0, 10.0))


class TestNnzBalance:
    def test_partition_by_nnz_balances_better(self):
        # A matrix with skewed row densities.
        a = stencil_spd(900, kind="box", radius=2)
        p = 4
        by_rows = block_rows(a.nrows, p)
        by_nnz = partition_by_nnz(a, p)

        def imbalance(part):
            loads = [
                int(a.rowidx[part.rows_of(r)[1]] - a.rowidx[part.rows_of(r)[0]])
                for r in range(p)
            ]
            return max(loads) / (sum(loads) / p)

        assert imbalance(by_nnz) <= imbalance(by_rows) + 1e-9

    def test_partition_by_nnz_covers_rows(self, small_lap):
        part = partition_by_nnz(small_lap, 5)
        assert part.bounds[0] == 0 and part.bounds[-1] == small_lap.nrows
        assert all(b2 > b1 for b1, b2 in zip(part.bounds, part.bounds[1:]))


class TestCommVolume:
    def test_volume_zero_for_single_part(self, small_lap):
        part = block_rows(small_lap.nrows, 1)
        assert part.communication_volume(small_lap) == 0

    def test_volume_positive_for_coupled_matrix(self, small_lap):
        part = block_rows(small_lap.nrows, 4)
        assert part.communication_volume(small_lap) > 0

    def test_volume_grows_with_parts(self, small_lap):
        v2 = block_rows(small_lap.nrows, 2).communication_volume(small_lap)
        v8 = block_rows(small_lap.nrows, 8).communication_volume(small_lap)
        assert v8 >= v2
