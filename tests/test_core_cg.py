"""Unit tests for the plain CG solver (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core import cg
from repro.sparse import laplacian_2d, random_spd, stencil_spd


class TestCG:
    def test_solves_laplacian(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        res = cg(small_lap, b, eps=1e-10)
        assert res.converged
        np.testing.assert_allclose(small_lap.matvec(res.x), b, atol=1e-5)

    def test_solves_from_nonzero_guess(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        x0 = rng.normal(size=small_lap.nrows)
        res = cg(small_lap, b, x0=x0, eps=1e-10)
        assert res.converged

    def test_x0_not_mutated(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        x0 = rng.normal(size=small_lap.nrows)
        x0_copy = x0.copy()
        cg(small_lap, b, x0=x0)
        np.testing.assert_array_equal(x0, x0_copy)

    def test_exact_solution_zero_iterations(self, small_lap):
        x_true = np.ones(small_lap.nrows)
        b = small_lap.matvec(x_true)
        res = cg(small_lap, b, x0=x_true)
        assert res.iterations == 0
        assert res.converged

    def test_maxiter_respected(self, rng):
        a = stencil_spd(900, kind="cross", radius=1)
        b = rng.normal(size=a.nrows)
        res = cg(a, b, eps=1e-14, maxiter=3)
        assert res.iterations == 3
        assert not res.converged

    def test_threshold_formula(self, small_lap, rng):
        from repro.core.cg import cg_tolerance_threshold
        from repro.sparse import norm1

        b = rng.normal(size=small_lap.nrows)
        r0 = b.copy()
        thr = cg_tolerance_threshold(small_lap, b, r0, 1e-6)
        expect = 1e-6 * (norm1(small_lap) * np.linalg.norm(r0) + np.linalg.norm(b))
        assert thr == pytest.approx(expect)

    def test_callback_invoked_each_iteration(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        seen = []
        res = cg(small_lap, b, eps=1e-8, callback=lambda i, x, rn: seen.append((i, rn)))
        assert len(seen) == res.iterations
        assert seen[0][0] == 1
        # Residual broadly decreases (not necessarily monotonically).
        assert seen[-1][1] < seen[0][1]

    def test_iterations_scale_with_conditioning(self, rng):
        well = random_spd(400, 0.02, seed=1)  # diagonally dominant, κ small
        ill = stencil_spd(400, kind="cross", radius=1)  # PDE-like, κ ~ n
        b1 = rng.normal(size=well.nrows)
        b2 = rng.normal(size=ill.nrows)
        r_well = cg(well, b1, eps=1e-8)
        r_ill = cg(ill, b2, eps=1e-8)
        assert r_ill.iterations > 2 * r_well.iterations

    def test_non_spd_bails_out(self, rng):
        from repro.sparse import CSRMatrix

        dense = rng.normal(size=(20, 20))
        dense = dense + dense.T  # symmetric but indefinite
        a = CSRMatrix.from_dense(dense)
        b = rng.normal(size=20)
        res = cg(a, b, maxiter=200)
        # Must terminate without crashing; usually via the pq <= 0 guard.
        assert res.iterations <= 200

    def test_validation(self, small_lap):
        with pytest.raises(ValueError):
            cg(small_lap, np.ones(small_lap.nrows), eps=0.0)
        with pytest.raises(ValueError):
            cg(small_lap, np.ones(small_lap.nrows + 2))

    def test_agrees_with_scipy(self, rng):
        import scipy.sparse.linalg as spla

        a = laplacian_2d(15)
        b = rng.normal(size=a.nrows)
        ours = cg(a, b, eps=1e-12)
        ref, info = spla.cg(a.to_scipy(), b, rtol=1e-12, atol=0.0)
        assert info == 0
        np.testing.assert_allclose(ours.x, ref, atol=1e-6)
