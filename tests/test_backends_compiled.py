"""Bit-identity lock for the numba backend's kernel transcription.

:mod:`repro.backends.numba_backend` re-implements the reference CSR
kernels — clean walk, guarded walk, checksum scatter — as
numba-compilable loops that reproduce NumPy's exact summation orders
(``np.add.reduceat`` = seed + pairwise_sum of the rest, ``np.add.at``
= sequential scatter).  These tests lock that claim with
``NumbaBackend(jit=False)``: the *identical kernel bodies* run
interpreted, so the algorithm is pinned even on environments without
the optional numba dependency.  When numba *is* installed, the same
locks run compiled, plus the full golden-trajectory replays.

If one of these fails, the transcription no longer matches NumPy's
reduction order and the backend's bit-identity contract — the thing
that lets it substitute inside the fault physics at all — is broken.
"""

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.backends import get_backend
from repro.backends.numba_backend import (
    _DEFER,
    _DONE,
    NumbaBackend,
    numba_available,
)
from repro.core import Method, Scheme, SchemeConfig, run_ft_method
from repro.sim.engine import make_rhs
from repro.sparse import CSRMatrix, stencil_spd
from repro.sparse.norms import column_sums
from repro.sparse.spmv import spmv

from test_backends import CORRUPTIONS, stamped

GOLDEN = pathlib.Path(__file__).parent / "golden" / "ft_trajectories.json"
_gold = json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def py_backend():
    """The numba kernel bodies, interpreted — same floats, no JIT."""
    return NumbaBackend(jit=False)


def _random_csr(rng, nrows, ncols, max_row):
    """Random CSR with row lengths up to ``max_row`` (0 allowed)."""
    lens = rng.integers(0, max_row + 1, size=nrows)
    rowidx = np.zeros(nrows + 1, dtype=np.int64)
    rowidx[1:] = np.cumsum(lens)
    nnz = int(rowidx[-1])
    colid = rng.integers(0, ncols, size=nnz).astype(np.int64)
    val = rng.standard_normal(nnz)
    return CSRMatrix(val, colid, rowidx, (nrows, ncols))


class TestCleanKernelBitIdentity:
    def test_stencil_products(self, py_backend):
        a = stamped(stencil_spd(256, kind="box", radius=2))
        rng = np.random.default_rng(1)
        for _ in range(3):
            x = rng.standard_normal(a.ncols)
            assert np.array_equal(py_backend.spmv(a, x), spmv(a, x))

    def test_short_rows_hit_small_block(self, py_backend):
        # Rows of 0..10 nnz: the n<8 sequential branch and the empty-row
        # zero, across many random layouts.
        rng = np.random.default_rng(2)
        for _ in range(5):
            a = stamped(_random_csr(rng, 60, 40, 10))
            x = rng.standard_normal(a.ncols)
            assert np.array_equal(py_backend.spmv(a, x), spmv(a, x))

    def test_wide_rows_hit_pairwise_recursion(self, py_backend):
        # Rows up to 600 nnz: the >128 recursive halving (explicit-stack
        # emulation) must split exactly where NumPy's pairwise_sum does.
        rng = np.random.default_rng(3)
        a = stamped(_random_csr(rng, 25, 80, 600))
        assert int(np.diff(a.rowidx).max()) > 128
        x = rng.standard_normal(a.ncols)
        assert np.array_equal(py_backend.spmv(a, x), spmv(a, x))

    def test_signed_zero_rows_preserved(self, py_backend):
        # A row of all -0.0 products must sum to -0.0 (NumPy seeds its
        # accumulators with the bit-preserving additive identity).  A
        # 0.0-initialized accumulator would flip the sign bit.
        for nnz_per_row in (1, 2, 5, 9, 130):
            nrows = 3
            rowidx = np.arange(0, (nrows + 1) * nnz_per_row, nnz_per_row,
                               dtype=np.int64)
            nnz = nrows * nnz_per_row
            colid = np.tile(np.arange(nnz_per_row, dtype=np.int64), nrows)
            a = CSRMatrix(np.full(nnz, -0.0), colid, rowidx,
                          (nrows, nnz_per_row))
            stamped(a)
            x = np.ones(a.ncols)
            y_ref = spmv(a, x)
            y = py_backend.spmv(a, x)
            assert np.array_equal(
                np.signbit(y), np.signbit(y_ref)
            ), nnz_per_row
            assert np.array_equal(y, y_ref)

    def test_out_buffer_and_empty_matrix(self, py_backend):
        a = stamped(stencil_spd(49, kind="cross", radius=1))
        x = np.ones(a.ncols)
        out = np.full(a.nrows, np.nan)
        y = py_backend.spmv(a, x, out=out)
        assert y is out
        assert np.array_equal(out, spmv(a, x))
        empty = stamped(CSRMatrix(
            np.zeros(0), np.zeros(0, dtype=np.int64),
            np.zeros(4, dtype=np.int64), (3, 3),
        ))
        assert np.array_equal(py_backend.spmv(empty, np.ones(3)), np.zeros(3))

    def test_shape_mismatch_raises(self, py_backend):
        a = stamped(stencil_spd(49, kind="cross", radius=1))
        with pytest.raises(ValueError, match="shape"):
            py_backend.spmv(a, np.ones(a.ncols + 1))
        with pytest.raises(ValueError, match="out"):
            py_backend.spmv(a, np.ones(a.ncols), out=np.empty(a.nrows - 1))


class TestGuardedKernelBitIdentity:
    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_directed_corruption_grid(self, py_backend, kind):
        a = stamped(stencil_spd(144, kind="cross", radius=2))
        CORRUPTIONS[kind](a)
        a.mark_structure_dirty()
        x = np.random.default_rng(11).standard_normal(a.ncols)
        y_ref = spmv(a, x)
        y = py_backend.spmv(a, x)
        assert np.array_equal(y, y_ref, equal_nan=True)

    def test_random_rowidx_fuzz(self, py_backend):
        # Random single-entry rowidx strikes across many draws: every
        # clip/monotone/overshoot combination must either reproduce the
        # reference bits directly or defer to the reference kernel.
        rng = np.random.default_rng(12)
        a0 = stencil_spd(100, kind="cross", radius=2)
        x = rng.standard_normal(a0.ncols)
        for _ in range(40):
            a = a0.copy()
            stamped(a)
            pos = int(rng.integers(0, a.rowidx.size))
            a.rowidx[pos] = int(rng.integers(-a.nnz, 2 * a.nnz))
            a.mark_structure_dirty()
            assert np.array_equal(py_backend.spmv(a, x), spmv(a, x))

    def test_defer_verdicts_direct(self, py_backend):
        # White-box: the kernel itself reports _DEFER exactly on the two
        # machine-dependent reference paths (non-monotone row loop,
        # overshoot repair) and _DONE elsewhere.
        a = stamped(stencil_spd(64, kind="cross", radius=1))
        x = np.ones(a.ncols)
        y = np.empty(a.nrows)
        guarded = py_backend._get_kernels()["guarded"]

        clean = guarded(a.val, a.colid, a.rowidx, x, y, a.ncols, a.nnz)
        assert clean == _DONE

        nonmono = a.copy()
        nonmono.rowidx[4] = nonmono.rowidx[7] + 3  # starts decrease later
        assert guarded(
            nonmono.val, nonmono.colid, nonmono.rowidx, x, y,
            nonmono.ncols, nonmono.nnz,
        ) == _DEFER

        # Overshoot: a row's end pulled below the next row's start while
        # the start sequence stays monotone — the reference repairs the
        # reduceat segment with a contiguous .sum().
        over = a.copy()
        over.rowidx[-1] = over.nnz + 10  # clips to nnz; last real row's
        over.rowidx[-2] = over.rowidx[-3]  # end < next start
        status = guarded(
            over.val, over.colid, over.rowidx, x, y, over.ncols, over.nnz
        )
        # Whatever the verdict, the public entry point must match the
        # reference bits (by kernel or by deferring to it).
        over.mark_structure_dirty()
        assert np.array_equal(py_backend.spmv(over, x), spmv(over, x))
        assert status in (_DONE, _DEFER)

    def test_equal_starts_quirk(self, py_backend):
        # indices[k] >= indices[k+1] makes reduceat yield the single
        # element at indices[k]; the kernel must reproduce that quirk.
        a = stamped(stencil_spd(64, kind="cross", radius=1))
        a.rowidx[4] = int(a.rowidx[5])
        a.mark_structure_dirty()
        x = np.arange(a.ncols, dtype=float)
        assert np.array_equal(py_backend.spmv(a, x), spmv(a, x))

    def test_guarded_with_wild_reads_and_wide_rows(self, py_backend):
        # colid wrap + >128-nnz rows: the guarded pairwise path with the
        # modulo applied per element, through the recursion emulation.
        rng = np.random.default_rng(13)
        a = stamped(_random_csr(rng, 20, 60, 400))
        a.colid[7] = a.ncols + 1000
        a.colid[11] = -99
        a.mark_structure_dirty()
        x = rng.standard_normal(a.ncols)
        assert np.array_equal(py_backend.spmv(a, x), spmv(a, x))


class TestChecksumKernel:
    def test_bit_identical_to_column_sums(self, py_backend):
        a = stamped(stencil_spd(144, kind="box", radius=1))
        w = np.vstack([np.ones(a.nrows),
                       np.arange(1.0, a.nrows + 1.0)])
        prods = py_backend.checksum_products(a, w)
        assert prods.shape == (2, a.ncols)
        for i in range(2):
            assert np.array_equal(prods[i], column_sums(a, weights=w[i]))

    def test_unstamped_routes_to_base_scatter(self, py_backend):
        a = stencil_spd(100, kind="cross", radius=1)
        assert not a.structure_clean
        w = np.ones((1, a.nrows))
        assert np.array_equal(
            py_backend.checksum_products(a, w)[0], column_sums(a)
        )

    def test_weights_shape_validated(self, py_backend):
        a = stamped(stencil_spd(100, kind="cross", radius=1))
        with pytest.raises(ValueError, match="weights"):
            py_backend.checksum_products(a, np.ones((2, a.nrows + 1)))


class TestWarmupAndFlags:
    def test_interpreted_flag(self, py_backend):
        assert py_backend.name == "numba"
        assert py_backend.compiled is False

    def test_warmup_idempotent_and_prepare_warms(self):
        be = NumbaBackend(jit=False)
        assert not be._warm
        be.warmup()
        assert be._warm
        be.warmup()  # second call is a no-op
        be2 = NumbaBackend(jit=False)
        be2.prepare(stamped(stencil_spd(25, kind="cross", radius=1)))
        assert be2._warm


class TestProtectedReplays:
    """Whole-solve bit-identity through ``run_protected``.

    The solve stack — ABFT setup, fault injection, detection,
    rollback, accounting — runs the numba kernels for every product
    and must land on the byte-identical trajectory the reference
    backend produces.
    """

    def _replay(self, method, scheme, alpha, backend):
        a = stencil_spd(100, kind="cross", radius=1)
        b = make_rhs(a)
        cfg = SchemeConfig(scheme, checkpoint_interval=5)
        with np.errstate(all="ignore"):
            return run_ft_method(
                method, a, b, cfg, alpha=alpha, rng=17, eps=1e-8,
                backend=backend,
            )

    @pytest.mark.parametrize("method,scheme,alpha", [
        (Method.CG, Scheme.ABFT_CORRECTION, 0.0),
        (Method.CG, Scheme.ABFT_CORRECTION, 0.2),
        (Method.CG, Scheme.ABFT_DETECTION, 0.2),
        (Method.BICGSTAB, Scheme.ABFT_CORRECTION, 0.2),
    ], ids=lambda v: getattr(v, "value", v))
    def test_small_system_trajectories(self, py_backend, method, scheme, alpha):
        ref = self._replay(method, scheme, alpha, "reference")
        nb = self._replay(method, scheme, alpha, py_backend)
        assert (
            hashlib.sha256(np.ascontiguousarray(nb.x).tobytes()).hexdigest()
            == hashlib.sha256(np.ascontiguousarray(ref.x).tobytes()).hexdigest()
        )
        assert float(nb.time_units).hex() == float(ref.time_units).hex()
        assert float(nb.residual_norm).hex() == float(ref.residual_norm).hex()
        assert nb.iterations == ref.iterations
        assert nb.iterations_executed == ref.iterations_executed
        assert nb.counters.faults_injected == ref.counters.faults_injected
        assert nb.counters.rollbacks == ref.counters.rollbacks
        assert nb.counters.detections == ref.counters.detections


# ---------------------------------------------------------------------------
# golden-trajectory replays
# ---------------------------------------------------------------------------

#: One golden entry per (driver, scheme) pair — same dedup as the
#: reference-backend replays in test_resilience_golden.py.
_BACKEND_ENTRIES = list(
    {(e["driver"], e["scheme"]): e for e in _gold["entries"]}.values()
)

#: One cheap entry (68 executed iterations) for the interpreted mode:
#: the full grid at ~90x interpretation slowdown belongs behind numba.
_PY_MODE_ENTRY = next(
    e for e in _gold["entries"]
    if e["driver"] == "ft_cg" and e["scheme"] == "abft-correction"
    and e["seed"] == 42 and e["alpha"] == 0.1
)


def _entry_id(entry) -> str:
    return f"{entry['driver']}-{entry['scheme']}-a{entry['alpha']}-seed{entry['seed']}"


@pytest.fixture(scope="module")
def golden_problem():
    a = stencil_spd(529, kind="cross", radius=2)
    b = np.random.default_rng(_gold["rhs_seed"]).normal(size=a.nrows)
    return a, b


def _replay_golden(problem, entry, backend):
    a, b = problem
    cfg = SchemeConfig(
        Scheme(entry["scheme"]),
        checkpoint_interval=_gold["s"],
        verification_interval=entry["d"],
    )
    method = Method.CG if entry["driver"] == "ft_cg" else Method.BICGSTAB
    with np.errstate(all="ignore"):
        res = run_ft_method(
            method, a, b, cfg,
            alpha=entry["alpha"], rng=entry["seed"], eps=_gold["eps"],
            backend=backend,
        )
    want = entry["result"]
    x_sha = hashlib.sha256(np.ascontiguousarray(res.x).tobytes()).hexdigest()
    assert x_sha == want["x_sha256"]
    assert float(res.time_units).hex() == want["time_units"]
    assert float(res.residual_norm).hex() == want["residual_norm"]
    assert res.counters.rollbacks == want["counters"]["rollbacks"]
    assert res.counters.faults_injected == want["counters"]["faults_injected"]


def test_golden_replay_interpreted_numba(golden_problem, py_backend):
    """One golden trajectory through the interpreted numba kernels —
    always runs, so the transcription is pinned to the pre-refactor
    drivers even without the optional dependency."""
    _replay_golden(golden_problem, _PY_MODE_ENTRY, py_backend)


@pytest.mark.skipif(not numba_available(), reason="optional dependency "
                    "numba is not installed")
@pytest.mark.parametrize("entry", _BACKEND_ENTRIES, ids=_entry_id)
def test_golden_replay_compiled_numba(golden_problem, entry):
    """The full golden grid through the *compiled* kernels: the JIT
    (no fastmath, no reassociation) must produce the same bytes the
    interpreter does."""
    _replay_golden(golden_problem, entry, get_backend("numba"))
