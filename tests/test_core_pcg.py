"""Unit tests for preconditioned CG."""

import numpy as np
import pytest

from repro.core import cg, pcg, jacobi_preconditioner, ssor_preconditioner
from repro.sparse import CSRMatrix, stencil_spd


@pytest.fixture
def ill(rng):
    """Diagonally scaled stencil — Jacobi helps a lot here."""
    a = stencil_spd(400, kind="cross", radius=1)
    scale = np.exp(rng.uniform(-2, 2, size=a.nrows))
    dense = a.to_dense() * scale[:, None] * scale[None, :]
    return CSRMatrix.from_dense(dense)


class TestJacobi:
    def test_preconditioner_applies_inverse_diagonal(self, small_lap, rng):
        m = jacobi_preconditioner(small_lap)
        z = rng.normal(size=small_lap.nrows)
        np.testing.assert_allclose(m(z), z / small_lap.diagonal())

    def test_rejects_zero_diagonal(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            jacobi_preconditioner(a)

    def test_pcg_converges_faster_on_scaled_problem(self, ill, rng):
        b = rng.normal(size=ill.nrows)
        plain = pcg(ill, b, eps=1e-8)
        jac = pcg(ill, b, preconditioner=jacobi_preconditioner(ill), eps=1e-8)
        assert jac.converged
        assert jac.iterations < plain.iterations

    def test_pcg_solution_correct(self, ill, rng):
        x_true = rng.normal(size=ill.nrows)
        b = ill.matvec(x_true)
        res = pcg(ill, b, preconditioner=jacobi_preconditioner(ill), eps=1e-10)
        np.testing.assert_allclose(ill.matvec(res.x), b, rtol=1e-5, atol=1e-5)


class TestSSOR:
    def test_ssor_converges(self, rng):
        a = stencil_spd(225, kind="cross", radius=1)
        b = rng.normal(size=a.nrows)
        res = pcg(a, b, preconditioner=ssor_preconditioner(a), eps=1e-8)
        assert res.converged
        plain = pcg(a, b, eps=1e-8)
        assert res.iterations < plain.iterations

    def test_ssor_rejects_bad_omega(self, small_lap):
        with pytest.raises(ValueError, match="omega"):
            ssor_preconditioner(small_lap, omega=2.0)


class TestPcgPlain:
    def test_no_preconditioner_matches_cg(self, small_lap, rng):
        b = rng.normal(size=small_lap.nrows)
        a_res = cg(small_lap, b, eps=1e-10)
        p_res = pcg(small_lap, b, eps=1e-10)
        np.testing.assert_allclose(a_res.x, p_res.x, atol=1e-6)

    def test_custom_matvec_hook(self, small_lap, rng):
        """The matvec override lets the ABFT-protected product drive PCG."""
        from repro.abft import compute_checksums, protected_spmv

        cks = compute_checksums(small_lap, nchecks=2)
        calls = []

        def protected(v):
            res = protected_spmv(small_lap, v.copy(), cks)
            calls.append(res.status)
            return res.y

        b = rng.normal(size=small_lap.nrows)
        res = pcg(small_lap, b, matvec=protected, eps=1e-8)
        assert res.converged
        assert len(calls) == res.iterations + 1  # +1 for the initial residual
