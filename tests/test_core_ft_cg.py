"""Integration-grade tests for the fault-tolerant CG driver."""

import numpy as np
import pytest

from repro.core import CostModel, Scheme, SchemeConfig, cg, run_ft_cg
from repro.sparse import stencil_spd
from repro.util.log import EventLog


@pytest.fixture(scope="module")
def problem():
    a = stencil_spd(900, kind="cross", radius=2)
    b = np.random.default_rng(77).normal(size=a.nrows)
    return a, b


def config(scheme, s=8, d=1):
    return SchemeConfig(scheme, checkpoint_interval=s, verification_interval=d)


class TestFaultFree:
    @pytest.mark.parametrize("scheme,d", [
        (Scheme.ONLINE_DETECTION, 4),
        (Scheme.ABFT_DETECTION, 1),
        (Scheme.ABFT_CORRECTION, 1),
    ])
    def test_converges_without_faults(self, problem, scheme, d):
        a, b = problem
        res = run_ft_cg(a, b, config(scheme, d=d), alpha=0.0, rng=0, eps=1e-6)
        assert res.converged
        assert res.residual_norm <= res.threshold
        assert res.counters.detections == 0
        assert res.counters.rollbacks == 0
        assert res.counters.faults_injected == 0

    def test_matches_plain_cg_solution(self, problem):
        a, b = problem
        plain = cg(a, b, eps=1e-6)
        ft = run_ft_cg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, rng=0, eps=1e-6)
        np.testing.assert_allclose(ft.x, plain.x, rtol=1e-6, atol=1e-8)
        assert ft.iterations == plain.iterations

    def test_time_accounting_fault_free(self, problem):
        a, b = problem
        costs = CostModel(t_cp=0.5, t_rec=0.5, t_verif_correct=0.25)
        cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=10, costs=costs)
        res = run_ft_cg(a, b, cfg, alpha=0.0, rng=0, eps=1e-6)
        expected = res.iterations_executed * (1.0 + 0.25) + res.counters.checkpoints * 0.5
        assert res.time_units == pytest.approx(expected)

    def test_input_matrix_never_mutated(self, problem):
        a, b = problem
        snapshot = a.copy()
        run_ft_cg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.3, rng=5, eps=1e-6)
        assert a.equals(snapshot)


class TestWithFaults:
    @pytest.mark.parametrize("scheme,d", [
        (Scheme.ONLINE_DETECTION, 4),
        (Scheme.ABFT_DETECTION, 1),
        (Scheme.ABFT_CORRECTION, 1),
    ])
    def test_converges_to_true_solution_under_faults(self, problem, scheme, d):
        a, b = problem
        res = run_ft_cg(a, b, config(scheme, d=d), alpha=0.1, rng=42, eps=1e-6)
        assert res.converged
        assert res.counters.faults_injected > 0
        # The reported residual is recomputed against the *clean* matrix.
        assert res.residual_norm <= res.threshold

    def test_correction_forward_recovers(self, problem):
        a, b = problem
        res = run_ft_cg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.2, rng=3, eps=1e-6)
        assert res.counters.total_corrections > 0
        # Forward recovery: far fewer rollbacks than corrections.
        assert res.counters.rollbacks < res.counters.total_corrections

    def test_detection_rolls_back(self, problem):
        a, b = problem
        res = run_ft_cg(a, b, config(Scheme.ABFT_DETECTION), alpha=0.2, rng=3, eps=1e-6)
        assert res.counters.detections > 0
        assert res.counters.rollbacks > 0
        assert res.counters.total_corrections == 0

    def test_correction_beats_detection_at_high_rate(self, problem):
        a, b = problem
        t_corr = [], []
        times = {}
        for scheme in (Scheme.ABFT_CORRECTION, Scheme.ABFT_DETECTION):
            vals = [
                run_ft_cg(a, b, config(scheme), alpha=0.25, rng=seed, eps=1e-6).time_units
                for seed in range(5)
            ]
            times[scheme] = np.mean(vals)
        assert times[Scheme.ABFT_CORRECTION] < times[Scheme.ABFT_DETECTION]

    def test_event_log_records_recoveries(self, problem):
        a, b = problem
        log = EventLog()
        res = run_ft_cg(
            a, b, config(Scheme.ABFT_CORRECTION), alpha=0.3, rng=11, eps=1e-6, event_log=log
        )
        kinds = {ev.kind for ev in log.events}
        assert "checkpoint" in kinds
        if res.counters.total_corrections:
            assert "correction" in kinds

    def test_executed_geq_logical_iterations(self, problem):
        a, b = problem
        res = run_ft_cg(a, b, config(Scheme.ABFT_DETECTION, s=4), alpha=0.3, rng=9, eps=1e-6)
        assert res.iterations_executed >= res.iterations

    def test_determinism(self, problem):
        a, b = problem
        r1 = run_ft_cg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.2, rng=123, eps=1e-6)
        r2 = run_ft_cg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.2, rng=123, eps=1e-6)
        assert r1.time_units == r2.time_units
        assert r1.iterations_executed == r2.iterations_executed
        np.testing.assert_array_equal(r1.x, r2.x)

    def test_high_rate_online(self, problem):
        a, b = problem
        res = run_ft_cg(a, b, config(Scheme.ONLINE_DETECTION, s=2, d=3), alpha=0.3, rng=8, eps=1e-6)
        assert res.converged
        assert res.counters.rollbacks > 0


class TestGuards:
    def test_max_time_units_bails(self, problem):
        a, b = problem
        res = run_ft_cg(
            a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, rng=0, eps=1e-14,
            max_time_units=10.0,
        )
        assert res.time_units <= 13.0  # one iteration of slack

    def test_maxiter_bails(self, problem):
        a, b = problem
        res = run_ft_cg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, rng=0, eps=1e-14, maxiter=7)
        assert res.iterations_executed == 7
        assert not res.converged

    def test_final_check_disabled(self, problem):
        a, b = problem
        res = run_ft_cg(
            a, b, config(Scheme.ABFT_CORRECTION), alpha=0.05, rng=2, eps=1e-6, final_check=False
        )
        assert res.counters.final_check_failures == 0

    def test_zero_alpha_requires_no_injector(self, problem):
        a, b = problem
        res = run_ft_cg(a, b, config(Scheme.ABFT_CORRECTION), alpha=0.0, eps=1e-6)
        assert res.counters.faults_injected == 0
