"""Prefix-sharing bit-identity: adaptive stopping at ``k`` reps must be
indistinguishable from the first ``k`` reps of a fixed-count run.

This is the invariant that makes adaptive campaigns trustworthy: the
sampling policy is task *identity* but never enters seed derivation,
so per-rep fault streams are shared between fixed and adaptive runs of
the same parameter point.  The grid here covers every
(method, scheme, backend) cell, and a golden fixture pins the exact
per-rep trajectories of a reference cell against drift.
"""

import hashlib
import json
import pathlib

import pytest

from repro.adaptive import SamplingPolicy
from repro.backends import available_backends, numba_available
from repro.core.methods import Method, Scheme, SchemeConfig
from repro.sim.engine import (
    PER_REP_KEYS,
    make_rhs,
    repeat_run,
    repeat_run_batched,
)
from repro.sparse import stencil_spd

GOLDEN = pathlib.Path(__file__).parent / "golden" / "adaptive_prefix.json"

#: Enough fault pressure that times vary and stopping is non-trivial.
ALPHA = 0.15
#: Cap small enough to keep the grid fast, min small enough that the
#: CI target (loose) can stop before the cap.
POLICY = SamplingPolicy(ci=0.5, confidence=0.9, min_reps=3, max_reps=6)


def _system():
    a = stencil_spd(49, kind="cross", radius=1)
    return a, make_rhs(a)


def _cells():
    for method in Method:
        for scheme in method.supported_schemes:
            for backend in sorted(available_backends()):
                yield method, scheme, backend


@pytest.mark.parametrize(
    "method,scheme,backend",
    list(_cells()),
    ids=lambda v: getattr(v, "value", v),
)
def test_adaptive_prefix_bit_identical(method, scheme, backend):
    if backend == "numba" and not numba_available():
        pytest.skip("optional dependency numba is not installed")
    a, b = _system()
    cfg = SchemeConfig(
        scheme=scheme,
        checkpoint_interval=5,
        verification_interval=2 if scheme is Scheme.ONLINE_DETECTION else 1,
    )
    kwargs = dict(
        alpha=ALPHA, base_seed=2015, labels=("prefix", 7),
        method=method, backend=backend,
    )
    per_adaptive: dict = {}
    stats_adaptive = repeat_run_batched(
        a, b, cfg, policy=POLICY, per_rep=per_adaptive, **kwargs
    )
    k = stats_adaptive.reps
    assert POLICY.min_reps <= k <= POLICY.max_reps
    per_fixed: dict = {}
    stats_fixed = repeat_run(a, b, cfg, reps=k, per_rep=per_fixed, **kwargs)
    # The per-rep trajectories — times, iteration counts, recovery
    # counters, fault counts — must agree bit for bit, not approximately.
    assert per_adaptive == per_fixed
    assert stats_adaptive.mean_time == stats_fixed.mean_time
    assert stats_adaptive.std_time == stats_fixed.std_time
    assert stats_adaptive.min_time == stats_fixed.min_time
    assert stats_adaptive.max_time == stats_fixed.max_time


def test_adaptive_is_prefix_of_longer_fixed_run():
    # Not just equal at k: the adaptive trajectory must be a *prefix*
    # of the full fixed-count trajectory (rep i depends only on the
    # derived seed, never on how many reps run).
    a, b = _system()
    cfg = SchemeConfig(scheme=Scheme.ABFT_DETECTION, checkpoint_interval=5)
    per_adaptive: dict = {}
    stats = repeat_run_batched(
        a, b, cfg, alpha=ALPHA, policy=POLICY, base_seed=2015,
        labels=("prefix", 7), per_rep=per_adaptive,
    )
    per_full: dict = {}
    repeat_run(
        a, b, cfg, alpha=ALPHA, reps=POLICY.max_reps, base_seed=2015,
        labels=("prefix", 7), per_rep=per_full,
    )
    for key in PER_REP_KEYS:
        assert per_adaptive[key] == per_full[key][: stats.reps]


def encode_cell() -> dict:
    """The golden cell: exact per-rep trajectories, hex floats."""
    a, b = _system()
    cfg = SchemeConfig(scheme=Scheme.ABFT_CORRECTION, checkpoint_interval=5)
    per_rep: dict = {}
    stats = repeat_run_batched(
        a, b, cfg, alpha=ALPHA, policy=POLICY, base_seed=2015,
        labels=("prefix", 7), per_rep=per_rep,
    )
    blob = json.dumps(
        {k: per_rep[k] for k in PER_REP_KEYS}, sort_keys=True
    ).encode()
    return {
        "reps": stats.reps,
        "mean_time": float(stats.mean_time).hex(),
        "std_time": float(stats.std_time).hex(),
        "times": [float(t).hex() for t in per_rep["times"]],
        "iterations": list(per_rep["iterations"]),
        "faults": list(per_rep["faults"]),
        "per_rep_sha256": hashlib.sha256(blob).hexdigest(),
    }


def test_golden_adaptive_prefix():
    # Locked the same way the FT-trajectory fixtures are
    # (tests/golden/capture.py style): regenerate with
    #   python tests/golden/capture_adaptive.py
    expected = json.loads(GOLDEN.read_text())
    assert encode_cell() == expected
