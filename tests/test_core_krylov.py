"""Unit tests for BiCGstab / BiCG / CGNE and their protected variants."""

import numpy as np
import pytest

from repro.abft import ProtectedOperator, UncorrectableError
from repro.core import bicg, bicgstab, cg, cgne
from repro.sparse import CSRMatrix, stencil_spd


@pytest.fixture(scope="module")
def spd():
    return stencil_spd(400, kind="cross", radius=1)


@pytest.fixture(scope="module")
def nonsym(spd):
    """A mildly nonsymmetric, well-conditioned matrix."""
    dense = spd.to_dense().copy()
    rng = np.random.default_rng(5)
    rows = rng.integers(0, dense.shape[0], size=60)
    cols = rng.integers(0, dense.shape[0], size=60)
    dense[rows, cols] += 0.2 * rng.random(60)
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1))  # keep it safe for BiCG
    return CSRMatrix.from_dense(dense)


@pytest.fixture(scope="module")
def rhs(spd):
    return np.random.default_rng(9).normal(size=spd.nrows)


class TestBicgstab:
    def test_solves_spd(self, spd, rhs):
        res = bicgstab(spd, rhs, eps=1e-8)
        assert res.converged
        np.testing.assert_allclose(spd.matvec(res.x), rhs, atol=1e-3)

    def test_solves_nonsymmetric(self, nonsym, rhs):
        res = bicgstab(nonsym, rhs, eps=1e-10)
        assert res.converged
        np.testing.assert_allclose(nonsym.matvec(res.x), rhs, atol=1e-5)

    def test_agrees_with_cg_on_spd(self, spd, rhs):
        ours = bicgstab(spd, rhs, eps=1e-10)
        ref = cg(spd, rhs, eps=1e-10)
        np.testing.assert_allclose(ours.x, ref.x, atol=1e-4)

    def test_maxiter(self, spd, rhs):
        res = bicgstab(spd, rhs, eps=1e-14, maxiter=2)
        assert res.iterations <= 2

    def test_matvec_hook(self, spd, rhs):
        calls = []

        def mv(v):
            calls.append(1)
            return spd.matvec(v)

        res = bicgstab(spd, rhs, eps=1e-8, matvec=mv)
        assert res.converged
        assert len(calls) >= res.iterations  # ≥ 2 products/iteration + init


class TestBicg:
    def test_solves_spd(self, spd, rhs):
        res = bicg(spd, rhs, eps=1e-8)
        assert res.converged
        np.testing.assert_allclose(spd.matvec(res.x), rhs, atol=1e-3)

    def test_on_spd_matches_cg_iterates(self, spd, rhs):
        # For SPD A with r* = r, BiCG reduces to CG.
        ours = bicg(spd, rhs, eps=1e-10)
        ref = cg(spd, rhs, eps=1e-10)
        assert abs(ours.iterations - ref.iterations) <= 1
        np.testing.assert_allclose(ours.x, ref.x, atol=1e-5)

    def test_solves_nonsymmetric(self, nonsym, rhs):
        res = bicg(nonsym, rhs, eps=1e-10)
        assert res.converged
        np.testing.assert_allclose(nonsym.matvec(res.x), rhs, atol=1e-4)


class TestCgne:
    def test_solves_spd(self, spd, rhs):
        res = cgne(spd, rhs, eps=1e-6, maxiter=8000)
        assert res.converged
        np.testing.assert_allclose(spd.matvec(res.x), rhs, atol=1e-2)

    def test_solves_nonsymmetric(self, nonsym, rhs):
        res = cgne(nonsym, rhs, eps=1e-8)
        assert res.converged
        np.testing.assert_allclose(nonsym.matvec(res.x), rhs, atol=1e-3)


class TestProtectedVariants:
    def test_bicgstab_with_protected_operator(self, spd, rhs):
        op = ProtectedOperator(spd)
        res = bicgstab(spd, rhs, eps=1e-8, matvec=op.matvec)
        assert res.converged
        assert op.stats.products > 0
        assert op.stats.uncorrectable == 0

    def test_bicg_protected_transpose(self, nonsym, rhs):
        op = ProtectedOperator(nonsym)
        res = bicg(nonsym, rhs, eps=1e-8, matvec=op.matvec, rmatvec=op.rmatvec)
        assert res.converged
        assert op.stats.products >= 2 * res.iterations

    def test_cgne_protected_both_products(self, nonsym, rhs):
        op = ProtectedOperator(nonsym)
        res = cgne(nonsym, rhs, eps=1e-8, matvec=op.matvec, rmatvec=op.rmatvec)
        assert res.converged
        assert op.stats.uncorrectable == 0

    def test_injected_error_corrected_in_flight(self, spd, rhs):
        fired = {"done": False}

        def hook(stage, a, x, y):
            if stage == "pre" and not fired["done"]:
                a.val[31] += 2.0
                fired["done"] = True

        op = ProtectedOperator(spd, fault_hook=hook)
        res = bicgstab(spd, rhs, eps=1e-8, matvec=op.matvec)
        assert res.converged
        assert op.stats.corrections.get("val", 0) == 1
