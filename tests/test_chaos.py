"""Fault injection and self-healing: repro.chaos plus the hardened
campaign paths (docs/DESIGN.md §10).

The soak tests at the bottom are the PR's acceptance bar: campaigns
whose workers are repeatedly crashed, hung and torn mid-write must
still produce stores bit-identical to a clean ``--jobs 1`` run.
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.chaos import (
    CHAOS_ENV,
    CHAOS_EXIT_CODE,
    ChaosPolicy,
    RetryPolicy,
    TaskTimeout,
    quarantine_record,
    resolve_chaos,
    resolve_retry,
    run_guarded,
)
from repro.store import ServeInterrupted, open_store, serve_campaign


@pytest.fixture(scope="module")
def small_tasks():
    return CampaignSpec(
        kind="table1", scale=48, reps=1, uids=(2213,), s_span=0
    ).expand()


@pytest.fixture(scope="module")
def serial_records(small_tasks):
    return run_campaign(small_tasks, jobs=1)


def _task_records(loaded: dict) -> dict:
    return {h: r for h, r in loaded.items() if r.get("kind") != "telemetry"}


def _armed(**kwargs) -> ChaosPolicy:
    """A policy that injects in THIS process (home suppression off)."""
    return ChaosPolicy(**kwargs).with_home(-1)


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
class TestChaosPolicy:
    def test_draws_are_deterministic_and_uniformish(self):
        p = ChaosPolicy(kill=0.5, seed=7)
        draws = [p.draw("kill", f"h{i}") for i in range(200)]
        assert draws == [p.draw("kill", f"h{i}") for i in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 40 <= sum(d < 0.5 for d in draws) <= 160

    def test_generation_rerolls_draws(self):
        p = ChaosPolicy(kill=0.5, seed=7)
        q = p.with_generation(1)
        assert any(
            p.draw("kill", f"h{i}") != q.draw("kill", f"h{i}") for i in range(20)
        )

    def test_home_process_never_injects(self):
        p = ChaosPolicy(kill=1.0, seed=1).with_home()  # home = this pid
        assert p.enabled and not p.active
        assert not p.should("kill", "abc")
        assert _armed(kill=1.0, seed=1).should("kill", "abc")

    def test_parse_round_trip_and_off(self):
        p = ChaosPolicy.parse("kill=0.2,hang=0.05,hang_s=5,seed=7")
        assert (p.kill, p.hang, p.hang_s, p.seed) == (0.2, 0.05, 5.0, 7)
        assert ChaosPolicy.parse(p.to_spec()) == p
        for spec in ("", "off", "0", "none", "kill=0"):
            assert ChaosPolicy.parse(spec) is None

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="chaos spec"):
            ChaosPolicy.parse("explode=0.5")
        with pytest.raises(ValueError, match="chaos spec"):
            ChaosPolicy.parse("kill")
        with pytest.raises(ValueError, match="probability"):
            ChaosPolicy.parse("kill=1.5")

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "kill=0.25,seed=9")
        p = resolve_chaos(None)
        assert p is not None and p.kill == 0.25 and p.home_pid == os.getpid()
        # An explicit spec overrides the environment; "off" disables.
        assert resolve_chaos("off") is None
        monkeypatch.setenv(CHAOS_ENV, "")
        assert resolve_chaos(None) is None

    def test_resolve_collapses_disabled(self):
        assert resolve_chaos(ChaosPolicy()) is None
        with pytest.raises(TypeError):
            resolve_chaos(42)


# ----------------------------------------------------------------------
# retry / deadline / quarantine
# ----------------------------------------------------------------------
class _FakeTask:
    """Just enough TaskSpec surface for run_guarded."""

    def __init__(self, h="deadbeef" * 8):
        self._h = h

    def task_hash(self):
        return self._h

    def to_json(self):
        return {"fake": True}


class TestRetryPolicy:
    def test_resolve_off_is_none(self):
        assert resolve_retry() is None
        assert resolve_retry(retries=0, task_timeout=None) is None
        assert resolve_retry(retries=2).retries == 2
        assert resolve_retry(task_timeout=1.5).timeout == 1.5

    def test_delay_backs_off_with_deterministic_jitter(self):
        r = RetryPolicy(retries=5, backoff=0.1, backoff_cap=0.5)
        d = [r.delay("h", k) for k in (1, 2, 3, 4, 5)]
        assert d == [r.delay("h", k) for k in (1, 2, 3, 4, 5)]
        assert all(0.05 <= d[0] <= 0.1 for _ in [0])
        assert d[4] <= 0.5  # capped
        assert r.delay("h", 1) != r.delay("other", 1)  # task-keyed jitter

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)


class TestRunGuarded:
    def test_fast_path_calls_execute_directly(self):
        calls = []
        rec = run_guarded(
            _FakeTask(), execute=lambda t, **kw: calls.append(kw) or {"ok": 1}
        )
        assert rec == {"ok": 1} and calls == [{}]

    def test_flaky_task_heals_within_retries(self):
        from repro.obs.metrics import METRICS

        attempts = []

        def flaky(task, **kw):
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return {"hash": task.task_hash(), "ok": True}

        before = METRICS.count("harness.retries")
        rec = run_guarded(
            _FakeTask(),
            retry=RetryPolicy(retries=3, backoff=0.001),
            execute=flaky,
        )
        assert rec["ok"] and len(attempts) == 3
        assert METRICS.count("harness.retries") == before + 2

    def test_exhausted_attempts_quarantine(self):
        def broken(task, **kw):
            raise RuntimeError("poison")

        rec = run_guarded(
            _FakeTask("aa" * 32),
            retry=RetryPolicy(retries=2, backoff=0.001),
            execute=broken,
        )
        assert rec["kind"] == "quarantine"
        assert rec["hash"] == "aa" * 32
        assert rec["attempts"] == 3
        assert "RuntimeError: poison" in rec["error"]
        assert rec["task"] == {"fake": True}

    def test_quarantine_false_reraises(self):
        def broken(task, **kw):
            raise RuntimeError("poison")

        with pytest.raises(RuntimeError, match="poison"):
            run_guarded(
                _FakeTask(),
                retry=RetryPolicy(retries=1, backoff=0.001, quarantine=False),
                execute=broken,
            )

    def test_deadline_turns_hang_into_timeout_then_quarantine(self):
        def hangs(task, **kw):
            time.sleep(5.0)
            return {"hash": task.task_hash()}

        t0 = time.monotonic()
        rec = run_guarded(
            _FakeTask(),
            retry=RetryPolicy(retries=1, timeout=0.2, backoff=0.001),
            execute=hangs,
        )
        assert time.monotonic() - t0 < 3.0
        assert rec["kind"] == "quarantine"
        assert "deadline" in rec["error"]

    def test_injected_hang_healed_by_deadline(self):
        calls = []
        chaos = _armed(hang=1.0, hang_s=30.0, seed=3)

        def fine(task, **kw):
            calls.append(1)
            return {"hash": task.task_hash(), "ok": True}

        # Every attempt hangs (p=1.0), the deadline converts each hang
        # into a retryable timeout, and attempts run out -> quarantine.
        # The solver itself is never reached.
        t0 = time.monotonic()
        rec = run_guarded(
            _FakeTask(),
            retry=RetryPolicy(retries=1, timeout=0.2, backoff=0.001),
            chaos=chaos,
            execute=fine,
        )
        assert time.monotonic() - t0 < 3.0
        assert rec["kind"] == "quarantine" and not calls

    def test_quarantine_record_shape(self):
        rec = quarantine_record(_FakeTask("bb" * 32), ValueError("x"), 4)
        assert rec == {
            "hash": "bb" * 32,
            "kind": "quarantine",
            "schema": 1,
            "task": {"fake": True},
            "error": "ValueError: x",
            "attempts": 4,
        }


# ----------------------------------------------------------------------
# hardened pool execution
# ----------------------------------------------------------------------
class TestHardenedCampaign:
    def test_pool_chaos_kills_heal_to_identical_records(
        self, tmp_path, small_tasks, serial_records
    ):
        # Injected worker crashes break the pool; supervision rebuilds
        # it (re-rolling the kill draws) and, if the budget runs out,
        # degrades to serial in the home process — where injection is
        # suppressed.  Either way the records must be bit-identical.
        records = run_campaign(
            small_tasks,
            jobs=2,
            store=f"sharded:{tmp_path / 'chaos.d'}",
            chaos="kill=0.4,seed=11",
        )
        assert records == serial_records

    def test_quarantine_flows_through_run_campaign(self, small_tasks, monkeypatch):
        import repro.campaign.executor as executor
        from repro.obs.metrics import METRICS

        poison = small_tasks[0].task_hash()
        real = executor.execute_task

        def sometimes_poison(task, **kw):
            if task.task_hash() == poison:
                raise RuntimeError("poison task")
            return real(task, **kw)

        monkeypatch.setattr(executor, "execute_task", sometimes_poison)
        before = METRICS.count("campaign.quarantined")
        records = run_campaign(
            small_tasks, jobs=1, retries=1, retry_backoff=0.001
        )
        assert METRICS.count("campaign.quarantined") == before + 1
        bad = [r for r in records if r.get("kind") == "quarantine"]
        assert len(bad) == 1 and bad[0]["hash"] == poison
        assert all(
            r.get("kind") != "quarantine"
            for r in records
            if r["hash"] != poison
        )

    def test_quarantine_skipped_by_study_points(self, small_tasks, monkeypatch):
        import repro.campaign.executor as executor
        from repro.api.study import StudyResult

        poison = small_tasks[0].task_hash()
        real = executor.execute_task

        def sometimes_poison(task, **kw):
            if task.task_hash() == poison:
                raise RuntimeError("poison task")
            return real(task, **kw)

        monkeypatch.setattr(executor, "execute_task", sometimes_poison)
        records = run_campaign(small_tasks, jobs=1, retries=0, task_timeout=60.0)
        result = StudyResult(list(small_tasks), records)
        assert result.quarantined == 1
        assert len(result.points()) == len(small_tasks) - 1


# ----------------------------------------------------------------------
# serve-mode soak: the acceptance bar
# ----------------------------------------------------------------------
class TestServeChaosSoak:
    def test_chaos_soak_matches_clean_jobs1(
        self, tmp_path, small_tasks, serial_records
    ):
        # Workers are repeatedly crashed (seeded kill draws), hung
        # (healed by --task-timeout) and torn mid-write; supervision
        # restarts them and leases recover their tasks.  The store must
        # end up with records bit-identical to a clean serial run —
        # nothing lost, nothing duplicated, nothing quarantined.
        url = f"sharded:{tmp_path / 'soak.d'}"
        records = serve_campaign(
            small_tasks,
            url,
            workers=2,
            lease_ttl=1.0,
            task_timeout=20.0,
            retries=5,
            max_worker_restarts=40,
            chaos="kill=0.25,hang=0.1,tear=0.15,hang_s=0.5,seed=2015",
        )
        assert records == serial_records
        stored = _task_records(open_store(url).load())
        assert stored == {
            t.task_hash(): r for t, r in zip(small_tasks, serial_records)
        }
        assert not [r for r in records if r.get("kind") == "quarantine"]

    def test_sigkilled_worker_is_restarted_and_campaign_completes(
        self, tmp_path, small_tasks, serial_records
    ):
        # A real SIGKILL (not injected): the dispatcher must restart
        # the dead worker and steal its lease.  serve_campaign runs in
        # a background thread so this thread can hunt the worker pid —
        # which also exercises the "no signal handlers off the main
        # thread" guard.
        url = f"sharded:{tmp_path / 'kill.d'}"
        out = {}

        def run():
            out["records"] = serve_campaign(
                small_tasks, url, workers=2, lease_ttl=1.0
            )

        thread = threading.Thread(target=run)
        thread.start()
        killed = False
        deadline = time.monotonic() + 30
        while not killed and time.monotonic() < deadline and thread.is_alive():
            for proc in multiprocessing.active_children():
                if proc.name.startswith("repro-serve") and proc.pid:
                    os.kill(proc.pid, signal.SIGKILL)
                    killed = True
                    break
            time.sleep(0.02)
        thread.join(120)
        assert not thread.is_alive()
        assert out["records"] == serial_records

    def test_graceful_shutdown_drains_and_resumes(
        self, tmp_path, small_tasks, serial_records
    ):
        # SIGTERM mid-campaign: workers finish their in-flight task and
        # exit 0, the dispatcher raises ServeInterrupted, and a resumed
        # serve completes the remainder from the store.
        url = f"sharded:{tmp_path / 'drain.d'}"

        # Fire SIGTERM only once the fleet is visibly up and mid-work;
        # injected hangs pad every task by 0.5s so the campaign cannot
        # finish before the signal lands.
        def send_when_running():
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if any(
                    p.name.startswith("repro-serve")
                    for p in multiprocessing.active_children()
                ):
                    time.sleep(0.2)
                    os.kill(os.getpid(), signal.SIGTERM)
                    return
                time.sleep(0.02)

        # Safety net: if the campaign somehow finishes before the
        # signal, the restored handler must be a no-op, not death.
        previous = signal.signal(signal.SIGTERM, lambda *a: None)
        sender = threading.Thread(target=send_when_running)
        try:
            sender.start()
            with pytest.raises(ServeInterrupted) as excinfo:
                serve_campaign(
                    small_tasks,
                    url,
                    workers=2,
                    lease_ttl=30.0,
                    chaos="hang=1.0,hang_s=0.5,seed=1",
                )
            assert excinfo.value.signum == signal.SIGTERM
        finally:
            sender.join(15)
            signal.signal(signal.SIGTERM, previous)
        records = serve_campaign(small_tasks, url, workers=2, lease_ttl=30.0)
        assert records == serial_records

    def test_chaos_exit_code_is_distinctive(self):
        assert CHAOS_EXIT_CODE == 86
        with pytest.raises(TaskTimeout):  # the exception type is public
            raise TaskTimeout("x")
