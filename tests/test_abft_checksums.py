"""Unit tests for checksum precomputation."""

import numpy as np
import pytest

from repro.abft import compute_checksums
from repro.sparse import CSRMatrix, graph_laplacian_spd
from tests.conftest import dense_random_csr


class TestComputeChecksums:
    def test_column_checksums_match_dense(self, small_lap):
        cks = compute_checksums(small_lap, nchecks=2)
        dense = small_lap.to_dense()
        np.testing.assert_allclose(cks.column_checksums[0], dense.sum(axis=0), rtol=1e-12)
        w2 = np.arange(1, small_lap.nrows + 1)
        np.testing.assert_allclose(cks.column_checksums[1], w2 @ dense, rtol=1e-12)

    def test_shifted_first_row_has_no_zeros(self):
        # Graph Laplacian: all (unshifted−shift) column sums equal the
        # diagonal shift; choose a shift making sums zero-prone.
        a = graph_laplacian_spd(60, 4, seed=0, shift=1.0)
        cks = compute_checksums(a, nchecks=1)
        assert np.all(np.abs(cks.shifted_first_row) > 0)

    def test_rowidx_checksums(self, small_lap):
        cks = compute_checksums(small_lap, nchecks=2)
        ridx = small_lap.rowidx[1:].astype(float)
        assert cks.rowidx_checksums[0] == pytest.approx(ridx.sum())
        w2 = np.arange(1, small_lap.nrows + 1)
        assert cks.rowidx_checksums[1] == pytest.approx(w2 @ ridx)

    def test_exact_rowidx_checksums_are_ints(self, small_lap):
        cks = compute_checksums(small_lap, nchecks=2)
        assert all(isinstance(v, int) for v in cks.rowidx_checksums_exact)
        assert cks.rowidx_checksums_exact[0] == int(small_lap.rowidx[1:].sum())

    def test_x_checksums(self, small_lap, rng):
        cks = compute_checksums(small_lap, nchecks=2)
        x = rng.normal(size=small_lap.ncols)
        cx = cks.x_checksums(x)
        assert cx[0] == pytest.approx(x.sum())
        assert cx[1] == pytest.approx(np.arange(1, x.size + 1) @ x)

    def test_nchecks_one_shape(self, small_lap):
        cks = compute_checksums(small_lap, nchecks=1)
        assert cks.weights.shape == (1, small_lap.nrows)
        assert cks.column_checksums.shape == (1, small_lap.ncols)
        assert len(cks.rowidx_checksums_exact) == 1

    def test_rectangular_block(self, rng):
        a = dense_random_csr(rng, 10, 25, 0.4)
        cks = compute_checksums(a, nchecks=2)
        assert not cks.is_square
        assert cks.weights.shape == (2, 10)
        assert cks.column_weights.shape == (2, 25)
        assert cks.column_checksums.shape == (2, 25)

    def test_square_shares_weight_matrices(self, small_lap):
        cks = compute_checksums(small_lap, nchecks=2)
        assert cks.is_square
        assert cks.column_weights is cks.weights

    def test_setup_cost_is_amortizable(self, small_lap, rng):
        """The same checksum object must validate many products."""
        from repro.abft import protected_spmv, SpmvStatus

        cks = compute_checksums(small_lap, nchecks=2)
        for _ in range(5):
            x = rng.normal(size=small_lap.ncols)
            assert protected_spmv(small_lap, x, cks).status is SpmvStatus.OK
