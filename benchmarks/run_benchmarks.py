#!/usr/bin/env python
"""Run the repo's perf benchmarks and police the committed baseline.

Runs ``bench_resilience.py`` (engine-vs-legacy abstraction tax),
``bench_hotpath.py`` (workspace hot path vs the frozen seed stack),
``bench_obs.py`` (tracing overhead), ``bench_chaos.py`` (self-healing
harness overhead), ``bench_adaptive.py`` (adaptive sampling: same
means within CI, fewer repetitions) and ``bench_backends.py`` (the
kernel-backend axis, clean and guarded), then compares the fresh hot-path and backend
records against the committed baselines
``benchmarks/BENCH_hotpath.json`` / ``benchmarks/BENCH_backends.json``
— the repo's perf trajectory — and gates the fresh overhead records:
disabled tracing (``BENCH_obs.json``) or the armed guarded execution
path on a healthy campaign (``BENCH_chaos.json``) costing more than
2 % over their legacy paths fails the run.

The regression gates compare **speedup ratios**, not raw seconds: both
sides of every ratio run on the same machine in the same process, so
the ratio is largely machine-independent, which is what makes a
committed baseline meaningful across laptops and CI runners.  A fresh
aggregate ratio more than 25 % below the baseline's fails the run.
Backends the current environment cannot measure (numba without the
optional dependency, threaded on a single-CPU host) are recorded as
unavailable and skipped by the gate, never compared against stale
numbers.

Usage::

    python benchmarks/run_benchmarks.py             # full (default scales)
    python benchmarks/run_benchmarks.py --quick     # CI smoke settings
    python benchmarks/run_benchmarks.py --update-baseline
    python benchmarks/run_benchmarks.py --skip-resilience
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
BASELINE = BENCH_DIR / "BENCH_hotpath.json"
FRESH = BENCH_DIR / "results" / "BENCH_hotpath.json"
OBS_BASELINE = BENCH_DIR / "BENCH_obs.json"
OBS_FRESH = BENCH_DIR / "results" / "BENCH_obs.json"
BACKENDS_BASELINE = BENCH_DIR / "BENCH_backends.json"
BACKENDS_FRESH = BENCH_DIR / "results" / "BENCH_backends.json"
CHAOS_BASELINE = BENCH_DIR / "BENCH_chaos.json"
CHAOS_FRESH = BENCH_DIR / "results" / "BENCH_chaos.json"
ADAPTIVE_BASELINE = BENCH_DIR / "BENCH_adaptive.json"
ADAPTIVE_FRESH = BENCH_DIR / "results" / "BENCH_adaptive.json"

#: Maximum tolerated drop of the aggregate speedup vs the baseline.
REGRESSION_TOLERANCE = 0.25

#: Maximum tolerated tracing-off overhead (percent) over the untraced
#: path — the repro.obs zero-overhead-when-off acceptance bar.
MAX_TRACE_OVERHEAD_PCT = 2.0

#: Maximum tolerated guarded-path overhead (percent) on a healthy
#: campaign — the repro.chaos hardening acceptance bar.
MAX_CHAOS_OVERHEAD_PCT = 2.0


def run_pytest_benches(quick: bool, skip_resilience: bool) -> int:
    """Invoke the two benches through pytest; returns the exit code."""
    import pytest

    if quick:
        # Fewer repetitions for the resilience bench only.  The matrix
        # scale is deliberately NOT lowered: the committed hot-path
        # baseline was recorded at the default scale, and the speedup
        # ratio is machine-independent but not size-independent — a
        # scale mismatch would make the regression gate meaningless
        # (check_baseline refuses to compare mismatched configs).
        os.environ.setdefault("REPRO_BENCH_REPS", "2")
        # On noisy shared runners the *ratio vs the committed baseline*
        # (checked below, -25% tolerance) is the binding gate; relax
        # the bench's absolute in-test assert so it cannot flake first.
        os.environ.setdefault("REPRO_BENCH_MIN_SPEEDUP", "1.5")
        # The tracing-off gate self-calibrates against its off-vs-off
        # noise control, so it needs no relaxation here — just shorter
        # timed regions for the smoke tier.
        os.environ.setdefault("REPRO_BENCH_OBS_REPS", "50")
        os.environ.setdefault("REPRO_BENCH_CHAOS_REPS", "6")
    targets = [
        str(BENCH_DIR / "bench_hotpath.py"),
        str(BENCH_DIR / "bench_obs.py"),
        str(BENCH_DIR / "bench_chaos.py"),
        str(BENCH_DIR / "bench_adaptive.py"),
        str(BENCH_DIR / "bench_backends.py"),
    ]
    if not skip_resilience:
        targets.append(str(BENCH_DIR / "bench_resilience.py"))
    return pytest.main(["-q", *targets])


def check_baseline(fresh: dict, baseline: dict) -> "list[str]":
    """Ratio-based regression check; returns a list of failures."""
    failures = []
    # The ratio is only comparable between identically-configured runs.
    for key in ("matrix_uid", "scale", "reps_per_point"):
        if fresh.get(key) != baseline.get(key):
            failures.append(
                f"benchmark config mismatch on {key!r}: fresh={fresh.get(key)} "
                f"baseline={baseline.get(key)} — re-record the baseline "
                f"(--update-baseline) or drop the scale override"
            )
    if failures:
        return failures
    base_agg = float(baseline["aggregate_speedup_x"])
    new_agg = float(fresh["aggregate_speedup_x"])
    floor = base_agg * (1.0 - REGRESSION_TOLERANCE)
    if new_agg < floor:
        failures.append(
            f"aggregate speedup regressed: {new_agg:.2f}x vs baseline "
            f"{base_agg:.2f}x (floor {floor:.2f}x)"
        )
    return failures


#: The backend record's ratio metrics gated against the baseline.
_BACKEND_METRICS = (
    "aggregate_spmv_speedup_x",
    "aggregate_solve_speedup_x",
    "aggregate_faulted_solve_speedup_x",
)


def check_backends_baseline(fresh: dict, baseline: dict) -> "list[str]":
    """Per-backend ratio regression check; returns a list of failures.

    Only backends measured (``available``) in *both* records are
    compared — an environment that cannot run a backend neither gates
    it nor silently blesses a regression recorded elsewhere.
    """
    failures = []
    for key in ("scale", "spmv_iters", "trials"):
        if fresh.get(key) != baseline.get(key):
            failures.append(
                f"backend-benchmark config mismatch on {key!r}: "
                f"fresh={fresh.get(key)} baseline={baseline.get(key)} — "
                f"re-record the baseline (--update-baseline) or drop the "
                f"scale override"
            )
    if failures:
        return failures
    for name, base_rec in baseline.get("backends", {}).items():
        fresh_rec = fresh.get("backends", {}).get(name)
        if not base_rec.get("available"):
            continue
        if fresh_rec is None or not fresh_rec.get("available"):
            reason = (fresh_rec or {}).get("reason", "not measured")
            print(f"backend {name!r}: baseline exists but skipped here ({reason})")
            continue
        for metric in _BACKEND_METRICS:
            if metric not in base_rec:
                continue  # older baseline without the faulted section
            base_v = float(base_rec[metric])
            new_v = float(fresh_rec[metric])
            floor = base_v * (1.0 - REGRESSION_TOLERANCE)
            if new_v < floor:
                failures.append(
                    f"backend {name!r} {metric} regressed: {new_v:.2f}x vs "
                    f"baseline {base_v:.2f}x (floor {floor:.2f}x)"
                )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke settings: fewer resilience-bench repetitions and a "
        "relaxed absolute speedup floor (the baseline ratio gate still "
        "applies; matrix scale is unchanged so ratios stay comparable)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"rewrite {BASELINE.name} from this run instead of checking against it",
    )
    parser.add_argument(
        "--skip-resilience",
        action="store_true",
        help="run only the hot-path bench",
    )
    args = parser.parse_args(argv)

    code = run_pytest_benches(args.quick, args.skip_resilience)
    if code != 0:
        print(f"benchmark run failed (pytest exit code {code})", file=sys.stderr)
        return int(code)

    if not FRESH.exists():
        print(f"expected {FRESH} to be written by bench_hotpath.py", file=sys.stderr)
        return 1
    fresh = json.loads(FRESH.read_text())

    # The observability gate applies even on --update-baseline runs: a
    # new baseline must not bake in a tracing-off regression.  The bench
    # records an off-vs-off control spread (identical calls, so pure
    # machine noise); the allowance widens by it, keeping the 2 % bar
    # binding on quiet machines without flaking on throttled containers.
    if OBS_FRESH.exists():
        obs = json.loads(OBS_FRESH.read_text())
        overhead = float(obs["aggregate_null_overhead_pct"])
        noise = float(obs.get("aggregate_control_spread_pct", 0.0))
        allowed = (
            float(
                os.environ.get(
                    "REPRO_BENCH_MAX_TRACE_OVERHEAD", str(MAX_TRACE_OVERHEAD_PCT)
                )
            )
            + noise
        )
        print(
            f"tracing off: {overhead:+.2f}% vs untraced "
            f"(allowed +{allowed:.2f}%, incl. {noise:.2f}% measured noise)"
        )
        if overhead > allowed:
            print(
                f"REGRESSION: disabled tracing costs {overhead:.2f}% over the "
                f"untraced path (allowed {allowed:.2f}%)",
                file=sys.stderr,
            )
            return 1
        if args.update_baseline or not OBS_BASELINE.exists():
            OBS_BASELINE.write_text(OBS_FRESH.read_text())
            print(f"observability record written: {OBS_BASELINE}")

    # Same shape of gate for the self-healing harness: the guarded
    # execution path (retry policy armed, deadline armed per attempt,
    # nothing ever firing) must stay within 2 % of the legacy path,
    # plus this run's measured off-vs-off noise.
    if CHAOS_FRESH.exists():
        chaos = json.loads(CHAOS_FRESH.read_text())
        overhead = float(chaos["aggregate_guarded_overhead_pct"])
        noise = float(chaos.get("aggregate_control_spread_pct", 0.0))
        allowed = (
            float(
                os.environ.get(
                    "REPRO_BENCH_MAX_CHAOS_OVERHEAD", str(MAX_CHAOS_OVERHEAD_PCT)
                )
            )
            + noise
        )
        print(
            f"hardened path: {overhead:+.2f}% vs legacy "
            f"(allowed +{allowed:.2f}%, incl. {noise:.2f}% measured noise)"
        )
        if overhead > allowed:
            print(
                f"REGRESSION: the guarded execution path costs {overhead:.2f}% "
                f"over the legacy path on a healthy campaign "
                f"(allowed {allowed:.2f}%)",
                file=sys.stderr,
            )
            return 1
        if args.update_baseline or not CHAOS_BASELINE.exists():
            CHAOS_BASELINE.write_text(CHAOS_FRESH.read_text())
            print(f"hardening record written: {CHAOS_BASELINE}")

    # Adaptive sampling acceptance: on the paper-range Figure-1 grid
    # the adaptive run must reach the fixed-count means within the
    # combined CI while executing strictly fewer repetitions.  The
    # simulated timings are deterministic, so this gate never flakes.
    if ADAPTIVE_FRESH.exists():
        adaptive = json.loads(ADAPTIVE_FRESH.read_text())
        print(
            f"adaptive sampling: {adaptive['adaptive_total_reps']}/"
            f"{adaptive['fixed_total_reps']} reps "
            f"(saved {adaptive['saved_pct']}%), "
            f"agree_within_ci={adaptive['agree_within_ci']}"
        )
        if not adaptive["agree_within_ci"]:
            print(
                "REGRESSION: an adaptive cell's mean left the combined CI "
                "of the fixed-count estimate",
                file=sys.stderr,
            )
            return 1
        if adaptive["adaptive_total_reps"] >= adaptive["fixed_total_reps"]:
            print(
                "REGRESSION: adaptive sampling executed no fewer repetitions "
                "than the fixed-count run",
                file=sys.stderr,
            )
            return 1
        if args.update_baseline or not ADAPTIVE_BASELINE.exists():
            ADAPTIVE_BASELINE.write_text(ADAPTIVE_FRESH.read_text())
            print(f"adaptive record written: {ADAPTIVE_BASELINE}")

    if args.update_baseline or not BASELINE.exists():
        BASELINE.write_text(FRESH.read_text())
        print(f"baseline written: {BASELINE} (aggregate {fresh['aggregate_speedup_x']}x)")
        if BACKENDS_FRESH.exists():
            BACKENDS_BASELINE.write_text(BACKENDS_FRESH.read_text())
            print(f"backend record written: {BACKENDS_BASELINE}")
        return 0

    baseline = json.loads(BASELINE.read_text())
    failures = check_baseline(fresh, baseline)
    print(
        f"hot path: {fresh['aggregate_speedup_x']}x vs baseline "
        f"{baseline['aggregate_speedup_x']}x (tolerance -{REGRESSION_TOLERANCE:.0%})"
    )

    if BACKENDS_FRESH.exists():
        backends_fresh = json.loads(BACKENDS_FRESH.read_text())
        if args.update_baseline or not BACKENDS_BASELINE.exists():
            BACKENDS_BASELINE.write_text(BACKENDS_FRESH.read_text())
            print(f"backend record written: {BACKENDS_BASELINE}")
        else:
            backends_baseline = json.loads(BACKENDS_BASELINE.read_text())
            failures += check_backends_baseline(backends_fresh, backends_baseline)
            for name, rec in backends_fresh.get("backends", {}).items():
                if rec.get("available"):
                    print(
                        f"backend {name!r}: spmv {rec['aggregate_spmv_speedup_x']}x, "
                        f"solve {rec['aggregate_solve_speedup_x']}x, "
                        f"faulted solve {rec['aggregate_faulted_solve_speedup_x']}x "
                        f"vs reference (tolerance -{REGRESSION_TOLERANCE:.0%})"
                    )

    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    print("benchmarks OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
