"""Backend axis: every substitutable kernel vs the reference, clean
*and* guarded.

For each measurable backend (``scipy`` always; ``numba`` when the
optional dependency is installed; ``threaded`` on multicore hosts),
three measurements against the same-process reference baseline,
correctness asserted before any clock starts:

- **raw SpMxV** — the structure-clean fast path per suite matrix,
  best-of-``TRIALS`` over ``SPMV_ITERS`` products;
- **fault-free protected solve** — ``repro.solve`` at α = 0 on a
  subset of the suite, end to end (checksum verification, vector
  kernels and history recording dilute the kernel's share — the
  honest number for campaign throughput);
- **faulted protected solve** — the same subset at a paper-range
  fault constant (α = 0.1, the golden-trajectory rate): strikes dirty
  the structure stamp, so the *guarded* kernels run inside the timed
  region.  This is the number the numba backend exists for — its
  compiled guarded walk keeps the protected path compiled where every
  other backend falls back to the NumPy reference kernel.

Backends that cannot be measured in this environment are recorded
honestly as ``"available": false`` with the reason (never with
fabricated timings); the regression gate in ``run_benchmarks.py``
skips them and compares committed-vs-fresh speedup *ratios* for the
rest.

The record lands in ``benchmarks/results/BENCH_backends.json``; the
committed copy at ``benchmarks/BENCH_backends.json`` is the repo's
reference measurement for the README's backend guidance.

Scale knobs: ``REPRO_BENCH_BACKEND_SCALE`` (suite-size divisor,
default 8 — large enough that the kernel dominates the product) and
``REPRO_BENCH_BACKEND_MIN`` (required aggregate raw-kernel speedup
for scipy, default 1.1 — a modest floor so noisy shared runners don't
flake; the committed record is the meaningful number).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

import repro
from repro.backends import get_backend, numba_available
from repro.sim.engine import make_rhs
from repro.sim.matrices import PAPER_SUITE, get_matrix
from repro.sparse.spmv import spmv

#: Raw-kernel products per timing trial.
SPMV_ITERS = 100

#: Best-of trials per measurement (minimum keeps only load spikes out).
TRIALS = 3

#: Suite subset for the end-to-end solve comparisons (one small, one
#: mid, one dense-ish entry; full-suite solves would dominate runtime).
SOLVE_UIDS = (1312, 2213, 341)

#: Paper-range fault constant for the guarded-path solve timing (the
#: golden trajectories' lower rate) and its fixed stream seed.
FAULTED_ALPHA = 0.1
FAULTED_SEED = 2015


def backend_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_BACKEND_SCALE", "8"))


def min_spmv_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_BACKEND_MIN", "1.1"))


def measurable_backends() -> "dict[str, str | None]":
    """Backend name -> None (measurable) or the reason it is not."""
    out: "dict[str, str | None]" = {"scipy": None}
    out["numba"] = (
        None
        if numba_available()
        else "optional dependency numba is not installed in this "
        "environment; `pip install -e .[numba]` and re-record"
    )
    cpus = os.cpu_count() or 1
    out["threaded"] = (
        None
        if cpus > 1
        else f"single-CPU host (os.cpu_count()={cpus}): the threaded "
        "backend degenerates to the reference kernel"
    )
    return out


def _time_spmv(a, x, backend) -> float:
    out = np.empty(a.nrows)
    scratch = np.empty(max(a.nnz, 1))
    be = get_backend(backend)
    prepare = getattr(be, "prepare", None)
    if prepare is not None:
        prepare(a)  # JIT warm-up / pool spin-up outside the clock
    be.spmv(a, x, out=out, scratch=scratch)  # warm
    best = float("inf")
    for _ in range(TRIALS):
        t0 = time.perf_counter()
        for _ in range(SPMV_ITERS):
            be.spmv(a, x, out=out, scratch=scratch)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_solve(a, b, backend, **solve_kwargs) -> float:
    kwargs = dict(eps=1e-6, backend=backend, reuse_workspace=True, **solve_kwargs)
    repro.solve(a, b, **kwargs)  # warm (matrix copy, checksum cache, JIT)
    best = float("inf")
    for _ in range(TRIALS):
        t0 = time.perf_counter()
        repro.solve(a, b, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_backend(name: str, scale: int, rng: np.random.Generator) -> dict:
    """All three sections for one backend, reference-relative."""
    spmv_points = []
    for spec in PAPER_SUITE:
        a = get_matrix(spec.uid, scale).copy()
        a.assume_clean_structure()  # the engine's structure-stamped state
        x = rng.standard_normal(a.ncols)
        # Numerical agreement before timing (few-ULP summation-order
        # differences are the allowed envelope; numba and threaded are
        # in fact bit-identical, which this also passes).
        np.testing.assert_allclose(
            get_backend(name).spmv(a, x), spmv(a, x), rtol=1e-12, atol=1e-14
        )
        t_ref = _time_spmv(a, x, "reference")
        t_be = _time_spmv(a, x, name)
        spmv_points.append(
            {
                "uid": spec.uid,
                "n": a.nrows,
                "nnz": a.nnz,
                "t_reference_s": round(t_ref, 5),
                "t_backend_s": round(t_be, 5),
                "speedup_x": round(t_ref / t_be, 3),
            }
        )

    solve_points = []
    faulted_points = []
    for uid in SOLVE_UIDS:
        a = get_matrix(uid, scale)
        b = make_rhs(a)
        ref = repro.solve(a, b, eps=1e-6)
        be = repro.solve(a, b, eps=1e-6, backend=name)
        # Acceptance invariant: identical fault-free convergence
        # histories (same iterations; simulated clock identical).
        assert be.iterations == ref.iterations
        assert be.time_units == ref.time_units
        t_ref = _time_solve(a, b, "reference")
        t_be = _time_solve(a, b, name)
        solve_points.append(
            {
                "uid": uid,
                "n": a.nrows,
                "nnz": a.nnz,
                "iterations": ref.iterations,
                "t_reference_s": round(t_ref, 4),
                "t_backend_s": round(t_be, 4),
                "speedup_x": round(t_ref / t_be, 3),
            }
        )

        # Guarded path under fire: same fault stream on both backends
        # (the backend never enters the seed derivation).
        faults = repro.FaultSpec(alpha=FAULTED_ALPHA, seed=FAULTED_SEED)
        ref_f = repro.solve(a, b, eps=1e-6, faults=faults)
        be_f = repro.solve(a, b, eps=1e-6, faults=faults, backend=name)
        assert be_f.counters.faults_injected == ref_f.counters.faults_injected
        assert be_f.converged and ref_f.converged
        t_ref_f = _time_solve(a, b, "reference", faults=faults)
        t_be_f = _time_solve(a, b, name, faults=faults)
        faulted_points.append(
            {
                "uid": uid,
                "n": a.nrows,
                "nnz": a.nnz,
                "faults_injected": ref_f.counters.faults_injected,
                "t_reference_s": round(t_ref_f, 4),
                "t_backend_s": round(t_be_f, 4),
                "speedup_x": round(t_ref_f / t_be_f, 3),
            }
        )

    def _agg(points):
        return round(
            sum(p["t_reference_s"] for p in points)
            / sum(p["t_backend_s"] for p in points),
            3,
        )

    return {
        "available": True,
        "spmv": spmv_points,
        "solve_fault_free": solve_points,
        "solve_faulted": faulted_points,
        "aggregate_spmv_speedup_x": _agg(spmv_points),
        "aggregate_solve_speedup_x": _agg(solve_points),
        "aggregate_faulted_solve_speedup_x": _agg(faulted_points),
    }


def run_backends_bench(scale: int) -> dict:
    """Measure every measurable backend; returns the JSON-ready record."""
    backends: dict = {}
    for name, unavailable_reason in measurable_backends().items():
        if unavailable_reason is not None:
            # Honest record: no timings are ever fabricated for a
            # backend this environment cannot run.
            backends[name] = {"available": False, "reason": unavailable_reason}
            continue
        backends[name] = _measure_backend(
            name, scale, np.random.default_rng(2015)
        )
    return {
        "experiment": "backends_kernel_axis",
        "scale": scale,
        "spmv_iters": SPMV_ITERS,
        "trials": TRIALS,
        "solve_uids": list(SOLVE_UIDS),
        "faulted": {"alpha": FAULTED_ALPHA, "seed": FAULTED_SEED},
        "backends": backends,
    }


def test_bench_backends(results_dir):
    record = run_backends_bench(backend_scale())
    (results_dir / "BENCH_backends.json").write_text(json.dumps(record, indent=2))
    print("\n" + json.dumps(record, indent=2))

    agg = record["backends"]["scipy"]["aggregate_spmv_speedup_x"]
    required = min_spmv_speedup()
    assert agg >= required, (
        f"scipy raw-kernel speedup is only {agg:.2f}x over the suite "
        f"(required {required}x) — the backend has stopped paying for itself"
    )
    if record["backends"].get("numba", {}).get("available"):
        # Acceptance bar: the compiled guarded path must at least
        # double end-to-end throughput under paper-range fault rates.
        agg_f = record["backends"]["numba"]["aggregate_faulted_solve_speedup_x"]
        assert agg_f >= 2.0, (
            f"numba faulted-solve speedup is only {agg_f:.2f}x "
            "(required 2.0x) — the compiled guarded path has regressed"
        )


if __name__ == "__main__":  # pragma: no cover - manual runs
    import pathlib

    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    rec = run_backends_bench(backend_scale())
    (out / "BENCH_backends.json").write_text(json.dumps(rec, indent=2))
    print(json.dumps(rec, indent=2))
