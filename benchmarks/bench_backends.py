"""Backend axis: reference vs scipy kernels on the paper suite.

Two measurements per suite matrix, correctness asserted before any
clock starts:

- **raw SpMxV** — the structure-clean fast path of each backend
  (the reference kernel with its workspace scratch vs SciPy's
  compiled CSR matvec), best-of-``TRIALS`` over ``SPMV_ITERS``
  products;
- **fault-free protected solve** — ``repro.solve`` at α = 0 on a
  subset of the suite, end to end (so checksum verification, vector
  kernels and history recording dilute the kernel's share — the
  honest number for campaign throughput).

The record lands in ``benchmarks/results/BENCH_backends.json``; the
committed copy at ``benchmarks/BENCH_backends.json`` is the repo's
reference measurement for the README's "when does scipy win" guidance.

Scale knobs: ``REPRO_BENCH_BACKEND_SCALE`` (suite-size divisor,
default 8 — large enough that the kernel dominates the product) and
``REPRO_BENCH_BACKEND_MIN`` (required aggregate raw-kernel speedup,
default 1.1 — a modest floor so noisy shared runners don't flake;
the committed record is the meaningful number).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

import repro
from repro.backends import get_backend
from repro.sim.engine import make_rhs
from repro.sim.matrices import PAPER_SUITE, get_matrix
from repro.sparse.spmv import spmv

#: Raw-kernel products per timing trial.
SPMV_ITERS = 100

#: Best-of trials per measurement (minimum keeps only load spikes out).
TRIALS = 3

#: Suite subset for the end-to-end solve comparison (one small, one
#: mid, one dense-ish entry; full-suite solves would dominate runtime).
SOLVE_UIDS = (1312, 2213, 341)


def backend_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_BACKEND_SCALE", "8"))


def min_spmv_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_BACKEND_MIN", "1.1"))


def _time_spmv(a, x, backend) -> float:
    out = np.empty(a.nrows)
    scratch = np.empty(max(a.nnz, 1))
    be = get_backend(backend)
    be.spmv(a, x, out=out, scratch=scratch)  # warm
    best = float("inf")
    for _ in range(TRIALS):
        t0 = time.perf_counter()
        for _ in range(SPMV_ITERS):
            be.spmv(a, x, out=out, scratch=scratch)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_solve(a, b, backend) -> float:
    kwargs = dict(eps=1e-6, backend=backend, reuse_workspace=True)
    repro.solve(a, b, **kwargs)  # warm (matrix copy, checksum cache)
    best = float("inf")
    for _ in range(TRIALS):
        t0 = time.perf_counter()
        repro.solve(a, b, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def run_backends_bench(scale: int) -> dict:
    """Measure the whole suite; returns the JSON-ready record."""
    rng = np.random.default_rng(2015)
    spmv_points = []
    for spec in PAPER_SUITE:
        a = get_matrix(spec.uid, scale).copy()
        a.assume_clean_structure()  # the engine's structure-stamped state
        x = rng.standard_normal(a.ncols)
        # Numerical agreement before timing (few-ULP summation-order
        # differences are the allowed envelope).
        np.testing.assert_allclose(
            get_backend("scipy").spmv(a, x), spmv(a, x), rtol=1e-12, atol=1e-14
        )
        t_ref = _time_spmv(a, x, "reference")
        t_scipy = _time_spmv(a, x, "scipy")
        spmv_points.append(
            {
                "uid": spec.uid,
                "n": a.nrows,
                "nnz": a.nnz,
                "t_reference_s": round(t_ref, 5),
                "t_scipy_s": round(t_scipy, 5),
                "speedup_x": round(t_ref / t_scipy, 3),
            }
        )

    solve_points = []
    for uid in SOLVE_UIDS:
        a = get_matrix(uid, scale)
        b = make_rhs(a)
        ref = repro.solve(a, b, eps=1e-6)
        sp = repro.solve(a, b, eps=1e-6, backend="scipy")
        # Acceptance invariant: identical fault-free convergence
        # histories (same iterations; simulated clock identical).
        assert sp.iterations == ref.iterations
        assert sp.time_units == ref.time_units
        t_ref = _time_solve(a, b, "reference")
        t_scipy = _time_solve(a, b, "scipy")
        solve_points.append(
            {
                "uid": uid,
                "n": a.nrows,
                "nnz": a.nnz,
                "iterations": ref.iterations,
                "t_reference_s": round(t_ref, 4),
                "t_scipy_s": round(t_scipy, 4),
                "speedup_x": round(t_ref / t_scipy, 3),
            }
        )

    agg_spmv = sum(p["t_reference_s"] for p in spmv_points) / sum(
        p["t_scipy_s"] for p in spmv_points
    )
    agg_solve = sum(p["t_reference_s"] for p in solve_points) / sum(
        p["t_scipy_s"] for p in solve_points
    )
    return {
        "experiment": "backends_reference_vs_scipy",
        "scale": scale,
        "spmv_iters": SPMV_ITERS,
        "trials": TRIALS,
        "spmv": spmv_points,
        "solve_fault_free": solve_points,
        "aggregate_spmv_speedup_x": round(agg_spmv, 3),
        "aggregate_solve_speedup_x": round(agg_solve, 3),
    }


def test_bench_backends(results_dir):
    record = run_backends_bench(backend_scale())
    (results_dir / "BENCH_backends.json").write_text(json.dumps(record, indent=2))
    print("\n" + json.dumps(record, indent=2))

    agg = record["aggregate_spmv_speedup_x"]
    required = min_spmv_speedup()
    assert agg >= required, (
        f"scipy raw-kernel speedup is only {agg:.2f}x over the suite "
        f"(required {required}x) — the backend has stopped paying for itself"
    )


if __name__ == "__main__":  # pragma: no cover - manual runs
    import pathlib

    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    rec = run_backends_bench(backend_scale())
    (out / "BENCH_backends.json").write_text(json.dumps(rec, indent=2))
    print(json.dumps(rec, indent=2))
