"""E6 — parallel SpMxV with local ABFT (the paper's Section-1 claim).

Measures the simulated row-partitioned protected product across rank
counts: local detection/correction implies global recovery, the
allgather volume grows with p, and the per-rank checksum setup
amortizes exactly as in the sequential case.  The MTBF model shrinks
as 1/p, so the platform model feeds back into Eq. 6 interval choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.abft import SpmvStatus
from repro.core import CostModel, Scheme
from repro.model import model_for_scheme
from repro.parallel import DistributedSpmv, partition_by_nnz, platform_rate
from repro.sim.engine import make_rhs
from repro.sim.matrices import suite_specs


@pytest.fixture(scope="module")
def matrix():
    spec = suite_specs([1311])[0]
    return spec.instantiate(bench_scale())


@pytest.mark.parametrize("p", [1, 2, 4, 8])
def test_bench_distributed_multiply(benchmark, matrix, p):
    op = DistributedSpmv(matrix, p, partition=partition_by_nnz(matrix, p))
    x = make_rhs(matrix)
    res = benchmark(lambda: op.multiply(x))
    assert res.global_status is SpmvStatus.OK


def test_regenerate_parallel_table(results_dir, matrix):
    """Recovery + communication profile across rank counts."""
    x = make_rhs(matrix)
    lines = [f"{'p':>3} {'status':>10} {'allgather words':>16} {'p2p volume':>11} {'rate x p':>9}"]
    for p in (1, 2, 4, 8, 16):
        part = partition_by_nnz(matrix, p)
        op = DistributedSpmv(matrix, p, partition=part)

        def hook(stage, blk, xx, yy):
            if stage == "pre":
                blk.val[0] += 1.0

        res = op.multiply(x, rank_hooks={p - 1: hook})
        assert res.global_status is SpmvStatus.CORRECTED
        np.testing.assert_allclose(res.y, matrix.matvec(x), rtol=1e-9)
        lines.append(
            f"{p:>3} {res.global_status.value:>10} {op.comm.stats.words:>16} "
            f"{part.communication_volume(matrix):>11} {platform_rate(1e-4, p):>9.1e}"
        )
    text = "\n".join(lines) + "\n"
    (results_dir / "parallel.txt").write_text(text)
    print("\n" + text)


def test_mtbf_scaling_shrinks_interval():
    """More ranks ⇒ higher platform rate ⇒ smaller optimal s."""
    costs = CostModel()
    s_values = []
    for p in (1, 4, 16, 64):
        lam = platform_rate(1e-3, p)
        s_values.append(model_for_scheme(Scheme.ABFT_CORRECTION, lam, costs).optimal(s_max=2000).s)
    assert s_values == sorted(s_values, reverse=True)
    assert s_values[-1] < s_values[0]


def test_bench_local_checksum_setup(benchmark, matrix):
    """Per-rank setup cost (amortized over all products with the block)."""
    from repro.abft import compute_checksums
    from repro.parallel import block_rows

    part = block_rows(matrix.nrows, 4)
    blk = part.local_block(matrix, 2)
    cks = benchmark(lambda: compute_checksums(blk, nchecks=2))
    assert not cks.is_square
