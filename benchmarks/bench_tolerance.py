"""E3 — Theorem-2 tolerance: no false positives, bounded false negatives.

Section 5.1: using Eq. 9 as the comparison threshold "guarantees no
false positive … but allows false negatives when the perturbations of
the result are small", and such undetected errors are "too small to
impact the solution" (Elliott et al.'s bit-flip magnitude analysis).

Measured here: (a) zero detections over many clean products on every
suite matrix; (b) the bit-position profile of detection — flips in high
mantissa/exponent bits are caught, flips in the lowest mantissa bits
fall under the threshold and indeed perturb the product negligibly.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.abft import SpmvStatus, compute_checksums, protected_spmv
from repro.faults.bitflip import flip_bit_float64
from repro.sim.engine import make_rhs
from repro.sim.matrices import suite_specs


def test_no_false_positives_across_suite(results_dir):
    lines = []
    for spec in suite_specs():
        a = spec.instantiate(bench_scale())
        cks = compute_checksums(a, nchecks=2)
        rng = np.random.default_rng(spec.uid)
        flagged = 0
        trials = 40
        for _ in range(trials):
            x = rng.normal(size=a.ncols) * 10.0 ** rng.integers(-4, 5)
            if protected_spmv(a, x, cks).status is not SpmvStatus.OK:
                flagged += 1
        lines.append(f"#{spec.uid}: {flagged}/{trials} clean products flagged")
        assert flagged == 0, spec.uid
    (results_dir / "tolerance_false_positives.txt").write_text("\n".join(lines) + "\n")


def test_false_negative_profile(results_dir):
    """Sweep mantissa bits of a val flip: find the detection boundary
    and confirm undetected flips barely move the product."""
    spec = suite_specs([924])[0]
    a_clean = spec.instantiate(bench_scale())
    cks = compute_checksums(a_clean, nchecks=2)
    rng = np.random.default_rng(7)
    x = rng.normal(size=a_clean.ncols)
    y_true = a_clean.matvec(x)
    scale = np.abs(y_true).max()

    lines = ["bit  detected  max |Δy| / ‖y‖∞"]
    undetected_impacts = []
    for bit in range(0, 52, 4):
        a = a_clean.copy()
        pos = 1234 % a.nnz
        a.val[pos] = flip_bit_float64(a.val[pos], bit)
        res = protected_spmv(a, x.copy(), cks)
        caught = res.status is not SpmvStatus.OK
        impact = np.abs(res.y - y_true).max() / scale
        lines.append(f"{bit:3d}  {str(caught):8s}  {impact:.3e}")
        if not caught:
            undetected_impacts.append(impact)
    text = "\n".join(lines) + "\n"
    (results_dir / "tolerance_false_negatives.txt").write_text(text)
    print("\n" + text)

    # Undetected flips must be numerically negligible — the paper's
    # justification for tolerating them.
    assert all(i < 1e-8 for i in undetected_impacts)


def test_bench_threshold_evaluation(benchmark):
    """The per-call tolerance must be O(n): one max-reduction."""
    spec = suite_specs([341])[0]
    a = spec.instantiate(bench_scale())
    cks = compute_checksums(a, nchecks=2)
    x = make_rhs(a)
    thr = benchmark(lambda: cks.tolerance.thresholds(float(np.abs(x).max())))
    assert thr.shape == (2,)
