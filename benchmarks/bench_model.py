"""E5 — performance-model ablations (Section 4).

Regenerates the model-side artifacts the paper's design rests on:

- the overhead surface E(s,T)/(sT) and its numerical optimum (Eq. 6);
- optimal s vs fault rate for all three schemes (the q-formula
  difference of ABFT-CORRECTION, Section 4.2.3);
- the DP placement of Benoit et al. [3] vs the periodic policy —
  validating that periodic checkpointing is near-optimal;
- the Young/Daly closed forms as the cheap-verification limit.
"""

from __future__ import annotations

import math

import pytest

from repro.core import CostModel, Scheme
from repro.model import (
    expected_frame_time,
    frame_overhead,
    model_for_scheme,
    optimal_checkpoint_positions,
    optimal_interval,
    young_period,
)

COSTS = CostModel(t_cp=1.0, t_rec=1.0, t_verif_online=0.8, t_verif_detect=0.2, t_verif_correct=0.35)


def test_regenerate_interval_vs_rate(results_dir):
    """Optimal s per scheme over the Figure-1 rate range."""
    lines = [f"{'1/alpha':>8} {'s(det)':>7} {'s(corr)':>8} {'ovh(det)':>9} {'ovh(corr)':>10}"]
    prev = None
    for mtbf in (16, 10**2, 10**3, 10**4):
        lam = 1.0 / mtbf
        det = model_for_scheme(Scheme.ABFT_DETECTION, lam, COSTS).optimal(s_max=3000)
        cor = model_for_scheme(Scheme.ABFT_CORRECTION, lam, COSTS).optimal(s_max=3000)
        lines.append(
            f"{mtbf:>8} {det.s:>7} {cor.s:>8} {det.overhead:>9.4f} {cor.overhead:>10.4f}"
        )
        # Correction's success probability is higher → its interval is
        # larger at every rate.
        assert cor.s > det.s
        if prev is not None:
            assert det.s >= prev  # s grows as faults get rarer
        prev = det.s
    text = "\n".join(lines) + "\n"
    (results_dir / "model_intervals.txt").write_text(text)
    print("\n" + text)


def test_dp_vs_periodic(results_dir):
    """The exact DP optimum is within a whisker of the periodic policy."""
    lines = ["q      periodic    dp        gap%"]
    for q in (0.99, 0.95, 0.9, 0.8):
        n = 60
        choice = optimal_interval(1.0, q, 1.0, 1.0, 0.2, s_max=n)
        frames, rem = divmod(n, choice.s)
        periodic = frames * expected_frame_time(choice.s, 1.0, 1.0, 1.0, 0.2, q)
        if rem:
            periodic += expected_frame_time(rem, 1.0, 1.0, 1.0, 0.2, q)
        dp = optimal_checkpoint_positions(n, 1.0, q, 1.0, 1.0, 0.2)
        gap = (periodic - dp.expected_time) / dp.expected_time * 100
        lines.append(f"{q:<6} {periodic:9.2f} {dp.expected_time:9.2f} {gap:7.3f}")
        assert dp.expected_time <= periodic + 1e-9
        assert gap < 2.0  # periodic is near-optimal
    text = "\n".join(lines) + "\n"
    (results_dir / "model_dp_vs_periodic.txt").write_text(text)
    print("\n" + text)


def test_young_daly_limit():
    """With negligible Tverif, s·T ≈ Young's period."""
    for lam in (1e-3, 1e-4, 1e-5):
        choice = optimal_interval(1.0, math.exp(-lam), 1.0, 1.0, 1e-9, s_max=5000)
        assert choice.s * 1.0 == pytest.approx(young_period(1.0, lam), rel=0.15)


def test_bench_eq6_scan(benchmark):
    """Cost of the full Eq.-6 integer scan (used per experiment point)."""
    choice = benchmark(
        lambda: optimal_interval(1.0, math.exp(-1 / 16), 1.0, 1.0, 0.35, s_max=1000)
    )
    assert choice.s >= 1


def test_bench_dp_placement(benchmark):
    """Cost of the O(n²) DP for a 200-chunk horizon."""
    dp = benchmark(lambda: optimal_checkpoint_positions(200, 1.0, 0.95, 1.0, 1.0, 0.2))
    assert dp.positions[-1] == 200


def test_bench_joint_online_optimization(benchmark):
    from repro.model import optimal_online_intervals

    best = benchmark(
        lambda: optimal_online_intervals(1.0, 0.01, 1.0, 1.0, 0.8, d_max=100, s_max=100)
    )
    assert best.d >= 1
