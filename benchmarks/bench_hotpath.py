"""E9 — zero-copy hot path: repeat_run throughput vs the frozen seed.

The paper's evaluation metric is mean execution time over many
repeated fault-injected solves, so the repo's throughput ceiling is
``repeat_run``.  This bench drives the workspace hot path (cached ABFT
checksums, strike-undo live-matrix restore, preallocated buffers,
structure-stamped SpMxV) against the *frozen seed stack* — the
pre-refactor monolithic FT-CG driver on the seed's own SpMxV/ABFT
kernels (``benchmarks/_legacy_ft_cg.py`` + ``_seed_kernels.py``) — on
Table-1-style points, asserts every trajectory is bit-identical, and
gates on the aggregate wall-clock speedup.

Fault rates follow the paper's Section 5 sweep (normalized MTBF
10²…10⁵ ⇒ α ≤ 10⁻²) plus the clean α = 0 run; an extreme-rate point
(α = 0.1) is measured and reported but not gated — it exercises the
correction decoder, which is recovery, not hot path.

``benchmarks/run_benchmarks.py`` wraps this bench (plus
``bench_resilience.py``) and maintains the committed baseline
``benchmarks/BENCH_hotpath.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from benchmarks._legacy_ft_cg import run_ft_cg_legacy
from benchmarks.conftest import bench_scale
from repro.core import Scheme, SchemeConfig
from repro.core.methods import CostModel
from repro.perf import SolveWorkspace
from repro.sim.engine import make_rhs, repeat_run
from repro.sim.matrices import get_matrix
from repro.util.rng import spawn_named

#: (scheme, alpha, gated) — paper-range fault rates are gated, the
#: extreme correction-heavy point is informational.
POINTS = [
    (Scheme.ABFT_CORRECTION, 0.0, True),
    (Scheme.ABFT_CORRECTION, 0.01, True),
    (Scheme.ABFT_DETECTION, 0.01, True),
    (Scheme.ABFT_CORRECTION, 0.1, False),
]

#: Wall-clock trials per point; the minimum is kept (load spikes on
#: shared CI only ever slow a trial down).
TRIALS = 3

#: Required aggregate speedup over the gated points (acceptance: ≥ 2×
#: on a quiet machine — the number the committed baseline was recorded
#: at).  ``REPRO_BENCH_MIN_SPEEDUP`` overrides it: CI smoke runs set a
#: lower floor so the baseline *ratio* gate in ``run_benchmarks.py``
#: (>25 % regression vs the committed record) is the binding check on
#: noisy shared runners, not this absolute assert.
MIN_SPEEDUP = 2.0


def min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", str(MIN_SPEEDUP)))


def hotpath_reps() -> int:
    """Repetitions per point (the acceptance floor is 50)."""
    return max(50, int(os.environ.get("REPRO_BENCH_HOTPATH_REPS", "50")))


def _seed_repeat(a, b, cfg, alpha: float, reps: int, base_seed: int = 0):
    """The seed tree's repeat_run: frozen driver, frozen kernels,
    identical per-repetition RNG derivation."""
    out = []
    for rep in range(reps):
        rng = spawn_named(base_seed, cfg.scheme.value, alpha, rep)
        with np.errstate(all="ignore"):
            out.append(run_ft_cg_legacy(a, b, cfg, alpha=alpha, rng=rng, eps=1e-6))
    return out


def run_hotpath_bench(scale: int, reps: int) -> dict:
    """Measure all points; returns the JSON-ready record."""
    a = get_matrix(2213, scale)
    b = make_rhs(a)
    costs = CostModel.from_matrix(a)
    points = []
    for scheme, alpha, gated in POINTS:
        cfg = SchemeConfig(
            scheme, checkpoint_interval=8, verification_interval=1, costs=costs
        )

        # Correctness first: the workspace path must reproduce the seed
        # trajectories bit for bit (simulated time and solution bytes).
        ws = SolveWorkspace()
        seed_results = _seed_repeat(a, b, cfg, alpha, min(reps, 10))
        from repro.core import run_ft_cg

        for rep, want in enumerate(seed_results):
            rng = spawn_named(0, cfg.scheme.value, alpha, rep)
            with np.errstate(all="ignore"):
                got = run_ft_cg(a, b, cfg, alpha=alpha, rng=rng, eps=1e-6, workspace=ws)
            assert got.time_units == want.time_units
            assert got.iterations_executed == want.iterations_executed
            np.testing.assert_array_equal(got.x, want.x)

        # Warm both paths, then best-of-TRIALS wall clock.
        _seed_repeat(a, b, cfg, alpha, 2)
        repeat_run(a, b, cfg, alpha=alpha, reps=2, base_seed=0, eps=1e-6)
        t_seed = t_ws = float("inf")
        for _ in range(TRIALS):
            t0 = time.perf_counter()
            _seed_repeat(a, b, cfg, alpha, reps)
            t_seed = min(t_seed, time.perf_counter() - t0)
            t0 = time.perf_counter()
            repeat_run(a, b, cfg, alpha=alpha, reps=reps, base_seed=0, eps=1e-6)
            t_ws = min(t_ws, time.perf_counter() - t0)
        points.append(
            {
                "scheme": scheme.value,
                "alpha": alpha,
                "gated": gated,
                "t_seed_s": round(t_seed, 4),
                "t_workspace_s": round(t_ws, 4),
                "speedup_x": round(t_seed / t_ws, 3),
                "reps_per_second_workspace": round(reps / t_ws, 1),
            }
        )

    gated_points = [p for p in points if p["gated"]]
    agg = sum(p["t_seed_s"] for p in gated_points) / sum(
        p["t_workspace_s"] for p in gated_points
    )
    return {
        "experiment": "hotpath_repeat_run",
        "matrix_uid": 2213,
        "scale": scale,
        "n": a.nrows,
        "nnz": a.nnz,
        "reps_per_point": reps,
        "trials": TRIALS,
        "points": points,
        "aggregate_speedup_x": round(agg, 3),
        "min_required_speedup_x": MIN_SPEEDUP,
    }


def test_bench_hotpath_repeat_run(results_dir):
    record = run_hotpath_bench(bench_scale(), hotpath_reps())
    (results_dir / "BENCH_hotpath.json").write_text(json.dumps(record, indent=2))
    print("\n" + json.dumps(record, indent=2))

    agg = record["aggregate_speedup_x"]
    required = min_speedup()
    assert agg >= required, (
        f"workspace hot path is only {agg:.2f}x the seed stack "
        f"(required {required}x over the paper-range points)"
    )
