"""E7 — preconditioned CG with ABFT protection (Section-6 extension).

The paper expects the combined approach to extend to preconditioned CG,
with diagonal / approximate-inverse / triangular preconditioners
applied as protected SpMxVs.  Measured: Jacobi-PCG with the matvec
routed through the ABFT-protected product converges identically to the
unprotected variant and survives injected single errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.abft import compute_checksums, protected_spmv, SpmvStatus
from repro.core import jacobi_preconditioner, pcg
from repro.sim.engine import make_rhs
from repro.sim.matrices import suite_specs


@pytest.fixture(scope="module")
def problem():
    spec = suite_specs([1288])[0]
    a = spec.instantiate(bench_scale())
    return a, make_rhs(a)


def test_bench_plain_pcg(benchmark, problem):
    a, b = problem
    m = jacobi_preconditioner(a)
    res = benchmark(lambda: pcg(a, b, preconditioner=m, eps=1e-6))
    assert res.converged


def test_bench_protected_pcg(benchmark, problem):
    a, b = problem
    m = jacobi_preconditioner(a)
    cks = compute_checksums(a, nchecks=2)

    def matvec(v):
        return protected_spmv(a, v.copy(), cks).y

    res = benchmark(lambda: pcg(a, b, preconditioner=m, matvec=matvec, eps=1e-6))
    assert res.converged


def test_regenerate_pcg_comparison(results_dir, problem):
    a, b = problem
    m = jacobi_preconditioner(a)
    cks = compute_checksums(a, nchecks=2)

    plain = pcg(a, b, preconditioner=m, eps=1e-8)

    statuses = []

    def matvec(v):
        res = protected_spmv(a, v.copy(), cks)
        statuses.append(res.status)
        return res.y

    protected = pcg(a, b, preconditioner=m, matvec=matvec, eps=1e-8)
    assert protected.converged
    assert protected.iterations == plain.iterations
    np.testing.assert_allclose(protected.x, plain.x, rtol=1e-10)
    assert all(s is SpmvStatus.OK for s in statuses)

    # Now with an injected single error on one product: the protected
    # variant corrects in place and still converges to the same answer.
    corrupted_once = {"done": False}

    def faulty_matvec(v):
        def hook(stage, aa, xx, yy):
            if stage == "pre" and not corrupted_once["done"]:
                aa.val[7] += 5.0
                corrupted_once["done"] = True

        res = protected_spmv(a, v.copy(), cks, fault_hook=hook)
        assert res.trusted
        return res.y

    recovered = pcg(a, b, preconditioner=m, matvec=faulty_matvec, eps=1e-8)
    assert recovered.converged

    lines = [
        f"matrix #1288 scaled (n={a.nrows})",
        f"plain Jacobi-PCG iterations     : {plain.iterations}",
        f"protected Jacobi-PCG iterations : {protected.iterations}",
        f"protected-with-injection conv   : {recovered.converged} "
        f"({recovered.iterations} iterations)",
    ]
    text = "\n".join(lines) + "\n"
    (results_dir / "pcg.txt").write_text(text)
    print("\n" + text)
