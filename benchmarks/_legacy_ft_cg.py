"""Frozen pre-refactor FT-CG driver (PR-1 tree), kept verbatim for
``benchmarks/bench_resilience.py`` and ``benchmarks/bench_hotpath.py``:
the engine-based ``run_ft_cg`` is benchmarked against this monolith to
confirm the resilience-engine refactor added no overhead, and the
workspace hot path against the full seed stack to measure what it
bought.  Do not modernize this file — its value is being the exact code
the golden trajectories were captured from.  The SpMxV/ABFT kernels are
likewise the *frozen seed* versions (``benchmarks/_seed_kernels.py``):
the zero-copy-hot-path PR made the live kernels themselves faster, so
importing them here would silently flatter the baseline.
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.abft.checksums import compute_checksums
from benchmarks._seed_kernels import (
    seed_spmv as spmv,
    seed_protected_spmv as protected_spmv,
    SpmvStatus,
)
from repro.checkpoint.store import CheckpointStore
from repro.checkpoint.policy import PeriodicCheckpointPolicy
from repro.core.cg import cg_tolerance_threshold
from repro.core.ft_cg import FTCGResult, RecoveryCounters, TimeBreakdown
from repro.core.methods import SchemeConfig
from repro.core.stability import chen_verify
from repro.faults.bitflip import flip_bits_array
from repro.faults.injector import FaultInjector, FaultModel
from repro.faults.record import FaultRecord
from repro.util.log import EventLog
from repro.util.rng import as_generator

__all__ = ["run_ft_cg_legacy"]

#: Targets whose strikes land in the protected-SpMxV window.
_SPMV_PRE_TARGETS = frozenset({"val", "colid", "rowidx", "p"})


class _LiveState:
    """The corruptible solver state plus restore plumbing."""

    def __init__(self, a: CSRMatrix, b: np.ndarray, x0: np.ndarray | None) -> None:
        n = a.nrows
        self.a = a.copy()  # live matrix: the injector corrupts this copy
        self.b = b  # the right-hand side is considered reliable input data
        self.x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
        self.r = b - spmv(self.a, self.x)
        self.p = self.r.copy()
        self.q = np.zeros(n)
        self.rr = float(self.r @ self.r)
        self.iteration = 0

    @property
    def vectors(self) -> dict[str, np.ndarray]:
        return {"x": self.x, "r": self.r, "p": self.p, "q": self.q}

    @property
    def memory_words(self) -> int:
        return self.a.memory_words + 4 * self.x.size

    def snapshot_into(self, store: CheckpointStore) -> None:
        store.save(
            self.iteration,
            vectors={"x": self.x, "r": self.r, "p": self.p, "q": self.q},
            matrix=self.a,
            scalars={"rr": self.rr},
        )

    def restore_from(self, store: CheckpointStore) -> None:
        """Copy checkpoint data back **into** the live arrays.

        In-place restore is essential: the fault injector holds
        references to these arrays, so rebinding would silently
        decouple injection from the solver state.
        """
        cp = store.restore()
        self.x[:] = cp.vectors["x"]
        self.r[:] = cp.vectors["r"]
        self.p[:] = cp.vectors["p"]
        self.q[:] = cp.vectors["q"]
        assert cp.matrix is not None
        self.a.val[:] = cp.matrix.val
        self.a.colid[:] = cp.matrix.colid
        self.a.rowidx[:] = cp.matrix.rowidx
        self.rr = float(cp.scalars["rr"])
        self.iteration = cp.iteration


def run_ft_cg_legacy(
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    *,
    alpha: float = 0.0,
    x0: np.ndarray | None = None,
    eps: float = 1e-8,
    maxiter: int | None = None,
    rng: "int | np.random.Generator | None" = None,
    max_time_units: float | None = None,
    event_log: EventLog | None = None,
    final_check: bool = True,
) -> FTCGResult:
    """Run fault-tolerant CG under silent-error injection.

    Parameters
    ----------
    a:
        SPD matrix (never mutated; the solver works on a live copy).
    b:
        Right-hand side.
    config:
        Scheme, intervals and cost model.
    alpha:
        Fault-rate constant: strikes per iteration ~ Poisson(α)
        (``λ = α/M`` per word).  Zero disables injection.
    eps, maxiter, x0:
        As in :func:`repro.core.cg.cg`; ``maxiter`` caps *executed*
        iterations and defaults to ``20 n`` (faulty runs need headroom).
    rng:
        Seed or generator for the fault process.
    max_time_units:
        Optional bail-out on simulated time (pathological runs).
    event_log:
        Optional :class:`~repro.util.log.EventLog` receiving recovery
        events.
    final_check:
        Reliably re-verify the residual on apparent convergence and
        keep iterating if it is bogus (recommended; disable only to
        study undetected-error impact).

    Returns
    -------
    FTCGResult
    """
    wall_start = _time.perf_counter()
    rng = as_generator(rng)
    log = event_log if event_log is not None else EventLog()
    n = a.nrows
    maxiter = 20 * n if maxiter is None else int(maxiter)
    costs = config.costs
    scheme = config.scheme

    state = _LiveState(a, np.asarray(b, dtype=np.float64), x0)
    threshold = cg_tolerance_threshold(a, state.b, state.r, eps)

    # ABFT metadata comes from the clean input matrix and lives in
    # reliable memory for the whole solve.
    checksums = None
    if scheme.uses_abft:
        checksums = compute_checksums(a, nchecks=2 if scheme.corrects else 1)

    # Fault machinery: strikes are sampled centrally, then applied in
    # the operation window where each struck word is live.
    model = FaultModel(alpha=alpha, memory_words=state.memory_words) if alpha > 0 else None
    injector: FaultInjector | None = None
    if model is not None:
        injector = FaultInjector(model, rng)
        injector.register("val", state.a.val)
        injector.register("colid", state.a.colid)
        injector.register("rowidx", state.a.rowidx)
        for name, vec in state.vectors.items():
            injector.register(name, vec)

    store = CheckpointStore(keep=1)
    policy = PeriodicCheckpointPolicy(config.checkpoint_interval)
    counters = RecoveryCounters()

    # Initial checkpoint = the initial data (the paper: the first frame
    # recovers "by reading initial data again", at the same cost).
    state.snapshot_into(store)

    time_units = 0.0
    executed = 0
    iter_in_chunk = 0
    rollbacks_since_progress = 0
    breakdown = TimeBreakdown()
    uncommitted_work = 0.0  # iteration time not yet saved by a checkpoint
    # A rollback loop longer than this means the checkpoint itself is
    # tainted (e.g. a matrix corruption that slipped verification while
    # its column's input entry was ≈ 0): fall back to re-reading the
    # initial data, the paper's recovery of last resort.
    stuck_threshold = max(8, 2 * config.checkpoint_interval)

    def rollback(reason: str) -> None:
        nonlocal time_units, iter_in_chunk, rollbacks_since_progress, uncommitted_work
        rollbacks_since_progress += 1
        if rollbacks_since_progress > stuck_threshold:
            refresh_rollback()
            return
        counters.rollbacks += 1
        time_units += costs.t_rec
        breakdown.recovery += costs.t_rec
        breakdown.wasted_work += uncommitted_work
        uncommitted_work = 0.0
        state.restore_from(store)
        policy.rolled_back()
        iter_in_chunk = 0
        log.emit("rollback", state.iteration, reason=reason)

    def refresh_rollback() -> None:
        """Recovery from state the checkpoints cannot heal.

        A sub-tolerance matrix corruption (a low-mantissa flip below the
        Theorem-2 threshold) can slip into a checkpoint and then make
        the final residual check fail forever.  The paper's recovery
        baseline — re-reading initial data — applies: restore the
        solution vector from the checkpoint, the matrix from the
        original input (reliable storage), and *recompute* the residual
        reliably, restarting CG from the checkpointed iterate.  Costs
        one recovery plus one iteration (the residual SpMxV).
        """
        nonlocal time_units, iter_in_chunk, rollbacks_since_progress, uncommitted_work
        counters.rollbacks += 1
        rollbacks_since_progress = 0
        time_units += costs.t_rec + costs.t_iter
        breakdown.recovery += costs.t_rec + costs.t_iter
        breakdown.wasted_work += uncommitted_work
        uncommitted_work = 0.0
        cp = store.restore()
        state.x[:] = cp.vectors["x"]
        state.a.val[:] = a.val
        state.a.colid[:] = a.colid
        state.a.rowidx[:] = a.rowidx
        state.r[:] = state.b - spmv(a, state.x)
        state.p[:] = state.r
        state.q[:] = 0.0
        state.rr = float(state.r @ state.r)
        state.iteration = cp.iteration
        # Re-checkpoint the refreshed (known-good) state so future
        # rollbacks return here rather than to the tainted snapshot.
        state.snapshot_into(store)
        policy.rolled_back()
        iter_in_chunk = 0
        log.emit("refresh-rollback", state.iteration)

    def maybe_checkpoint() -> None:
        nonlocal time_units, rollbacks_since_progress, uncommitted_work
        if policy.chunk_verified():
            state.snapshot_into(store)
            counters.checkpoints += 1
            rollbacks_since_progress = 0
            time_units += costs.t_cp
            breakdown.checkpoint += costs.t_cp
            breakdown.useful_work += uncommitted_work
            uncommitted_work = 0.0
            log.emit("checkpoint", state.iteration)

    def reliably_converged() -> bool:
        """Trustworthy convergence decision (reliable arithmetic, clean A)."""
        true_r = state.b - spmv(a, state.x)
        return float(np.linalg.norm(true_r)) <= threshold

    converged = bool(np.sqrt(state.rr) <= threshold)
    while not converged and executed < maxiter:
        if max_time_units is not None and time_units > max_time_units:
            break
        strikes = injector.sample_strikes() if injector is not None else []
        counters.faults_injected += len(strikes)
        executed += 1

        if scheme.uses_abft:
            ok = _abft_iteration(state, config, checksums, injector, strikes, counters, log)
            time_units += costs.t_iter + config.verification_cost
            uncommitted_work += costs.t_iter
            breakdown.verification += config.verification_cost
            counters.verifications += 1
            if not ok:
                counters.detections += 1
                rollback("abft")
                converged = False
                continue
            state.iteration += 1
            converged = bool(np.sqrt(state.rr) <= threshold)
            if not converged:
                maybe_checkpoint()
        else:
            _online_iteration(state, injector, strikes)
            time_units += costs.t_iter
            uncommitted_work += costs.t_iter
            state.iteration += 1
            iter_in_chunk += 1
            rr_says_done = bool(np.isfinite(state.rr) and np.sqrt(state.rr) <= threshold)
            if iter_in_chunk >= config.verification_interval or rr_says_done:
                report = chen_verify(
                    state.a,
                    state.b,
                    state.x,
                    state.r,
                    state.p,
                    state.q,
                    check_orthogonality=not rr_says_done,
                )
                time_units += costs.t_verif_online
                breakdown.verification += costs.t_verif_online
                counters.verifications += 1
                iter_in_chunk = 0
                if not report.passed:
                    counters.detections += 1
                    rollback("chen")
                    continue
                converged = rr_says_done
                if not converged:
                    maybe_checkpoint()

        if converged and final_check and not reliably_converged():
            counters.final_check_failures += 1
            counters.detections += 1
            refresh_rollback()
            converged = False

    # Work executed since the last checkpoint but never rolled back
    # counts as useful (the run ends with it in the solution).
    breakdown.useful_work += uncommitted_work

    true_residual = float(np.linalg.norm(state.b - spmv(a, state.x)))
    return FTCGResult(
        x=state.x.copy(),
        converged=bool(true_residual <= threshold or (converged and not final_check)),
        iterations=state.iteration,
        iterations_executed=executed,
        time_units=time_units,
        wall_seconds=_time.perf_counter() - wall_start,
        residual_norm=true_residual,
        threshold=threshold,
        counters=counters,
        breakdown=breakdown,
        config=config,
    )


def _abft_iteration(
    state: _LiveState,
    config: SchemeConfig,
    checksums,
    injector: FaultInjector | None,
    strikes: list[tuple[str, int, int]],
    counters: RecoveryCounters,
    log: EventLog,
) -> bool:
    """One ABFT-protected iteration; returns False when a rollback is needed."""
    pre = [s for s in strikes if s[0] in _SPMV_PRE_TARGETS]
    post = [s for s in strikes if s[0] == "q"]
    vector_phase = [s for s in strikes if s[0] in ("r", "x")]

    def hook(stage: str, _a, _x, y) -> None:
        if injector is None:
            return
        if stage == "pre":
            for s in pre:
                injector.apply_strike(state.iteration, s)
        elif stage == "post" and y is not None:
            # q-window strikes corrupt the freshly computed product.
            for name, posn, bit in post:
                old = y[posn]
                flip_bits_array(y, np.array([posn]), np.array([bit]))
                injector.records.append(
                    FaultRecord(state.iteration, "q", posn, bit, float(old), float(y[posn]))
                )

    result = protected_spmv(
        state.a,
        state.p,
        checksums,
        correct=config.scheme.corrects,
        fault_hook=hook,
    )
    if result.status is SpmvStatus.CORRECTED and result.correction is not None:
        counters.record_correction(result.correction.kind)
        log.emit(
            "correction",
            state.iteration,
            what=result.correction.kind,
            detail=result.correction.detail,
        )
    if not result.trusted:
        return False

    state.q[:] = result.y

    # Vector-kernel phase under TMR.  A single strike per vector is
    # out-voted; a double strike in one vector defeats the vote.
    if vector_phase and injector is not None:
        by_target: dict[str, list[tuple[str, int, int]]] = {}
        for s in vector_phase:
            by_target.setdefault(s[0], []).append(s)
        for target, hits in by_target.items():
            if len(hits) >= 2:
                for s in hits:  # the corruption happened; TMR failed to mask it
                    injector.apply_strike(state.iteration, s)
                counters.tmr_detections += 1
                log.emit("tmr-detection", state.iteration, target=target, strikes=len(hits))
                return False
            rec = injector.apply_strike(state.iteration, hits[0])
            injector.revert(rec)
            counters.tmr_corrections += 1
            log.emit("tmr-correction", state.iteration, target=target)

    # Reliable CG update (TMR-voted kernels).
    pq = float(state.p @ state.q)
    if not np.isfinite(pq) or pq <= 0.0:
        # Curvature corrupted below detection thresholds; treat as a
        # detected error rather than dividing by garbage.
        log.emit("breakdown", state.iteration, pq=pq)
        return False
    alpha_step = state.rr / pq
    state.x += alpha_step * state.p
    state.r -= alpha_step * state.q
    rr_new = float(state.r @ state.r)
    beta = rr_new / state.rr
    state.p *= beta
    state.p += state.r
    state.rr = rr_new
    return True


def _online_iteration(
    state: _LiveState,
    injector: FaultInjector | None,
    strikes: list[tuple[str, int, int]],
) -> None:
    """One unprotected iteration: all strikes land directly in memory."""
    if injector is not None:
        for s in strikes:
            injector.apply_strike(state.iteration, s)
    with np.errstate(all="ignore"):
        state.q[:] = spmv(state.a, state.p)
        pq = float(state.p @ state.q)
        alpha_step = state.rr / pq if pq != 0.0 else np.nan
        state.x += alpha_step * state.p
        state.r -= alpha_step * state.q
        rr_new = float(state.r @ state.r)
        beta = rr_new / state.rr if state.rr != 0.0 else np.nan
        state.p *= beta
        state.p += state.r
        state.rr = rr_new
