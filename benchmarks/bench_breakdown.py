"""E8 (ablation) — where the time goes: waste breakdown vs fault rate.

Decomposes each scheme's simulated execution time into useful work,
rolled-back (wasted) work, verification, checkpoint and recovery — the
quantities the Section-4 model trades off.  The measured overhead ratio
is compared against the model's ``E(s,T)/(sT)`` prediction at the same
interval, closing the loop between simulator and model.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.core import CostModel, Scheme, SchemeConfig, run_ft_cg
from repro.model import model_for_scheme
from repro.sim.engine import make_rhs
from repro.sim.experiments import model_interval_for
from repro.sim.matrices import suite_specs


def test_regenerate_breakdown_table(results_dir):
    spec = suite_specs([924])[0]
    a = spec.instantiate(bench_scale())
    b = make_rhs(a)
    costs = CostModel.from_matrix(a)

    lines = [
        f"{'scheme':18} {'1/a':>6} {'useful':>8} {'wasted':>8} {'verif':>8} "
        f"{'ckpt':>7} {'rec':>7} {'ovh(sim)':>9} {'ovh(model)':>10}"
    ]
    for mtbf in (16, 100, 1000):
        alpha = 1.0 / mtbf
        for scheme in (Scheme.ABFT_DETECTION, Scheme.ABFT_CORRECTION):
            s, d = model_interval_for(scheme, alpha, costs)
            cfg = SchemeConfig(scheme, checkpoint_interval=s, costs=costs)
            res = run_ft_cg(a, b, cfg, alpha=alpha, rng=1, eps=1e-6)
            bd = res.breakdown
            model = model_for_scheme(scheme, alpha, costs)
            lines.append(
                f"{scheme.value:18} {mtbf:>6} {bd.useful_work:>8.1f} {bd.wasted_work:>8.1f} "
                f"{bd.verification:>8.1f} {bd.checkpoint:>7.1f} {bd.recovery:>7.1f} "
                f"{bd.overhead_ratio:>9.3f} {model.overhead(s):>10.3f}"
            )
            # The simulator's measured overhead must be in the model's
            # ballpark (single run → generous factor).
            assert bd.overhead_ratio == pytest.approx(model.overhead(s), rel=0.6)
    text = "\n".join(lines) + "\n"
    (results_dir / "breakdown.txt").write_text(text)
    print("\n" + text)


def test_waste_shrinks_with_mtbf():
    spec = suite_specs([924])[0]
    a = spec.instantiate(bench_scale())
    b = make_rhs(a)
    costs = CostModel.from_matrix(a)
    cfg = SchemeConfig(Scheme.ABFT_DETECTION, checkpoint_interval=8, costs=costs)
    wasted = []
    for mtbf in (8, 64, 10**4):
        res = run_ft_cg(a, b, cfg, alpha=1.0 / mtbf, rng=5, eps=1e-6)
        wasted.append(res.breakdown.wasted_work)
    assert wasted[0] > wasted[-1]
    assert wasted[-1] == 0.0 or wasted[-1] < wasted[0] * 0.2


def test_bench_ft_bicgstab_run(benchmark):
    """Wall-clock of a fault-tolerant BiCGstab solve (extension E9)."""
    from repro.core import run_ft_bicgstab

    spec = suite_specs([924])[0]
    a = spec.instantiate(bench_scale() * 2)
    b = make_rhs(a)
    cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=10)
    res = benchmark(lambda: run_ft_bicgstab(a, b, cfg, alpha=1 / 16, rng=0, eps=1e-6))
    assert res.converged
