"""E2 — regenerate the paper's Figure 1 (time vs normalized MTBF).

Nine panels (one per matrix), three series each: ONLINE-DETECTION
(dotted in the paper), ABFT-DETECTION (dashed), ABFT-CORRECTION
(solid), over normalized MTBF 1/α.

Shape criteria (who wins, where crossovers fall — Section 5.2):

1. every scheme's time is non-increasing (mod noise) in the MTBF;
2. at the high fault rate (1/α = 16), ABFT-CORRECTION beats
   ABFT-DETECTION on a majority of matrices (forward recovery avoids
   rollbacks);
3. at very low fault rates the ranking tightens and ABFT-CORRECTION
   loses its lead (its extra checksums stop paying — the paper's
   "slightly slower … for very small values of λ").
"""

from __future__ import annotations

import collections

import pytest

from benchmarks.conftest import bench_reps, bench_scale
from repro.sim import format_figure1, run_figure1
from repro.sim.results import to_csv

MTBFS = [16.0, 10**2, 10**2.5, 10**3, 10**4]


def test_regenerate_figure1(results_dir):
    """Regenerate all nine Figure-1 panels; write table + CSV."""
    pts = run_figure1(scale=bench_scale(), reps=bench_reps(), mtbf_values=MTBFS)
    text = format_figure1(pts)
    (results_dir / "figure1.txt").write_text(text)
    to_csv(pts, str(results_dir / "figure1.csv"))
    print("\n" + text)

    from repro.sim.results import ascii_panel

    panels = "\n".join(ascii_panel(pts, uid) for uid in sorted({p.uid for p in pts}))
    (results_dir / "figure1_panels.txt").write_text(panels)

    series = collections.defaultdict(dict)
    for p in pts:
        series[(p.uid, p.scheme)][p.normalized_mtbf] = p.mean_time

    # (1) Times broadly decrease as faults get rarer.
    for (uid, scheme), curve in series.items():
        assert curve[10**4] <= curve[16.0] * 1.15, (uid, scheme)

    # (2) High-rate regime: correction's forward recovery wins on a
    # majority of matrices against detection's rollbacks.
    corr_wins = sum(
        1
        for uid in {u for (u, _) in series}
        if series[(uid, "abft-correction")][16.0]
        <= series[(uid, "abft-detection")][16.0] * 1.02
    )
    assert corr_wins >= 5, corr_wins

    # (3) Low-rate regime: correction's advantage disappears (it pays
    # the heavier per-iteration checksums with nothing to correct).
    corr_leads_low = sum(
        1
        for uid in {u for (u, _) in series}
        if series[(uid, "abft-correction")][10**4]
        < series[(uid, "abft-detection")][10**4] * 0.98
    )
    assert corr_leads_low <= 4, corr_leads_low


@pytest.mark.parametrize("mtbf", [16.0, 1000.0])
def test_bench_figure1_point(benchmark, mtbf):
    """Wall-clock of one Figure-1 point (matrix #2213, all schemes)."""

    def point():
        return run_figure1(scale=bench_scale() * 2, reps=1, uids=[2213], mtbf_values=[mtbf])

    pts = benchmark(point)
    assert len(pts) == 3
