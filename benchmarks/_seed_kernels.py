"""Frozen *seed* hot-path kernels (pre-PR-4 tree), for benchmarking.

Concatenated verbatim from the seed versions of ``sparse/spmv.py``,
``abft/spmv.py`` and ``abft/correction.py`` (only the imports between
the three fragments are rewired so they call each other instead of the
live tree).  ``benchmarks/bench_hotpath.py`` runs the frozen legacy
FT-CG driver on these kernels to measure exactly what the zero-copy
hot path bought over the seed, with bit-identical trajectories as the
precondition.  Do not modernize this file — its value is being the
exact code (and hence the exact wall-clock profile) of the seed.
"""

# ruff: noqa

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.abft.checksums import SpmvChecksums, compute_checksums

__all__ = ["seed_spmv", "seed_protected_spmv", "SpmvStatus"]


# ======================================================================
# seed sparse/spmv.py
# ======================================================================
def seed_spmv(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorized CSR SpMxV.

    Parameters
    ----------
    a:
        The matrix.  May be structurally corrupted (out-of-range column
        indices are clipped into range to emulate a wild read, matching
        what the reference kernel would fault on — see Notes).
    x:
        Dense input vector of length ``a.ncols``.

    Notes
    -----
    When a bit flip corrupts ``colid`` or ``rowidx``, a C kernel would
    read out-of-bounds memory.  To keep the simulation memory-safe while
    still producing a *wrong* answer for ABFT to catch, indices are
    taken modulo the valid range.  A flag in the result is unnecessary:
    ABFT's checksums are the detection mechanism under study.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (a.ncols,):
        raise ValueError(f"x must have shape ({a.ncols},), got {x.shape}")
    n = a.nrows
    y = np.zeros(n, dtype=np.float64)
    if a.nnz == 0:
        return y

    colid = a.colid
    # Memory-safe emulation of wild reads caused by corrupted indices.
    if colid.size and (colid.min() < 0 or colid.max() >= a.ncols):
        colid = np.mod(colid, a.ncols)
    # Corrupted values can overflow to ±inf — that is the silent error
    # propagating, not a kernel bug; ABFT flags the non-finite result.
    with np.errstate(over="ignore", invalid="ignore"):
        products = a.val * x[colid]

    rowptr = a.rowidx
    starts = np.clip(rowptr[:-1], 0, a.nnz)
    ends = np.clip(rowptr[1:], 0, a.nnz)
    # reduceat needs monotone segments; a corrupted rowidx can violate
    # that, in which case we fall back to the (safe) reference loop.
    if np.all(starts[1:] >= starts[:-1]) and np.all(ends >= starts):
        nonempty = ends > starts
        if nonempty.any():
            seg = np.add.reduceat(products, starts[nonempty])
            # reduceat sums from each start to the next start; trim the
            # tail of each segment that spills past its row's end.
            ends_ne = ends[nonempty]
            starts_ne = starts[nonempty]
            next_starts = np.empty_like(starts_ne)
            next_starts[:-1] = starts_ne[1:]
            next_starts[-1] = a.nnz
            overshoot = next_starts - ends_ne
            if np.any(overshoot > 0):
                # rare (only for corrupted rowidx); correct per segment
                idx = np.nonzero(overshoot > 0)[0]
                for k in idx:
                    seg[k] = products[starts_ne[k] : ends_ne[k]].sum()
            y[nonempty] = seg
        return y
    return _spmv_loop(a.val, colid, rowptr, x, n, a.nnz)


def _spmv_loop(
    val: np.ndarray,
    colid: np.ndarray,
    rowidx: np.ndarray,
    x: np.ndarray,
    n: int,
    nnz: int,
) -> np.ndarray:
    """Row-loop kernel tolerant of corrupted row pointers."""
    y = np.zeros(n, dtype=np.float64)
    for i in range(n):
        lo = int(np.clip(rowidx[i], 0, nnz))
        hi = int(np.clip(rowidx[i + 1], 0, nnz))
        if hi > lo:
            y[i] = float(val[lo:hi] @ x[colid[lo:hi]])
    return y


def seed_spmv_reference(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Pure-Python row-loop SpMxV mirroring Algorithm 2's inner loop.

    Used as the oracle in tests and by the line-by-line protected
    kernel; orders of magnitude slower than :func:`spmv`, so only call
    it on small matrices.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (a.ncols,):
        raise ValueError(f"x must have shape ({a.ncols},), got {x.shape}")
    n = a.nrows
    nnz = a.nnz
    y = np.zeros(n, dtype=np.float64)
    for i in range(n):
        yi = 0.0
        lo = int(np.clip(a.rowidx[i], 0, nnz))
        hi = int(np.clip(a.rowidx[i + 1], 0, nnz))
        for j in range(lo, hi):
            ind = int(a.colid[j]) % a.ncols
            yi += a.val[j] * x[ind]
        y[i] = yi
    return y


# ======================================================================
# seed abft/spmv.py
# ======================================================================
class SpmvStatus(enum.Enum):
    """Outcome of a protected SpMxV."""

    OK = "ok"  #: all checksums passed; y is trusted
    CORRECTED = "corrected"  #: a single error was detected and repaired
    DETECTED = "detected"  #: an error was detected (detection-only mode)
    UNCORRECTABLE = "uncorrectable"  #: ≥ 2 errors; caller must roll back


@dataclass(frozen=True)
class SpmvResiduals:
    """The raw checksum residuals of one verification pass."""

    dr: np.ndarray  #: row-pointer residuals, one per checksum row (exact)
    dx: np.ndarray  #: output/matrix residuals, one per checksum row
    dxp: np.ndarray  #: input-vector residuals, one per checksum row
    thresholds: np.ndarray  #: Theorem-2 thresholds for dx/dxp rows

    @property
    def rowidx_flagged(self) -> bool:
        """True when the (exact) row-pointer test fails.

        Pointers are integers, so any true discrepancy is ≥ 1; a
        non-finite residual (overflowed corrupted pointer) also flags.
        """
        return bool(np.any(~np.isfinite(self.dr)) or np.any(np.abs(self.dr) >= 0.5))

    @property
    def dx_flagged(self) -> bool:
        """True when the matrix/computation test exceeds tolerance.

        NaN/inf residuals — a flipped exponent bit can push a value to
        ~1e300 and overflow the checksum algebra — always flag.
        """
        return bool(
            np.any(~np.isfinite(self.dx)) or np.any(np.abs(self.dx) > self.thresholds)
        )

    @property
    def dxp_flagged(self) -> bool:
        """True when the input-vector test exceeds tolerance (NaN/inf flags)."""
        return bool(
            np.any(~np.isfinite(self.dxp)) or np.any(np.abs(self.dxp) > self.thresholds)
        )

    @property
    def clean(self) -> bool:
        """True when every test passes."""
        return not (self.rowidx_flagged or self.dx_flagged or self.dxp_flagged)


@dataclass
class ProtectedSpmvResult:
    """Result of :func:`protected_spmv`.

    Attributes
    ----------
    y:
        The output vector.  Trustworthy iff ``status`` is ``OK`` or
        ``CORRECTED``.
    status:
        See :class:`SpmvStatus`.
    residuals:
        The residuals of the *first* verification pass (before any
        correction), for diagnostics.
    correction:
        The correction outcome when a repair was attempted, else None.
    """

    y: np.ndarray
    status: SpmvStatus
    residuals: SpmvResiduals
    correction: "object | None" = field(default=None)

    @property
    def trusted(self) -> bool:
        """Whether the caller may use ``y`` without recovery."""
        return self.status in (SpmvStatus.OK, SpmvStatus.CORRECTED)


def _verify(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    x_ref: np.ndarray,
    cks: SpmvChecksums,
) -> SpmvResiduals:
    """Evaluate all checksum residuals for the current state."""
    w = cks.weights
    c = cks.column_checksums
    # Corrupted data can hold ±1e300-scale values whose checksum algebra
    # overflows; the resulting inf/NaN residuals are flagged as errors,
    # so the overflow itself is expected, not exceptional.
    with np.errstate(over="ignore", invalid="ignore"):
        # Row-pointer test (exact integer arithmetic in float64).
        sr = w @ a.rowidx[1:].astype(np.float64)
        dr = cks.rowidx_checksums - sr
        # Matrix/computation test: Wᵀy − Cᵀx̃.
        dx = w @ y - c @ x
    # Input-vector test.
    with np.errstate(over="ignore", invalid="ignore"):
        if cks.nchecks == 1:
            # Theorem-1 shifted form: (c+k)ᵀx' − (Σy + kΣx̃).
            shifted = cks.shifted_first_row
            dxp = np.array([float(shifted @ x_ref - (y.sum() + cks.shift * x.sum()))])
        elif cks.is_square:
            # Algorithm-2 line-22 form: Wᵀ(x'−y) − (W−C)ᵀx̃.
            dxp = w @ (x_ref - y) - (w - c) @ x
        else:
            # Rectangular local block of a row-partitioned parallel SpMxV
            # (Section 1's MPI discussion): the line-22 form mixes row- and
            # column-length vectors, so the input test compares the
            # reliable copy against the live input with column weights —
            # algebraically what line 22 reduces to when only x is struck.
            dxp = cks.column_weights @ (x_ref - x)
    # Theorem 2 bounds the rounding of the products actually computed,
    # which involve the *live* x̃ (possibly corrupted, hence possibly
    # much larger than the snapshot); take the max of both magnitudes
    # so a large corruption of x cannot push benign rounding of the
    # matrix test over its threshold.
    with np.errstate(invalid="ignore"):
        x_inf = float(
            max(np.abs(x_ref).max(initial=0.0), np.abs(x).max(initial=0.0))
        )
    if not np.isfinite(x_inf):
        x_inf = float(np.abs(x_ref).max(initial=0.0))
    thresholds = cks.tolerance.thresholds(x_inf)
    return SpmvResiduals(dr=dr, dx=dx, dxp=dxp, thresholds=thresholds)


def seed_protected_spmv(
    a: CSRMatrix,
    x: np.ndarray,
    checksums: SpmvChecksums | None = None,
    *,
    correct: bool = True,
    fault_hook: Callable[[str, CSRMatrix, np.ndarray, np.ndarray | None], None] | None = None,
    ratio_tol: float = 1e-4,
) -> ProtectedSpmvResult:
    """Compute ``y = A x`` with ABFT protection.

    Parameters
    ----------
    a:
        The matrix.  Mutated in place if a matrix error is corrected.
    x:
        The input vector.  Mutated in place if an x-error is corrected.
    checksums:
        Precomputed metadata from :func:`compute_checksums`; when None
        it is computed on the fly (which assumes ``a`` is currently
        clean — amortize it across calls in real use).
    correct:
        True → double-detect / single-correct (requires 2 checksum
        rows); False → detection only.
    fault_hook:
        Test/simulation hook.  Called as ``hook("pre", a, x, None)``
        after the reliable snapshot of ``x`` is taken (inject memory
        errors here) and ``hook("post", a, x, y)`` after the raw
        product (inject computation errors into ``y`` here).
    ratio_tol:
        The ε of Section 3.2: maximum distance of a residual ratio from
        the nearest integer for single-error localization.

    Returns
    -------
    ProtectedSpmvResult
    """
    x = np.asarray(x, dtype=np.float64)
    if checksums is None:
        checksums = compute_checksums(a, nchecks=2 if correct else 1)
    if correct and checksums.nchecks < 2:
        raise ValueError("correction requires nchecks=2 checksums")
    if checksums.shape != a.shape:
        raise ValueError(
            f"checksums were computed for shape {checksums.shape}, matrix is {a.shape}"
        )

    # Reliable snapshot (Algorithm 2 line 3) and input checksum (line 10),
    # taken before any unreliable work.
    x_ref = x.copy()
    cx = checksums.x_checksums(x)

    if fault_hook is not None:
        fault_hook("pre", a, x, None)
    y = seed_spmv(a, x)
    if fault_hook is not None:
        fault_hook("post", a, x, y)

    residuals = _verify(a, x, y, x_ref, checksums)
    if residuals.clean:
        return ProtectedSpmvResult(y=y, status=SpmvStatus.OK, residuals=residuals)

    if not correct:
        return ProtectedSpmvResult(y=y, status=SpmvStatus.DETECTED, residuals=residuals)

    outcome = correct_errors(
        a, x, y, x_ref, cx, checksums, residuals, ratio_tol=ratio_tol
    )
    if outcome.corrected:
        # Re-verify after repair: the repaired state must be fully clean.
        post = _verify(a, x, y, x_ref, checksums)
        if post.clean:
            return ProtectedSpmvResult(
                y=y, status=SpmvStatus.CORRECTED, residuals=residuals, correction=outcome
            )
    return ProtectedSpmvResult(
        y=y, status=SpmvStatus.UNCORRECTABLE, residuals=residuals, correction=outcome
    )


def detect_errors(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    x_ref: np.ndarray,
    checksums: SpmvChecksums,
) -> SpmvResiduals:
    """Stand-alone verification of an already-computed product.

    Exposed for tests and for callers that interleave fault injection
    with their own kernels; :func:`protected_spmv` is the normal entry
    point.
    """
    return _verify(a, np.asarray(x, dtype=np.float64), y, x_ref, checksums)


# ======================================================================
# seed abft/correction.py
# ======================================================================
@dataclass(frozen=True)
class CorrectionOutcome:
    """What the decoder did.

    Attributes
    ----------
    corrected:
        True when a single error was located and repaired.
    kind:
        One of ``"rowidx"``, ``"val"``, ``"colid"``, ``"computation"``,
        ``"x"`` or ``"none"`` (no repair possible).
    position:
        The repaired location: row-pointer index, output row, or vector
        entry, depending on ``kind``; −1 when not applicable.
    detail:
        Human-readable description for the event log.
    """

    corrected: bool
    kind: str
    position: int = -1
    detail: str = ""


def _near_integer(ratio: float, ratio_tol: float) -> int | None:
    """Round ``ratio`` to the nearest integer if within ``ratio_tol`` of it.

    Non-finite ratios (overflowed residuals from extreme bit flips)
    are never localizable.
    """
    if not np.isfinite(ratio):
        return None
    nearest = round(ratio)
    if abs(ratio - nearest) <= ratio_tol * max(1.0, abs(ratio)):
        return int(nearest)
    return None


def _recompute_row(a: CSRMatrix, x: np.ndarray, y: np.ndarray, i: int) -> None:
    """Recompute ``y[i]`` from the current matrix and input (clipped bounds)."""
    nnz = a.nnz
    lo = int(np.clip(a.rowidx[i], 0, nnz))
    hi = int(np.clip(a.rowidx[i + 1], 0, nnz))
    if hi > lo:
        cols = np.mod(a.colid[lo:hi], a.ncols)
        y[i] = float(a.val[lo:hi] @ x[cols])
    else:
        y[i] = 0.0


def _column_entries(a: CSRMatrix, j: int) -> tuple[np.ndarray, np.ndarray]:
    """Rows and values of column ``j`` (O(nnz) scan; correction-path only)."""
    mask = a.colid == j
    positions = np.nonzero(mask)[0]
    rows = np.searchsorted(a.rowidx, positions, side="right") - 1
    return rows, a.val[positions]


def _current_column_checksums(a: CSRMatrix, cks: SpmvChecksums) -> np.ndarray:
    """``C' = WᵀÃ`` of the current (possibly corrupted) matrix."""
    n_rows, n_cols = a.shape
    out = np.zeros((cks.nchecks, n_cols), dtype=np.float64)
    row_of_nnz = np.repeat(np.arange(n_rows), np.diff(np.clip(a.rowidx, 0, a.nnz)))
    # A corrupted rowidx can make the repeat counts disagree with nnz;
    # in that case the rowidx branch should have handled it first, but
    # guard anyway so the decoder never crashes mid-recovery.
    m = min(row_of_nnz.size, a.nnz)
    cols = np.mod(a.colid[:m], n_cols)
    with np.errstate(over="ignore", invalid="ignore"):
        for l in range(cks.nchecks):
            np.add.at(out[l], cols, a.val[:m] * cks.weights[l, row_of_nnz[:m]])
    return out


def correct_errors(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    x_ref: np.ndarray,
    cx: np.ndarray,
    cks: SpmvChecksums,
    residuals,
    *,
    ratio_tol: float = 1e-4,
) -> CorrectionOutcome:
    """Attempt single-error repair; mutates ``a``, ``x`` and ``y`` in place.

    Parameters mirror the state of :func:`repro.abft.spmv.protected_spmv`
    at verification time; ``residuals`` is the failed
    :class:`~repro.abft.spmv.SpmvResiduals`.
    """
    n = a.nrows

    # ------------------------------------------------------------------
    # Case 1: row-pointer corruption.
    # ------------------------------------------------------------------
    if residuals.rowidx_flagged:
        # Recompute the residuals in exact integer arithmetic: a flipped
        # pointer can be ~2⁶², where the float64 sums used for the fast
        # detection pass round away the low bits the repair delta needs.
        ridx_int = [int(v) for v in a.rowidx[1:]]
        dr0 = cks.rowidx_checksums_exact[0] - sum(ridx_int)
        dr1 = cks.rowidx_checksums_exact[1] - sum(
            (i + 1) * v for i, v in enumerate(ridx_int)
        )
        if dr0 == 0:
            # Second checksum trips but the first cancels: two pointer
            # errors of opposite sign — beyond single-error correction.
            return CorrectionOutcome(False, "none", detail="rowidx residuals inconsistent")
        if dr1 % dr0 != 0:
            return CorrectionOutcome(False, "none", detail="rowidx ratio not localizable")
        d = dr1 // dr0
        if not (1 <= d <= n):
            return CorrectionOutcome(False, "none", detail="rowidx position out of range")
        # dr = clean − faulty, so adding dr₀ restores the clean pointer.
        # The sum is carried in Python integers: a sign-bit flip makes
        # |faulty| ≈ 2⁶³ and the *delta* overflows int64 even though the
        # restored value is small.
        delta = dr0
        restored = int(a.rowidx[d]) + delta
        if not (0 <= restored <= a.nnz):
            return CorrectionOutcome(
                False, "none", detail=f"rowidx repair out of range: {restored}"
            )
        a.rowidx[d] = restored
        # Pointer rowidx[d] delimits (0-based) rows d−1 and d.
        _recompute_row(a, x, y, d - 1)
        if d < n:
            _recompute_row(a, x, y, d)
        return CorrectionOutcome(
            True, "rowidx", position=d, detail=f"rowidx[{d}] += {delta}"
        )

    # ------------------------------------------------------------------
    # Case 2: matrix-array or computation error (dx over tolerance).
    # ------------------------------------------------------------------
    if residuals.dx_flagged:
        dx = residuals.dx
        if np.all(np.isfinite(dx)):
            if abs(dx[0]) <= residuals.thresholds[0]:
                return CorrectionOutcome(False, "none", detail="dx residuals inconsistent")
            d1 = _near_integer(float(dx[1] / dx[0]), ratio_tol)
            if d1 is None or not (1 <= d1 <= n):
                return CorrectionOutcome(False, "none", detail="dx ratio not localizable")
            d = d1 - 1  # 0-based output row
        else:
            # The residual algebra overflowed (a flipped exponent can
            # push a value to ~1e300, and the ramp-weighted sums top
            # out float64).  The ratio is unusable, but the faulty row
            # announces itself: locate the unique non-finite or
            # astronomically large entry of y and fall through to the
            # column-checksum decode.
            with np.errstate(invalid="ignore"):
                suspicious = np.nonzero(~np.isfinite(y) | (np.abs(y) > 1e150))[0]
            if suspicious.size != 1:
                return CorrectionOutcome(
                    False, "none", detail="dx residuals non-finite, row ambiguous"
                )
            d = int(suspicious[0])

        cur = _current_column_checksums(a, cks)
        with np.errstate(invalid="ignore"):
            diff = cks.column_checksums - cur
        col_tol = cks.tolerance.per_check_factor[:, None]
        flagged = np.nonzero(
            np.any(~np.isfinite(diff) | (np.abs(diff) > col_tol), axis=0)
        )[0]
        z = flagged.size

        if z == 0:
            # Matrix intact: the computation of y_d was hit; recompute it.
            _recompute_row(a, x, y, d)
            return CorrectionOutcome(True, "computation", position=d, detail=f"recomputed y[{d}]")

        if z == 1:
            f = int(flagged[0])
            lo, hi = int(a.rowidx[d]), int(a.rowidx[d + 1])
            hits = lo + np.nonzero(a.colid[lo:hi] == f)[0]
            if hits.size != 1:
                return CorrectionOutcome(
                    False, "none", detail=f"val decode ambiguous in row {d}, col {f}"
                )
            p = int(hits[0])
            if np.isfinite(diff[0, f]):
                # diff[0, f] = (clean − current) column sum = −δ·w₁[d] = −δ.
                a.val[p] += float(diff[0, f])
            else:
                # The corrupted value overflowed the checksum delta;
                # rebuild val[p] directly from the clean (unit-weight)
                # column checksum minus the other entries of column f.
                others = np.nonzero(np.mod(a.colid, a.ncols) == f)[0]
                others = others[others != p]
                a.val[p] = float(cks.column_checksums[0, f] - a.val[others].sum())
            _recompute_row(a, x, y, d)
            return CorrectionOutcome(
                True, "val", position=p, detail=f"val[{p}] repaired via column {f} checksum"
            )

        if z == 2:
            f1, f2 = int(flagged[0]), int(flagged[1])
            lo, hi = int(a.rowidx[d]), int(a.rowidx[d + 1])
            # Match on *effective* columns (index mod n): a bit flip can
            # push a column id far out of range, but the kernel — and
            # hence the checksum drift — sees it modulo n.
            eff = np.mod(a.colid[lo:hi], a.ncols)
            candidates = lo + np.nonzero(np.isin(eff, (f1, f2)))[0]
            # Trial-flip each candidate; keep the first flip that makes
            # the column checksums consistent again.
            for p in candidates:
                p = int(p)
                original = int(a.colid[p])
                a.colid[p] = f2 if original % a.ncols == f1 else f1
                trial = _current_column_checksums(a, cks)
                if np.all(
                    np.abs(cks.column_checksums[:, (f1, f2)] - trial[:, (f1, f2)])
                    <= col_tol
                ):
                    _recompute_row(a, x, y, d)
                    return CorrectionOutcome(
                        True,
                        "colid",
                        position=p,
                        detail=f"colid[{p}]: {original} -> {int(a.colid[p])}",
                    )
                a.colid[p] = original
            return CorrectionOutcome(False, "none", detail="colid decode failed")

        return CorrectionOutcome(
            False, "none", detail=f"{z} checksum columns differ (>2): multiple errors"
        )

    # ------------------------------------------------------------------
    # Case 3: input-vector error (only dxp over tolerance).
    # ------------------------------------------------------------------
    if residuals.dxp_flagged:
        dxp = residuals.dxp
        if cks.nchecks < 2 or abs(dxp[0]) <= residuals.thresholds[0]:
            return CorrectionOutcome(False, "none", detail="dxp residuals inconsistent")
        d1 = _near_integer(float(dxp[1] / dxp[0]), ratio_tol)
        if d1 is None or not (1 <= d1 <= a.ncols):
            return CorrectionOutcome(False, "none", detail="dxp ratio not localizable")
        d = d1 - 1  # 0-based entry of x
        # τ = Σx̃ − cx₁ (Section 3.2) identifies the perturbation; the
        # restoration itself copies the reliable snapshot entry, which
        # is exact where subtracting the float τ would leave O(u·Σ|x̃|)
        # rounding behind for large corruptions.
        tau = float(x.sum() - cx[0])
        x[d] = x_ref[d]
        # The paper updates y by subtracting A·(τ eₐ); subtracting a
        # large τ back out leaves O(u·τ) cancellation residue that the
        # re-verification would flag, so the affected rows (column d's
        # support) are recomputed from the repaired x instead — same
        # O(column) cost, exact result.
        rows, _ = _column_entries(a, d)
        for i in np.unique(rows):
            _recompute_row(a, x, y, int(i))
        return CorrectionOutcome(True, "x", position=d, detail=f"x[{d}] -= {tau:.6e}")

    return CorrectionOutcome(False, "none", detail="no residual flagged")

