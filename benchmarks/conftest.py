"""Shared configuration for the benchmark harness.

Scale knobs (environment variables):

``REPRO_BENCH_SCALE``
    Matrix-size divisor for experiment regeneration (default 32;
    1 = the paper's full sizes — slow).
``REPRO_BENCH_REPS``
    Repetitions per experimental point (default 3; paper used 50).

Every ``test_regenerate_*`` writes its paper-style table to
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> int:
    """Matrix-size divisor for the regeneration benches."""
    return int(os.environ.get("REPRO_BENCH_SCALE", "32"))


def bench_reps() -> int:
    """Repetitions per experimental point."""
    return int(os.environ.get("REPRO_BENCH_REPS", "3"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting regenerated tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
