"""Hardened-path overhead: self-healing off must be free, armed cheap.

The ``repro.chaos`` contract mirrors ``repro.obs``: with every
hardening knob at its off value, ``resolve_retry`` / ``resolve_chaos``
collapse to ``None`` and the campaign executor takes the exact legacy
code path — a default campaign may pay the two resolution calls and
nothing per task.  This bench times ``run_campaign(jobs=1)`` over a
small Table-1 sweep three ways:

- ``off``     — no hardening arguments (the legacy path);
- ``guarded`` — ``retries=1`` plus a generous ``task_timeout`` that
  never fires: every task runs through :func:`repro.chaos.run_guarded`
  with a real ``SIGALRM`` deadline armed and disarmed around it.  The
  gate polices this variant: the guarded path on a *healthy* campaign
  must stay within :data:`MAX_OVERHEAD_PCT` of ``off``;
- a second ``off`` — flanking control samples timing byte-identical
  calls, so their spread is pure machine noise and the gate
  self-calibrates exactly like ``bench_obs.py``.

Unlike ``bench_obs.py`` the gate compares *per-trial paired ratios*
and takes their median: campaign trials are seconds long, so slow
drift — thermal, cgroup quota refill, a 1-CPU container's background
load — between trials would otherwise masquerade as overhead that
per-variant minima can't cancel.  Each trial times the symmetric
sequence ``off, guarded, guarded, off``; with the guarded samples
centered between the off samples, linear drift over the trial cancels
exactly in the ratio ``(g₁+g₂)/(off₁+off₂)``.

``benchmarks/run_benchmarks.py`` wraps this bench and applies the same
gate to the committed record ``benchmarks/BENCH_chaos.json``.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import bench_scale
from repro.campaign import CampaignSpec, run_campaign

#: Maximum tolerated guarded-path overhead on a healthy campaign, in
#: percent (the ISSUE acceptance bar).  ``REPRO_BENCH_MAX_CHAOS_OVERHEAD``
#: overrides it for noisy shared runners.
MAX_OVERHEAD_PCT = 2.0

#: Alternating off/guarded/off trial triples; minimum per variant kept.
TRIALS = 5

#: A deadline far above any bench task's runtime: the SIGALRM timer is
#: armed and disarmed per attempt but must never fire.
IDLE_TIMEOUT_S = 600.0


def max_overhead_pct() -> float:
    return float(
        os.environ.get("REPRO_BENCH_MAX_CHAOS_OVERHEAD", str(MAX_OVERHEAD_PCT))
    )


def chaos_reps() -> int:
    """Per-task solve repetitions (small tasks, many solves).

    Sized so the timed campaign lands around ~0.5 s — long enough not
    to phase-lock with cgroup throttle periods (see ``bench_obs.py``).
    """
    return int(os.environ.get("REPRO_BENCH_CHAOS_REPS", "12"))


def run_chaos_bench(scale: int, reps: int) -> dict:
    tasks = CampaignSpec(
        kind="table1", scale=scale, reps=reps, uids=(2213,), s_span=1
    ).expand()

    def timed(**kw) -> float:
        t0 = time.perf_counter()
        run_campaign(tasks, jobs=1, **kw)
        return time.perf_counter() - t0

    guard = {"retries": 1, "task_timeout": IDLE_TIMEOUT_S}
    # Warm every path (matrix cache, checksum cache, workspaces).
    timed()
    timed(**guard)
    ratios = []
    spreads = []
    t_off_a = t_off_b = t_guard = float("inf")
    for _ in range(TRIALS):
        off_a = timed()
        guard_a = timed(**guard)
        guard_b = timed(**guard)
        off_b = timed()
        # Symmetric placement: linear drift across the four back-to-back
        # samples cancels exactly in this ratio.
        ratios.append((guard_a + guard_b) / (off_a + off_b))
        spreads.append(abs(off_b / off_a - 1.0))
        t_off_a = min(t_off_a, off_a)
        t_guard = min(t_guard, guard_a, guard_b)
        t_off_b = min(t_off_b, off_b)
    t_off = min(t_off_a, t_off_b)
    ratios.sort()
    spreads.sort()
    median_ratio = ratios[len(ratios) // 2]
    median_spread = spreads[len(spreads) // 2]
    return {
        "experiment": "chaos_hardening_overhead",
        "matrix_uid": 2213,
        "scale": scale,
        "tasks": len(tasks),
        "reps_per_point": reps,
        "trials": TRIALS,
        "guard": {"retries": 1, "task_timeout_s": IDLE_TIMEOUT_S},
        "t_off_s": round(t_off, 4),
        "t_off_a_s": round(t_off_a, 4),
        "t_off_b_s": round(t_off_b, 4),
        "t_guarded_s": round(t_guard, 4),
        "min_guarded_overhead_pct": round(100.0 * (t_guard / t_off - 1.0), 2),
        "aggregate_guarded_overhead_pct": round(
            100.0 * (median_ratio - 1.0), 2
        ),
        "aggregate_control_spread_pct": round(100.0 * median_spread, 2),
        "max_allowed_overhead_pct": MAX_OVERHEAD_PCT,
    }


def test_bench_chaos_hardening_overhead(results_dir):
    record = run_chaos_bench(bench_scale(), chaos_reps())
    (results_dir / "BENCH_chaos.json").write_text(json.dumps(record, indent=2))
    print("\n" + json.dumps(record, indent=2))

    overhead = record["aggregate_guarded_overhead_pct"]
    control = record["aggregate_control_spread_pct"]
    allowed = max_overhead_pct() + control
    assert overhead <= allowed, (
        f"the guarded execution path costs {overhead:.2f}% over the legacy "
        f"path on a healthy campaign (allowed {max_overhead_pct()}% + "
        f"{control:.2f}% measured machine noise) — run_guarded must stay a "
        "thin wrapper and the off-path must not route through it at all"
    )
