"""E4 — ABFT overhead per SpMxV vs Chen's verification cost.

Section 3.2/5.2 claims: the ABFT checksum overhead per product is
O(k·n) — small next to the O(nnz) product — and "ABFT overhead is
usually smaller than Chen's verification cost" (whose dominant part is
a full extra SpMxV).  Measured directly on the kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.abft import compute_checksums, protected_spmv
from repro.core.stability import chen_verify
from repro.sim.engine import make_rhs
from repro.sim.matrices import suite_specs
from repro.sparse import spmv


@pytest.fixture(scope="module")
def setup():
    spec = suite_specs([341])[0]  # the densest suite matrix (~50/row)
    a = spec.instantiate(max(4, bench_scale() // 4))
    x = make_rhs(a)
    return a, x


def test_bench_plain_spmv(benchmark, setup):
    a, x = setup
    y = benchmark(lambda: spmv(a, x))
    assert y.shape == (a.nrows,)


def test_bench_abft_detect_spmv(benchmark, setup):
    a, x = setup
    cks = compute_checksums(a, nchecks=1)
    res = benchmark(lambda: protected_spmv(a, x, cks, correct=False))
    assert res.trusted


def test_bench_abft_correct_spmv(benchmark, setup):
    a, x = setup
    cks = compute_checksums(a, nchecks=2)
    res = benchmark(lambda: protected_spmv(a, x, cks, correct=True))
    assert res.trusted


def test_bench_chen_verification(benchmark, setup):
    a, x = setup
    b = a.matvec(x)
    r = b - a.matvec(x)
    report = benchmark(lambda: chen_verify(a, b, x, r, x, b))
    assert report.residual_gap < 1e-8


def test_bench_checksum_setup(benchmark, setup):
    """The O(k·nnz) one-off setup the amortization argument rests on."""
    a, _ = setup
    cks = benchmark(lambda: compute_checksums(a, nchecks=2))
    assert cks.nchecks == 2


def test_overhead_hierarchy(results_dir, setup):
    """Measured hierarchy: detect < correct < Chen (extra SpMxV)."""
    import timeit

    a, x = setup
    cks1 = compute_checksums(a, nchecks=1)
    cks2 = compute_checksums(a, nchecks=2)
    b = a.matvec(x)
    r = b - a.matvec(x)

    def t(f, number=30):
        return min(timeit.repeat(f, number=number, repeat=3)) / number

    plain = t(lambda: spmv(a, x))
    detect = t(lambda: protected_spmv(a, x, cks1, correct=False)) - plain
    correct = t(lambda: protected_spmv(a, x, cks2, correct=True)) - plain
    chen = t(lambda: chen_verify(a, b, x, r, x, b))

    lines = [
        f"matrix #341 scaled (n={a.nrows}, nnz/row={a.nnz / a.nrows:.1f})",
        f"plain SpMxV            : {plain * 1e6:9.1f} us",
        f"ABFT detect overhead   : {detect * 1e6:9.1f} us ({detect / plain:5.2f}x SpMxV)",
        f"ABFT correct overhead  : {correct * 1e6:9.1f} us ({correct / plain:5.2f}x SpMxV)",
        f"Chen verification      : {chen * 1e6:9.1f} us ({chen / plain:5.2f}x SpMxV)",
    ]
    text = "\n".join(lines) + "\n"
    (results_dir / "overhead.txt").write_text(text)
    print("\n" + text)

    # The paper's claim: checksum overhead below one extra SpMxV.
    assert detect < chen
    assert correct < chen * 1.5  # correction may approach but not dwarf it
