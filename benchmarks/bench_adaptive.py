"""Adaptive sampling acceptance: same answer, measurably fewer reps.

This bench runs the same paper-range Figure-1 grid twice — once with a
fixed repetition count (the policy's cap) and once under adaptive
sequential stopping — and records the trade the feature claims:

- ``agree_within_ci`` — every adaptive cell's mean lies within the
  combined CI half-widths of the two estimates.  Prefix sharing makes
  this a *deterministic* property, not a statistical one: per-rep
  fault streams are seeded from the task identity and rep index, so
  the adaptive run's k repetitions are literally the first k of the
  fixed run's.  Simulated execution times (Titer units) carry no
  wall-clock noise, so the recorded verdict is reproducible bit for
  bit on any machine.
- ``adaptive_total_reps`` vs ``fixed_total_reps`` and the resulting
  ``saved_pct`` — the budget the stopping rule did not spend.

``benchmarks/run_benchmarks.py`` wraps this bench and gates the
committed record ``benchmarks/BENCH_adaptive.json``: agreement must
hold and the adaptive run must execute strictly fewer repetitions.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import bench_scale
from repro.adaptive import SamplingPolicy
from repro.api.study import Study

#: The stopping policy under test.  The floor of 10 keeps a run of
#: identical early timings from stopping a cell with a degenerate
#: ±0.0 interval before its variance shows up.
POLICY = "ci=0.25,conf=0.9,min=10,max=30"

#: Paper-range normalized MTBF values (Figure 1 sweeps 10..1e6).
MTBF_VALUES = (16.0, 100.0, 500.0)


def adaptive_policy() -> str:
    return os.environ.get("REPRO_BENCH_ADAPTIVE_POLICY", POLICY)


def run_adaptive_bench(scale: int) -> dict:
    policy = SamplingPolicy.parse(adaptive_policy())
    cap = policy.max_reps

    def study() -> Study:
        return Study.figure1(
            scale=scale, reps=cap, uids=[2213], mtbf_values=list(MTBF_VALUES)
        )

    fixed = study().run(jobs=1)
    adaptive = study().adaptive(policy.spec()).run(jobs=1)

    cells = []
    agree = True
    for fp, ap in zip(fixed.figure1_points(), adaptive.figure1_points()):
        hw_a = (ap.ci_high - ap.ci_low) / 2
        hw_f = (fp.ci_high - fp.ci_low) / 2
        # Zero-variance cells have a degenerate ±0 interval, while the
        # two means still differ by summation-order noise (~1 ulp per
        # rep); the 1e-12 relative floor absorbs exactly that and
        # nothing a real disagreement could hide under.
        tol = hw_a + hw_f + 1e-12 * abs(fp.mean_time)
        cell_ok = abs(ap.mean_time - fp.mean_time) <= tol
        agree = agree and cell_ok
        cells.append({
            "scheme": ap.scheme,
            "normalized_mtbf": ap.normalized_mtbf,
            "fixed_mean": round(fp.mean_time, 4),
            "adaptive_mean": round(ap.mean_time, 4),
            "adaptive_half_width": round(hw_a, 4),
            "reps_used": ap.reps_used,
            "agree": cell_ok,
        })

    saved = adaptive.reps_saved
    return {
        "experiment": "adaptive_sampling_savings",
        "matrix_uid": 2213,
        "scale": scale,
        "mtbf_values": list(MTBF_VALUES),
        "policy": policy.spec(),
        "rep_cap": cap,
        "fixed_total_reps": fixed.total_reps,
        "adaptive_total_reps": adaptive.total_reps,
        "reps_saved": saved,
        "saved_pct": round(100.0 * saved / fixed.total_reps, 1),
        "agree_within_ci": agree,
        "cells": cells,
    }


def test_bench_adaptive_savings(results_dir):
    record = run_adaptive_bench(bench_scale())
    (results_dir / "BENCH_adaptive.json").write_text(
        json.dumps(record, indent=2)
    )
    print("\n" + json.dumps(record, indent=2))

    assert record["agree_within_ci"], (
        "an adaptive cell's mean left the combined CI of the fixed-count "
        "estimate — the stopping rule terminated on a prefix that does not "
        "represent the cell (check the policy's min_reps floor)"
    )
    assert record["adaptive_total_reps"] < record["fixed_total_reps"], (
        "adaptive sampling executed no fewer repetitions than the fixed-count "
        "run — the stopping rule never fired before the cap"
    )
