"""E8 — resilience engine: overhead vs the pre-refactor FT-CG driver.

The resilience-engine refactor replaced the monolithic ``run_ft_cg``
with a plugin on :mod:`repro.resilience.engine`.  This bench runs the
engine-based driver and the frozen pre-refactor monolith
(``benchmarks/_legacy_ft_cg.py``, kept verbatim) on the same
fault-injection workload, asserts the trajectories are bit-identical,
and records the wall-clock ratio so an abstraction tax would be
visible in ``benchmarks/results/``.

The workload is dominated by the same SpMxV/checksum kernels in both
drivers, so the ratio should sit near 1.0; the assertion only guards
against gross regressions (dispatch in the hot loop, accidental
copies).
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks._legacy_ft_cg import run_ft_cg_legacy
from benchmarks.conftest import bench_reps, bench_scale
from repro.core import Scheme, SchemeConfig, run_ft_cg
from repro.sim.engine import make_rhs
from repro.sim.matrices import get_matrix

#: (scheme, d, alpha) points spanning all three protection modes.
POINTS = [
    (Scheme.ONLINE_DETECTION, 4, 0.1),
    (Scheme.ABFT_DETECTION, 1, 0.1),
    (Scheme.ABFT_CORRECTION, 1, 0.2),
]


def _run_all(driver, a, b, reps):
    t0 = time.perf_counter()
    results = []
    for scheme, d, alpha in POINTS:
        cfg = SchemeConfig(scheme, checkpoint_interval=8, verification_interval=d)
        for seed in range(reps):
            with np.errstate(all="ignore"):
                results.append(
                    driver(a, b, cfg, alpha=alpha, rng=seed, eps=1e-6)
                )
    return results, time.perf_counter() - t0


def test_bench_engine_vs_legacy_driver(results_dir):
    a = get_matrix(2213, bench_scale())
    b = make_rhs(a)
    reps = max(2, bench_reps())

    # Warm both paths once (checksum/matrix caches, JIT-free but fair).
    _run_all(run_ft_cg, a, b, 1)
    _run_all(run_ft_cg_legacy, a, b, 1)

    engine_results, t_engine = _run_all(run_ft_cg, a, b, reps)
    legacy_results, t_legacy = _run_all(run_ft_cg_legacy, a, b, reps)

    # The refactor must not change the physics: every trajectory is
    # bit-identical to the monolith's.
    for got, want in zip(engine_results, legacy_results):
        assert got.time_units == want.time_units
        assert got.iterations_executed == want.iterations_executed
        np.testing.assert_array_equal(got.x, want.x)

    ratio = t_engine / t_legacy if t_legacy > 0 else float("inf")
    record = {
        "experiment": "resilience_engine_overhead",
        "matrix_uid": 2213,
        "scale": bench_scale(),
        "n": a.nrows,
        "runs_per_driver": reps * len(POINTS),
        "t_engine_s": round(t_engine, 3),
        "t_legacy_s": round(t_legacy, 3),
        "engine_over_legacy": round(ratio, 3),
    }
    (results_dir / "resilience_engine_overhead.json").write_text(
        json.dumps(record, indent=2)
    )
    print("\n" + json.dumps(record, indent=2))

    # Guard against gross abstraction tax only; wall-clock on shared CI
    # is too noisy for a tight bound.
    assert ratio < 1.5, f"engine-based FT-CG is {ratio:.2f}x the legacy driver"
