"""E7 — campaign engine: parallel-vs-serial wall-clock on a Table-1 grid.

Measures the end-to-end wall-clock of the same small Table-1 campaign
executed serially (``jobs=1``) and through the process pool
(``jobs=min(4, cores)``), asserts the two are bit-identical, and emits
a JSON record alongside the other regenerated artifacts in
``benchmarks/results/``.

On a single-core container the speedup hovers around 1.0× (the pool
adds only IPC overhead); the record exists so multi-core runs have a
number to quote and regressions in engine overhead are visible either
way.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import bench_reps, bench_scale
from repro.campaign import CampaignSpec, default_jobs, run_campaign


def _timed_run(tasks, jobs):
    t0 = time.perf_counter()
    records = run_campaign(tasks, jobs=jobs)
    return records, time.perf_counter() - t0


def test_bench_campaign_speedup(results_dir):
    spec = CampaignSpec(
        kind="table1",
        scale=bench_scale(),
        reps=bench_reps(),
        uids=(341, 1312, 2213),
        s_span=2,
    )
    tasks = spec.expand()
    jobs = min(4, default_jobs())

    serial, t_serial = _timed_run(tasks, 1)
    parallel, t_parallel = _timed_run(tasks, max(2, jobs))

    # Scheduling must never change results.
    assert parallel == serial

    record = {
        "experiment": "campaign_speedup",
        "tasks": len(tasks),
        "scale": bench_scale(),
        "reps": bench_reps(),
        "jobs": max(2, jobs),
        "available_cores": default_jobs(),
        "t_serial_s": round(t_serial, 3),
        "t_parallel_s": round(t_parallel, 3),
        "speedup": round(t_serial / t_parallel, 3) if t_parallel > 0 else None,
    }
    (results_dir / "campaign_speedup.json").write_text(json.dumps(record, indent=2))
    print("\n" + json.dumps(record, indent=2))

    # Sanity, not a perf gate: the pool must not be pathologically
    # slower than serial even on one core.
    assert t_parallel < 3.0 * t_serial + 5.0
