"""E10 (ablation) — checksum weight choice: ones+shift vs random.

Section 3.2 weighs two fixes for zero-sum checksum columns: keep
``w = (1,…,1)ᵀ`` and shift every checksum by ``k`` (the paper's
choice), or draw ``w`` at random (non-orthogonal to every column with
probability one).  The paper rejects random weights because they
"increase the number of required floating point operations, causing a
growth of both the execution time and the number of rounding errors".
This ablation measures both effects.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale
from repro.abft.weights import ones_weights, random_weights
from repro.sim.engine import make_rhs
from repro.sim.matrices import suite_specs
from repro.sparse.norms import column_sums


@pytest.fixture(scope="module")
def setup():
    spec = suite_specs([341])[0]
    a = spec.instantiate(max(4, bench_scale() // 4))
    return a, make_rhs(a)


def _checksum_residual(a, w, x):
    """|(wᵀA)x − wᵀ(Ax)| — pure rounding for a clean product."""
    c = column_sums(a, weights=None if w is None else w)
    y = a.matvec(x)
    if w is None:
        return abs(float(c @ x) - float(y.sum()))
    return abs(float(c @ x) - float(w @ y))


def test_rounding_error_growth(results_dir, setup):
    """Random weights accrue more rounding than the unit weights."""
    a, _ = setup
    rng = np.random.default_rng(0)
    ones = ones_weights(a.nrows)
    rand = random_weights(a.nrows, rng=1)
    ones_res, rand_res = [], []
    for _ in range(30):
        x = rng.normal(size=a.ncols)
        ones_res.append(_checksum_residual(a, ones, x))
        rand_res.append(_checksum_residual(a, rand, x))
    ones_mean, rand_mean = float(np.mean(ones_res)), float(np.mean(rand_res))
    text = (
        f"mean clean-product checksum residual (rounding only), n={a.nrows}\n"
        f"  ones weights   : {ones_mean:.3e}\n"
        f"  random weights : {rand_mean:.3e}\n"
        f"  ratio          : {rand_mean / max(ones_mean, 1e-300):.2f}\n"
    )
    (results_dir / "weights.txt").write_text(text)
    print("\n" + text)
    # Both stay far below the Theorem-2 threshold; the comparison is
    # directional (random ≥ ones up to noise), as the paper argues.
    from repro.abft import compute_checksums

    thr = compute_checksums(a, nchecks=1).tolerance.thresholds(3.0)[0]
    assert ones_mean < thr and rand_mean < thr


def test_random_weights_nonzero_checksums_without_shift():
    """On a graph Laplacian (zero column sums), random weights give
    nonzero checksums with no shift — the Lebesgue-measure argument."""
    from repro.sparse import graph_laplacian_spd

    a = graph_laplacian_spd(300, 6, seed=3, shift=1e-12)
    rand = random_weights(a.nrows, rng=5)
    cks = column_sums(a, weights=rand)
    assert np.all(np.abs(cks) > 1e-8)


def test_bench_ones_checksum(benchmark, setup):
    a, x = setup
    benchmark(lambda: column_sums(a) @ x)


def test_bench_random_checksum(benchmark, setup):
    a, x = setup
    w = random_weights(a.nrows, rng=2)
    benchmark(lambda: column_sums(a, weights=w) @ x)
