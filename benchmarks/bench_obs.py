"""Observability overhead: tracing off must be free, on must be cheap.

The ``repro.obs`` contract is *zero overhead when off*:
``resolve_tracer`` collapses ``None`` and ``NullTracer`` to the same
``tracer is None`` fast path the engine always had, so a disabled
tracer may cost at most the resolution call per solve — never anything
per iteration.  This bench measures ``repeat_run`` wall clock three
ways on a Table-1-style point:

- ``off``   — no tracer argument at all (the pre-obs baseline path);
- ``null``  — an explicit ``NullTracer`` (the disabled path the gate
  polices: must be within :data:`MAX_OVERHEAD_PCT` of ``off``);
- ``memory``— a fully-enabled ``InMemoryTracer`` materializing every
  event (informational: the price of turning tracing on).

Trials interleave off/null/off and keep per-variant minima, so load
spikes hit both variants symmetrically — and the two ``off`` series
double as a **noise control**: they time byte-identical calls, so any
spread between them is pure machine noise (containers with cgroup CPU
quotas routinely show double-digit spread here).  The gate is
self-calibrating: measured overhead must stay within
:data:`MAX_OVERHEAD_PCT` *plus* the observed off-vs-off control
spread, which keeps 2 % binding on quiet machines without flaking on
throttled ones.  ``benchmarks/run_benchmarks.py`` wraps this bench and
applies the same gate to the committed record
``benchmarks/BENCH_obs.json``.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import bench_scale
from repro.core import Scheme, SchemeConfig
from repro.core.methods import CostModel
from repro.obs import NULL_TRACER, InMemoryTracer
from repro.sim.engine import make_rhs, repeat_run
from repro.sim.matrices import get_matrix

#: Maximum tolerated tracing-off overhead vs the untraced path, in
#: percent (the ISSUE acceptance bar).  ``REPRO_BENCH_MAX_TRACE_OVERHEAD``
#: overrides it for noisy shared runners.
MAX_OVERHEAD_PCT = 2.0

#: Alternating off/null trial pairs; minimum per variant is kept.
TRIALS = 5

#: (scheme, alpha) measurement points — one clean, one paper-range
#: faulty (strikes exercise the engine's event emission sites, all of
#: which must stay behind the ``tracer is None`` branch).
POINTS = [
    (Scheme.ABFT_CORRECTION, 0.0),
    (Scheme.ABFT_CORRECTION, 0.01),
]


def max_overhead_pct() -> float:
    return float(os.environ.get("REPRO_BENCH_MAX_TRACE_OVERHEAD", str(MAX_OVERHEAD_PCT)))


def obs_reps() -> int:
    """Repetitions per measured call (small point, many solves).

    The default aims the timed region at ~0.5 s: sub-0.2 s regions can
    phase-lock with cgroup CPU-quota throttle periods and report
    double-digit "overhead" between two byte-identical code paths.
    """
    return int(os.environ.get("REPRO_BENCH_OBS_REPS", "100"))


def run_obs_bench(scale: int, reps: int) -> dict:
    a = get_matrix(2213, scale)
    b = make_rhs(a)
    costs = CostModel.from_matrix(a)
    points = []
    for scheme, alpha in POINTS:
        cfg = SchemeConfig(
            scheme, checkpoint_interval=8, verification_interval=1, costs=costs
        )

        def timed(**kw) -> float:
            t0 = time.perf_counter()
            repeat_run(a, b, cfg, alpha=alpha, reps=reps, base_seed=0, eps=1e-6, **kw)
            return time.perf_counter() - t0

        # Warm every path (matrix cache, checksum cache, buffers).
        timed()
        timed(tracer=NULL_TRACER)
        # Interleave off/null/off: the flanking `off` samples form the
        # noise control (identical calls — any spread is the machine).
        t_off_a = t_off_b = t_null = t_mem = float("inf")
        for _ in range(TRIALS):
            t_off_a = min(t_off_a, timed())
            t_null = min(t_null, timed(tracer=NULL_TRACER))
            t_off_b = min(t_off_b, timed())
        t_off = min(t_off_a, t_off_b)
        mem_events = 0
        for _ in range(TRIALS):
            t = InMemoryTracer()
            t_mem = min(t_mem, timed(tracer=t))
            mem_events = len(t)
        points.append(
            {
                "scheme": scheme.value,
                "alpha": alpha,
                "t_off_s": round(t_off, 4),
                "t_off_a_s": round(t_off_a, 4),
                "t_off_b_s": round(t_off_b, 4),
                "t_null_s": round(t_null, 4),
                "t_memory_s": round(t_mem, 4),
                "null_overhead_pct": round(100.0 * (t_null / t_off - 1.0), 2),
                "control_spread_pct": round(100.0 * abs(t_off_b / t_off_a - 1.0), 2),
                "memory_overhead_pct": round(100.0 * (t_mem / t_off - 1.0), 2),
                "events_per_run": mem_events,
            }
        )

    # Aggregate over summed times, not averaged percentages: the gate
    # should weight points by how long they actually run.
    sum_off = sum(p["t_off_s"] for p in points)
    sum_null = sum(p["t_null_s"] for p in points)
    sum_off_a = sum(p["t_off_a_s"] for p in points)
    sum_off_b = sum(p["t_off_b_s"] for p in points)
    return {
        "experiment": "obs_tracing_overhead",
        "matrix_uid": 2213,
        "scale": scale,
        "n": a.nrows,
        "reps_per_point": reps,
        "trials": TRIALS,
        "points": points,
        "aggregate_null_overhead_pct": round(100.0 * (sum_null / sum_off - 1.0), 2),
        "aggregate_control_spread_pct": round(
            100.0 * abs(sum_off_b / sum_off_a - 1.0), 2
        ),
        "max_allowed_overhead_pct": MAX_OVERHEAD_PCT,
    }


def test_bench_obs_tracing_overhead(results_dir):
    record = run_obs_bench(bench_scale(), obs_reps())
    (results_dir / "BENCH_obs.json").write_text(json.dumps(record, indent=2))
    print("\n" + json.dumps(record, indent=2))

    overhead = record["aggregate_null_overhead_pct"]
    control = record["aggregate_control_spread_pct"]
    allowed = max_overhead_pct() + control
    assert overhead <= allowed, (
        f"disabled tracing costs {overhead:.2f}% over the untraced path "
        f"(allowed {max_overhead_pct()}% + {control:.2f}% measured machine "
        "noise) — a NullTracer must collapse to the tracer-is-None fast path"
    )
