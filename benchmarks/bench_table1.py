"""E1 — regenerate the paper's Table 1 (model validation).

Paper protocol (Section 5.2): for each of the nine matrices, with
``λ = 1/(16·M)`` per word, measure the mean execution time of
ABFT-DETECTION and ABFT-CORRECTION over a sweep of checkpoint
intervals; report the model's interval s̃ vs the empirically best s*
and the loss ``l``.

Shape criteria asserted here (absolute times are simulator units, not
the authors' 2015 wall-clock):

- the model interval is close to the empirical optimum (the paper's
  own l values reach 16–37% with 50 reps, so the assertion bounds the
  *interval* gap, not the time gap);
- ABFT-CORRECTION's model interval exceeds ABFT-DETECTION's (higher
  per-iteration success probability ⇒ sparser checkpoints).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_reps, bench_scale
from repro.core import CostModel, Scheme, SchemeConfig
from repro.sim import format_table1, run_table1
from repro.sim.engine import make_rhs, repeat_run
from repro.sim.matrices import suite_specs


def test_regenerate_table1(results_dir):
    """Regenerate Table 1 for the full nine-matrix suite."""
    rows = run_table1(scale=bench_scale(), reps=bench_reps(), s_span=5)
    text = format_table1(rows)
    (results_dir / "table1.txt").write_text(text)
    print("\n" + text)

    by_scheme = {}
    for r in rows:
        by_scheme.setdefault(r.scheme, []).append(r)
    assert len(by_scheme["abft-detection"]) == 9
    assert len(by_scheme["abft-correction"]) == 9
    # Loss is non-negative by construction and the model interval must
    # sit in the neighbourhood of the empirical optimum for most
    # matrices (the paper's own Table 1 keeps s̃ within a few units of
    # s* everywhere).
    for scheme_rows in by_scheme.values():
        near = sum(1 for r in scheme_rows if abs(r.s_model - r.s_best) <= 8)
        assert near >= 6, [(r.uid, r.s_model, r.s_best) for r in scheme_rows]


def test_correction_interval_exceeds_detection():
    """Section 4.2.3: q_corr > q_det ⇒ s̃_corr > s̃_det, per matrix."""
    from repro.sim.experiments import model_interval_for

    for spec in suite_specs():
        a = spec.instantiate(bench_scale())
        costs = CostModel.from_matrix(a)
        s_det, _ = model_interval_for(Scheme.ABFT_DETECTION, 1 / 16, costs)
        s_cor, _ = model_interval_for(Scheme.ABFT_CORRECTION, 1 / 16, costs)
        assert s_cor > s_det, spec.uid


@pytest.mark.parametrize("uid", [341, 1312, 2213])
def test_bench_single_cell(benchmark, uid):
    """Wall-clock of one Table-1 cell (one matrix, one interval)."""
    spec = suite_specs([uid])[0]
    a = spec.instantiate(bench_scale() * 2)
    b = make_rhs(a)
    costs = CostModel.from_matrix(a)
    cfg = SchemeConfig(Scheme.ABFT_CORRECTION, checkpoint_interval=12, costs=costs)

    def cell():
        return repeat_run(a, b, cfg, alpha=1 / 16, reps=1, base_seed=0, eps=1e-6)

    stats = benchmark(cell)
    assert stats.convergence_rate == 1.0
