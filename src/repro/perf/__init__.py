"""Zero-copy hot-path support: workspaces and per-process caches.

The perf layer keeps repeated protected solves allocation-free without
changing any result bit (see :mod:`repro.perf.workspace` for the
correctness argument):

- :class:`SolveWorkspace` — preallocated SpMxV/ABFT/checkpoint buffers
  plus live-matrix reuse with strike-undo restore between repetitions;
- :func:`default_workspace` — the process's shared workspace, used by
  ``repro.solve(reuse_workspace=True)``;
- :func:`clear_caches` — explicit reset hook for every per-process
  cache (checksums, suite matrices, the default workspace); call it if
  you mutate a previously-solved matrix in place or need to bound
  memory in a long-lived process.
"""

from __future__ import annotations

from repro.perf.workspace import SolveWorkspace

__all__ = ["SolveWorkspace", "default_workspace", "clear_caches"]

_DEFAULT: "SolveWorkspace | None" = None


def default_workspace() -> SolveWorkspace:
    """The process-wide shared workspace (created on first use).

    Single-threaded use only — concurrent solves must each bring their
    own :class:`SolveWorkspace`.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SolveWorkspace()
    return _DEFAULT


def clear_caches() -> None:
    """Reset every per-process perf cache.

    Drops the ABFT checksum cache, the suite-matrix cache
    (:func:`repro.sim.matrices.get_matrix`) and the default workspace.
    Safe at any quiescent point; required after mutating a matrix that
    previously went through a cached code path.
    """
    global _DEFAULT
    from repro.abft.checksums import clear_checksum_cache
    from repro.campaign.executor import release_worker_workspace
    from repro.sim.matrices import clear_matrix_cache

    clear_checksum_cache()
    clear_matrix_cache()
    release_worker_workspace()
    if _DEFAULT is not None:
        _DEFAULT.release()
    _DEFAULT = None
