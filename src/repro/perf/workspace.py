"""Preallocated solve workspaces and the strike-undo live-matrix pool.

The paper's evaluation metric is *mean execution time over many
repeated fault-injected solves* (Section 5), so the reproduction's
throughput ceiling is whatever every repetition re-does from scratch.
Before this layer, each repetition paid

- one full ``a.copy()`` to produce the corruptible live matrix
  (O(nnz)),
- one ABFT checksum recomputation (O(nchecks·nnz) — the setup cost
  Section 3.2 says to pay *once* per matrix),
- and per iteration a fresh O(nnz) scratch array, a fresh output
  vector and a defensive ``colid`` range scan inside every SpMxV.

A :class:`SolveWorkspace` removes all of it without changing a single
float:

- **named buffer pool** — ``buffer(name, size)`` hands out persistent
  ``float64`` arrays the SpMxV/ABFT/engine layers overwrite in place;
- **live-matrix reuse with strike-undo restore** — the fault injector
  and the ABFT corrector report every matrix word they touch
  (:meth:`note_matrix_mutation`); between repetitions the workspace
  rewrites exactly those words from the pristine source (O(#faults),
  typically single digits) instead of recopying O(nnz) arrays, and
  restores the :attr:`~repro.sparse.csr.CSRMatrix.structure_clean`
  stamp so unfaulted SpMxVs skip their index scans;
- **delta matrix checkpoints** — a checkpoint stores only the words
  currently deviating from the pristine source
  (:meth:`capture_matrix_state`), and a rollback restores them in
  O(#faults) (:meth:`restore_matrix_state`);
- **per-source caches** — ``‖A‖₁`` for the stopping threshold (the
  checksum cache itself is process-global, see
  :func:`repro.abft.checksums.cached_checksums`).

Workspaces are **not** thread-safe and must not be shared across
concurrently running solves; the campaign executor keeps one per
worker process.

Correctness argument for strike-undo (the taint superset invariant):
at every instant, the set of live-matrix words differing from the
pristine source is a subset of the recorded taint. Strikes and ABFT
repairs are recorded at the point of mutation; a checkpoint restore
copies values whose deviations were recorded before the snapshot; an
engine refresh copies pristine data (removing deviations, never adding
any). Rewriting the tainted words from the source therefore restores
bit-equality — positions tainted but not currently deviating are
rewritten with the value they already hold.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.obs.metrics import METRICS
from repro.sparse.csr import CSRMatrix
from repro.sparse.validate import structure_arrays_clean

if TYPE_CHECKING:  # pragma: no cover
    from repro.abft.checksums import SpmvChecksums

__all__ = ["SolveWorkspace"]

#: The corruptible matrix arrays, in injector registration order.
_MATRIX_ARRAYS = ("val", "colid", "rowidx")


class SolveWorkspace:
    """Reusable buffers + live-matrix pool for repeated protected solves.

    One workspace serves one solve at a time; reusing it across
    repetitions (and across matrices — switching sources just rebuilds
    the live copy) is what :func:`repro.sim.engine.repeat_run`,
    the campaign executor and ``solve(reuse_workspace=True)`` do.
    Every code path through a workspace is locked bit-identical to the
    fresh-allocation path by ``tests/test_perf_workspace.py``.
    """

    def __init__(self, *, backend: "object | None" = None) -> None:
        #: Default kernel backend (name or :class:`repro.backends
        #: .KernelBackend`) for solves run through this workspace;
        #: ``None`` = reference.  An explicit ``backend=`` on the solve
        #: entry point always wins — the attribute only fills the gap,
        #: so one workspace can serve tasks on different backends.
        self.backend = backend
        self._buffers: dict[str, np.ndarray] = {}
        self._abft_bundle: "tuple | None" = None  #: (n, nnz, buffers…)
        self._live: "CSRMatrix | None" = None
        self._live_source: "CSRMatrix | None" = None
        self._source_view: "CSRMatrix | None" = None
        self._live_clean = False  #: structure verdict for the *source*
        self._live_rows_nonempty: "bool | None" = None  #: hoisted with the verdict
        self._taint: dict[str, set[int]] = {n: set() for n in _MATRIX_ARRAYS}
        self._norm1: "float | None" = None
        self._jacobi_minv: "np.ndarray | None" = None
        # Telemetry for tests/benchmarks (no behavioural role).  The
        # buffer-pool pair uses plain int attributes, not the METRICS
        # registry: buffer() sits on the per-iteration hot path, where
        # an attribute increment is the budget; the campaign executor
        # folds these into the telemetry snapshot instead.
        self.live_copies = 0
        self.live_restores = 0
        self.buffer_requests = 0
        self.buffer_allocs = 0

    # ------------------------------------------------------------------
    # named buffer pool
    # ------------------------------------------------------------------
    def buffer(self, name: str, size: int, dtype: "np.dtype | type" = np.float64) -> np.ndarray:
        """A persistent scratch array of at least ``size`` elements.

        Contents are *unspecified* on return — callers overwrite.  The
        same name always maps to the same storage (grown on demand), so
        two concurrently-live uses of one name would alias; buffer
        names are namespaced per call site (``"abft.y"``,
        ``"spmv.scratch"``, …) to prevent that.
        """
        self.buffer_requests += 1
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < size or buf.dtype != np.dtype(dtype):
            self.buffer_allocs += 1
            buf = np.empty(max(size, 1), dtype=dtype)
            self._buffers[name] = buf
        return buf[:size] if buf.shape[0] != size else buf

    def zeros(self, name: str, size: int) -> np.ndarray:
        """:meth:`buffer`, zero-filled."""
        buf = self.buffer(name, size)
        buf[:] = 0.0
        return buf

    def abft_buffers(self, nrows: int, ncols: int, nnz: int) -> tuple:
        """The protected-SpMxV buffer set, resolved in one call.

        Returns ``(x_ref, y, scratch, ridx, xdiff)`` with ``x_ref``
        input-sized and the rest output/nnz-sized; one protected
        product draws five buffers per call, so the per-name dict
        lookups are folded into a single shape-keyed slot.
        """
        bundle = self._abft_bundle
        if bundle is not None and bundle[0] == (nrows, ncols, nnz):
            return bundle[1]
        bufs = (
            self.buffer("abft.xref", ncols),
            self.buffer("abft.y", nrows),
            self.buffer("spmv.scratch", nnz),
            self.buffer("verify.ridx", nrows),
            self.buffer("verify.xdiff", nrows),
        )
        self._abft_bundle = ((nrows, ncols, nnz), bufs)
        return bufs

    # ------------------------------------------------------------------
    # live-matrix pool (strike-undo restore)
    # ------------------------------------------------------------------
    def acquire_live(self, a: CSRMatrix) -> CSRMatrix:
        """A corruptible working copy of ``a``, bit-equal to ``a``.

        First acquisition for a source copies O(nnz); subsequent
        acquisitions for the *same object* un-write exactly the tainted
        words (O(#faults)) and reuse the same arrays — essential
        because the fault injector and the recurrence plugins hold
        references into them.
        """
        if self._live is not None and self._live_source is a:
            self._undo_taint()
            self.live_restores += 1
            METRICS.inc("workspace.live_restore")
            return self._live
        self._live = a.copy()
        self._live_source = a
        self._live_clean = structure_arrays_clean(a)
        if self._live_clean:
            self._live.assume_clean_structure()
            self._live_rows_nonempty = self._live._rows_nonempty
            # Flag-stamped *view* of the source (shares its arrays, has
            # its own stamp): products against the pristine matrix —
            # the engine's reliable convergence checks and refreshes —
            # skip the SpMxV guards without mutating the user's object.
            view = CSRMatrix(a.val, a.colid, a.rowidx, a.shape, check=False)
            view.assume_clean_structure()
            self._source_view = view
        else:
            self._live.mark_structure_dirty()
            self._live_rows_nonempty = None
            self._source_view = a
        for s in self._taint.values():
            s.clear()
        self._norm1 = None
        self._jacobi_minv = None
        self.live_copies += 1
        METRICS.inc("workspace.live_copy")
        return self._live

    def source_view(self) -> "CSRMatrix":
        """The bound source, through its flag-stamped view.

        Same bytes (the view shares the source's arrays); only the
        structure stamp differs, living on the view so the caller's
        object is never mutated.
        """
        assert self._source_view is not None
        return self._source_view

    def _rearm_live(self) -> None:
        """Re-stamp the live matrix with the source's structure verdict."""
        live = self._live
        if live is not None and self._live_clean:
            live._structure_clean = True
            live._rows_nonempty = self._live_rows_nonempty

    def note_matrix_mutation(self, name: str, position: int) -> None:
        """Record that one word of a live matrix array was rewritten.

        Called by the engine for every injector strike on
        ``val``/``colid``/``rowidx`` and for every ABFT in-place repair.
        Index-array mutations also revoke the live matrix's
        ``structure_clean`` stamp, so subsequent SpMxVs fall back to
        their defensive scans.
        """
        self._taint[name].add(int(position))
        if name != "val" and self._live is not None:
            self._live.mark_structure_dirty()

    def _unwrite_tainted(self, *, clear: bool) -> None:
        """Rewrite every tainted word of the live arrays from the
        pristine source (the single copy of the un-write mechanics)."""
        live, src = self._live, self._live_source
        assert live is not None and src is not None
        for name, positions in self._taint.items():
            if positions:
                idx = np.fromiter(positions, dtype=np.int64, count=len(positions))
                getattr(live, name)[idx] = getattr(src, name)[idx]
                if clear:
                    positions.clear()

    def _undo_taint(self) -> None:
        """Restore the live matrix to bit-equality with the source."""
        self._unwrite_tainted(clear=True)
        self._rearm_live()

    # ------------------------------------------------------------------
    # delta matrix checkpoints
    # ------------------------------------------------------------------
    def capture_matrix_state(self) -> dict:
        """Snapshot the live matrix as deviations from the source.

        Returns per-array ``(positions, values)`` pairs for the words
        tainted *now*; :meth:`restore_matrix_state` reproduces the
        exact byte state from them.  O(#faults) instead of the O(nnz)
        full-matrix checkpoint copy.
        """
        live = self._live
        assert live is not None
        deltas = {}
        for name, positions in self._taint.items():
            if positions:
                idx = np.fromiter(positions, dtype=np.int64, count=len(positions))
                deltas[name] = (idx, getattr(live, name)[idx].copy())
        return deltas

    def restore_matrix_state(self, deltas: dict) -> None:
        """Restore the live matrix to a :meth:`capture_matrix_state` state.

        Implemented as strike-undo to the pristine source followed by
        re-applying the captured deviations (which re-taints nothing:
        captured positions are already in the taint set — it only ever
        shrinks at :meth:`acquire_live`).
        """
        live = self._live
        assert live is not None
        self._unwrite_tainted(clear=False)
        for name, (idx, values) in deltas.items():
            getattr(live, name)[idx] = values
        # The restored state deviates from the source only at the
        # captured words; if none of them sit in an index array, the
        # structure verdict of the source holds again — re-arm the fast
        # path that the strike had disarmed.
        if "colid" not in deltas and "rowidx" not in deltas:
            self._rearm_live()

    def reverify_structure(self) -> None:
        """Re-arm the live structure stamp if no index word deviates.

        Called after a *forward* repair of ``colid``/``rowidx`` (which
        restores the exact original integer, but never rolls back — so
        nothing else would clear the dirty flag).  Compares only the
        tainted index words against the source: O(#faults).
        """
        live, src = self._live, self._live_source
        if live is None or not self._live_clean or live.structure_clean:
            return
        for name in ("colid", "rowidx"):
            positions = self._taint[name]
            if positions:
                idx = np.fromiter(positions, dtype=np.int64, count=len(positions))
                if not np.array_equal(getattr(live, name)[idx], getattr(src, name)[idx]):
                    return
        self._rearm_live()

    def mark_live_pristine(self) -> None:
        """Declare the live matrix byte-equal to the source *right now*.

        Called by the engine after a refresh re-read the pristine data
        into the live arrays wholesale; restores the source's structure
        verdict (the taint ledger is untouched — it is a superset
        contract, and re-undoing an already-pristine word is harmless).
        """
        self._rearm_live()

    # ------------------------------------------------------------------
    # per-source caches
    # ------------------------------------------------------------------
    def source_norm1(self, a: CSRMatrix) -> float:
        """``‖A‖₁`` of the pristine source, computed once per binding."""
        if self._live_source is not a or self._norm1 is None:
            from repro.sparse.norms import norm1

            value = norm1(a)
            if self._live_source is not a:
                return value  # not bound to this source: don't cache
            self._norm1 = value
        return self._norm1

    def jacobi_minv(self, a: CSRMatrix) -> np.ndarray:
        """``diag(A)⁻¹`` of the pristine source, computed once per binding.

        Same computation (and zero-diagonal ``ValueError``) as the
        uncached path — both call
        :func:`repro.core.pcg.jacobi_inverse_diagonal`.  The returned
        array is shared read-only metadata (like the checksums) —
        callers must not mutate it.
        """
        if self._live_source is not a or self._jacobi_minv is None:
            from repro.core.pcg import jacobi_inverse_diagonal

            minv = jacobi_inverse_diagonal(a)
            if self._live_source is not a:
                return minv  # not bound to this source: don't cache
            self._jacobi_minv = minv
        return self._jacobi_minv

    def checksums(
        self, a: CSRMatrix, *, nchecks: int, backend: "object | None" = None
    ) -> "SpmvChecksums":
        """Process-cached ABFT metadata for ``a`` (see
        :func:`repro.abft.checksums.cached_checksums`).  ``backend``
        is the resolved kernel backend whose ``checksum_products``
        runs the setup product (``None`` = reference)."""
        from repro.abft.checksums import cached_checksums

        return cached_checksums(a, nchecks=nchecks, backend=backend)

    def release(self) -> None:
        """Drop every held array and matrix reference.

        Un-binds the live copy (and the strong reference to its source
        matrix) and empties the buffer pool, so a long-lived process can
        actually reclaim the memory; the workspace remains usable — the
        next solve simply re-allocates.
        """
        self._buffers.clear()
        self._abft_bundle = None
        self._live = None
        self._live_source = None
        self._source_view = None
        self._live_clean = False
        self._live_rows_nonempty = None
        for s in self._taint.values():
            s.clear()
        self._norm1 = None
        self._jacobi_minv = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nbuf = len(self._buffers)
        bound = "unbound" if self._live_source is None else f"n={self._live_source.nrows}"
        return f"SolveWorkspace({nbuf} buffers, {bound}, copies={self.live_copies}, restores={self.live_restores})"
