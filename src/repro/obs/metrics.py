"""Lightweight process-local metrics: counters and section timers.

The observability layer's second leg (the first is event tracing):
monotonic counters and histogram-style timers accumulated in a
process-global :data:`METRICS` registry.  The engine folds one batch of
counter updates per *solve* (never per iteration), the workspace and
ABFT cache count reuse hits, and the campaign executor snapshots the
registry per worker, diffs it against the worker's baseline and merges
the deltas into the result store as a ``telemetry`` record that
``repro report`` surfaces.

Counters are plain dict entries (``int`` or ``float``); timers keep
``{count, total, min, max}`` seconds and are fed either directly via
:meth:`Metrics.observe` or through the :meth:`Metrics.time_section`
context manager.  Everything is process-local and fork-aware by
*convention*: a forked worker inherits the parent's values, so
consumers must diff against a baseline snapshot taken inside the
worker (see ``repro.campaign.executor``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any

__all__ = [
    "Metrics",
    "METRICS",
    "get_metrics",
    "merge_snapshots",
    "diff_snapshots",
]


class Metrics:
    """A registry of monotonic counters and section timers."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._timers: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def inc(self, name: str, value: "int | float" = 1) -> None:
        """Add ``value`` (default 1) to the named counter."""
        self._counters[name] = self._counters.get(name, 0) + value

    def count(self, name: str) -> "int | float":
        """Current value of the named counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample under the named timer."""
        t = self._timers.get(name)
        if t is None:
            self._timers[name] = {
                "count": 1,
                "total": seconds,
                "min": seconds,
                "max": seconds,
            }
        else:
            t["count"] += 1
            t["total"] += seconds
            if seconds < t["min"]:
                t["min"] = seconds
            if seconds > t["max"]:
                t["max"] = seconds

    @contextmanager
    def time_section(self, name: str):
        """Context manager timing its body into the named timer."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(name, time.perf_counter() - t0)

    def timer(self, name: str) -> "dict[str, float] | None":
        """Stats dict ``{count, total, min, max}`` or ``None``."""
        t = self._timers.get(name)
        return dict(t) if t is not None else None

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> "dict[str, Any]":
        """Deep-copied point-in-time view of all counters and timers."""
        return {
            "counters": dict(self._counters),
            "timers": {k: dict(v) for k, v in self._timers.items()},
        }

    def reset(self) -> None:
        """Drop all counters and timers (tests and benchmarks only)."""
        self._counters.clear()
        self._timers.clear()


#: The process-global registry every instrumented layer writes to.
METRICS = Metrics()


def get_metrics() -> Metrics:
    """The process-global :class:`Metrics` registry."""
    return METRICS


def merge_snapshots(snapshots: "list[dict[str, Any]]") -> "dict[str, Any]":
    """Sum counter/timer snapshots from several workers into one.

    Counters add; timers add ``count``/``total`` and take the
    element-wise min/max.  Empty input merges to an empty snapshot.
    """
    counters: dict[str, float] = {}
    timers: dict[str, dict[str, float]] = {}
    for snap in snapshots:
        for k, v in snap.get("counters", {}).items():
            counters[k] = counters.get(k, 0) + v
        for k, t in snap.get("timers", {}).items():
            cur = timers.get(k)
            if cur is None:
                timers[k] = dict(t)
            else:
                cur["count"] += t["count"]
                cur["total"] += t["total"]
                cur["min"] = min(cur["min"], t["min"])
                cur["max"] = max(cur["max"], t["max"])
    return {"counters": counters, "timers": timers}


def diff_snapshots(end: "dict[str, Any]", start: "dict[str, Any]") -> "dict[str, Any]":
    """Delta ``end - start`` between two snapshots of one registry.

    Needed because forked campaign workers inherit the parent's
    cumulative values: the worker's contribution is the difference
    against the baseline captured when the worker first ran.  Counters
    and timer ``count``/``total`` subtract (entries that did not move
    are dropped); timer ``min``/``max`` are taken from ``end`` — they
    are not invertible, and the window extrema are close enough for
    reporting.
    """
    counters: dict[str, float] = {}
    base_c = start.get("counters", {})
    for k, v in end.get("counters", {}).items():
        d = v - base_c.get(k, 0)
        if d:
            counters[k] = d
    timers: dict[str, dict[str, float]] = {}
    base_t = start.get("timers", {})
    for k, t in end.get("timers", {}).items():
        b = base_t.get(k)
        if b is None:
            timers[k] = dict(t)
            continue
        dcount = t["count"] - b["count"]
        if dcount > 0:
            timers[k] = {
                "count": dcount,
                "total": t["total"] - b["total"],
                "min": t["min"],
                "max": t["max"],
            }
    return {"counters": counters, "timers": timers}
