"""Observability: structured tracing, metrics, and trace analysis.

Three legs, all zero-overhead when off:

- :mod:`repro.obs.tracer` — the :class:`Tracer` event protocol with
  :class:`NullTracer` (disabled; collapsed out of the hot path by
  :func:`resolve_tracer`), :class:`InMemoryTracer` and
  :class:`JsonlTracer` sinks, plus combinators.
- :mod:`repro.obs.metrics` — process-local monotonic counters and
  section timers (:data:`METRICS`), merged across campaign workers
  into ``telemetry`` store records.
- :mod:`repro.obs.summarize` — offline aggregation of JSONL trace
  shards (``repro trace summarize``).

See ``docs/DESIGN.md`` §8 for the event schema and overhead budget.
"""

from repro.obs.metrics import (
    METRICS,
    Metrics,
    diff_snapshots,
    get_metrics,
    merge_snapshots,
)
from repro.obs.summarize import (
    TraceSummary,
    format_trace_summary,
    iter_trace_events,
    summarize_trace,
)
from repro.obs.tracer import (
    EVENT_KINDS,
    FAULT_EVENT_KINDS,
    NULL_TRACER,
    SCHEMA_VERSION,
    CallbackTracer,
    InMemoryTracer,
    JsonlTracer,
    MultiTracer,
    NullTracer,
    Tracer,
    resolve_tracer,
)

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "FAULT_EVENT_KINDS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "InMemoryTracer",
    "JsonlTracer",
    "MultiTracer",
    "CallbackTracer",
    "resolve_tracer",
    "Metrics",
    "METRICS",
    "get_metrics",
    "merge_snapshots",
    "diff_snapshots",
    "TraceSummary",
    "iter_trace_events",
    "summarize_trace",
    "format_trace_summary",
]
