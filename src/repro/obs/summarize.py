"""Offline analysis of JSONL trace shards.

``Study.run(trace_dir=...)`` leaves one ``shard-<pid>.jsonl`` file per
campaign worker; this module loads a shard file (or a directory of
them), tolerates the same torn-final-line artifact the result store
tolerates, and renders what the paper cares about: where simulated
time went per phase (useful / wasted / verification / checkpoint /
recovery, from the solve-end events) and what the faults did (a
timeline of strike and recovery events).  Exposed on the CLI as
``repro trace summarize <path>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.tracer import FAULT_EVENT_KINDS

__all__ = [
    "TraceSummary",
    "iter_trace_events",
    "summarize_trace",
    "format_trace_summary",
]

#: Phase keys of the solve-end events, in display order.
_PHASES = ("useful", "wasted", "verification", "checkpoint", "recovery")


def _shard_paths(path: "Path") -> "list[Path]":
    if path.is_dir():
        return sorted(path.glob("*.jsonl"))
    return [path]


def iter_trace_events(path) -> "Iterator[tuple[str, dict[str, Any]]]":
    """Yield ``(shard_name, event)`` from a shard file or directory.

    Blank lines are skipped.  A torn *final* line (crash mid-append) is
    dropped silently — the same durability contract as the campaign
    result store; a malformed line anywhere else raises ``ValueError``
    naming the shard and line number.
    """
    root = Path(path)
    if not root.exists():
        raise FileNotFoundError(f"no trace file or directory at {root}")
    for shard in _shard_paths(root):
        with open(shard, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        last_payload = len(lines) - 1
        while last_payload >= 0 and not lines[last_payload].strip():
            last_payload -= 1
        for i, line in enumerate(lines):
            text = line.strip()
            if not text:
                continue
            try:
                event = json.loads(text)
            except json.JSONDecodeError:
                if i == last_payload:
                    break  # torn tail from a crashed writer
                raise ValueError(
                    f"corrupt trace line in {shard.name}:{i + 1}"
                ) from None
            if isinstance(event, dict):
                yield shard.name, event


@dataclass
class TraceSummary:
    """Aggregates over one trace directory (or single shard file)."""

    shards: int = 0
    events: int = 0
    kinds: "dict[str, int]" = field(default_factory=dict)
    #: Per task-hash event-kind counts (tasks come from event context).
    tasks: "dict[str, dict[str, int]]" = field(default_factory=dict)
    solves: int = 0
    converged: int = 0
    diverged: int = 0
    #: Simulated time units summed over solve-end events, per phase.
    phase_totals: "dict[str, float]" = field(default_factory=dict)
    #: Fault/recovery events in file order: (shard, task, rep, event).
    fault_timeline: "list[tuple[str, str | None, int | None, dict[str, Any]]]" = field(
        default_factory=list
    )

    def to_dict(self) -> "dict[str, Any]":
        """JSON-serializable form (timeline entries flattened)."""
        return {
            "shards": self.shards,
            "events": self.events,
            "kinds": dict(self.kinds),
            "tasks": {k: dict(v) for k, v in self.tasks.items()},
            "solves": self.solves,
            "converged": self.converged,
            "diverged": self.diverged,
            "phase_totals": dict(self.phase_totals),
            "fault_events": len(self.fault_timeline),
        }


def summarize_trace(path) -> TraceSummary:
    """Aggregate a shard file or directory into a :class:`TraceSummary`."""
    s = TraceSummary()
    shard_names: set[str] = set()
    for shard, ev in iter_trace_events(path):
        shard_names.add(shard)
        s.events += 1
        kind = ev.get("kind", "?")
        s.kinds[kind] = s.kinds.get(kind, 0) + 1
        task = ev.get("task")
        if task is not None:
            per = s.tasks.setdefault(task, {})
            per[kind] = per.get(kind, 0) + 1
        if kind == "solve-start":
            s.solves += 1
        elif kind in ("solve-converge", "solve-diverge"):
            if kind == "solve-converge":
                s.converged += 1
            else:
                s.diverged += 1
            for phase in _PHASES:
                v = ev.get(phase)
                if v is not None:
                    s.phase_totals[phase] = s.phase_totals.get(phase, 0.0) + float(v)
        if kind in FAULT_EVENT_KINDS:
            s.fault_timeline.append((shard, task, ev.get("rep"), ev))
    s.shards = len(shard_names)
    return s


def format_trace_summary(s: TraceSummary, *, timeline_limit: int = 20) -> str:
    """Human-readable rendering of a :class:`TraceSummary`."""
    lines = [
        f"trace: {s.events} event(s) in {s.shards} shard(s), "
        f"{s.solves} solve(s) ({s.converged} converged, {s.diverged} diverged), "
        f"{len(s.tasks)} task(s)"
    ]
    if s.kinds:
        lines.append("")
        lines.append("events by kind:")
        width = max(len(k) for k in s.kinds)
        for kind in sorted(s.kinds, key=lambda k: (-s.kinds[k], k)):
            lines.append(f"  {kind:<{width}}  {s.kinds[kind]}")
    total = sum(s.phase_totals.values())
    if total > 0:
        lines.append("")
        lines.append("simulated time by phase:")
        for phase in _PHASES:
            v = s.phase_totals.get(phase, 0.0)
            lines.append(f"  {phase:<12} {v:12.2f}  ({100.0 * v / total:5.1f}%)")
        lines.append(f"  {'total':<12} {total:12.2f}")
    if s.fault_timeline:
        lines.append("")
        shown = s.fault_timeline[:timeline_limit]
        lines.append(
            f"fault timeline ({len(shown)} of {len(s.fault_timeline)} event(s)):"
        )
        for shard, task, rep, ev in shown:
            where = []
            if task is not None:
                where.append(f"task={task[:12]}")
            if rep is not None:
                where.append(f"rep={rep}")
            where.append(f"iter={ev.get('iter', '?')}")
            extras = " ".join(
                f"{k}={v}"
                for k, v in ev.items()
                if k not in ("v", "kind", "iter", "task", "rep")
            )
            lines.append(
                f"  [{' '.join(where)}] {ev.get('kind')}" + (f" {extras}" if extras else "")
            )
    return "\n".join(lines)
