"""Structured tracing sinks for the solve and campaign stacks.

A :class:`Tracer` receives typed, schema-versioned events from the
resilience engine (solve lifecycle, per-iteration step outcomes, fault
strikes, ABFT/TMR recoveries, checkpointing, workspace reuse) and is
also the engine's per-iteration observation surface via
:meth:`Tracer.iteration` — the promoted successor of the PR 3
``observer`` callable.

The design contract is *zero overhead when off*: ``resolve_tracer``
maps both ``None`` and the stock :class:`NullTracer` to ``None``, so
the engine's hot loop pays a single ``is not None`` test per event
site and nothing else (mirroring how ``resolve_backend`` collapses the
reference backend).  Tracing therefore cannot perturb trajectories:
sinks observe, they never touch RNG state or simulated time
(``tests/test_obs_golden.py`` locks this bit-for-bit).

Event schema (version :data:`SCHEMA_VERSION`)::

    {"v": 1, "kind": "<event kind>", "iter": <int>, **context, **fields}

``context`` is a mutable dict merged into every event — the campaign
executor binds ``{"task": <task hash>}`` there so shard files can be
regrouped per task, and ``repeat_run`` binds ``{"rep": <int>}``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Iterable

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "InMemoryTracer",
    "JsonlTracer",
    "MultiTracer",
    "CallbackTracer",
    "resolve_tracer",
]

#: Version stamped into every event as ``"v"``.  Bump when an event's
#: field set changes incompatibly; readers must tolerate unknown kinds.
SCHEMA_VERSION = 1

#: The catalogue of event kinds the engine and campaign layers emit.
#: Documented in ``docs/DESIGN.md`` §8; sinks must accept unknown kinds
#: (forward compatibility), this set exists for tests and tooling.
EVENT_KINDS = frozenset(
    {
        "solve-start",
        "solve-converge",
        "solve-diverge",
        "step",
        "strike",
        "abft-setup",
        "abft-detection",
        "abft-correction",
        "tmr-detection",
        "tmr-correction",
        "chen-verify",
        "breakdown",
        "checkpoint",
        "rollback",
        "refresh-rollback",
        "final-check",
        "workspace-acquire",
        # Harness self-healing events (docs/DESIGN.md §10): emitted by
        # repro.chaos.run_guarded and the serve-mode dispatcher, not
        # the solver — iteration is always 0.
        "retry",
        "task-timeout",
        "quarantine",
        "chaos-inject",
        "worker-restart",
    }
)

#: Event kinds that belong on a fault/recovery timeline (what struck
#: and what the protection layers did about it), in emission order.
FAULT_EVENT_KINDS = frozenset(
    {
        "strike",
        "abft-detection",
        "abft-correction",
        "tmr-detection",
        "tmr-correction",
        "breakdown",
        "rollback",
        "refresh-rollback",
        "final-check",
    }
)


class Tracer:
    """Base class for event sinks.

    Subclasses implement :meth:`write` (receive one event dict) and may
    override :meth:`iteration`, the engine's per-iteration observation
    hook (called with the :class:`~repro.resilience.engine.EngineContext`
    once per executed iteration, after the step and any recovery).
    Both hooks are pure observation: they must not mutate engine or
    plugin state, consume RNG, or charge simulated time.
    """

    #: ``False`` only on :class:`NullTracer`; ``resolve_tracer`` uses it
    #: to collapse disabled sinks out of the hot path.
    enabled = True

    def __init__(self, context: "dict[str, Any] | None" = None) -> None:
        #: Mutable fields merged into every event (e.g. task hash, rep).
        self.context: dict[str, Any] = dict(context) if context else {}

    def emit(self, kind: str, iteration: int = 0, **fields: Any) -> None:
        """Build a schema-versioned event dict and hand it to the sink."""
        event: dict[str, Any] = {"v": SCHEMA_VERSION, "kind": kind, "iter": int(iteration)}
        if self.context:
            event.update(self.context)
        if fields:
            event.update(fields)
        self.write(event)

    def write(self, event: "dict[str, Any]") -> None:
        """Receive one event dict (sink-specific)."""
        raise NotImplementedError

    def iteration(self, ctx) -> None:
        """Per-iteration observation hook; default is a no-op."""

    def close(self) -> None:
        """Release sink resources; safe to call more than once."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer(Tracer):
    """The disabled sink: discards everything.

    ``resolve_tracer`` maps instances of this exact class to ``None``
    before the solve starts, so passing one is *exactly* as cheap as
    passing no tracer at all — the hot loop never even calls it
    (``benchmarks/bench_obs.py`` gates this at ≤2% overhead).
    """

    enabled = False

    def write(self, event: "dict[str, Any]") -> None:
        pass


#: Module-level singleton; the canonical "tracing off" value.
NULL_TRACER = NullTracer()


class InMemoryTracer(Tracer):
    """Collects events in a list — the test and notebook sink."""

    def __init__(self, context: "dict[str, Any] | None" = None) -> None:
        super().__init__(context)
        self.events: list[dict[str, Any]] = []

    def write(self, event: "dict[str, Any]") -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> "list[dict[str, Any]]":
        """All recorded events of the given kind, in emission order."""
        return [ev for ev in self.events if ev.get("kind") == kind]

    def counts_by_kind(self) -> "dict[str, int]":
        """Histogram of recorded event kinds."""
        out: dict[str, int] = {}
        for ev in self.events:
            k = ev.get("kind", "?")
            out[k] = out.get(k, 0) + 1
        return out

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlTracer(Tracer):
    """Appends one JSON object per event to a file, crash-safely.

    Same durability contract as the campaign's JSONL result store:
    the file is opened in append mode, each event is flushed as its own
    newline-terminated line, and a process killed mid-write leaves at
    most one torn final line, which readers (:mod:`repro.obs.summarize`)
    detect and drop.  The parent directory is created on first write.
    """

    def __init__(self, path, context: "dict[str, Any] | None" = None) -> None:
        super().__init__(context)
        self.path = Path(path)
        self._fh = None

    def write(self, event: "dict[str, Any]") -> None:
        fh = self._fh
        if fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fh = self._fh = open(self.path, "a", encoding="utf-8")
        fh.write(json.dumps(event, sort_keys=True) + "\n")
        fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class MultiTracer(Tracer):
    """Fans every event and iteration hook out to child tracers.

    Each child applies its own ``context`` — the multi itself carries
    none.  Used to combine a user sink with internal observers (e.g.
    ``solve(record_history=True, trace=...)``).
    """

    def __init__(self, tracers: "Iterable[Tracer]") -> None:
        super().__init__()
        self.tracers: list[Tracer] = [t for t in tracers if t is not None]

    def emit(self, kind: str, iteration: int = 0, **fields: Any) -> None:
        for t in self.tracers:
            t.emit(kind, iteration, **fields)

    def write(self, event: "dict[str, Any]") -> None:  # pragma: no cover - emit overridden
        for t in self.tracers:
            t.write(event)

    def iteration(self, ctx) -> None:
        for t in self.tracers:
            t.iteration(ctx)

    def close(self) -> None:
        for t in self.tracers:
            t.close()


class CallbackTracer(Tracer):
    """Adapter wrapping plain callables as a tracer.

    ``on_iteration`` receives the engine context once per executed
    iteration (this is the deprecation shim behind the engine's old
    ``observer=`` kwarg); ``on_event`` receives each event dict.
    """

    def __init__(
        self,
        on_iteration: "Callable[[Any], None] | None" = None,
        on_event: "Callable[[dict[str, Any]], None] | None" = None,
    ) -> None:
        super().__init__()
        self._on_iteration = on_iteration
        self._on_event = on_event

    def write(self, event: "dict[str, Any]") -> None:
        if self._on_event is not None:
            self._on_event(event)

    def iteration(self, ctx) -> None:
        if self._on_iteration is not None:
            self._on_iteration(ctx)


def resolve_tracer(tracer: "Tracer | None") -> "Tracer | None":
    """Collapse disabled sinks to ``None`` (the hot-path contract).

    ``None`` and :class:`NullTracer` instances resolve to ``None`` so
    every emission site downstream is a single ``is not None`` test —
    the exact analogue of ``resolve_backend`` returning ``None`` for
    the reference backend.  Any other :class:`Tracer` passes through
    unchanged; non-tracers raise ``TypeError`` immediately rather than
    failing mid-solve.
    """
    if tracer is None or type(tracer) is NullTracer:
        return None
    if isinstance(tracer, Tracer):
        return tracer
    raise TypeError(
        f"tracer must be a repro.obs.Tracer or None, got {type(tracer).__name__}"
    )
