"""repro — backward + forward recovery for silent errors in iterative solvers.

A production-quality reproduction of:

    M. Fasi, Y. Robert, B. Uçar, *Combining backward and forward
    recovery to cope with silent errors in iterative solvers*,
    PDSEC 2015 (IEEE IPDPSW), pp. 980–989.

The library provides:

- a raw-array CSR sparse substrate (:mod:`repro.sparse`);
- ABFT-protected SpMxV with single-error detection or double-detect /
  single-correct, including the floating-point tolerance of Theorem 2
  (:mod:`repro.abft`);
- bit-flip silent-error injection under the paper's fault model
  (:mod:`repro.faults`);
- verified checkpointing (:mod:`repro.checkpoint`);
- a solver-agnostic resilience engine whose recurrence plugins (CG,
  BiCGstab, Jacobi-PCG) run under the ONLINE-DETECTION /
  ABFT-DETECTION / ABFT-CORRECTION schemes (:mod:`repro.resilience`);
- plain CG / PCG / Krylov baselines and the fault-tolerant entry
  points (:mod:`repro.core`);
- the abstract performance model with numerical interval optimization
  (:mod:`repro.model`);
- a simulated message-passing parallel SpMxV with local ABFT
  (:mod:`repro.parallel`);
- the experiment drivers regenerating the paper's Table 1 and Figure 1
  (:mod:`repro.sim`);
- a parallel, resumable experiment-campaign engine with crash-safe
  JSONL persistence (:mod:`repro.campaign`);
- pluggable campaign stores — single-file JSONL, hash-partitioned
  shards and WAL-mode SQLite behind one URL-selected protocol, with
  lossless migration, streaming aggregation over partial stores and a
  lease-coordinated multi-worker serve mode (:mod:`repro.store`);
- the zero-copy hot path: reusable solve workspaces with strike-undo
  matrix restore and per-process checksum/matrix caches, bit-identical
  to the fresh-allocation oracle (:mod:`repro.perf`);
- pluggable sparse-kernel backends — the bit-identical ``reference``
  oracle, a SciPy-accelerated kernel, an optional numba JIT backend
  whose compiled *guarded* kernels stay bit-identical under fault
  injection, a threaded row-partitioned kernel and a dense small-n
  fallback — selectable on every solve entry point
  (:mod:`repro.backends`);
- structured tracing, process metrics and trace summaries — pure
  observation, zero overhead when off (:mod:`repro.obs`);
- adaptive sequential sampling: per-task repetitions stop once the
  Student-t confidence interval on the mean time is tight enough,
  with per-rep fault streams prefix-shared with fixed-count runs so
  stopping at ``k`` reps is bit-identical to the first ``k`` of a
  fixed run (:mod:`repro.adaptive`);
- the stable public API: the :func:`solve` facade, declarative
  :class:`Study` sweeps and the ``repro`` console script
  (:mod:`repro.api`).

Quickstart
----------
>>> from repro import laplacian_2d, solve, FaultSpec
>>> import numpy as np
>>> a = laplacian_2d(30)                      # 900x900 SPD matrix
>>> b = np.random.default_rng(0).standard_normal(a.nrows)
>>> report = solve(a, b, scheme="abft-correction",
...                faults=FaultSpec(alpha=0.05, seed=0))
>>> bool(report.converged)
True
"""

from repro.sparse import (
    CSRMatrix,
    spmv,
    laplacian_2d,
    laplacian_3d,
    anisotropic_2d,
    random_spd,
    banded_spd,
    graph_laplacian_spd,
    stencil_spd,
)
from repro.abft import (
    compute_checksums,
    protected_spmv,
    SpmvStatus,
    tmr_dot,
    tmr_norm2,
    tmr_axpy,
)
from repro.faults import FaultInjector, FaultModel, IterationFaultPlan, CGTargets
from repro.checkpoint import CheckpointStore, PeriodicCheckpointPolicy
from repro.core import (
    cg,
    pcg,
    jacobi_preconditioner,
    Scheme,
    Method,
    SchemeConfig,
    CostModel,
    run_ft_cg,
    run_ft_bicgstab,
    run_ft_pcg,
    run_ft_method,
    FTCGResult,
)
from repro.model import (
    expected_frame_time,
    frame_overhead,
    optimal_interval,
    model_for_scheme,
)
from repro.api import (
    solve,
    SolveReport,
    FaultSpec,
    CheckpointSpec,
    Study,
)
from repro.obs import (
    InMemoryTracer,
    JsonlTracer,
    NullTracer,
    Tracer,
    summarize_trace,
)
from repro.perf import SolveWorkspace
from repro.backends import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.store import (
    StoreBackend,
    available_store_schemes,
    open_store,
    register_store,
)
from repro.adaptive import SamplingPolicy

__version__ = "1.9.0"

__all__ = [
    "CSRMatrix",
    "spmv",
    "laplacian_2d",
    "laplacian_3d",
    "anisotropic_2d",
    "random_spd",
    "banded_spd",
    "graph_laplacian_spd",
    "stencil_spd",
    "compute_checksums",
    "protected_spmv",
    "SpmvStatus",
    "tmr_dot",
    "tmr_norm2",
    "tmr_axpy",
    "FaultInjector",
    "FaultModel",
    "IterationFaultPlan",
    "CGTargets",
    "CheckpointStore",
    "PeriodicCheckpointPolicy",
    "cg",
    "pcg",
    "jacobi_preconditioner",
    "Scheme",
    "Method",
    "SchemeConfig",
    "CostModel",
    "run_ft_cg",
    "run_ft_bicgstab",
    "run_ft_pcg",
    "run_ft_method",
    "FTCGResult",
    "expected_frame_time",
    "frame_overhead",
    "optimal_interval",
    "model_for_scheme",
    "solve",
    "SolveReport",
    "FaultSpec",
    "CheckpointSpec",
    "Study",
    "Tracer",
    "NullTracer",
    "InMemoryTracer",
    "JsonlTracer",
    "summarize_trace",
    "SolveWorkspace",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "StoreBackend",
    "available_store_schemes",
    "open_store",
    "register_store",
    "SamplingPolicy",
    "__version__",
]
