"""Disk-backed checkpoint storage.

The in-memory :class:`~repro.checkpoint.store.CheckpointStore` models
the paper's cost analysis (checkpoints live in reliable memory); this
variant persists snapshots as ``.npz`` files so a long solve survives a
process crash — the fail-stop layer a real deployment stacks *under*
the silent-error protection.  Same interface, same deep-copy semantics
on restore.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.checkpoint.store import Checkpoint

__all__ = ["DiskCheckpointStore"]

_MATRIX_KEYS = ("matrix_val", "matrix_colid", "matrix_rowidx", "matrix_shape")
_META_KEYS = ("iteration",) + _MATRIX_KEYS


class DiskCheckpointStore:
    """Checkpoints persisted under a directory, newest-``keep`` retained.

    Parameters
    ----------
    directory:
        Where the ``ckpt-<seq>.npz`` files go (created if missing).
    keep:
        Number of checkpoint files retained.
    """

    def __init__(self, directory: "str | os.PathLike", keep: int = 1) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.saves = 0
        self.restores = 0
        self._seq = self._initial_seq()

    def _initial_seq(self) -> int:
        existing = self._files()
        return (self._seq_of(existing[-1]) + 1) if existing else 0

    def _files(self) -> list[pathlib.Path]:
        return sorted(self.directory.glob("ckpt-*.npz"), key=self._seq_of)

    @staticmethod
    def _seq_of(path: pathlib.Path) -> int:
        return int(path.stem.split("-")[1])

    # ------------------------------------------------------------------
    def save(
        self,
        iteration: int,
        vectors: dict[str, np.ndarray],
        matrix: CSRMatrix | None = None,
        scalars: dict[str, float] | None = None,
    ) -> pathlib.Path:
        """Write a snapshot; returns the file path."""
        for key in vectors:
            if key.startswith(("matrix_", "scalar_")) or key == "iteration":
                raise ValueError(f"reserved vector name: {key!r}")
        payload: dict[str, np.ndarray] = {
            "iteration": np.int64(iteration),
            **{k: np.asarray(v, dtype=np.float64) for k, v in vectors.items()},
            **{f"scalar_{k}": np.float64(v) for k, v in (scalars or {}).items()},
        }
        if matrix is not None:
            payload["matrix_val"] = matrix.val
            payload["matrix_colid"] = matrix.colid
            payload["matrix_rowidx"] = matrix.rowidx
            payload["matrix_shape"] = np.asarray(matrix.shape, dtype=np.int64)
        path = self.directory / f"ckpt-{self._seq}.npz"
        # Write-then-rename so a crash mid-write never corrupts the
        # newest checkpoint (the whole point of the disk variant).
        tmp = path.with_suffix(".tmp.npz")
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, path)
        self._seq += 1
        self.saves += 1
        for old in self._files()[: -self.keep]:
            old.unlink()
        return path

    @property
    def empty(self) -> bool:
        """True when no checkpoint file exists."""
        return not self._files()

    def restore(self) -> Checkpoint:
        """Load the newest checkpoint as fresh arrays."""
        files = self._files()
        if not files:
            raise LookupError(f"no checkpoint in {self.directory}")
        with np.load(files[-1]) as data:
            vectors = {
                k: np.array(data[k], dtype=np.float64)
                for k in data.files
                if k not in _META_KEYS and not k.startswith("scalar_")
            }
            scalars = {
                k[len("scalar_"):]: float(data[k])
                for k in data.files
                if k.startswith("scalar_")
            }
            matrix = None
            if "matrix_val" in data.files:
                matrix = CSRMatrix(
                    np.array(data["matrix_val"]),
                    np.array(data["matrix_colid"]),
                    np.array(data["matrix_rowidx"]),
                    tuple(int(v) for v in data["matrix_shape"]),
                    check=False,
                )
            iteration = int(data["iteration"])
        self.restores += 1
        return Checkpoint(
            iteration=iteration, vectors=vectors, matrix=matrix, scalars=scalars
        )
