"""Backward recovery: in-memory checkpointing of solver state.

The paper's schemes checkpoint the CG iteration vectors **and the
sparse matrix** (the extension to Chen's method described in Section
3.1): a detected memory error may have corrupted ``A`` itself, so
recovery must restore a valid copy of the matrix too.  A checkpoint is
taken only right after a successful verification, which is what makes
the last checkpoint always valid.
"""

from repro.checkpoint.store import Checkpoint, CheckpointStore
from repro.checkpoint.disk import DiskCheckpointStore
from repro.checkpoint.policy import PeriodicCheckpointPolicy

__all__ = ["Checkpoint", "CheckpointStore", "DiskCheckpointStore", "PeriodicCheckpointPolicy"]
