"""Checkpoint placement policies.

The paper's schemes checkpoint every ``s`` verified chunks (ABFT: every
``s`` iterations; Chen: every ``c`` verified groups of ``d``
iterations).  The policy object tracks progress since the last
checkpoint and answers "checkpoint now?" after each successful
verification.
"""

from __future__ import annotations

__all__ = ["PeriodicCheckpointPolicy"]


class PeriodicCheckpointPolicy:
    """Checkpoint after every ``interval`` successful verified chunks.

    Parameters
    ----------
    interval:
        The ``s`` of the performance model: number of verified chunks
        per frame.  Must be ≥ 1.
    """

    def __init__(self, interval: int) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = int(interval)
        self._since_checkpoint = 0

    def chunk_verified(self) -> bool:
        """Record a verified chunk; return True when a checkpoint is due."""
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.interval:
            self._since_checkpoint = 0
            return True
        return False

    def rolled_back(self) -> None:
        """Reset progress after a rollback (the frame restarts)."""
        self._since_checkpoint = 0

    @property
    def chunks_since_checkpoint(self) -> int:
        """Verified chunks since the last checkpoint (or rollback)."""
        return self._since_checkpoint
