"""Checkpoint storage for fault-tolerant iterative solvers.

Snapshots are deep copies: the live arrays keep getting corrupted by
the injector, so a checkpoint must own its memory.  Checkpoint data is
assumed to live in reliable storage (the paper assumes checkpoint,
recovery and verification are error-free operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One verified solver state.

    Attributes
    ----------
    iteration:
        Iteration count at which the snapshot was taken.
    vectors:
        Deep copies of the iteration vectors, keyed by name.
    matrix:
        Deep copy of the (verified-clean) matrix, or None for schemes
        that do not checkpoint the matrix.
    scalars:
        Any scalar state the solver needs to resume (e.g. ``‖r‖²``).
    """

    iteration: int
    vectors: dict[str, np.ndarray]
    matrix: CSRMatrix | None = None
    scalars: dict[str, float] = field(default_factory=dict)

    @property
    def size_words(self) -> int:
        """Words written by this checkpoint (drives the Tcp cost model)."""
        total = sum(v.size for v in self.vectors.values())
        if self.matrix is not None:
            total += self.matrix.memory_words
        return total


class CheckpointStore:
    """Holds the most recent checkpoint(s) and restore bookkeeping.

    Parameters
    ----------
    keep:
        Number of checkpoints retained (1 suffices for the paper's
        schemes because a checkpoint is only taken after verification;
        more can be kept for multi-version ablations).
    """

    def __init__(self, keep: int = 1, *, recycle: bool = False) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = keep
        self.recycle = recycle
        self._stack: list[Checkpoint] = []
        self.saves = 0
        self.restores = 0
        self.words_written = 0

    def save(
        self,
        iteration: int,
        vectors: dict[str, np.ndarray],
        matrix: CSRMatrix | None = None,
        scalars: dict[str, float] | None = None,
    ) -> Checkpoint:
        """Deep-copy the given state and push it as the newest checkpoint.

        With ``recycle=True`` the arrays of the checkpoint evicted by
        this save are reused as the copy destinations when their layout
        matches, making steady-state checkpointing allocation-free.
        Only enable it when no reference to an evicted
        :class:`Checkpoint` outlives the eviction (the resilience
        engine's private store qualifies; a store whose checkpoints are
        handed to callers does not).
        """
        staging: "Checkpoint | None" = None
        if self.recycle and len(self._stack) >= self.keep:
            staging = self._stack[len(self._stack) - self.keep]
        new_vectors: dict[str, np.ndarray] = {}
        for k, v in vectors.items():
            dst = staging.vectors.get(k) if staging is not None else None
            if dst is not None and dst.shape == v.shape:
                np.copyto(dst, v)
                new_vectors[k] = dst
            else:
                new_vectors[k] = np.array(v, dtype=np.float64, copy=True)
        new_matrix: "CSRMatrix | None" = None
        if matrix is not None:
            old = staging.matrix if staging is not None else None
            if (
                old is not None
                and old.shape == matrix.shape
                and old.nnz == matrix.nnz
            ):
                old.val[:] = matrix.val
                old.colid[:] = matrix.colid
                old.rowidx[:] = matrix.rowidx
                old._structure_clean = matrix._structure_clean
                old._rows_nonempty = matrix._rows_nonempty
                new_matrix = old
            else:
                new_matrix = matrix.copy()
        cp = Checkpoint(
            iteration=iteration,
            vectors=new_vectors,
            matrix=new_matrix,
            scalars=dict(scalars or {}),
        )
        self._stack.append(cp)
        if len(self._stack) > self.keep:
            self._stack.pop(0)
        self.saves += 1
        self.words_written += cp.size_words
        return cp

    @property
    def latest(self) -> Checkpoint:
        """The most recent checkpoint (raises if none was ever saved)."""
        if not self._stack:
            raise LookupError("no checkpoint available")
        return self._stack[-1]

    @property
    def empty(self) -> bool:
        """True when no checkpoint has been saved yet."""
        return not self._stack

    def restore(self) -> Checkpoint:
        """Return the latest checkpoint with *fresh copies* of its state.

        Fresh copies are essential: the caller hands the arrays back to
        the injector, which will corrupt them — the stored snapshot
        itself must stay pristine for the next rollback.
        """
        cp = self.latest
        self.restores += 1
        return Checkpoint(
            iteration=cp.iteration,
            vectors={k: v.copy() for k, v in cp.vectors.items()},
            matrix=cp.matrix.copy() if cp.matrix is not None else None,
            scalars=dict(cp.scalars),
        )

    def borrow_latest(self) -> Checkpoint:
        """The latest checkpoint itself — zero copies, read-only loan.

        For callers (the resilience engine) that copy values *out of*
        the snapshot into their own live arrays and never hand the
        snapshot's arrays to the injector.  The borrow counts as a
        restore; mutating the returned state corrupts the store.
        """
        cp = self.latest
        self.restores += 1
        return cp
