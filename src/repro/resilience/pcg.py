"""Jacobi-preconditioned CG as a recurrence plugin (FT-PCG).

The paper's Section 6 singles out diagonal (Jacobi) preconditioners as
attractive because the preconditioner application is itself a
(diagonal) SpMxV the same ABFT machinery can protect.  This plugin is
the first solver added *on* the resilience engine rather than as
another monolithic driver — the proof that the solver axis is open:

- the ``A·p`` product runs through the engine's protected SpMxV
  (strikes on ``val``/``colid``/``rowidx``/``p`` land in its window,
  ``q`` strikes corrupt its output);
- the Jacobi diagonal ``M⁻¹ = diag(A)⁻¹`` is extracted once from the
  *clean* input matrix and lives in reliable memory for the whole
  solve, exactly like the ABFT checksum metadata (selective
  reliability); its application is a TMR-replicated vector kernel;
- strikes on ``x``/``r``/``z`` land in the TMR-voted vector phase: a
  single strike per kernel is out-voted, a double strike defeats the
  vote and forces a rollback.

ONLINE-DETECTION is rejected: Chen's orthogonality test assumes the
unpreconditioned CG recurrence.  Recovery follows the CG ledger
(:data:`~repro.resilience.protocol.CG_RECOVERY`).
"""

from __future__ import annotations

import numpy as np

from repro.checkpoint.store import Checkpoint
from repro.core.methods import Scheme, SchemeConfig
from repro.core.pcg import jacobi_inverse_diagonal
from repro.resilience.protocol import CG_RECOVERY, SPMV_PRE_TARGETS, StepOutcome
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmv

__all__ = ["JacobiPCGPlugin"]


class JacobiPCGPlugin:
    """Preconditioned CG (Saad, Alg. 9.1) with a protected product."""

    name = "pcg"
    recovery = CG_RECOVERY

    def check_scheme(self, scheme: Scheme) -> None:
        if not scheme.uses_abft:
            raise ValueError(f"{self.name} supports the ABFT schemes only")

    def init_state(
        self,
        a: CSRMatrix,
        live: CSRMatrix,
        b: np.ndarray,
        x0: "np.ndarray | None",
        config: SchemeConfig,
        workspace=None,
        backend=None,
    ) -> None:
        n = a.nrows
        self.backend = backend
        if workspace is None:
            # Reliable metadata, like the checksums.
            self.minv = jacobi_inverse_diagonal(a)
        else:
            # Same values, extracted once per matrix instead of per run.
            self.minv = workspace.jacobi_minv(a)
        self.live = live
        self.b = b
        if workspace is None:
            self.x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
            self.r = b - spmv(live, self.x, backend=backend)
            self.z = self.minv * self.r
            self.p = self.z.copy()
            self.q = np.zeros(n)
        else:
            # Workspace-backed vectors, fully overwritten (no state can
            # leak between runs sharing the workspace).
            self.x = workspace.zeros("pcg.x", n)
            if x0 is not None:
                self.x[:] = x0
            self.r = workspace.buffer("pcg.r", n)
            spmv(
                live,
                self.x,
                out=self.r,
                scratch=workspace.buffer("spmv.scratch", live.nnz),
                backend=backend,
            )
            np.subtract(b, self.r, out=self.r)
            self.z = workspace.buffer("pcg.z", n)
            np.multiply(self.minv, self.r, out=self.z)
            self.p = workspace.buffer("pcg.p", n)
            self.p[:] = self.z
            self.q = workspace.zeros("pcg.q", n)
        self.rz = float(self.r @ self.z)
        self.iteration = 0

    @property
    def vectors(self) -> dict[str, np.ndarray]:
        return {"x": self.x, "r": self.r, "p": self.p, "q": self.q, "z": self.z}

    def scalars(self) -> dict[str, float]:
        return {"rz": self.rz}

    def load_scalars(self, cp: Checkpoint) -> None:
        self.rz = float(cp.scalars["rz"])
        self.iteration = cp.iteration

    def initial_converged(self, threshold: float) -> bool:
        return self._rnorm() <= threshold

    def _rnorm(self) -> float:
        """Residual norm via the active backend (bit-identical: every
        shipped backend inherits the NumPy reduction)."""
        if self.backend is not None:
            return float(self.backend.norm2(self.r))
        return float(np.linalg.norm(self.r))

    def after_rollback(self) -> None:
        """PCG keeps no verification-chunk state."""

    def refresh(self, cp: Checkpoint, a: CSRMatrix, b: np.ndarray) -> None:
        """Restart PCG from the checkpointed iterate with reliable data."""
        self.x[:] = cp.vectors["x"]
        self.live.val[:] = a.val
        self.live.colid[:] = a.colid
        self.live.rowidx[:] = a.rowidx
        self.r[:] = b - spmv(a, self.x, backend=self.backend)
        self.z[:] = self.minv * self.r
        self.p[:] = self.z
        self.q[:] = 0.0
        self.rz = float(self.r @ self.z)
        self.iteration = cp.iteration

    # ------------------------------------------------------------------
    # one iteration
    # ------------------------------------------------------------------
    def step(self, ctx, strikes: "list[tuple[str, int, int]]") -> StepOutcome:
        ctx.charge_verified_iteration()

        pre = [s for s in strikes if s[0] in SPMV_PRE_TARGETS]
        post = [s for s in strikes if s[0] == "q"]
        vector_phase = [s for s in strikes if s[0] in ("r", "x", "z")]

        y = ctx.protected_product(self.p, pre, post, count_detection=True)
        if y is None:
            return StepOutcome.rollback("abft")
        self.q[:] = y

        if not ctx.tmr_vote(vector_phase, stop_on_failure=True):
            return StepOutcome.rollback("tmr")

        # Reliable PCG update (TMR-voted kernels, reliable M⁻¹ apply).
        pq = float(self.p @ self.q)
        if not np.isfinite(pq) or pq <= 0.0:
            ctx.log.emit("breakdown", self.iteration, pq=pq)
            ctx.trace("breakdown", what="pq", value=pq)
            return StepOutcome.rollback("breakdown")
        alpha_step = self.rz / pq
        self.x += alpha_step * self.p
        self.r -= alpha_step * self.q
        self.z[:] = self.minv * self.r
        rz_new = float(self.r @ self.z)
        if not np.isfinite(rz_new):
            return StepOutcome.rollback("breakdown")
        beta = rz_new / self.rz
        self.p *= beta
        self.p += self.z
        self.rz = rz_new
        self.iteration += 1

        rnorm = self._rnorm()
        return StepOutcome.advanced(bool(np.isfinite(rnorm) and rnorm <= ctx.threshold))
