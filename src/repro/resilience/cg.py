"""Conjugate Gradient as a recurrence plugin (all three schemes).

This is the paper's flagship solver on the resilience engine:

ONLINE-DETECTION (Chen [9], extended to checkpoint the matrix)
    Iterations run unprotected; every ``d`` iterations Chen's stability
    tests (orthogonality + recomputed residual) run, and every ``s``
    verified chunks a checkpoint is taken.  Any detection rolls back.

ABFT-DETECTION / ABFT-CORRECTION
    Every SpMxV runs through the engine's protected product (one or
    two checksum rows); vector kernels are TMR-voted; single errors
    are forward-corrected under ABFT-CORRECTION.

Strike routing follows Section 5.1: ``val``/``colid``/``rowidx``/``p``
strikes land before the product, ``q`` strikes corrupt its output, and
``r``/``x`` strikes land in the TMR-protected vector-kernel phase (in
ONLINE-DETECTION there is no TMR, so every strike lands directly in
memory and persists until a verification catches it).
"""

from __future__ import annotations

import numpy as np

from repro.checkpoint.store import Checkpoint
from repro.core.methods import Scheme, SchemeConfig
from repro.core.stability import chen_verify
from repro.resilience.protocol import CG_RECOVERY, SPMV_PRE_TARGETS, StepOutcome
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmv

__all__ = ["CGPlugin"]


class CGPlugin:
    """The CG recurrence (paper Algorithm 1) behind the engine."""

    name = "cg"
    recovery = CG_RECOVERY

    def check_scheme(self, scheme: Scheme) -> None:
        """CG supports all three schemes."""

    def init_state(
        self,
        a: CSRMatrix,
        live: CSRMatrix,
        b: np.ndarray,
        x0: "np.ndarray | None",
        config: SchemeConfig,
        workspace=None,
        backend=None,
    ) -> None:
        n = a.nrows
        self.live = live
        self.b = b
        self.config = config
        self.workspace = workspace
        self.backend = backend
        if workspace is None:
            self.x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
            self.r = b - spmv(live, self.x, backend=backend)
            self.p = self.r.copy()
            self.q = np.zeros(n)
        else:
            # Workspace-backed vectors: same names, same initial values,
            # storage reused across runs (every entry is overwritten here,
            # so nothing can leak from a previous repetition).
            self.x = workspace.zeros("cg.x", n)
            if x0 is not None:
                self.x[:] = x0
            self.r = workspace.buffer("cg.r", n)
            spmv(
                live,
                self.x,
                out=self.r,
                scratch=workspace.buffer("spmv.scratch", live.nnz),
                backend=backend,
            )
            np.subtract(b, self.r, out=self.r)
            self.p = workspace.buffer("cg.p", n)
            self.p[:] = self.r
            self.q = workspace.zeros("cg.q", n)
        self.rr = float(self.r @ self.r)
        self.iteration = 0
        self.iter_in_chunk = 0  #: ONLINE-DETECTION's position inside the chunk

    @property
    def vectors(self) -> dict[str, np.ndarray]:
        return {"x": self.x, "r": self.r, "p": self.p, "q": self.q}

    def scalars(self) -> dict[str, float]:
        return {"rr": self.rr}

    def load_scalars(self, cp: Checkpoint) -> None:
        self.rr = float(cp.scalars["rr"])
        self.iteration = cp.iteration

    def initial_converged(self, threshold: float) -> bool:
        return bool(np.sqrt(self.rr) <= threshold)

    def after_rollback(self) -> None:
        self.iter_in_chunk = 0

    def refresh(self, cp: Checkpoint, a: CSRMatrix, b: np.ndarray) -> None:
        """Restart CG from the checkpointed iterate with reliable data."""
        self.x[:] = cp.vectors["x"]
        self.live.val[:] = a.val
        self.live.colid[:] = a.colid
        self.live.rowidx[:] = a.rowidx
        self.r[:] = self.b - spmv(a, self.x, backend=self.backend)
        self.p[:] = self.r
        self.q[:] = 0.0
        self.rr = float(self.r @ self.r)
        self.iteration = cp.iteration

    # ------------------------------------------------------------------
    # one iteration
    # ------------------------------------------------------------------
    def step(self, ctx, strikes: "list[tuple[str, int, int]]") -> StepOutcome:
        if ctx.scheme.uses_abft:
            return self._abft_step(ctx, strikes)
        return self._online_step(ctx, strikes)

    def _abft_step(self, ctx, strikes: "list[tuple[str, int, int]]") -> StepOutcome:
        """One ABFT-protected iteration (product, TMR vote, update)."""
        ok = self._abft_iteration(ctx, strikes)
        ctx.charge_verified_iteration()
        if not ok:
            ctx.counters.detections += 1
            return StepOutcome.rollback("abft")
        self.iteration += 1
        return StepOutcome.advanced(bool(np.sqrt(self.rr) <= ctx.threshold))

    def _abft_iteration(self, ctx, strikes: "list[tuple[str, int, int]]") -> bool:
        if strikes:
            pre = [s for s in strikes if s[0] in SPMV_PRE_TARGETS]
            post = [s for s in strikes if s[0] == "q"]
            vector_phase = [s for s in strikes if s[0] in ("r", "x")]
        else:  # the common iteration: nothing landed, skip the filters
            pre = post = vector_phase = strikes

        y = ctx.protected_product(self.p, pre, post)
        if y is None:
            return False
        self.q[:] = y

        # Vector-kernel phase under TMR; a double strike in one vector
        # defeats the vote and forces a rollback.
        if not ctx.tmr_vote(vector_phase, stop_on_failure=True):
            return False

        # Reliable CG update (TMR-voted kernels).
        pq = float(self.p @ self.q)
        if not np.isfinite(pq) or pq <= 0.0:
            # Curvature corrupted below detection thresholds; treat as a
            # detected error rather than dividing by garbage.
            ctx.log.emit("breakdown", self.iteration, pq=pq)
            ctx.trace("breakdown", what="pq", value=pq)
            return False
        alpha_step = self.rr / pq
        ws = self.workspace
        if ws is None:
            self.x += alpha_step * self.p
            self.r -= alpha_step * self.q
        else:
            # Same axpy floats, explicit temporary instead of a fresh
            # allocation per operation.
            t = ws.buffer("cg.tmp", self.x.shape[0])
            np.multiply(alpha_step, self.p, out=t)
            self.x += t
            np.multiply(alpha_step, self.q, out=t)
            self.r -= t
        rr_new = float(self.r @ self.r)
        beta = rr_new / self.rr
        self.p *= beta
        self.p += self.r
        self.rr = rr_new
        return True

    def _online_step(self, ctx, strikes: "list[tuple[str, int, int]]") -> StepOutcome:
        """One unprotected iteration: all strikes land directly in memory."""
        if ctx.injector is not None:
            for s in strikes:
                ctx.injector.apply_strike(self.iteration, s)
        with np.errstate(all="ignore"):
            if self.workspace is None:
                self.q[:] = spmv(self.live, self.p, backend=self.backend)
            else:
                spmv(
                    self.live,
                    self.p,
                    out=self.q,
                    scratch=self.workspace.buffer("spmv.scratch", self.live.nnz),
                    backend=self.backend,
                )
            pq = float(self.p @ self.q)
            alpha_step = self.rr / pq if pq != 0.0 else np.nan
            self.x += alpha_step * self.p
            self.r -= alpha_step * self.q
            rr_new = float(self.r @ self.r)
            beta = rr_new / self.rr if self.rr != 0.0 else np.nan
            self.p *= beta
            self.p += self.r
            self.rr = rr_new
        ctx.charge_iteration()
        self.iteration += 1
        self.iter_in_chunk += 1
        rr_says_done = bool(np.isfinite(self.rr) and np.sqrt(self.rr) <= ctx.threshold)
        if self.iter_in_chunk >= self.config.verification_interval or rr_says_done:
            report = chen_verify(
                self.live,
                self.b,
                self.x,
                self.r,
                self.p,
                self.q,
                check_orthogonality=not rr_says_done,
                backend=self.backend,
            )
            ctx.charge_verification(ctx.costs.t_verif_online)
            self.iter_in_chunk = 0
            ctx.trace("chen-verify", passed=bool(report.passed))
            if not report.passed:
                ctx.counters.detections += 1
                return StepOutcome.rollback("chen")
            return StepOutcome.advanced(rr_says_done)
        return StepOutcome.advanced(False, verified=False)
