"""The recurrence-plugin protocol of the resilience engine.

The engine (:mod:`repro.resilience.engine`) owns everything the
paper's protection schemes share — strike sampling and routing,
ABFT-protected products, TMR voting, periodic verification,
checkpoint/rollback orchestration and the time/recovery ledger.  A
*recurrence plugin* contributes only what is solver-specific:

- the iteration state (vectors, scalars, live-matrix references);
- the strike windows (which vector names feed which protected product,
  which live in the TMR-voted phase);
- one :meth:`RecurrencePlugin.step` advancing the recurrence through
  the engine's protected services;
- a convergence test and a refresh (restart-from-reliable-data) reset.

Plugins are *single-use*: the engine instantiates one per run via the
:mod:`repro.resilience.registry` factories, and :meth:`bind` /
:meth:`init_state` wire it to that run's live state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.checkpoint.store import Checkpoint
    from repro.core.methods import Scheme, SchemeConfig
    from repro.resilience.engine import EngineContext
    from repro.sparse.csr import CSRMatrix

__all__ = [
    "SPMV_PRE_TARGETS",
    "StepOutcome",
    "RecoveryPolicy",
    "CG_RECOVERY",
    "KRYLOV_RECOVERY",
    "RecurrencePlugin",
]

#: Strike targets that land in a protected product's *pre* window: the
#: matrix arrays plus the product's input vector (every plugin names
#: its primary search direction ``p``).  Part of the engine's window
#: contract — strikes here hit after the ABFT layer's reliable input
#: snapshot, so they are the checksums' to catch.
SPMV_PRE_TARGETS = frozenset({"val", "colid", "rowidx", "p"})


@dataclass(frozen=True)
class StepOutcome:
    """What one plugin step asked the engine to do next.

    ``rollback(reason)`` steps trigger the engine's backward recovery;
    ``advanced`` steps committed their work, optionally claiming
    convergence, and ``verified`` tells the engine whether the step
    ended at a verification point (only verified, non-converged steps
    are eligible for a checkpoint — ONLINE-DETECTION's mid-chunk
    iterations are advanced-but-unverified).
    """

    rolled_back: bool
    reason: str = ""
    converged: bool = False
    verified: bool = True

    @classmethod
    def rollback(cls, reason: str) -> "StepOutcome":
        """The step detected an error the engine must roll back."""
        return cls(rolled_back=True, reason=reason)

    @classmethod
    def advanced(cls, converged: bool, *, verified: bool = True) -> "StepOutcome":
        """The step committed one (possibly unverified) iteration.

        Returns interned instances: the class is frozen and ``advanced``
        outcomes carry no per-step data, so the per-iteration dataclass
        construction would be pure overhead.
        """
        return _ADVANCED[(bool(converged), verified)]


#: The four immutable "advanced" outcomes, interned (see
#: :meth:`StepOutcome.advanced`).
_ADVANCED = {
    (c, v): StepOutcome(rolled_back=False, converged=c, verified=v)
    for c in (False, True)
    for v in (False, True)
}


@dataclass(frozen=True)
class RecoveryPolicy:
    """Solver-family accounting conventions for backward recovery.

    The seed tree's two FT drivers grew slightly different rollback
    ledgers; both are preserved exactly (the golden-trajectory tests
    depend on it) and expressed here as data instead of duplicated
    control flow:

    Attributes
    ----------
    charge_before_stuck_check:
        Whether a rollback is charged/counted *before* the
        stuck-checkpoint probe (BiCGstab) or only on the non-refresh
        path (CG, whose refresh does its own charging).
    refresh_charges_restart:
        Whether a refresh-rollback bills ``t_rec + t_iter`` (CG's
        re-read of initial data plus the reliable residual SpMxV) —
        when False the preceding rollback charge already covered it.
    refresh_counts_rollback:
        Whether the refresh increments the rollback counter itself.
    refresh_notifies_policy:
        Whether the refresh calls ``CheckpointPolicy.rolled_back()``.
    final_check_refreshes:
        Escalate a bogus convergence (final reliable residual check
        fails) straight to a refresh-rollback (CG) instead of a plain
        rollback (BiCGstab).
    final_check_counts_detection:
        Whether that bogus convergence also counts as a detection.
    """

    charge_before_stuck_check: bool
    refresh_charges_restart: bool
    refresh_counts_rollback: bool
    refresh_notifies_policy: bool
    final_check_refreshes: bool
    final_check_counts_detection: bool


#: The FT-CG driver's ledger: probe for a tainted checkpoint first and
#: let the refresh do its own (heavier) charging.
CG_RECOVERY = RecoveryPolicy(
    charge_before_stuck_check=False,
    refresh_charges_restart=True,
    refresh_counts_rollback=True,
    refresh_notifies_policy=True,
    final_check_refreshes=True,
    final_check_counts_detection=True,
)

#: The FT-BiCGstab driver's ledger: every rollback is charged/counted
#: up front; escalating to a refresh adds no further cost.
KRYLOV_RECOVERY = RecoveryPolicy(
    charge_before_stuck_check=True,
    refresh_charges_restart=False,
    refresh_counts_rollback=False,
    refresh_notifies_policy=False,
    final_check_refreshes=False,
    final_check_counts_detection=False,
)


@runtime_checkable
class RecurrencePlugin(Protocol):
    """Solver-specific recurrence behind the resilience engine.

    Concrete plugins (:mod:`repro.resilience.cg`,
    :mod:`repro.resilience.bicgstab`, :mod:`repro.resilience.pcg`)
    implement this protocol; the engine drives them through
    :meth:`step` and the checkpoint/restore hooks.
    """

    #: Human-readable method name ("cg", "bicgstab", ...).
    name: str
    #: Rollback-accounting conventions for this solver family.
    recovery: RecoveryPolicy
    #: Logical iteration counter (rolled back on restore).
    iteration: int

    def check_scheme(self, scheme: "Scheme") -> None:
        """Raise ``ValueError`` when ``scheme`` is unsupported."""
        ...

    def init_state(
        self,
        a: "CSRMatrix",
        live: "CSRMatrix",
        b: np.ndarray,
        x0: "np.ndarray | None",
        config: "SchemeConfig",
        workspace=None,
        backend=None,
    ) -> None:
        """Allocate the iteration vectors/scalars for one run.

        ``live`` is the engine-owned corruptible matrix copy; ``a`` is
        the pristine input (reliable storage, used only for refreshes
        and preconditioner setup).  ``workspace`` is an optional
        :class:`repro.perf.SolveWorkspace`: plugins should draw their
        iteration vectors from it (``workspace.buffer``/``zeros``,
        fully overwriting every entry so no state survives between
        runs) and may pass its SpMxV scratch to kernels; with ``None``
        they must allocate fresh arrays.  Either way the initial values
        must be bit-identical.  ``backend`` is the engine-resolved
        kernel backend (``None`` = reference): plugins must store it
        and pass it to every direct :func:`repro.sparse.spmv.spmv`
        call they issue (initial residual, refresh, unprotected
        steps), so the whole run sits on one kernel axis.
        """
        ...

    @property
    def vectors(self) -> dict[str, np.ndarray]:
        """Named iteration vectors, in fault-injector registration
        order (the order is part of the RNG contract)."""
        ...

    def scalars(self) -> dict[str, float]:
        """Scalar recurrence state to include in a checkpoint."""
        ...

    def load_scalars(self, cp: "Checkpoint") -> None:
        """Restore scalar state (and the iteration counter) from a
        checkpoint; vectors and the matrix are restored by the engine."""
        ...

    def initial_converged(self, threshold: float) -> bool:
        """Convergence test on the initial state (before any step)."""
        ...

    def step(self, ctx: "EngineContext", strikes: "list[tuple[str, int, int]]") -> StepOutcome:
        """Run one iteration under the sampled strikes."""
        ...

    def refresh(self, cp: "Checkpoint", a: "CSRMatrix", b: np.ndarray) -> None:
        """Restart from reliable data: heal state the checkpoints
        cannot (e.g. a sub-tolerance matrix corruption that slipped
        into a snapshot).  Must leave the recurrence consistent."""
        ...

    def after_rollback(self) -> None:
        """Hook invoked after every rollback/refresh (e.g. to reset a
        verification-chunk counter)."""
        ...
