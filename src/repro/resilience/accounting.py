"""Recovery bookkeeping shared by every protected solver.

These containers used to live inside the monolithic FT-CG driver; the
resilience engine owns them now so every recurrence plugin (CG,
BiCGstab, PCG, ...) reports through the same ledger.  ``FTCGResult``
remains importable from :mod:`repro.core.ft_cg` as an alias of
:class:`SolveResult` for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.methods import SchemeConfig

__all__ = ["RecoveryCounters", "TimeBreakdown", "SolveResult"]


@dataclass
class RecoveryCounters:
    """Bookkeeping of everything the resilience layers did."""

    faults_injected: int = 0
    detections: int = 0  #: verifications that flagged an error
    corrections: dict[str, int] = field(default_factory=dict)  #: ABFT repairs by kind
    rollbacks: int = 0
    checkpoints: int = 0
    verifications: int = 0
    tmr_corrections: int = 0  #: vector-kernel strikes out-voted by TMR
    tmr_detections: int = 0  #: TMR double-error failures (forced rollback)
    final_check_failures: int = 0  #: bogus convergences caught at the end

    def record_correction(self, kind: str) -> None:
        """Count one ABFT forward-recovery repair of the given kind."""
        self.corrections[kind] = self.corrections.get(kind, 0) + 1

    @property
    def total_corrections(self) -> int:
        """All ABFT forward recoveries."""
        return sum(self.corrections.values())


@dataclass
class TimeBreakdown:
    """Where the simulated execution time went (all in ``Titer`` units).

    ``useful_work + wasted_work + verification + checkpoint + recovery``
    equals the run's total ``time_units``; the *waste ratio* is what the
    Section-4 model's overhead ``E(s,T)/(sT)`` predicts.
    """

    useful_work: float = 0.0  #: iterations that survived to the end
    wasted_work: float = 0.0  #: iterations later discarded by rollbacks
    verification: float = 0.0
    checkpoint: float = 0.0
    recovery: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all components."""
        return (
            self.useful_work
            + self.wasted_work
            + self.verification
            + self.checkpoint
            + self.recovery
        )

    @property
    def overhead_ratio(self) -> float:
        """Total time per useful time unit (the model's objective)."""
        return self.total / self.useful_work if self.useful_work > 0 else float("inf")


@dataclass(frozen=True)
class SolveResult:
    """Outcome of a fault-tolerant solve (any method, any scheme).

    Attributes
    ----------
    x:
        The solution vector.
    converged:
        Whether the (reliably re-verified) stopping criterion was met.
    iterations:
        Logical solver iteration reached (rollbacks rewind this count).
    iterations_executed:
        Total iterations of work performed, including rolled-back ones.
    time_units:
        Simulated execution time in units of ``Titer`` — iteration work
        plus verification, checkpoint and recovery overheads.  This is
        the quantity Table 1 and Figure 1 report.
    wall_seconds:
        Actual wall-clock time of the run (reference only).
    residual_norm:
        True residual ``‖b − Ax‖`` recomputed with the clean matrix.
    threshold:
        The stopping threshold used.
    counters:
        Recovery bookkeeping.
    breakdown:
        Component-wise split of ``time_units``.
    config:
        The configuration that produced this run.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    iterations_executed: int
    time_units: float
    wall_seconds: float
    residual_norm: float
    threshold: float
    counters: RecoveryCounters
    breakdown: TimeBreakdown
    config: SchemeConfig
