"""Solver-agnostic resilience engine and its recurrence plugins.

The paper combines ABFT-protected SpMxV, TMR-voted vector kernels and
verified checkpointing, and claims the combination "carries over to
CGNE, BiCG, BiCGstab".  This package is that claim as architecture:

- :mod:`repro.resilience.engine` — the protection engine.  It owns
  strike sampling/routing, the protected product, TMR voting,
  checkpoint/rollback/refresh orchestration, the reliable final check
  and all time/recovery accounting;
- :mod:`repro.resilience.protocol` — the small protocol a solver
  implements to run on the engine (iteration state, strike windows,
  one step function, a convergence test, a refresh reset), plus the
  :class:`~repro.resilience.protocol.RecoveryPolicy` ledgers;
- :mod:`repro.resilience.cg` / :mod:`~repro.resilience.bicgstab` /
  :mod:`~repro.resilience.pcg` — the recurrence plugins.  CG and
  BiCGstab reproduce the seed tree's monolithic drivers bit-for-bit
  (``tests/test_resilience_golden.py``); Jacobi-preconditioned CG is
  the first solver born on the engine;
- :mod:`repro.resilience.registry` — :class:`~repro.core.methods
  .Method` → plugin dispatch (:func:`run_ft_method`);
- :mod:`repro.resilience.accounting` — the shared
  :class:`RecoveryCounters` / :class:`TimeBreakdown` /
  :class:`SolveResult` containers.

The legacy entry points :func:`repro.core.ft_cg.run_ft_cg` and
:func:`repro.core.ft_krylov.run_ft_bicgstab` are thin wrappers over
this package.
"""

from repro.resilience.accounting import RecoveryCounters, SolveResult, TimeBreakdown
from repro.resilience.bicgstab import BiCGstabPlugin
from repro.resilience.cg import CGPlugin
from repro.resilience.engine import EngineContext, run_protected
from repro.resilience.pcg import JacobiPCGPlugin
from repro.resilience.protocol import (
    CG_RECOVERY,
    KRYLOV_RECOVERY,
    RecoveryPolicy,
    RecurrencePlugin,
    StepOutcome,
)
from repro.resilience.registry import PLUGIN_FACTORIES, make_plugin, run_ft_method, run_ft_pcg

__all__ = [
    "RecoveryCounters",
    "TimeBreakdown",
    "SolveResult",
    "RecurrencePlugin",
    "RecoveryPolicy",
    "StepOutcome",
    "CG_RECOVERY",
    "KRYLOV_RECOVERY",
    "EngineContext",
    "run_protected",
    "CGPlugin",
    "BiCGstabPlugin",
    "JacobiPCGPlugin",
    "PLUGIN_FACTORIES",
    "make_plugin",
    "run_ft_method",
    "run_ft_pcg",
]
