"""Solver-agnostic resilience engine.

One engine executes any recurrence plugin under the paper's three
protection schemes.  The engine owns every solver-independent piece of
the fault-tolerance machinery that the seed tree used to duplicate in
``core/ft_cg.py`` and ``core/ft_krylov.py``:

- the Poisson strike sampler and the live (corruptible) matrix copy;
- ABFT checksum metadata and the protected SpMxV service, with strikes
  routed into the pre-/post-product windows the plugin declares;
- TMR voting over the vector-kernel phase (single strike out-voted,
  double strike defeats the vote);
- checkpoint/restore orchestration, including the stuck-rollback
  probe that escalates to a refresh (re-read of initial data) when a
  checkpoint itself is tainted;
- the reliable final convergence check;
- all accounting: simulated ``Titer`` time, the
  :class:`~repro.resilience.accounting.TimeBreakdown`, the
  :class:`~repro.resilience.accounting.RecoveryCounters` and the
  event log.

Plugins advance their recurrence through the :class:`EngineContext`
services inside :meth:`RecurrencePlugin.step`; everything before and
after the step — sampling, rollback, checkpointing, the final check —
is the engine's.  The engine reproduces the seed drivers' trajectories
bit-for-bit (``tests/test_resilience_golden.py``): the RNG stream is
consumed only by strike sampling, and both the floating-point
accounting order and the injector registration order are preserved.
"""

from __future__ import annotations

import time as _time
import warnings
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.abft.checksums import compute_checksums
from repro.abft.spmv import SpmvStatus, protected_spmv
from repro.backends import resolve_backend
from repro.checkpoint.policy import PeriodicCheckpointPolicy
from repro.checkpoint.store import CheckpointStore
from repro.core.cg import cg_tolerance_threshold
from repro.core.methods import SchemeConfig
from repro.faults.bitflip import flip_bits_array
from repro.faults.injector import FaultInjector, FaultModel
from repro.faults.record import FaultRecord
from repro.obs.metrics import METRICS
from repro.obs.tracer import CallbackTracer, MultiTracer, Tracer, resolve_tracer
from repro.resilience.accounting import RecoveryCounters, SolveResult, TimeBreakdown
from repro.resilience.protocol import RecurrencePlugin
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmv
from repro.sparse.validate import structure_arrays_clean
from repro.util.log import EventLog
from repro.util.rng import as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.perf.workspace import SolveWorkspace

__all__ = ["EngineContext", "run_protected"]

#: Matrix arrays whose in-place repair by the ABFT decoder must enter
#: the workspace's strike-undo ledger (vector repairs need no ledger —
#: iteration vectors are fully re-initialized per run).
_MATRIX_CORRECTION_KINDS = frozenset({"val", "colid", "rowidx"})


class EngineContext:
    """The protected services a plugin may use inside one run.

    The context wraps the engine's mutable run state (time ledger,
    injector, checksums, counters, log) and exposes the operations the
    paper's schemes are built from.  Charging methods mirror the seed
    drivers' accounting exactly — each is one specific sequence of
    float additions, preserved so trajectories stay bit-identical.
    """

    def __init__(
        self,
        plugin: RecurrencePlugin,
        a: CSRMatrix,
        live: CSRMatrix,
        b: np.ndarray,
        config: SchemeConfig,
        log: EventLog,
        workspace: "SolveWorkspace | None" = None,
        backend: "object | None" = None,
    ) -> None:
        self.plugin = plugin
        #: Resolved kernel backend (``None`` = reference fast path);
        #: used for every SpMxV the engine or its plugins issue.
        self.backend = backend
        self.a = a  #: pristine input matrix (reliable storage)
        #: ``a`` through a flag-stamped view (same bytes, own structure
        #: stamp) so reliable products skip the SpMxV guards; set by the
        #: runner, defaults to ``a`` itself.
        self.a_view = a
        self.live = live  #: the corruptible working copy
        self.b = b
        self.config = config
        self.costs = config.costs
        self.scheme = config.scheme
        self.log = log
        self.workspace = workspace
        self.counters = RecoveryCounters()
        self.breakdown = TimeBreakdown()
        self.time_units = 0.0
        self.uncommitted = 0.0  #: iteration time not yet saved by a checkpoint
        #: ``Tverif`` for this scheme, hoisted out of the charge path
        #: (the property re-derives it from the scheme on every call).
        self._verification_cost = config.verification_cost
        self.threshold = 0.0  #: set by the engine once the initial residual exists
        self.injector: FaultInjector | None = None
        self.checksums = None
        #: Resolved tracer (``None`` = tracing off); set by the runner.
        #: Every emission below funnels through :meth:`trace`, whose
        #: ``None`` test is the whole cost of disabled tracing.
        self.tracer: "Tracer | None" = None
        #: Structure verdict of the pristine input (set by the runner);
        #: lets a refresh re-arm the live matrix's fast-path stamp.
        self._live_clean0 = False
        # Recycling is safe here because the store is engine-private:
        # borrowed checkpoints are only read before the next save.
        self.store = CheckpointStore(keep=1, recycle=True)
        #: Matrix deviations from ``a`` at the latest checkpoint, in
        #: workspace mode (where checkpoints skip the O(nnz) matrix
        #: copy and store only the tainted words).
        self._cp_matrix_deltas: "dict | None" = None
        self.policy = PeriodicCheckpointPolicy(config.checkpoint_interval)
        # A rollback loop longer than this means the checkpoint itself
        # is tainted (e.g. a matrix corruption that slipped verification
        # while its column's input entry was ≈ 0): fall back to
        # re-reading the initial data, the paper's recovery of last
        # resort.
        self.stuck_threshold = max(8, 2 * config.checkpoint_interval)
        self.stuck = 0

    def trace(self, kind: str, **fields) -> None:
        """Emit one trace event at the plugin's current iteration.

        No-op when tracing is off.  Pure observation — safe to call
        from plugins at decision points (the CG/PCG breakdown guards,
        Chen verification outcomes) without affecting trajectories.
        """
        if self.tracer is not None:
            self.tracer.emit(kind, self.plugin.iteration, **fields)

    # ------------------------------------------------------------------
    # accounting services
    # ------------------------------------------------------------------
    def charge_iteration(self) -> None:
        """Bill one unverified iteration (ONLINE-DETECTION mid-chunk)."""
        self.time_units += self.costs.t_iter
        self.uncommitted += self.costs.t_iter

    def charge_verified_iteration(self) -> None:
        """Bill one iteration plus its per-iteration ABFT verification."""
        self.time_units += self.costs.t_iter + self._verification_cost
        self.uncommitted += self.costs.t_iter
        self.breakdown.verification += self._verification_cost
        self.counters.verifications += 1

    def charge_verification(self, cost: float) -> None:
        """Bill one standalone verification (Chen's periodic tests)."""
        self.time_units += cost
        self.breakdown.verification += cost
        self.counters.verifications += 1

    # ------------------------------------------------------------------
    # protected operations
    # ------------------------------------------------------------------
    def protected_product(
        self,
        x_in: np.ndarray,
        pre: "list[tuple[str, int, int]]",
        post: "list[tuple[str, int, int]]",
        *,
        count_detection: bool = False,
    ) -> "np.ndarray | None":
        """One ABFT-protected SpMxV with window-routed strikes.

        ``pre`` strikes (matrix arrays + the product's input vector)
        land after the reliable input snapshot is taken, so they are
        the ABFT layer's to catch; ``post`` strikes corrupt the freshly
        computed output.  Single errors are forward-corrected when the
        scheme corrects; returns the trusted product or ``None`` when
        the caller must roll back.
        """
        plugin = self.plugin

        hook = None
        if self.injector is not None and (pre or post):

            def hook(stage: str, _a, _x, y) -> None:
                if stage == "pre":
                    for s in pre:
                        self.injector.apply_strike(plugin.iteration, s)
                elif stage == "post" and y is not None:
                    for name, posn, bit in post:
                        old = y[posn]
                        flip_bits_array(y, np.array([posn]), np.array([bit]))
                        self.injector.records.append(
                            FaultRecord(plugin.iteration, name, posn, bit, float(old), float(y[posn]))
                        )

        result = protected_spmv(
            self.live,
            x_in,
            self.checksums,
            correct=self.scheme.corrects,
            fault_hook=hook,
            workspace=self.workspace,
            # The workspace only re-arms the live stamp on verified
            # byte-equality with the checksum source, so the stamp may
            # stand in for the exact row-pointer test.
            trust_structure_stamp=self.workspace is not None,
            backend=self.backend,
        )
        corr = result.correction
        if (
            corr is not None
            and getattr(corr, "corrected", False)
            and corr.kind in _MATRIX_CORRECTION_KINDS
        ):
            if self.workspace is not None:
                # The decoder patched a matrix word in place (even an
                # UNCORRECTABLE outcome may carry a patch that re-verify
                # rejected): it must enter the strike-undo ledger.
                self.workspace.note_matrix_mutation(corr.kind, corr.position)
                if corr.kind != "val" and result.status is SpmvStatus.CORRECTED:
                    # Forward repair restored the exact index word and
                    # re-verified clean; nothing else will re-arm the
                    # fast path (correction never rolls back).
                    self.workspace.reverify_structure()
            elif (
                corr.kind != "val"
                and result.status is SpmvStatus.CORRECTED
                and self._live_clean0
                and not self.live.structure_clean
            ):
                # Legacy mode has no taint ledger: one full O(nnz)
                # re-check per (rare) index repair, amortized against
                # the per-call scans it re-enables.
                if structure_arrays_clean(self.live):
                    self.live.assume_clean_structure()
        if result.status is SpmvStatus.CORRECTED and corr is not None:
            self.counters.record_correction(corr.kind)
            self.log.emit(
                "correction",
                plugin.iteration,
                what=corr.kind,
                detail=corr.detail,
            )
            self.trace("abft-correction", what=corr.kind, detail=corr.detail)
        if not result.trusted:
            if count_detection:
                self.counters.detections += 1
            self.trace("abft-detection", status=result.status.name.lower())
            return None
        return result.y

    def tmr_vote(
        self, strikes: "list[tuple[str, int, int]]", *, stop_on_failure: bool
    ) -> bool:
        """Vector-kernel phase under TMR.

        A single strike per vector is out-voted (applied then reverted,
        modelling the vote restoring the replicated value); a double
        strike in one vector defeats the vote and the corruption
        persists.  Returns False when any vote failed;
        ``stop_on_failure`` returns at the first failed target (CG)
        instead of finishing the remaining votes (BiCGstab).
        """
        if not strikes or self.injector is None:
            return True
        by_target: dict[str, list[tuple[str, int, int]]] = {}
        for s in strikes:
            by_target.setdefault(s[0], []).append(s)
        ok = True
        for target, hits in by_target.items():
            if len(hits) >= 2:
                for s in hits:  # the corruption happened; TMR failed to mask it
                    self.injector.apply_strike(self.plugin.iteration, s)
                self.counters.tmr_detections += 1
                self.log.emit(
                    "tmr-detection", self.plugin.iteration, target=target, strikes=len(hits)
                )
                self.trace("tmr-detection", target=target, strikes=len(hits))
                ok = False
                if stop_on_failure:
                    return False
            else:
                rec = self.injector.apply_strike(self.plugin.iteration, hits[0])
                self.injector.revert(rec)
                self.counters.tmr_corrections += 1
                self.log.emit("tmr-correction", self.plugin.iteration, target=target)
                self.trace("tmr-correction", target=target)
        return ok

    # ------------------------------------------------------------------
    # checkpoint / rollback orchestration
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        """Checkpoint the full protected state (vectors + matrix + scalars).

        In workspace mode the matrix member of the checkpoint is the
        O(#faults) deviation record kept by the workspace instead of an
        O(nnz) array copy — the restore path reproduces the same bytes
        either way.
        """
        if self.workspace is not None:
            self._cp_matrix_deltas = self.workspace.capture_matrix_state()
            matrix = None
        else:
            matrix = self.live
        self.store.save(
            self.plugin.iteration,
            vectors=self.plugin.vectors,
            matrix=matrix,
            scalars=self.plugin.scalars(),
        )

    def _restore(self) -> None:
        """Copy checkpoint data back **into** the live arrays.

        In-place restore is essential: the fault injector holds
        references to these arrays, so rebinding would silently
        decouple injection from the solver state.  The checkpoint is
        *borrowed* (no defensive copy): values are copied out of it
        into the live arrays, never the reverse.
        """
        cp = self.store.borrow_latest()
        for name, vec in self.plugin.vectors.items():
            vec[:] = cp.vectors[name]
        if self.workspace is not None:
            assert self._cp_matrix_deltas is not None
            self.workspace.restore_matrix_state(self._cp_matrix_deltas)
        else:
            assert cp.matrix is not None
            self.live.val[:] = cp.matrix.val
            self.live.colid[:] = cp.matrix.colid
            self.live.rowidx[:] = cp.matrix.rowidx
            # The snapshot carried its structure verdict (copy() and the
            # recycling save both preserve it); restoring the bytes
            # restores the verdict — typically re-arming the SpMxV fast
            # path a structure strike had disarmed.
            if cp.matrix._structure_clean:
                self.live.assume_clean_structure()
            else:
                self.live.mark_structure_dirty()
        self.plugin.load_scalars(cp)

    def _charge_recovery(self, cost: float) -> None:
        self.time_units += cost
        self.breakdown.recovery += cost
        self.breakdown.wasted_work += self.uncommitted
        self.uncommitted = 0.0

    def rollback(self, reason: str) -> None:
        """Backward recovery to the last verified checkpoint.

        Escalates to :meth:`refresh_rollback` when the stuck probe
        says the checkpoint itself is tainted.  The charging order
        follows the plugin's :class:`RecoveryPolicy`.
        """
        pol = self.plugin.recovery
        if pol.charge_before_stuck_check:
            self.counters.rollbacks += 1
            self.stuck += 1
            self._charge_recovery(self.costs.t_rec)
            if self.stuck > self.stuck_threshold:
                self.refresh_rollback()
                return
        else:
            self.stuck += 1
            if self.stuck > self.stuck_threshold:
                self.refresh_rollback()
                return
            self.counters.rollbacks += 1
            self._charge_recovery(self.costs.t_rec)
        self._restore()
        self.policy.rolled_back()
        self.plugin.after_rollback()
        self.log.emit("rollback", self.plugin.iteration, reason=reason)
        self.trace("rollback", reason=reason)

    def refresh_rollback(self) -> None:
        """Recovery from state the checkpoints cannot heal.

        The paper's recovery baseline — re-reading initial data —
        applies: the plugin restores the solution vector from the
        checkpoint, the matrix from the original input (reliable
        storage), and recomputes the residual reliably.  The refreshed
        (known-good) state is re-checkpointed so future rollbacks
        return here rather than to the tainted snapshot.
        """
        pol = self.plugin.recovery
        if pol.refresh_counts_rollback:
            self.counters.rollbacks += 1
        self.stuck = 0
        if pol.refresh_charges_restart:
            # One recovery plus one iteration (the residual SpMxV).
            self._charge_recovery(self.costs.t_rec + self.costs.t_iter)
        # Borrowed, not copied: the plugin only reads the checkpointed
        # iterate, and the snapshot below happens after that read.
        cp = self.store.borrow_latest()
        self.plugin.refresh(cp, self.a_view, self.b)
        # The refresh re-read the pristine matrix wholesale: the input's
        # structure verdict holds again.
        if self.workspace is not None:
            self.workspace.mark_live_pristine()
        elif self._live_clean0:
            self.live.assume_clean_structure()
        self.snapshot()
        if pol.refresh_notifies_policy:
            self.policy.rolled_back()
        self.plugin.after_rollback()
        self.log.emit("refresh-rollback", self.plugin.iteration)
        self.trace("refresh-rollback")

    def maybe_checkpoint(self) -> None:
        """Take a checkpoint when the policy says the chunk is due."""
        if self.policy.chunk_verified():
            self.snapshot()
            self.counters.checkpoints += 1
            self.stuck = 0
            self.time_units += self.costs.t_cp
            self.breakdown.checkpoint += self.costs.t_cp
            self.breakdown.useful_work += self.uncommitted
            self.uncommitted = 0.0
            self.log.emit("checkpoint", self.plugin.iteration)
            self.trace("checkpoint", time_units=self.time_units)

    def reliably_converged(self) -> bool:
        """Trustworthy convergence decision (reliable arithmetic, clean A)."""
        true_r = self.b - spmv(self.a_view, self.plugin.vectors["x"], backend=self.backend)
        if self.backend is not None:
            return float(self.backend.norm2(true_r)) <= self.threshold
        return float(np.linalg.norm(true_r)) <= self.threshold


def run_protected(
    plugin: RecurrencePlugin,
    a: CSRMatrix,
    b: np.ndarray,
    config: SchemeConfig,
    *,
    alpha: float = 0.0,
    x0: "np.ndarray | None" = None,
    eps: float = 1e-8,
    maxiter: "int | None" = None,
    rng: "int | np.random.Generator | None" = None,
    max_time_units: "float | None" = None,
    event_log: "EventLog | None" = None,
    final_check: bool = True,
    observer: "Callable[[EngineContext], None] | None" = None,
    workspace: "SolveWorkspace | None" = None,
    backend: "object | None" = None,
    tracer: "Tracer | None" = None,
) -> SolveResult:
    """Run one recurrence plugin under silent-error injection.

    Parameters
    ----------
    plugin:
        A fresh (single-use) recurrence plugin.
    a:
        System matrix (never mutated; the engine works on a live copy).
    b:
        Right-hand side.
    config:
        Scheme, intervals and cost model.
    alpha:
        Fault-rate constant: strikes per iteration ~ Poisson(α)
        (``λ = α/M`` per word).  Zero disables injection.
    eps, maxiter, x0:
        As in :func:`repro.core.cg.cg`; ``maxiter`` caps *executed*
        iterations and defaults to ``20 n`` (faulty runs need headroom).
    rng:
        Seed or generator for the fault process.
    max_time_units:
        Optional bail-out on simulated time (pathological runs).
    event_log:
        Optional :class:`~repro.util.log.EventLog` receiving recovery
        events.
    final_check:
        Reliably re-verify the residual on apparent convergence and
        keep iterating if it is bogus (recommended; disable only to
        study undetected-error impact).
    observer:
        Deprecated alias for ``tracer`` (emits a ``DeprecationWarning``):
        a callable invoked with the :class:`EngineContext` once per
        executed iteration.  It is wrapped in a
        :class:`repro.obs.CallbackTracer` and combined with ``tracer``
        if both are given — override :meth:`repro.obs.Tracer.iteration`
        instead.
    workspace:
        Optional :class:`repro.perf.SolveWorkspace`.  When given, the
        live matrix, the per-iteration buffers and the checkpoint
        staging come from the workspace (reused across runs, restored
        between runs by strike-undo) and the ABFT metadata comes from
        the per-process checksum cache.  Bit-identical to the fresh
        path — the fresh path remains the oracle
        (``tests/test_perf_workspace.py``).  One workspace must not be
        shared by concurrently running solves.
    backend:
        Kernel backend for every SpMxV of the run — a registered name
        (``"scipy"``, ``"dense"``), a
        :class:`repro.backends.KernelBackend` instance, or ``None``:
        the workspace's :attr:`~repro.perf.SolveWorkspace.backend` if
        one is set, else the reference kernels.  The reference backend
        is the raw-kernel fast path (bit-identical to the pre-backend
        engine); non-reference backends substitute only
        structure-clean products and route guarded ones back through
        the reference kernel, so detection semantics are unchanged.
    tracer:
        Optional :class:`repro.obs.Tracer` receiving the run's event
        stream (solve lifecycle, step outcomes, strikes, recoveries)
        and the per-iteration :meth:`~repro.obs.Tracer.iteration` hook.
        ``None`` and :class:`repro.obs.NullTracer` disable tracing at
        zero cost (a single ``is not None`` test per event site —
        gated ≤2% in ``benchmarks/bench_obs.py``).  Tracing is pure
        observation: it consumes no RNG and charges no time, so
        attaching a sink cannot change a trajectory
        (``tests/test_obs_golden.py``).

    Returns
    -------
    SolveResult
    """
    plugin.check_scheme(config.scheme)
    if backend is None and workspace is not None:
        backend = workspace.backend
    backend = resolve_backend(backend)
    if backend is not None:
        # Pre-solve hook, before the wall clock: JIT backends compile
        # here (first-call warm-up never pollutes per-task timing) and
        # capacity-capped backends fail fast with a structured error
        # instead of dying mid-solve.
        prepare = getattr(backend, "prepare", None)
        if prepare is not None:
            prepare(a)
    wall_start = _time.perf_counter()
    tr = resolve_tracer(tracer)
    if observer is not None:
        warnings.warn(
            "run_protected(observer=...) is deprecated; pass tracer= with a "
            "repro.obs.Tracer overriding iteration() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        shim = CallbackTracer(on_iteration=observer)
        tr = shim if tr is None else MultiTracer([tr, shim])
    rng = as_generator(rng)
    log = event_log if event_log is not None else EventLog()
    n = a.nrows
    maxiter = 20 * n if maxiter is None else int(maxiter)
    scheme = config.scheme
    b = np.asarray(b, dtype=np.float64)

    if workspace is not None:
        # Reused live copy, restored to bit-equality with ``a`` by
        # un-writing exactly the previously tainted words.
        restores0 = workspace.live_restores
        live = workspace.acquire_live(a)
        a_view = workspace.source_view()
        if tr is not None:
            tr.emit(
                "workspace-acquire",
                0,
                live="restore" if workspace.live_restores > restores0 else "copy",
            )
    else:
        live = a.copy()  # live matrix: the injector corrupts this copy
        # One up-front structural check lets every SpMxV on the live
        # copy skip its defensive colid/rowidx guards until an index
        # array is actually struck (the guards would pass anyway, so
        # results are unchanged).  An invalid input matrix keeps the
        # seed's scan-and-wrap behaviour.
        a_view = a
        if structure_arrays_clean(live):
            live.assume_clean_structure()
            # Same stamp for products against the pristine input (the
            # reliable convergence checks and refreshes), carried by a
            # view sharing ``a``'s arrays so the caller's object is
            # never touched.
            a_view = CSRMatrix(a.val, a.colid, a.rowidx, a.shape, check=False)
            a_view.assume_clean_structure()
    ctx = EngineContext(
        plugin, a, live, b, config, log, workspace=workspace, backend=backend
    )
    ctx.a_view = a_view
    ctx.tracer = tr
    ctx._live_clean0 = live.structure_clean
    plugin.init_state(a, live, b, x0, config, workspace=workspace, backend=backend)
    ctx.threshold = cg_tolerance_threshold(
        a,
        b,
        plugin.vectors["r"],
        eps,
        norm1_a=workspace.source_norm1(a) if workspace is not None else None,
    )

    # ABFT metadata comes from the clean input matrix and lives in
    # reliable memory for the whole solve.
    if scheme.uses_abft:
        nchecks = 2 if scheme.corrects else 1
        if workspace is not None:
            if tr is not None:
                from repro.abft.checksums import checksums_cached

                cache_state = (
                    "hit"
                    if checksums_cached(a, nchecks=nchecks, backend=backend)
                    else "miss"
                )
            ctx.checksums = workspace.checksums(a, nchecks=nchecks, backend=backend)
            if tr is not None:
                tr.emit("abft-setup", 0, nchecks=nchecks, cache=cache_state)
        else:
            ctx.checksums = compute_checksums(a, nchecks=nchecks, backend=backend)
            if tr is not None:
                tr.emit("abft-setup", 0, nchecks=nchecks, cache="off")

    # Fault machinery: strikes are sampled centrally, then applied in
    # the operation window where each struck word is live.  The
    # registration order (matrix arrays, then the plugin's vectors in
    # declaration order) is part of the RNG contract.
    if alpha > 0:
        words = live.memory_words + n * len(plugin.vectors)
        ctx.injector = FaultInjector(FaultModel(alpha=alpha, memory_words=words), rng)
        if workspace is not None:
            ws = workspace

            def _ledger(name):
                return lambda position: ws.note_matrix_mutation(name, position)

            ctx.injector.register("val", live.val, on_strike=_ledger("val"))
            ctx.injector.register("colid", live.colid, on_strike=_ledger("colid"))
            ctx.injector.register("rowidx", live.rowidx, on_strike=_ledger("rowidx"))
        else:

            def _dirty(_position, _live=live):
                _live.mark_structure_dirty()

            ctx.injector.register("val", live.val)
            ctx.injector.register("colid", live.colid, on_strike=_dirty)
            ctx.injector.register("rowidx", live.rowidx, on_strike=_dirty)
        for name, vec in plugin.vectors.items():
            ctx.injector.register(name, vec)

    # Initial checkpoint = the initial data (the paper: the first frame
    # recovers "by reading initial data again", at the same cost).
    ctx.snapshot()

    if tr is not None:
        tr.emit(
            "solve-start",
            0,
            method=plugin.name,
            scheme=scheme.value,
            alpha=float(alpha),
            n=n,
            nnz=a.nnz,
            s=config.checkpoint_interval,
            d=config.verification_interval,
            backend=getattr(backend, "name", "custom") if backend is not None else "reference",
            workspace=workspace is not None,
        )

    executed = 0
    pol = plugin.recovery
    converged = plugin.initial_converged(ctx.threshold)
    while not converged and executed < maxiter:
        if max_time_units is not None and ctx.time_units > max_time_units:
            break
        strikes = ctx.injector.sample_strikes() if ctx.injector is not None else []
        ctx.counters.faults_injected += len(strikes)
        executed += 1
        if tr is not None and strikes:
            for target, position, bit in strikes:
                tr.emit(
                    "strike",
                    plugin.iteration,
                    target=target,
                    position=int(position),
                    bit=int(bit),
                )

        outcome = plugin.step(ctx, strikes)
        if outcome.rolled_back:
            ctx.rollback(outcome.reason)
            converged = False
            if tr is not None:
                tr.emit(
                    "step",
                    plugin.iteration,
                    outcome="rollback",
                    reason=outcome.reason,
                    time_units=ctx.time_units,
                )
                tr.iteration(ctx)
            continue
        if outcome.converged:
            converged = True
        elif outcome.verified:
            ctx.maybe_checkpoint()

        if converged and final_check and not ctx.reliably_converged():
            ctx.counters.final_check_failures += 1
            if pol.final_check_counts_detection:
                ctx.counters.detections += 1
            if tr is not None:
                tr.emit("final-check", plugin.iteration, passed=False)
            if pol.final_check_refreshes:
                ctx.refresh_rollback()
            else:
                ctx.rollback("final-check")
            converged = False
        if tr is not None:
            tr.emit(
                "step",
                plugin.iteration,
                outcome="converged" if converged else "advanced",
                verified=bool(outcome.verified),
                time_units=ctx.time_units,
            )
            tr.iteration(ctx)

    # Work executed since the last checkpoint but never rolled back
    # counts as useful (the run ends with it in the solution).
    ctx.breakdown.useful_work += ctx.uncommitted

    x = plugin.vectors["x"]
    final_r = b - spmv(a_view, x, backend=backend)
    true_residual = float(
        backend.norm2(final_r) if backend is not None else np.linalg.norm(final_r)
    )
    result = SolveResult(
        x=x.copy(),
        converged=bool(true_residual <= ctx.threshold or (converged and not final_check)),
        iterations=int(plugin.iteration),
        iterations_executed=executed,
        time_units=ctx.time_units,
        wall_seconds=_time.perf_counter() - wall_start,
        residual_norm=true_residual,
        threshold=ctx.threshold,
        counters=ctx.counters,
        breakdown=ctx.breakdown,
        config=config,
    )

    # One batch of counter folds per solve — never per iteration, so
    # the metrics layer stays invisible on the hot path.
    bd, cnt = ctx.breakdown, ctx.counters
    m = METRICS
    m.inc("engine.solves")
    m.inc("engine.converged" if result.converged else "engine.diverged")
    m.inc("engine.iterations_executed", executed)
    m.inc("engine.faults_injected", cnt.faults_injected)
    m.inc("engine.rollbacks", cnt.rollbacks)
    m.inc("engine.corrections", cnt.total_corrections)
    m.inc("engine.detections", cnt.detections)
    m.inc("engine.checkpoints", cnt.checkpoints)
    m.inc("engine.time_units.useful", bd.useful_work)
    m.inc("engine.time_units.wasted", bd.wasted_work)
    m.inc("engine.time_units.verification", bd.verification)
    m.inc("engine.time_units.checkpoint", bd.checkpoint)
    m.inc("engine.time_units.recovery", bd.recovery)
    m.inc(
        "engine.backend."
        + (getattr(backend, "name", "custom") if backend is not None else "reference")
    )
    m.observe("engine.solve_wall_s", result.wall_seconds)

    if tr is not None:
        tr.emit(
            "solve-converge" if result.converged else "solve-diverge",
            plugin.iteration,
            executed=executed,
            time_units=ctx.time_units,
            residual=true_residual,
            useful=bd.useful_work,
            wasted=bd.wasted_work,
            verification=bd.verification,
            checkpoint=bd.checkpoint,
            recovery=bd.recovery,
            rollbacks=cnt.rollbacks,
            corrections=cnt.total_corrections,
            detections=cnt.detections,
            checkpoints=cnt.checkpoints,
            faults=cnt.faults_injected,
        )
    return result
