"""Method → recurrence-plugin dispatch.

The single entry point the experiment stack uses to run any protected
solver: :func:`run_ft_method` instantiates a fresh plugin for the
requested :class:`~repro.core.methods.Method` and hands it to the
engine.  Registering a new solver takes a plugin module, a ``Method``
enum member (with its supported schemes) in
:mod:`repro.core.methods`, and one factory line here — ``sim/`` and
``campaign/`` pick it up through the enum without changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.methods import Method
from repro.resilience.bicgstab import BiCGstabPlugin
from repro.resilience.cg import CGPlugin
from repro.resilience.engine import run_protected
from repro.resilience.pcg import JacobiPCGPlugin

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.accounting import SolveResult
    from repro.resilience.protocol import RecurrencePlugin

__all__ = ["PLUGIN_FACTORIES", "make_plugin", "run_ft_method", "run_ft_pcg"]

#: One factory per solver; factories must return a *fresh* plugin
#: (plugins are single-use — they hold one run's iteration state).
PLUGIN_FACTORIES: "dict[Method, Callable[[], RecurrencePlugin]]" = {
    Method.CG: CGPlugin,
    Method.BICGSTAB: BiCGstabPlugin,
    Method.PCG: JacobiPCGPlugin,
}


def make_plugin(method: "Method | str") -> "RecurrencePlugin":
    """Instantiate a fresh recurrence plugin for ``method``."""
    return PLUGIN_FACTORIES[Method.parse(method)]()


def run_ft_method(method: "Method | str", a, b, config, **kwargs) -> "SolveResult":
    """Run the fault-tolerant solver ``method`` on ``A x = b``.

    ``kwargs`` are forwarded to
    :func:`repro.resilience.engine.run_protected` (``alpha``, ``x0``,
    ``eps``, ``maxiter``, ``rng``, ``max_time_units``, ``event_log``,
    ``tracer``, ``final_check``).
    """
    return run_protected(make_plugin(method), a, b, config, **kwargs)


def run_ft_pcg(a, b, config, **kwargs) -> "SolveResult":
    """Run fault-tolerant Jacobi-preconditioned CG (FT-PCG).

    The first solver added on the engine rather than as a monolithic
    driver; parameters as :func:`repro.core.ft_cg.run_ft_cg` (the
    scheme must be one of the ABFT schemes).
    """
    return run_ft_method(Method.PCG, a, b, config, **kwargs)
