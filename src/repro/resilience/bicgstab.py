"""BiCGstab as a recurrence plugin (the paper's scheme beyond CG).

Section 3 claims the combination of ABFT-protected products, TMR vector
kernels and verified checkpointing carries over to "CGNE, BiCG,
BiCGstab".  This plugin makes that concrete for BiCGstab, whose two
products per iteration (``A·p`` and ``A·s``) are both routed through
the engine's protected SpMxV; strikes on the matrix arrays and each
product's input vector land in that product's window, ``v`` strikes
corrupt the first product's output, and ``x``/``r``/``r_hat`` strikes
are TMR-voted at the head of the iteration.

ONLINE-DETECTION is rejected: Chen's stability tests are CG-specific
(the conjugacy argument does not port).

Time accounting: one BiCGstab iteration is normalized to 1 (it costs
roughly two CG iterations in flops; the cost model's ``t_iter`` is the
unit, so compare within the method, not across methods).
"""

from __future__ import annotations

import numpy as np

from repro.checkpoint.store import Checkpoint
from repro.core.methods import Scheme, SchemeConfig
from repro.resilience.protocol import KRYLOV_RECOVERY, SPMV_PRE_TARGETS, StepOutcome
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmv

__all__ = ["BiCGstabPlugin"]

#: Second-product (``A·s``) window: only its input vector — the matrix
#: arrays already belong to the first product's window
#: (:data:`~repro.resilience.protocol.SPMV_PRE_TARGETS`).
_WINDOW2 = frozenset({"s"})


class BiCGstabPlugin:
    """The BiCGstab recurrence behind the engine (ABFT schemes only)."""

    name = "bicgstab"
    recovery = KRYLOV_RECOVERY

    def check_scheme(self, scheme: Scheme) -> None:
        if not scheme.uses_abft:
            raise ValueError(f"{self.name} supports the ABFT schemes only")

    def init_state(
        self,
        a: CSRMatrix,
        live: CSRMatrix,
        b: np.ndarray,
        x0: "np.ndarray | None",
        config: SchemeConfig,
        workspace=None,
        backend=None,
    ) -> None:
        n = a.nrows
        self.live = live
        self.b = b
        self.backend = backend
        if workspace is None:
            self.x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
            self.r = b - spmv(live, self.x, backend=backend)
            self.r_hat = self.r.copy()
            self.p = np.zeros(n)
            self.v = np.zeros(n)
            self.s = np.zeros(n)
        else:
            # Workspace-backed vectors, fully overwritten (no state can
            # leak between runs sharing the workspace).
            self.x = workspace.zeros("bicgstab.x", n)
            if x0 is not None:
                self.x[:] = x0
            self.r = workspace.buffer("bicgstab.r", n)
            spmv(
                live,
                self.x,
                out=self.r,
                scratch=workspace.buffer("spmv.scratch", live.nnz),
                backend=backend,
            )
            np.subtract(b, self.r, out=self.r)
            self.r_hat = workspace.buffer("bicgstab.r_hat", n)
            self.r_hat[:] = self.r
            self.p = workspace.zeros("bicgstab.p", n)
            self.v = workspace.zeros("bicgstab.v", n)
            self.s = workspace.zeros("bicgstab.s", n)
        self.scal: dict[str, float] = {"rho": 1.0, "alpha": 1.0, "omega": 1.0, "iteration": 0}

    @property
    def iteration(self) -> int:
        return int(self.scal["iteration"])

    @iteration.setter
    def iteration(self, value: int) -> None:
        self.scal["iteration"] = int(value)

    @property
    def vectors(self) -> dict[str, np.ndarray]:
        return {
            "x": self.x,
            "r": self.r,
            "r_hat": self.r_hat,
            "p": self.p,
            "v": self.v,
            "s": self.s,
        }

    def scalars(self) -> dict[str, float]:
        return dict(self.scal)

    def load_scalars(self, cp: Checkpoint) -> None:
        self.scal.update(cp.scalars)
        self.scal["iteration"] = int(cp.scalars["iteration"])

    def initial_converged(self, threshold: float) -> bool:
        return self._rnorm() <= threshold

    def _rnorm(self) -> float:
        """Residual norm via the active backend (bit-identical: every
        shipped backend inherits the NumPy reduction)."""
        if self.backend is not None:
            return float(self.backend.norm2(self.r))
        return float(np.linalg.norm(self.r))

    def after_rollback(self) -> None:
        """BiCGstab keeps no verification-chunk state."""

    def refresh(self, cp: Checkpoint, a: CSRMatrix, b: np.ndarray) -> None:
        """Re-read initial data: heal a tainted checkpoint.

        The recurrence restarts from the checkpointed iterate with the
        matrix from reliable storage and a reliably recomputed
        residual; the logical iteration count is kept (the restart is
        a continuation, not a rewind).
        """
        self.live.val[:] = a.val
        self.live.colid[:] = a.colid
        self.live.rowidx[:] = a.rowidx
        self.x[:] = cp.vectors["x"]
        self.r[:] = b - spmv(a, self.x, backend=self.backend)
        self.r_hat[:] = self.r
        self.p[:] = 0.0
        self.v[:] = 0.0
        self.s[:] = 0.0
        self.scal.update({"rho": 1.0, "alpha": 1.0, "omega": 1.0})

    # ------------------------------------------------------------------
    # one iteration
    # ------------------------------------------------------------------
    def step(self, ctx, strikes: "list[tuple[str, int, int]]") -> StepOutcome:
        ctx.charge_verified_iteration()

        pre1 = [st for st in strikes if st[0] in SPMV_PRE_TARGETS]
        post1 = [st for st in strikes if st[0] == "v"]
        pre2 = [st for st in strikes if st[0] in _WINDOW2]
        tmr_phase = [st for st in strikes if st[0] in ("x", "r", "r_hat")]

        # TMR-protected vector phase (same semantics as FT-CG, but the
        # remaining votes finish even after one fails).
        if not ctx.tmr_vote(tmr_phase, stop_on_failure=False):
            return StepOutcome.rollback("tmr")

        rho_new = float(self.r_hat @ self.r)
        if rho_new == 0.0 or self.scal["omega"] == 0.0:
            ctx.trace("breakdown", what="rho")
            return StepOutcome.rollback("breakdown")
        beta = (rho_new / self.scal["rho"]) * (self.scal["alpha"] / self.scal["omega"])
        self.p[:] = self.r + beta * (self.p - self.scal["omega"] * self.v)

        y1 = ctx.protected_product(self.p, pre1, post1, count_detection=True)
        if y1 is None:
            return StepOutcome.rollback("abft")
        self.v[:] = y1
        denom = float(self.r_hat @ self.v)
        if denom == 0.0 or not np.isfinite(denom):
            ctx.trace("breakdown", what="denom", value=denom)
            return StepOutcome.rollback("breakdown")
        alpha_k = rho_new / denom
        self.s[:] = self.r - alpha_k * self.v

        y2 = ctx.protected_product(self.s, pre2, [], count_detection=True)
        if y2 is None:
            return StepOutcome.rollback("abft")
        t = y2
        tt = float(t @ t)
        if tt == 0.0 or not np.isfinite(tt):
            ctx.trace("breakdown", what="tt", value=tt)
            return StepOutcome.rollback("breakdown")
        omega_k = float(t @ self.s) / tt
        self.x += alpha_k * self.p + omega_k * self.s
        self.r[:] = self.s - omega_k * t
        self.scal.update({"rho": rho_new, "alpha": alpha_k, "omega": omega_k})
        self.scal["iteration"] += 1

        rnorm = self._rnorm()
        return StepOutcome.advanced(bool(np.isfinite(rnorm) and rnorm <= ctx.threshold))
