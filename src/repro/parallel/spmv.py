"""Row-partitioned SpMxV with per-rank ABFT protection.

Implements the parallel claim of the paper's Section 1: every rank
holds a rectangular block of rows and protects its *local* product with
its own checksum set; because the output rows are disjoint, local
detection (and correction) of errors implies global detection (and
correction).  Transport is reliable (MPI checksums), modeled by
:class:`~repro.parallel.comm.SimComm`.

The input vector is assembled by allgather of the owned slices (the
classical dense-vector exchange); faults can be injected per rank via
hooks keyed by rank id, and the per-rank MTBF shrinks as 1/p — see
:mod:`repro.parallel.mtbf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.abft.checksums import SpmvChecksums, compute_checksums
from repro.abft.spmv import ProtectedSpmvResult, SpmvStatus, protected_spmv
from repro.parallel.comm import SimComm
from repro.parallel.partition import RowPartition, block_rows

__all__ = ["DistributedResult", "DistributedSpmv"]

#: Per-rank fault hook, same signature as protected_spmv's hook.
RankHook = Callable[[str, CSRMatrix, np.ndarray, "np.ndarray | None"], None]


@dataclass(frozen=True)
class DistributedResult:
    """Outcome of one distributed protected product.

    Attributes
    ----------
    y:
        The assembled global output (trustworthy iff ``global_status``
        is OK or CORRECTED).
    global_status:
        Worst per-rank status (OK < CORRECTED < DETECTED/UNCORRECTABLE).
    rank_results:
        Each rank's local :class:`ProtectedSpmvResult`.
    """

    y: np.ndarray
    global_status: SpmvStatus
    rank_results: tuple[ProtectedSpmvResult, ...]

    @property
    def trusted(self) -> bool:
        """Whether all local products were verified (or repaired)."""
        return self.global_status in (SpmvStatus.OK, SpmvStatus.CORRECTED)


_SEVERITY = {
    SpmvStatus.OK: 0,
    SpmvStatus.CORRECTED: 1,
    SpmvStatus.DETECTED: 2,
    SpmvStatus.UNCORRECTABLE: 3,
}


class DistributedSpmv:
    """A reusable row-partitioned, ABFT-protected SpMxV operator.

    Parameters
    ----------
    a:
        The global matrix (kept clean; ranks get copies of their block).
    nparts:
        Number of simulated ranks.
    partition:
        Optional custom partition; equal-rows by default.
    correct:
        Per-rank double-detect/single-correct when True, else
        detection only.
    """

    def __init__(
        self,
        a: CSRMatrix,
        nparts: int,
        *,
        partition: RowPartition | None = None,
        correct: bool = True,
    ) -> None:
        self.global_shape = a.shape
        self.partition = partition if partition is not None else block_rows(a.nrows, nparts)
        if self.partition.nparts != nparts:
            raise ValueError(
                f"partition has {self.partition.nparts} parts, expected {nparts}"
            )
        self.comm = SimComm(nparts)
        self.correct = correct
        # Each rank's block and its reliable checksum metadata are
        # computed once — the paper's amortization argument applies
        # per rank exactly as it does sequentially.
        self.blocks: list[CSRMatrix] = [
            self.partition.local_block(a, r) for r in range(nparts)
        ]
        self.checksums: list[SpmvChecksums] = [
            compute_checksums(blk, nchecks=2 if correct else 1) for blk in self.blocks
        ]

    @property
    def nparts(self) -> int:
        """Number of simulated ranks."""
        return self.comm.size

    def multiply(
        self,
        x: np.ndarray,
        *,
        rank_hooks: "dict[int, RankHook] | None" = None,
    ) -> DistributedResult:
        """Compute ``y = A x`` with local ABFT on every rank.

        ``x`` is supplied row-distributed: each rank contributes its
        owned slice to an allgather, then runs its protected local
        product on the assembled vector.

        Parameters
        ----------
        x:
            Global input vector (the driver slices it per owner).
        rank_hooks:
            Optional per-rank fault hooks (rank id → hook), forwarded
            to the local :func:`protected_spmv`.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.global_shape[1],):
            raise ValueError(f"x must have shape ({self.global_shape[1]},), got {x.shape}")
        slices = [self.partition.slice_vector(x, r) for r in range(self.nparts)]
        assembled = self.comm.allgather_concat(slices)

        results: list[ProtectedSpmvResult] = []
        for rank in range(self.nparts):
            hook = (rank_hooks or {}).get(rank)
            results.append(
                protected_spmv(
                    self.blocks[rank],
                    assembled[rank],
                    self.checksums[rank],
                    correct=self.correct,
                    fault_hook=hook,
                )
            )
        y = np.concatenate([res.y for res in results])
        worst = max(results, key=lambda r: _SEVERITY[r.status]).status
        return DistributedResult(
            y=y, global_status=worst, rank_results=tuple(results)
        )
