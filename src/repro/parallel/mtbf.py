"""Platform MTBF scaling with the number of processors.

Section 1 of the paper: "the MTBF reduces linearly with the number of
processors.  This is well-known for memoryless distributions of fault
inter-arrival times and remains true for arbitrary continuous
distributions of finite mean [Aupy et al., 2]".  These helpers convert
a per-processor fault characterization to the platform-level λ that the
performance model and the injector consume.
"""

from __future__ import annotations

from repro.util.validate import check_positive

__all__ = ["platform_mtbf", "platform_rate"]


def platform_mtbf(per_processor_mtbf: float, nprocs: int) -> float:
    """Platform MTBF ``μ_p = μ_ind / p``."""
    check_positive("per_processor_mtbf", per_processor_mtbf)
    check_positive("nprocs", nprocs)
    return per_processor_mtbf / nprocs


def platform_rate(per_processor_rate: float, nprocs: int) -> float:
    """Cumulative platform fault rate ``λ_p = p · λ_ind``."""
    check_positive("per_processor_rate", per_processor_rate)
    check_positive("nprocs", nprocs)
    return per_processor_rate * nprocs
