"""Simulated parallel SpMxV with per-rank ABFT (the paper's Section 1).

The paper argues its technique extends to message-passing parallel
implementations: each processor owns a block of matrix rows and the
matching slice of the output vector; MPI guarantees message integrity
(checksummed transport), so silent errors strike *local* computation
and memory — and local detection/correction implies global
detection/correction.  The MTBF of the platform shrinks linearly with
the number of processors.

Since no MPI runtime is available offline, :class:`SimComm` provides a
deterministic in-process message-passing simulation (collectives with
byte-volume accounting), over which :func:`distributed_spmv` runs the
row-partitioned product with an independent ABFT checksum set per rank.
"""

from repro.parallel.comm import SimComm, CommStats
from repro.parallel.partition import RowPartition, block_rows, partition_by_nnz
from repro.parallel.spmv import DistributedSpmv, DistributedResult
from repro.parallel.mtbf import platform_mtbf, platform_rate

__all__ = [
    "SimComm",
    "CommStats",
    "RowPartition",
    "block_rows",
    "partition_by_nnz",
    "DistributedSpmv",
    "DistributedResult",
    "platform_mtbf",
    "platform_rate",
]
