"""1-D block-row partitioning for the distributed SpMxV.

Each rank owns a contiguous block of rows (and the matching slice of
the output vector).  Two partitioners are provided: equal row counts,
and nnz-balanced contiguous blocks (the quantity that actually balances
SpMxV work).  Communication-volume metrics follow the partitioning
literature the paper cites (Kaya, Uçar, Çatalyürek [24]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["RowPartition", "block_rows", "partition_by_nnz"]


@dataclass(frozen=True)
class RowPartition:
    """A contiguous row partition of a matrix over ``p`` ranks.

    ``bounds`` has ``p + 1`` entries; rank ``r`` owns rows
    ``[bounds[r], bounds[r+1])``.
    """

    bounds: tuple[int, ...]

    @property
    def nparts(self) -> int:
        """Number of ranks."""
        return len(self.bounds) - 1

    def rows_of(self, rank: int) -> tuple[int, int]:
        """Row range ``(lo, hi)`` owned by ``rank``."""
        return self.bounds[rank], self.bounds[rank + 1]

    def owner_of(self, row: int) -> int:
        """Rank owning a global row index."""
        r = int(np.searchsorted(self.bounds, row, side="right")) - 1
        if not 0 <= r < self.nparts:
            raise IndexError(f"row {row} outside partition bounds {self.bounds}")
        return r

    def local_block(self, a: CSRMatrix, rank: int) -> CSRMatrix:
        """Extract rank's rectangular ``(hi−lo) × n`` CSR block.

        The block's arrays are fresh copies: each simulated rank owns
        its memory, so per-rank fault injection stays local.
        """
        lo, hi = self.rows_of(rank)
        start, stop = int(a.rowidx[lo]), int(a.rowidx[hi])
        return CSRMatrix(
            a.val[start:stop].copy(),
            a.colid[start:stop].copy(),
            (a.rowidx[lo : hi + 1] - a.rowidx[lo]).copy(),
            (hi - lo, a.ncols),
        )

    def slice_vector(self, x: np.ndarray, rank: int) -> np.ndarray:
        """Rank's slice of a row-distributed vector (copy)."""
        lo, hi = self.rows_of(rank)
        return np.array(x[lo:hi], copy=True)

    def communication_volume(self, a: CSRMatrix) -> int:
        """Words of x that must cross rank boundaries (p2p model).

        For each rank, the x entries it *reads* (column support of its
        block) that it does not *own*.  An allgather implementation
        moves more; this metric is the partition-quality lower bound
        reported in the literature.
        """
        total = 0
        for r in range(self.nparts):
            lo, hi = self.rows_of(r)
            start, stop = int(a.rowidx[lo]), int(a.rowidx[hi])
            cols = np.unique(a.colid[start:stop])
            total += int(np.count_nonzero((cols < lo) | (cols >= hi)))
        return total


def block_rows(n: int, p: int) -> RowPartition:
    """Equal-row-count contiguous partition of ``n`` rows over ``p`` ranks."""
    if p < 1 or p > n:
        raise ValueError(f"need 1 <= p <= n, got p={p}, n={n}")
    bounds = np.linspace(0, n, p + 1).astype(int)
    return RowPartition(bounds=tuple(int(b) for b in bounds))


def partition_by_nnz(a: CSRMatrix, p: int) -> RowPartition:
    """Contiguous partition balancing nonzeros per rank.

    Greedy split of the prefix-nnz curve into ``p`` equal arcs — the
    standard 1-D balanced-chains heuristic.
    """
    n = a.nrows
    if p < 1 or p > n:
        raise ValueError(f"need 1 <= p <= n, got p={p}, n={n}")
    target = a.nnz / p
    bounds = [0]
    for r in range(1, p):
        cut = int(np.searchsorted(a.rowidx, r * target, side="left"))
        cut = max(bounds[-1] + 1, min(cut, n - (p - r)))
        bounds.append(cut)
    bounds.append(n)
    return RowPartition(bounds=tuple(bounds))
