"""Deterministic in-process message-passing simulation.

Models the communication layer of an SPMD program the way the paper's
Section 1 assumes it: reliable transport (MPI messages carry checksums,
so in-flight corruption is excluded from the fault model), with the
cost observable as message counts and word volume.

Collectives operate on *lists indexed by rank* — the simulation runs
ranks' compute phases sequentially, so a collective is a plain function
of all ranks' contributions.  This keeps the data movement (and its
accounting) explicit while staying deterministic and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CommStats", "SimComm"]


@dataclass
class CommStats:
    """Message-volume accounting for one communicator."""

    messages: int = 0
    words: int = 0
    collectives: dict[str, int] = field(default_factory=dict)

    def record(self, op: str, messages: int, words: int) -> None:
        """Account one collective invocation."""
        self.messages += messages
        self.words += words
        self.collectives[op] = self.collectives.get(op, 0) + 1


class SimComm:
    """A simulated communicator over ``size`` ranks.

    Point-to-point volume model: a collective over p ranks moving a
    w-word payload per rank is accounted with its classical linear-cost
    message/volume figures (e.g. allgather: p·(p−1) messages,
    (p−1)·Σwᵢ words), which is what partitioning studies report.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self.stats = CommStats()

    # ------------------------------------------------------------------
    # collectives (lists indexed by rank)
    # ------------------------------------------------------------------
    def bcast(self, value, root: int = 0) -> list:
        """Broadcast ``value`` from ``root`` to all ranks."""
        self._check_rank(root)
        words = _words(value)
        self.stats.record("bcast", self.size - 1, words * (self.size - 1))
        return [value for _ in range(self.size)]

    def scatter(self, chunks: list, root: int = 0) -> list:
        """Scatter one chunk per rank from ``root``."""
        self._check_rank(root)
        self._check_contrib(chunks)
        words = sum(_words(c) for i, c in enumerate(chunks) if i != root)
        self.stats.record("scatter", self.size - 1, words)
        return list(chunks)

    def gather(self, contributions: list, root: int = 0) -> list:
        """Gather all ranks' contributions at ``root``; list at root, None elsewhere."""
        self._check_rank(root)
        self._check_contrib(contributions)
        words = sum(_words(c) for i, c in enumerate(contributions) if i != root)
        self.stats.record("gather", self.size - 1, words)
        return [list(contributions) if r == root else None for r in range(self.size)]

    def allgather(self, contributions: list) -> list:
        """Every rank receives every rank's contribution."""
        self._check_contrib(contributions)
        total = sum(_words(c) for c in contributions)
        self.stats.record(
            "allgather", self.size * (self.size - 1), total * (self.size - 1)
        )
        return [list(contributions) for _ in range(self.size)]

    def allgather_concat(self, contributions: "list[np.ndarray]") -> "list[np.ndarray]":
        """Allgather of vector slices, concatenated into the full vector.

        This is the distributed SpMxV's input-assembly step (the
        mpi4py tutorial's ``matvec`` pattern).
        """
        self._check_contrib(contributions)
        full = np.concatenate([np.asarray(c, dtype=np.float64) for c in contributions])
        total = sum(int(np.asarray(c).size) for c in contributions)
        self.stats.record(
            "allgather", self.size * (self.size - 1), total * (self.size - 1)
        )
        return [full.copy() for _ in range(self.size)]

    def allreduce_sum(self, contributions: list) -> list:
        """Sum across ranks, result available on every rank."""
        self._check_contrib(contributions)
        acc = contributions[0]
        for c in contributions[1:]:
            acc = acc + c
        words = _words(contributions[0])
        self.stats.record(
            "allreduce", 2 * (self.size - 1), 2 * words * (self.size - 1)
        )
        return [acc if np.isscalar(acc) else np.array(acc, copy=True) for _ in range(self.size)]

    def barrier(self) -> None:
        """Synchronization point (accounting only)."""
        self.stats.record("barrier", self.size - 1, 0)

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")

    def _check_contrib(self, contributions: list) -> None:
        if len(contributions) != self.size:
            raise ValueError(
                f"expected one contribution per rank ({self.size}), got {len(contributions)}"
            )


def _words(value) -> int:
    """64-bit word count of a payload (scalars count as one word)."""
    if np.isscalar(value):
        return 1
    arr = np.asarray(value)
    return int(arr.size)
