"""Floating-point tolerances for checksum comparisons (paper Theorem 2).

Checksum equality tests like ``(cᵀA)x = cᵀ(Ax)`` never hold exactly in
floating point: associativity fails and each summation order accrues
its own rounding.  Theorem 2 of the paper bounds the gap under the
standard model of floating-point arithmetic (Higham, §2.2):

    |fl((cᵀA)x) − fl(cᵀ(Ax))| ≤ 2 γ₂ₙ |cᵀ| |A| |x|            (7)

with ``γ_m = m·u / (1 − m·u)`` and unit roundoff ``u``.  Because the
right-hand side is itself not computable exactly, the paper loosens it
with norms (Eq. 9):

    ... ≤ 2 γ₂ₙ n ‖c‖∞ ‖A‖₁ ‖x‖∞

which needs only ``‖A‖₁`` (computed once per matrix, accurate to
``n'·u`` with ``n'`` the max column count — small for sparse matrices)
and ``‖x‖∞`` per call.  Using this bound as the comparison tolerance
guarantees **no false positives**: a fault-free run can never trip the
detector.  False negatives (errors below the threshold) are possible
but, as the paper argues via Elliott et al., such perturbations are too
small to derail CG convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["gamma", "spmv_checksum_tolerance", "ToleranceModel"]

#: Unit roundoff of IEEE-754 binary64.
UNIT_ROUNDOFF: float = float(np.finfo(np.float64).eps) / 2.0

#: Smallest positive normal binary64, hoisted: ``np.finfo`` lookups are
#: surprisingly costly and :meth:`ToleranceModel.thresholds` sits on the
#: per-product verification path.
_TINY: float = float(np.finfo(np.float64).tiny)


def gamma(m: int, u: float = UNIT_ROUNDOFF) -> float:
    """Higham's ``γ_m = m·u / (1 − m·u)``; requires ``m·u < 1``."""
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    mu = m * u
    if mu >= 1.0:
        raise ValueError(f"gamma undefined: m*u = {mu} >= 1")
    return mu / (1.0 - mu)


def spmv_checksum_tolerance(
    n: int,
    c_inf: float,
    norm1_a: float,
    x_inf: float,
    u: float = UNIT_ROUNDOFF,
) -> float:
    """The Eq.-9 bound ``2 γ₂ₙ n ‖c‖∞ ‖A‖₁ ‖x‖∞``."""
    return 2.0 * gamma(2 * n, u) * n * c_inf * norm1_a * x_inf


@dataclass(frozen=True)
class ToleranceModel:
    """Matrix-dependent tolerance data, evaluated per call against ``‖x‖∞``.

    Attributes
    ----------
    n:
        Matrix dimension.
    norm1_a:
        ``‖A‖₁`` of the protected matrix.
    per_check_factor:
        For each checksum row ``l``, the product
        ``2 γ₂ₙ n ‖c⁽ˡ⁾‖∞ ‖A‖₁`` where ``c⁽ˡ⁾`` is the (shifted, for
        l = 0) checksum row.  Multiplying by ``‖x‖∞`` yields the final
        tolerance — so the per-call cost is one max-reduction over x.
    """

    n: int
    norm1_a: float
    per_check_factor: np.ndarray

    @classmethod
    def for_matrix(
        cls,
        n: int,
        norm1_a: float,
        weights_inf: np.ndarray,
        shifted_c_inf: float,
        u: float = UNIT_ROUNDOFF,
    ) -> "ToleranceModel":
        """Build the model from per-matrix quantities.

        ``weights_inf[l] = ‖w⁽ˡ⁾‖∞`` is used for the output-side
        checksum ``w⁽ˡ⁾ᵀy``; the first row additionally uses the shifted
        column checksum magnitude for the ``cᵀx'`` test.  We take the
        max of the two so one factor per row covers all tests that row
        participates in.
        """
        weights_inf = np.asarray(weights_inf, dtype=np.float64)
        base = 2.0 * gamma(2 * n, u) * n * norm1_a
        c_inf = weights_inf * max(1.0, norm1_a)
        c_inf[0] = max(c_inf[0], shifted_c_inf)
        return cls(n=n, norm1_a=norm1_a, per_check_factor=base / max(1.0, norm1_a) * c_inf)

    def thresholds(self, x_inf: float) -> np.ndarray:
        """Per-checksum-row comparison thresholds for input magnitude ``‖x‖∞``."""
        return self.per_check_factor * max(x_inf, _TINY)
