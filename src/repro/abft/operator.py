"""A reusable ABFT-protected linear operator.

Bundles a matrix, its checksum metadata and (lazily) the transposed
matrix with *its own* checksums, exposing ``matvec``/``rmatvec``
callables that drop into any solver taking product hooks
(:func:`repro.core.pcg.pcg`, :mod:`repro.core.krylov`).  Every product
is verified; single errors are corrected in place; uncorrectable
products raise :class:`UncorrectableError` so the caller's
backward-recovery layer can take over.

This is the glue the paper's Section 3 sketches for CGNE/BiCG/BiCGstab:
the transpose product is just the ABFT-SpMxV applied to ``Aᵀ`` — one
extra ``O(k·nnz)`` setup, amortized like the primal one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.abft.checksums import SpmvChecksums, compute_checksums
from repro.abft.spmv import protected_spmv, SpmvStatus

__all__ = ["UncorrectableError", "ProtectedOperator"]


class UncorrectableError(RuntimeError):
    """A protected product hit a multi-error it could not repair."""

    def __init__(self, result) -> None:
        super().__init__(f"uncorrectable silent error: {result.status}")
        self.result = result


@dataclass
class OperatorStats:
    """Counters over all products the operator served."""

    products: int = 0
    corrections: dict[str, int] = field(default_factory=dict)
    uncorrectable: int = 0

    def record(self, result) -> None:
        self.products += 1
        if result.status is SpmvStatus.CORRECTED and result.correction is not None:
            kind = result.correction.kind
            self.corrections[kind] = self.corrections.get(kind, 0) + 1
        elif not result.trusted:
            self.uncorrectable += 1


class ProtectedOperator:
    """ABFT-protected ``A·v`` / ``Aᵀ·v`` with shared bookkeeping.

    Parameters
    ----------
    a:
        The matrix.  The operator keeps its own live copy (mutated only
        by ABFT repairs) and never touches the caller's arrays.
    nchecks:
        1 = detection only (``matvec`` raises on any detection);
        2 = detect-2/correct-1 (raises only on uncorrectable products).
    fault_hook / fault_hook_t:
        Optional injection hooks forwarded to the primal / transpose
        protected products (simulation use).
    """

    def __init__(
        self,
        a: CSRMatrix,
        *,
        nchecks: int = 2,
        fault_hook=None,
        fault_hook_t=None,
    ) -> None:
        if nchecks not in (1, 2):
            raise ValueError(f"nchecks must be 1 or 2, got {nchecks}")
        self._a = a.copy()
        self._nchecks = nchecks
        self._cks: SpmvChecksums = compute_checksums(self._a, nchecks=nchecks)
        self._at: CSRMatrix | None = None
        self._cks_t: SpmvChecksums | None = None
        self._hook = fault_hook
        self._hook_t = fault_hook_t
        self.stats = OperatorStats()

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the wrapped matrix."""
        return self._a.shape

    @property
    def matrix(self) -> CSRMatrix:
        """The operator's live (self-healing) copy of the matrix."""
        return self._a

    def _run(self, a, x, cks, hook):
        res = protected_spmv(
            a, np.asarray(x, dtype=np.float64).copy(),
            cks, correct=(self._nchecks == 2), fault_hook=hook,
        )
        self.stats.record(res)
        if not res.trusted:
            raise UncorrectableError(res)
        return res.y

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Verified (and self-repairing) ``A·x``."""
        return self._run(self._a, x, self._cks, self._hook)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Verified ``Aᵀ·x`` — the transpose carries its own checksums,
        built lazily on first use (CG never needs them)."""
        if self._at is None:
            self._at = self._a.transpose()
            self._cks_t = compute_checksums(self._at, nchecks=self._nchecks)
        return self._run(self._at, x, self._cks_t, self._hook_t)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)
