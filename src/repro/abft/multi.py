"""Multi-error *detection* with k ≥ 2 checksum rows.

The technical-report extension the paper summarizes in Section 3.2:
"the method just described can be extended to detect up to a total of k
errors … building up the necessary structures requires O(k·nnz(A))
time, and the overhead per SpMxV is O(k·n)."  The paper also notes that
*correction* beyond one error "is practically not feasible for k > 2" —
so this module implements detection only, and the library's correction
stays at the paper's detect-2/correct-1.

Weight rows are the Vandermonde family ``w⁽ˡ⁾_i = (i/n)^{l−1}``
(normalized abscissae to keep the entries in [0, 1] and the residual
scales comparable; any k columns of a Vandermonde matrix with distinct
nodes are linearly independent, so no combination of ≤ k output-row
errors can cancel every residual).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.norms import column_sums, norm1
from repro.abft.tolerance import gamma

__all__ = ["MultiChecksums", "compute_multi_checksums", "detect_multi"]


def _vandermonde_weights(n: int, k: int) -> np.ndarray:
    """``(k, n)`` weight rows w⁽ˡ⁾_i = ((i+1)/n)^{l−1}, l = 1..k."""
    nodes = np.arange(1, n + 1, dtype=np.float64) / n
    return np.vstack([nodes ** (l - 1) for l in range(1, k + 1)])


@dataclass(frozen=True)
class MultiChecksums:
    """Reliable metadata for k-error detection of ``y = A x``."""

    k: int
    weights: np.ndarray  #: (k, n) Vandermonde weight rows
    column_checksums: np.ndarray  #: (k, n) rows of WᵀA
    thresholds_factor: np.ndarray  #: per-row Theorem-2 factors (× ‖x‖∞)

    def thresholds(self, x_inf: float) -> np.ndarray:
        """Per-row comparison thresholds for input magnitude ``‖x‖∞``."""
        return self.thresholds_factor * max(x_inf, np.finfo(np.float64).tiny)


def compute_multi_checksums(a: CSRMatrix, k: int) -> MultiChecksums:
    """O(k·nnz) setup for k-error detection on matrix ``a``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_rows, n_cols = a.shape
    w = _vandermonde_weights(n_rows, k)
    cks = np.vstack([column_sums(a, weights=w[l]) for l in range(k)])
    base = 2.0 * gamma(2 * n_rows) * n_rows * norm1(a)
    # ‖w⁽ˡ⁾‖∞ = 1 for every row by construction.
    factors = np.full(k, base)
    return MultiChecksums(k=k, weights=w, column_checksums=cks, thresholds_factor=factors)


def detect_multi(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    cks: MultiChecksums,
) -> tuple[bool, np.ndarray]:
    """Check ``y = A x`` against the k checksum rows.

    Returns ``(clean, residuals)``; a run with up to ``k`` corrupted
    output rows leaves at least one residual above its threshold
    (Vandermonde independence), while a fault-free product stays below
    all of them (Theorem-2 bound per row).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    with np.errstate(over="ignore", invalid="ignore"):
        residuals = cks.weights @ y - cks.column_checksums @ x
    x_inf = float(np.abs(x).max(initial=0.0))
    thr = cks.thresholds(x_inf)
    clean = bool(
        np.all(np.isfinite(residuals)) and np.all(np.abs(residuals) <= thr)
    )
    return clean, residuals
