"""Triple modular redundancy for vector kernels.

The paper protects the SpMxV with ABFT but notes that checksum schemes
for the remaining CG kernels (dot products, norms, axpy updates) cost
as much as recomputation — so those are protected by TMR instead
(Section 3.1): execute three times, take the majority.

In the simulation, unreliable executions are modeled by an optional
``corrupt`` hook that may perturb individual replica results; the
voter then recovers the true value as long as at most one replica is
corrupted ("we assume errors are not overly frequent so that two out
of three are correct").
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["TMRError", "majority_vote", "tmr_dot", "tmr_norm2", "tmr_axpy"]

#: Replica hook type: receives (replica_index, value) and returns the
#: possibly-corrupted value the replica observed.
CorruptHook = Callable[[int, np.ndarray | float], np.ndarray | float]


class TMRError(RuntimeError):
    """Raised when all three replicas disagree (≥ 2 corrupted replicas)."""


def _agree(u, v, rtol: float) -> bool:
    return bool(np.allclose(u, v, rtol=rtol, atol=0.0))


def majority_vote(replicas: Sequence, *, rtol: float = 0.0):
    """Return the value at least two of three replicas agree on.

    Parameters
    ----------
    replicas:
        Exactly three replica results (scalars or arrays).
    rtol:
        Agreement tolerance.  Zero (default) demands bitwise equality,
        which is correct here because the three replicas perform the
        identical deterministic computation — they can only differ if
        corrupted.

    Raises
    ------
    TMRError
        If no two replicas agree.
    """
    if len(replicas) != 3:
        raise ValueError(f"TMR requires exactly 3 replicas, got {len(replicas)}")
    a, b, c = replicas
    if _agree(a, b, rtol):
        return a
    if _agree(a, c, rtol):
        return a
    if _agree(b, c, rtol):
        return b
    raise TMRError("all three replicas disagree; double error in TMR region")


def _run3(compute: Callable[[], np.ndarray | float], corrupt: CorruptHook | None):
    out = []
    for i in range(3):
        v = compute()
        if corrupt is not None:
            v = corrupt(i, v)
        out.append(v)
    return out


def tmr_dot(
    x: np.ndarray,
    y: np.ndarray,
    *,
    corrupt: CorruptHook | None = None,
) -> float:
    """TMR-protected dot product ``xᵀy``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    return float(majority_vote(_run3(lambda: float(x @ y), corrupt)))


def tmr_norm2(x: np.ndarray, *, corrupt: CorruptHook | None = None) -> float:
    """TMR-protected squared 2-norm ``‖x‖² = xᵀx``."""
    x = np.asarray(x, dtype=np.float64)
    return float(majority_vote(_run3(lambda: float(x @ x), corrupt)))


def tmr_axpy(
    alpha: float,
    x: np.ndarray,
    y: np.ndarray,
    *,
    corrupt: CorruptHook | None = None,
) -> np.ndarray:
    """TMR-protected ``y + α·x`` (returns a fresh array; inputs untouched)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    result = majority_vote(_run3(lambda: y + alpha * x, corrupt))
    return np.array(result, dtype=np.float64, copy=True)
