"""Checksum precomputation for the protected SpMxV.

This is ``COMPUTECHECKSUMS`` of the paper's Algorithm 2.  For a matrix
``A`` and weight matrix ``W`` (rows ``w⁽¹⁾ = (1,…,1)`` and optionally
``w⁽²⁾ = (1,…,n)``) we store:

- ``column_checksums``  ``C[l, j] = Σ_i w⁽ˡ⁾_i a_ij`` — i.e. ``WᵀA``
  (stored with checks as rows for cache-friendly reuse);
- ``shift``             the constant ``k`` making every *shifted*
  first-row checksum ``C[0, j] + k`` nonzero (Theorem 1, item 1);
- ``rowidx_checksums``  ``cr[l] = Σ_{i=1}^{n} w⁽ˡ⁾_i · Rowidx_i`` — the
  weighted sum of the row-pointer entries that the running counter
  ``sr`` accumulates during the product (Theorem 1, items 3–4);
- ``tolerance``         the matrix-dependent part of the Theorem-2
  bound, so the per-call tolerance costs O(1) extra work.

Everything here is computed **once per matrix** — the paper stresses
that amortization ("in the common scenario of many SpMxVs with the same
matrix, it is enough to invoke it once") — and is assumed to live in
reliable memory (selective reliability).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import METRICS
from repro.sparse.csr import CSRMatrix
from repro.sparse.norms import column_sums, norm1
from repro.abft.weights import weight_matrix, choose_shift
from repro.abft.tolerance import ToleranceModel

__all__ = [
    "SpmvChecksums",
    "compute_checksums",
    "cached_checksums",
    "checksums_cached",
    "clear_checksum_cache",
]


@dataclass(frozen=True)
class SpmvChecksums:
    """Reliable per-matrix ABFT metadata for protected SpMxV calls.

    Attributes
    ----------
    nchecks:
        1 for single-error detection, 2 for double detection / single
        correction.
    weights:
        The ``(nchecks, n)`` weight matrix ``Wᵀ``.
    column_checksums:
        ``(nchecks, n)`` array, row ``l`` holding ``w⁽ˡ⁾ᵀA``.
    shift:
        The constant ``k`` of Theorem 1; ``column_checksums[0] + shift``
        has no zero entry, which is what makes errors in ``x`` visible
        even for zero-sum columns (e.g. graph Laplacians).
    rowidx_checksums:
        ``(nchecks,)`` weighted checksums of ``Rowidx[1..n]`` (the
        entries the running counter visits), in exact float arithmetic
        (row pointers are integers well below 2⁵³ so this is exact).
    tolerance:
        Matrix-dependent Theorem-2 tolerance model.
    """

    nchecks: int
    weights: np.ndarray
    column_weights: np.ndarray
    column_checksums: np.ndarray
    shift: float
    rowidx_checksums: np.ndarray
    rowidx_checksums_exact: tuple[int, ...]
    tolerance: ToleranceModel
    shape: tuple[int, int] = field(default=(0, 0))
    #: Precomputed ``W − C`` for the line-22 input test — both operands
    #: are per-matrix constants, so allocating the difference on every
    #: verification would be pure hot-loop waste.  ``None`` (e.g. for
    #: hand-built instances in tests) falls back to computing it inline.
    weights_minus_checksums: "np.ndarray | None" = field(default=None)

    @property
    def shifted_first_row(self) -> np.ndarray:
        """``C[0, :] + k`` — the shifted checksum vector ``c`` of Theorem 1."""
        return self.column_checksums[0] + self.shift

    def x_checksums(self, x: np.ndarray) -> np.ndarray:
        """``cx = Wᵀx`` (Algorithm 2 line 10) for the current input vector.

        Computed reliably at call entry; O(n·nchecks).  Uses the
        *column* weights so the checksum is well-defined for the
        rectangular local blocks of a row-partitioned parallel SpMxV
        (for square matrices the two weight matrices coincide).
        """
        return self.column_weights @ np.asarray(x, dtype=np.float64)

    @property
    def is_square(self) -> bool:
        """Whether the protected matrix is square (paper's main case)."""
        return self.shape[0] == self.shape[1]


def compute_checksums(
    a: CSRMatrix,
    *,
    nchecks: int = 2,
    shift_margin: float = 1.0,
    backend: "object | None" = None,
) -> SpmvChecksums:
    """Build the reliable checksum metadata for matrix ``a``.

    Cost is ``O(nchecks · nnz(A))`` — the ``O(k · nnz)`` setup the paper
    quotes in Section 3.2 — plus ``O(n)`` for the row-pointer checksum.

    Parameters
    ----------
    a:
        The (clean) matrix to protect.  Must be structurally valid.
    nchecks:
        Number of checksum rows (1 = detect one error, 2 = detect two /
        correct one).
    shift_margin:
        Safety margin passed to :func:`repro.abft.weights.choose_shift`.
    backend:
        Optional resolved :class:`repro.backends.KernelBackend` whose
        ``checksum_products`` computes ``WᵀA``.  Backends are
        contractually bit-identical here (reliable arithmetic), so this
        changes who runs the scatter loop, not the metadata.  ``None``
        uses the reference scatter directly.
    """
    n_rows, n_cols = a.shape
    w = weight_matrix(n_rows, nchecks)
    w_col = w if n_rows == n_cols else weight_matrix(n_cols, nchecks)
    if backend is not None:
        cks = np.asarray(backend.checksum_products(a, w), dtype=np.float64)
        if cks.shape != (nchecks, n_cols):
            raise ValueError(
                f"backend checksum_products returned shape {cks.shape}, "
                f"expected {(nchecks, n_cols)}"
            )
    else:
        cks = np.empty((nchecks, n_cols), dtype=np.float64)
        cks[0] = column_sums(a)  # w⁽¹⁾ = ones: plain column sums
        if nchecks == 2:
            cks[1] = column_sums(a, weights=w[1])
    shift = choose_shift(cks[0], margin=shift_margin)

    # Weighted checksums of the row-pointer entries the running counter
    # sr accumulates (Rowidx_1 .. Rowidx_n in the paper's 1-based
    # notation; with 0-based arrays these are rowidx[1:].  rowidx[0] is
    # pinned to 0 and checked structurally instead).
    ridx = a.rowidx[1:].astype(np.float64)
    cr = w @ ridx
    # Exact integer form of the same checksums: float64 verification is
    # fine for *detection* (any corruption leaves a residual ≥ 0.5) but
    # the *correction* delta must be bit-exact even when a flipped
    # pointer is ~2⁶² and the float sum rounds low bits away.
    ridx_int = [int(v) for v in a.rowidx[1:]]
    cr_exact = [sum(ridx_int)]
    if nchecks == 2:
        cr_exact.append(sum((i + 1) * v for i, v in enumerate(ridx_int)))

    tol = ToleranceModel.for_matrix(
        n=n_rows,
        norm1_a=norm1(a),
        weights_inf=np.abs(w).max(axis=1),
        shifted_c_inf=float(np.abs(cks[0] + shift).max(initial=0.0)),
    )
    return SpmvChecksums(
        nchecks=nchecks,
        weights=w,
        column_weights=w_col,
        column_checksums=cks,
        shift=shift,
        rowidx_checksums=cr,
        rowidx_checksums_exact=tuple(cr_exact),
        tolerance=tol,
        shape=a.shape,
        weights_minus_checksums=(w - cks) if n_rows == n_cols else None,
    )


# ----------------------------------------------------------------------
# per-process checksum cache
# ----------------------------------------------------------------------
#: matrix → {(nchecks, shift_margin): SpmvChecksums}.  Weak keys: an
#: entry lives exactly as long as its matrix object, so the cache can
#: never serve metadata for a recycled ``id()``.
_CACHE: "weakref.WeakKeyDictionary[CSRMatrix, dict]" = weakref.WeakKeyDictionary()


def _cache_key(
    nchecks: int, shift_margin: float, backend: "object | None"
) -> tuple:
    """Cache key for one checksum configuration.

    Shipped backends are contractually bit-identical on checksum
    arithmetic, but the key still includes the backend name for
    non-reference backends so a custom backend that (wrongly) deviates
    can never leak its floats into another backend's run.
    """
    if backend is None:
        return (nchecks, shift_margin)
    return (nchecks, shift_margin, getattr(backend, "name", "custom"))


def cached_checksums(
    a: CSRMatrix,
    *,
    nchecks: int = 2,
    shift_margin: float = 1.0,
    backend: "object | None" = None,
) -> SpmvChecksums:
    """Per-process memoized :func:`compute_checksums`.

    The paper stresses that checksum setup amortizes over "many SpMxVs
    with the same matrix"; this pushes the amortization across *runs*:
    a campaign's ``repeat_run`` pays the O(nchecks·nnz) setup once per
    matrix instead of once per repetition.  Keyed by matrix **object
    identity** (mirroring :func:`repro.sim.matrices.get_matrix`, whose
    cache hands out one shared instance per ``(uid, scale)``).

    The caller owns the staleness contract: checksums describe the
    matrix *as it was at first call*.  Mutate a matrix in place and you
    must call :func:`clear_checksum_cache` (or use a fresh object).
    The resilience engine satisfies this for free — it computes
    checksums from the pristine input matrix, never from the live copy
    the injector corrupts.
    """
    per_matrix = _CACHE.get(a)
    if per_matrix is None:
        per_matrix = _CACHE[a] = {}
    key = _cache_key(nchecks, shift_margin, backend)
    cks = per_matrix.get(key)
    if cks is None:
        METRICS.inc("abft.checksum_cache.miss")
        cks = per_matrix[key] = compute_checksums(
            a, nchecks=nchecks, shift_margin=shift_margin, backend=backend
        )
    else:
        METRICS.inc("abft.checksum_cache.hit")
    return cks


def checksums_cached(
    a: CSRMatrix,
    *,
    nchecks: int = 2,
    shift_margin: float = 1.0,
    backend: "object | None" = None,
) -> bool:
    """Whether :func:`cached_checksums` would hit for this key.

    A pure peek (no cache mutation, no metrics); the engine uses it to
    label its ``abft-setup`` trace event before the cache call.
    """
    per_matrix = _CACHE.get(a)
    return bool(per_matrix) and _cache_key(nchecks, shift_margin, backend) in per_matrix


def clear_checksum_cache() -> None:
    """Drop all cached checksum metadata (see :func:`cached_checksums`)."""
    _CACHE.clear()
