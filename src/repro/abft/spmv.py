"""ABFT-protected sparse matrix–vector product (paper Algorithm 2).

The protected product computes ``y = A x`` through the unreliable
kernel and then evaluates three groups of checksum residuals (all the
checksum arithmetic itself is reliable — selective reliability):

``dr``  (Theorem 1, tests iii/iv)
    ``cr − Wᵀ·Rowidx[1..n]`` where ``cr`` was precomputed from the
    clean matrix.  Row pointers are integers, so this test is exact:
    any absolute residual ≥ 0.5 is a real corruption of ``Rowidx``.

``dx``  (Algorithm 2 line 21, Theorem 1 test i)
    ``Wᵀy − (WᵀA)ᵀ·x̃`` evaluated against the *current* (possibly
    corrupted) ``x̃``.  Because ``y`` was computed from the same ``x̃``,
    errors in ``x`` cancel here — a nonzero ``dx`` isolates errors in
    the matrix arrays or in the computation of ``y``.  With the ramp
    weight row, ``dx₂/dx₁`` localizes the faulty output row.

``dxp`` (Algorithm 2 line 22, Theorem 1 test ii)
    The input-vector test against the reliable copy ``x'``.  Two forms
    are implemented, matching the paper's two schemes:

    * *detection mode* (1 checksum row): the Theorem-1 shifted test
      ``(c + k)ᵀx' − (Σᵢyᵢ + k Σᵢx̃ᵢ)`` with ``c`` the column sums of
      ``A``.  The shift ``k`` is what makes an error in ``x_j`` visible
      even when column ``j`` of ``A`` sums to zero (Section 3.2's
      geometric argument; e.g. graph Laplacians).
    * *correction mode* (2 checksum rows): the line-22 form
      ``Wᵀ(x' − y) − (W − C)ᵀx̃``, which reduces to ``Wᵀ(x' − x̃)``
      when only ``x`` is corrupted — so ``dxp₂/dxp₁`` localizes the
      faulty entry of ``x`` directly (the ``W`` rows have no zero
      entries, so no shift is needed for localization).

All floating-point comparisons use the Theorem-2 tolerance, so a
fault-free product can never be flagged (no false positives).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmv
from repro.abft.checksums import SpmvChecksums, compute_checksums

__all__ = ["SpmvStatus", "SpmvResiduals", "ProtectedSpmvResult", "protected_spmv", "detect_errors"]


class SpmvStatus(enum.Enum):
    """Outcome of a protected SpMxV."""

    OK = "ok"  #: all checksums passed; y is trusted
    CORRECTED = "corrected"  #: a single error was detected and repaired
    DETECTED = "detected"  #: an error was detected (detection-only mode)
    UNCORRECTABLE = "uncorrectable"  #: ≥ 2 errors; caller must roll back


@dataclass(frozen=True)
class SpmvResiduals:
    """The raw checksum residuals of one verification pass."""

    dr: np.ndarray  #: row-pointer residuals, one per checksum row (exact)
    dx: np.ndarray  #: output/matrix residuals, one per checksum row
    dxp: np.ndarray  #: input-vector residuals, one per checksum row
    thresholds: np.ndarray  #: Theorem-2 thresholds for dx/dxp rows

    @property
    def rowidx_flagged(self) -> bool:
        """True when the (exact) row-pointer test fails.

        Pointers are integers, so any true discrepancy is ≥ 1; a
        non-finite residual (overflowed corrupted pointer) also flags.
        """
        return bool(np.any(~np.isfinite(self.dr)) or np.any(np.abs(self.dr) >= 0.5))

    @property
    def dx_flagged(self) -> bool:
        """True when the matrix/computation test exceeds tolerance.

        NaN/inf residuals — a flipped exponent bit can push a value to
        ~1e300 and overflow the checksum algebra — always flag.
        """
        return bool(
            np.any(~np.isfinite(self.dx)) or np.any(np.abs(self.dx) > self.thresholds)
        )

    @property
    def dxp_flagged(self) -> bool:
        """True when the input-vector test exceeds tolerance (NaN/inf flags)."""
        return bool(
            np.any(~np.isfinite(self.dxp)) or np.any(np.abs(self.dxp) > self.thresholds)
        )

    @property
    def clean(self) -> bool:
        """True when every test passes."""
        return not (self.rowidx_flagged or self.dx_flagged or self.dxp_flagged)


@dataclass
class ProtectedSpmvResult:
    """Result of :func:`protected_spmv`.

    Attributes
    ----------
    y:
        The output vector.  Trustworthy iff ``status`` is ``OK`` or
        ``CORRECTED``.
    status:
        See :class:`SpmvStatus`.
    residuals:
        The residuals of the *first* verification pass (before any
        correction), for diagnostics.
    correction:
        The correction outcome when a repair was attempted, else None.
    """

    y: np.ndarray
    status: SpmvStatus
    residuals: SpmvResiduals
    correction: "object | None" = field(default=None)

    @property
    def trusted(self) -> bool:
        """Whether the caller may use ``y`` without recovery."""
        return self.status in (SpmvStatus.OK, SpmvStatus.CORRECTED)


def _verify(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    x_ref: np.ndarray,
    cks: SpmvChecksums,
) -> SpmvResiduals:
    """Evaluate all checksum residuals for the current state."""
    w = cks.weights
    c = cks.column_checksums
    # Corrupted data can hold ±1e300-scale values whose checksum algebra
    # overflows; the resulting inf/NaN residuals are flagged as errors,
    # so the overflow itself is expected, not exceptional.
    with np.errstate(over="ignore", invalid="ignore"):
        # Row-pointer test (exact integer arithmetic in float64).
        sr = w @ a.rowidx[1:].astype(np.float64)
        dr = cks.rowidx_checksums - sr
        # Matrix/computation test: Wᵀy − Cᵀx̃.
        dx = w @ y - c @ x
    # Input-vector test.
    with np.errstate(over="ignore", invalid="ignore"):
        if cks.nchecks == 1:
            # Theorem-1 shifted form: (c+k)ᵀx' − (Σy + kΣx̃).
            shifted = cks.shifted_first_row
            dxp = np.array([float(shifted @ x_ref - (y.sum() + cks.shift * x.sum()))])
        elif cks.is_square:
            # Algorithm-2 line-22 form: Wᵀ(x'−y) − (W−C)ᵀx̃.
            dxp = w @ (x_ref - y) - (w - c) @ x
        else:
            # Rectangular local block of a row-partitioned parallel SpMxV
            # (Section 1's MPI discussion): the line-22 form mixes row- and
            # column-length vectors, so the input test compares the
            # reliable copy against the live input with column weights —
            # algebraically what line 22 reduces to when only x is struck.
            dxp = cks.column_weights @ (x_ref - x)
    # Theorem 2 bounds the rounding of the products actually computed,
    # which involve the *live* x̃ (possibly corrupted, hence possibly
    # much larger than the snapshot); take the max of both magnitudes
    # so a large corruption of x cannot push benign rounding of the
    # matrix test over its threshold.
    with np.errstate(invalid="ignore"):
        x_inf = float(
            max(np.abs(x_ref).max(initial=0.0), np.abs(x).max(initial=0.0))
        )
    if not np.isfinite(x_inf):
        x_inf = float(np.abs(x_ref).max(initial=0.0))
    thresholds = cks.tolerance.thresholds(x_inf)
    return SpmvResiduals(dr=dr, dx=dx, dxp=dxp, thresholds=thresholds)


def protected_spmv(
    a: CSRMatrix,
    x: np.ndarray,
    checksums: SpmvChecksums | None = None,
    *,
    correct: bool = True,
    fault_hook: Callable[[str, CSRMatrix, np.ndarray, np.ndarray | None], None] | None = None,
    ratio_tol: float = 1e-4,
) -> ProtectedSpmvResult:
    """Compute ``y = A x`` with ABFT protection.

    Parameters
    ----------
    a:
        The matrix.  Mutated in place if a matrix error is corrected.
    x:
        The input vector.  Mutated in place if an x-error is corrected.
    checksums:
        Precomputed metadata from :func:`compute_checksums`; when None
        it is computed on the fly (which assumes ``a`` is currently
        clean — amortize it across calls in real use).
    correct:
        True → double-detect / single-correct (requires 2 checksum
        rows); False → detection only.
    fault_hook:
        Test/simulation hook.  Called as ``hook("pre", a, x, None)``
        after the reliable snapshot of ``x`` is taken (inject memory
        errors here) and ``hook("post", a, x, y)`` after the raw
        product (inject computation errors into ``y`` here).
    ratio_tol:
        The ε of Section 3.2: maximum distance of a residual ratio from
        the nearest integer for single-error localization.

    Returns
    -------
    ProtectedSpmvResult
    """
    x = np.asarray(x, dtype=np.float64)
    if checksums is None:
        checksums = compute_checksums(a, nchecks=2 if correct else 1)
    if correct and checksums.nchecks < 2:
        raise ValueError("correction requires nchecks=2 checksums")
    if checksums.shape != a.shape:
        raise ValueError(
            f"checksums were computed for shape {checksums.shape}, matrix is {a.shape}"
        )

    # Reliable snapshot (Algorithm 2 line 3) and input checksum (line 10),
    # taken before any unreliable work.
    x_ref = x.copy()
    cx = checksums.x_checksums(x)

    if fault_hook is not None:
        fault_hook("pre", a, x, None)
    y = spmv(a, x)
    if fault_hook is not None:
        fault_hook("post", a, x, y)

    residuals = _verify(a, x, y, x_ref, checksums)
    if residuals.clean:
        return ProtectedSpmvResult(y=y, status=SpmvStatus.OK, residuals=residuals)

    if not correct:
        return ProtectedSpmvResult(y=y, status=SpmvStatus.DETECTED, residuals=residuals)

    from repro.abft.correction import correct_errors

    outcome = correct_errors(
        a, x, y, x_ref, cx, checksums, residuals, ratio_tol=ratio_tol
    )
    if outcome.corrected:
        # Re-verify after repair: the repaired state must be fully clean.
        post = _verify(a, x, y, x_ref, checksums)
        if post.clean:
            return ProtectedSpmvResult(
                y=y, status=SpmvStatus.CORRECTED, residuals=residuals, correction=outcome
            )
    return ProtectedSpmvResult(
        y=y, status=SpmvStatus.UNCORRECTABLE, residuals=residuals, correction=outcome
    )


def detect_errors(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    x_ref: np.ndarray,
    checksums: SpmvChecksums,
) -> SpmvResiduals:
    """Stand-alone verification of an already-computed product.

    Exposed for tests and for callers that interleave fault injection
    with their own kernels; :func:`protected_spmv` is the normal entry
    point.
    """
    return _verify(a, np.asarray(x, dtype=np.float64), y, x_ref, checksums)
