"""ABFT-protected sparse matrix–vector product (paper Algorithm 2).

The protected product computes ``y = A x`` through the unreliable
kernel and then evaluates three groups of checksum residuals (all the
checksum arithmetic itself is reliable — selective reliability):

``dr``  (Theorem 1, tests iii/iv)
    ``cr − Wᵀ·Rowidx[1..n]`` where ``cr`` was precomputed from the
    clean matrix.  Row pointers are integers, so this test is exact:
    any absolute residual ≥ 0.5 is a real corruption of ``Rowidx``.

``dx``  (Algorithm 2 line 21, Theorem 1 test i)
    ``Wᵀy − (WᵀA)ᵀ·x̃`` evaluated against the *current* (possibly
    corrupted) ``x̃``.  Because ``y`` was computed from the same ``x̃``,
    errors in ``x`` cancel here — a nonzero ``dx`` isolates errors in
    the matrix arrays or in the computation of ``y``.  With the ramp
    weight row, ``dx₂/dx₁`` localizes the faulty output row.

``dxp`` (Algorithm 2 line 22, Theorem 1 test ii)
    The input-vector test against the reliable copy ``x'``.  Two forms
    are implemented, matching the paper's two schemes:

    * *detection mode* (1 checksum row): the Theorem-1 shifted test
      ``(c + k)ᵀx' − (Σᵢyᵢ + k Σᵢx̃ᵢ)`` with ``c`` the column sums of
      ``A``.  The shift ``k`` is what makes an error in ``x_j`` visible
      even when column ``j`` of ``A`` sums to zero (Section 3.2's
      geometric argument; e.g. graph Laplacians).
    * *correction mode* (2 checksum rows): the line-22 form
      ``Wᵀ(x' − y) − (W − C)ᵀx̃``, which reduces to ``Wᵀ(x' − x̃)``
      when only ``x`` is corrupted — so ``dxp₂/dxp₁`` localizes the
      faulty entry of ``x`` directly (the ``W`` rows have no zero
      entries, so no shift is needed for localization).

All floating-point comparisons use the Theorem-2 tolerance, so a
fault-free product can never be flagged (no false positives).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.spmv import spmv
from repro.abft.checksums import SpmvChecksums, compute_checksums

__all__ = ["SpmvStatus", "SpmvResiduals", "ProtectedSpmvResult", "protected_spmv", "detect_errors"]


class SpmvStatus(enum.Enum):
    """Outcome of a protected SpMxV."""

    OK = "ok"  #: all checksums passed; y is trusted
    CORRECTED = "corrected"  #: a single error was detected and repaired
    DETECTED = "detected"  #: an error was detected (detection-only mode)
    UNCORRECTABLE = "uncorrectable"  #: ≥ 2 errors; caller must roll back


@dataclass(frozen=True)
class SpmvResiduals:
    """The raw checksum residuals of one verification pass."""

    dr: np.ndarray  #: row-pointer residuals, one per checksum row (exact)
    dx: np.ndarray  #: output/matrix residuals, one per checksum row
    dxp: np.ndarray  #: input-vector residuals, one per checksum row
    thresholds: np.ndarray  #: Theorem-2 thresholds for dx/dxp rows

    @property
    def rowidx_flagged(self) -> bool:
        """True when the (exact) row-pointer test fails.

        Pointers are integers, so any true discrepancy is ≥ 1; a
        non-finite residual (overflowed corrupted pointer) also flags.
        """
        # Scalar arithmetic on purpose: these residual vectors have one
        # or two entries, and the ndarray reductions this replaces cost
        # ~15µs per protected product — pure dispatch overhead.
        for v in self.dr.tolist():
            if not math.isfinite(v) or abs(v) >= 0.5:
                return True
        return False

    @property
    def dx_flagged(self) -> bool:
        """True when the matrix/computation test exceeds tolerance.

        NaN/inf residuals — a flipped exponent bit can push a value to
        ~1e300 and overflow the checksum algebra — always flag.
        """
        for v, t in zip(self.dx.tolist(), self.thresholds.tolist()):
            if not math.isfinite(v) or abs(v) > t:
                return True
        return False

    @property
    def dxp_flagged(self) -> bool:
        """True when the input-vector test exceeds tolerance (NaN/inf flags)."""
        for v, t in zip(self.dxp.tolist(), self.thresholds.tolist()):
            if not math.isfinite(v) or abs(v) > t:
                return True
        return False

    @property
    def clean(self) -> bool:
        """True when every test passes."""
        return not (self.rowidx_flagged or self.dx_flagged or self.dxp_flagged)


@dataclass
class ProtectedSpmvResult:
    """Result of :func:`protected_spmv`.

    Attributes
    ----------
    y:
        The output vector.  Trustworthy iff ``status`` is ``OK`` or
        ``CORRECTED``.
    status:
        See :class:`SpmvStatus`.
    residuals:
        The residuals of the *first* verification pass (before any
        correction), for diagnostics.
    correction:
        The correction outcome when a repair was attempted, else None.
    """

    y: np.ndarray
    status: SpmvStatus
    residuals: SpmvResiduals
    correction: "object | None" = field(default=None)

    @property
    def trusted(self) -> bool:
        """Whether the caller may use ``y`` without recovery."""
        return self.status in (SpmvStatus.OK, SpmvStatus.CORRECTED)


def _verify(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    x_ref: np.ndarray,
    cks: SpmvChecksums,
    buffers: "tuple | None" = None,
    dr_zero: bool = False,
) -> SpmvResiduals:
    """Evaluate all checksum residuals for the current state.

    ``buffers`` — optional workspace pair ``(ridx, xdiff)`` of O(n)
    ``float64`` scratch arrays for the row-pointer cast and the
    ``x' − y`` difference; the floats computed are identical either way.

    ``dr_zero`` — caller certifies ``a.rowidx`` is byte-identical to
    the row pointers the checksums were computed from, making the
    (exact) row-pointer residual ``cr − Wᵀ·Rowidx`` identically zero
    without the O(n) evaluation: both sides are the same dot product of
    the same bytes.
    """
    w = cks.weights
    c = cks.column_checksums
    # Corrupted data can hold ±1e300-scale values whose checksum algebra
    # overflows; the resulting inf/NaN residuals are flagged as errors,
    # so the overflow itself is expected, not exceptional.
    with np.errstate(over="ignore", invalid="ignore"):
        # Row-pointer test (exact integer arithmetic in float64).
        if dr_zero:
            dr = np.zeros(cks.nchecks, dtype=np.float64)
        else:
            if buffers is None:
                ridx = a.rowidx[1:].astype(np.float64)
            else:
                ridx = buffers[0]
                np.copyto(ridx, a.rowidx[1:])  # casting copy ≡ astype
            sr = w @ ridx
            dr = cks.rowidx_checksums - sr
        # Matrix/computation test: Wᵀy − Cᵀx̃.
        dx = w @ y - c @ x
        # Input-vector test.
        if cks.nchecks == 1:
            # Theorem-1 shifted form: (c+k)ᵀx' − (Σy + kΣx̃).
            shifted = cks.shifted_first_row
            dxp = np.array([float(shifted @ x_ref - (y.sum() + cks.shift * x.sum()))])
        elif cks.is_square:
            # Algorithm-2 line-22 form: Wᵀ(x'−y) − (W−C)ᵀx̃.
            wmc = cks.weights_minus_checksums
            if wmc is None:  # hand-built checksums without the cache
                wmc = w - c
            if buffers is None:
                dxp = w @ (x_ref - y) - wmc @ x
            else:
                diff = buffers[1]
                np.subtract(x_ref, y, out=diff)
                dxp = w @ diff - wmc @ x
        else:
            # Rectangular local block of a row-partitioned parallel SpMxV
            # (Section 1's MPI discussion): the line-22 form mixes row- and
            # column-length vectors, so the input test compares the
            # reliable copy against the live input with column weights —
            # algebraically what line 22 reduces to when only x is struck.
            dxp = cks.column_weights @ (x_ref - x)
        # Theorem 2 bounds the rounding of the products actually computed,
        # which involve the *live* x̃ (possibly corrupted, hence possibly
        # much larger than the snapshot); take the max of both magnitudes
        # so a large corruption of x cannot push benign rounding of the
        # matrix test over its threshold.
        if x.shape[0]:
            # ``initial=0.0`` is redundant for nonempty |·| arrays (all
            # entries ≥ 0) and routes through the slow reduction wrapper.
            x_inf = float(max(np.abs(x_ref).max(), np.abs(x).max()))
        else:
            x_inf = 0.0
    if not math.isfinite(x_inf):
        x_inf = float(np.abs(x_ref).max(initial=0.0))
    thresholds = cks.tolerance.thresholds(x_inf)
    return SpmvResiduals(dr=dr, dx=dx, dxp=dxp, thresholds=thresholds)


def protected_spmv(
    a: CSRMatrix,
    x: np.ndarray,
    checksums: SpmvChecksums | None = None,
    *,
    correct: bool = True,
    fault_hook: Callable[[str, CSRMatrix, np.ndarray, np.ndarray | None], None] | None = None,
    ratio_tol: float = 1e-4,
    workspace: "object | None" = None,
    trust_structure_stamp: bool = False,
    backend: "object | None" = None,
) -> ProtectedSpmvResult:
    """Compute ``y = A x`` with ABFT protection.

    Parameters
    ----------
    a:
        The matrix.  Mutated in place if a matrix error is corrected.
    x:
        The input vector.  Mutated in place if an x-error is corrected.
    checksums:
        Precomputed metadata from :func:`compute_checksums`; when None
        it is computed on the fly (which assumes ``a`` is currently
        clean — amortize it across calls in real use).
    correct:
        True → double-detect / single-correct (requires 2 checksum
        rows); False → detection only.
    fault_hook:
        Test/simulation hook.  Called as ``hook("pre", a, x, None)``
        after the reliable snapshot of ``x`` is taken (inject memory
        errors here) and ``hook("post", a, x, y)`` after the raw
        product (inject computation errors into ``y`` here).
    ratio_tol:
        The ε of Section 3.2: maximum distance of a residual ratio from
        the nearest integer for single-error localization.
    workspace:
        Optional :class:`repro.perf.SolveWorkspace` (duck-typed)
        providing preallocated buffers for the reliable input snapshot,
        the output vector and the SpMxV scratch.  **Aliasing contract:**
        with a workspace, the returned ``y`` is workspace-owned and only
        valid until the next workspace-backed call — copy it out if it
        must survive.  The arithmetic is bit-identical either way.
    trust_structure_stamp:
        Caller certifies that ``a.structure_clean`` (evaluated lazily,
        *after* the fault hook has run) implies ``a.rowidx`` is
        byte-identical to the row pointers the checksums were computed
        from — true for the resilience engine's workspace-managed live
        matrix, whose stamp is only re-armed on verified byte-equality.
        Lets the exact row-pointer residual be taken as zero without
        the O(n) evaluation.  Leave False for hand-stamped matrices,
        where the stamp certifies validity, not equality.
    backend:
        Optional kernel backend (name or instance, see
        :mod:`repro.backends`) for the *unreliable* product only.  The
        checksum arithmetic — snapshot, residuals, thresholds — always
        runs on the reference primitives (selective reliability), and
        a non-reference backend must itself route guarded matrices
        back through the reference kernel, so detection semantics are
        backend-invariant.

    Returns
    -------
    ProtectedSpmvResult
    """
    x = np.asarray(x, dtype=np.float64)
    if checksums is None:
        checksums = compute_checksums(a, nchecks=2 if correct else 1)
    if correct and checksums.nchecks < 2:
        raise ValueError("correction requires nchecks=2 checksums")
    if checksums.shape != a.shape:
        raise ValueError(
            f"checksums were computed for shape {checksums.shape}, matrix is {a.shape}"
        )

    # Reliable snapshot (Algorithm 2 line 3) and input checksum (line 10),
    # taken before any unreliable work.
    if workspace is None:
        x_ref = x.copy()
        y_buf = scratch = verify_buffers = None
    else:
        x_ref, y_buf, scratch, ridx_buf, xdiff_buf = workspace.abft_buffers(
            a.nrows, a.ncols, a.nnz
        )
        np.copyto(x_ref, x)
        verify_buffers = (ridx_buf, xdiff_buf)
    cx = checksums.x_checksums(x)

    if fault_hook is not None:
        fault_hook("pre", a, x, None)
    y = spmv(a, x, out=y_buf, scratch=scratch, backend=backend)
    if fault_hook is not None:
        fault_hook("post", a, x, y)

    residuals = _verify(
        a,
        x,
        y,
        x_ref,
        checksums,
        verify_buffers,
        dr_zero=trust_structure_stamp and a.structure_clean,
    )
    if residuals.clean:
        return ProtectedSpmvResult(y=y, status=SpmvStatus.OK, residuals=residuals)

    # Metrics only on the rare non-clean outcomes: the clean path above
    # (the overwhelmingly common one) stays counter-free by design.
    from repro.obs.metrics import METRICS

    if not correct:
        METRICS.inc("abft.detected")
        return ProtectedSpmvResult(y=y, status=SpmvStatus.DETECTED, residuals=residuals)

    from repro.abft.correction import correct_errors

    outcome = correct_errors(
        a, x, y, x_ref, cx, checksums, residuals, ratio_tol=ratio_tol
    )
    if outcome.corrected:
        # Re-verify after repair: the repaired state must be fully clean.
        post = _verify(a, x, y, x_ref, checksums, verify_buffers)
        if post.clean:
            METRICS.inc("abft.corrected")
            return ProtectedSpmvResult(
                y=y, status=SpmvStatus.CORRECTED, residuals=residuals, correction=outcome
            )
    METRICS.inc("abft.uncorrectable")
    return ProtectedSpmvResult(
        y=y, status=SpmvStatus.UNCORRECTABLE, residuals=residuals, correction=outcome
    )


def detect_errors(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    x_ref: np.ndarray,
    checksums: SpmvChecksums,
) -> SpmvResiduals:
    """Stand-alone verification of an already-computed product.

    Exposed for tests and for callers that interleave fault injection
    with their own kernels; :func:`protected_spmv` is the normal entry
    point.
    """
    return _verify(a, np.asarray(x, dtype=np.float64), y, x_ref, checksums)
