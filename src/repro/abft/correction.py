"""Single-error correction for the protected SpMxV (``CORRECTERRORS``).

Given the residuals of a failed verification, the decoder of Section
3.2 determines *where* a single error struck and repairs it in place:

1. **Rowidx** (``dr ≠ 0``): the ratio ``dr₂/dr₁`` names the corrupted
   pointer; adding ``dr₁`` restores it (``dr = clean − faulty``).  The
   rows that pointer delimits are recomputed.
2. **Matrix or computation** (``dx`` over tolerance): the ratio
   ``dx₂/dx₁`` names the faulty output row ``d``.  Recomputing the
   column checksums ``C' = WᵀÃ`` of the *current* matrix and comparing
   with the stored clean ``C`` distinguishes the sub-cases by the
   number ``z`` of differing columns:

   - ``z = 0`` — the matrix is intact, so the error hit the
     computation of ``y_d``; recompute that entry.
   - ``z = 1`` — a ``Val`` entry in row ``d``, column ``f`` changed;
     the checksum difference divided by the row weight gives the exact
     perturbation to subtract.
   - ``z = 2`` — a ``Colid`` entry moved a value between the two
     flagged columns; switch it back (each candidate is trial-flipped
     and kept only if verification then passes).
   - ``z > 2`` — more than one error: uncorrectable.
3. **Input vector** (only ``dxp`` over tolerance): the ratio
   ``dxp₂/dxp₁`` names the corrupted entry of ``x``; the error value is
   ``τ = Σx̃ − cx₁`` (the drift of the reliable input checksum), the
   entry is restored and ``y`` is patched by subtracting ``τ·A eₐ``
   (the paper's ``y − A xᵗ`` update) rather than recomputed.

Every repair path ends with the caller re-verifying all checksums; if
the state is still inconsistent the strike was a multiple error and the
outcome is *uncorrectable* — the solver then falls back to backward
recovery (rollback).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.abft.checksums import SpmvChecksums

__all__ = ["CorrectionOutcome", "correct_errors"]


@dataclass(frozen=True)
class CorrectionOutcome:
    """What the decoder did.

    Attributes
    ----------
    corrected:
        True when a single error was located and repaired.
    kind:
        One of ``"rowidx"``, ``"val"``, ``"colid"``, ``"computation"``,
        ``"x"`` or ``"none"`` (no repair possible).
    position:
        The repaired location: row-pointer index, output row, or vector
        entry, depending on ``kind``; −1 when not applicable.
    detail:
        Human-readable description for the event log.
    """

    corrected: bool
    kind: str
    position: int = -1
    detail: str = ""


def _near_integer(ratio: float, ratio_tol: float) -> int | None:
    """Round ``ratio`` to the nearest integer if within ``ratio_tol`` of it.

    Non-finite ratios (overflowed residuals from extreme bit flips)
    are never localizable.
    """
    if not np.isfinite(ratio):
        return None
    nearest = round(ratio)
    if abs(ratio - nearest) <= ratio_tol * max(1.0, abs(ratio)):
        return int(nearest)
    return None


def _recompute_row(a: CSRMatrix, x: np.ndarray, y: np.ndarray, i: int) -> None:
    """Recompute ``y[i]`` from the current matrix and input (clipped bounds)."""
    nnz = a.nnz
    # Scalar int clipping in Python: np.clip on a 0-d value costs ~µs
    # of dispatch and this helper runs once per repaired/affected row.
    lo = int(a.rowidx[i])
    lo = 0 if lo < 0 else (nnz if lo > nnz else lo)
    hi = int(a.rowidx[i + 1])
    hi = 0 if hi < 0 else (nnz if hi > nnz else hi)
    if hi > lo:
        cols = np.mod(a.colid[lo:hi], a.ncols)
        y[i] = float(a.val[lo:hi] @ x[cols])
    else:
        y[i] = 0.0


def _column_entries(a: CSRMatrix, j: int) -> tuple[np.ndarray, np.ndarray]:
    """Rows and values of column ``j`` (O(nnz) scan; correction-path only)."""
    mask = a.colid == j
    positions = np.nonzero(mask)[0]
    rows = np.searchsorted(a.rowidx, positions, side="right") - 1
    return rows, a.val[positions]


def _current_column_checksums(
    a: CSRMatrix,
    cks: SpmvChecksums,
    row_of_nnz: "np.ndarray | None" = None,
) -> np.ndarray:
    """``C' = WᵀÃ`` of the current (possibly corrupted) matrix.

    ``row_of_nnz`` may be passed in when the caller evaluates several
    candidate repairs against an unchanged ``rowidx`` (the z = 2 colid
    trial loop): the row pattern depends only on the pointers.
    """
    n_rows, n_cols = a.shape
    out = np.zeros((cks.nchecks, n_cols), dtype=np.float64)
    if row_of_nnz is None:
        row_of_nnz = _row_pattern(a)
    # A corrupted rowidx can make the repeat counts disagree with nnz;
    # in that case the rowidx branch should have handled it first, but
    # guard anyway so the decoder never crashes mid-recovery.
    m = min(row_of_nnz.size, a.nnz)
    if a.structure_clean:
        # Indices certified in-range: the wild-read mod is a no-op.
        cols = a.colid[:m]
    else:
        cols = np.mod(a.colid[:m], n_cols)
    with np.errstate(over="ignore", invalid="ignore"):
        for l in range(cks.nchecks):
            # bincount accumulates in the same sequential item order as
            # the np.add.at it replaces (bit-identical sums), at a
            # fraction of the cost.
            out[l] = np.bincount(
                cols, weights=a.val[:m] * cks.weights[l, row_of_nnz[:m]], minlength=n_cols
            )
    return out


def _row_pattern(a: CSRMatrix) -> np.ndarray:
    """Row index of every stored nonzero, per the *current* pointers."""
    if a.structure_clean:  # monotone in-range pointers: clip is a no-op
        return np.repeat(np.arange(a.nrows), np.diff(a.rowidx))
    return np.repeat(np.arange(a.nrows), np.diff(np.clip(a.rowidx, 0, a.nnz)))


def correct_errors(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray,
    x_ref: np.ndarray,
    cx: np.ndarray,
    cks: SpmvChecksums,
    residuals,
    *,
    ratio_tol: float = 1e-4,
) -> CorrectionOutcome:
    """Attempt single-error repair; mutates ``a``, ``x`` and ``y`` in place.

    Parameters mirror the state of :func:`repro.abft.spmv.protected_spmv`
    at verification time; ``residuals`` is the failed
    :class:`~repro.abft.spmv.SpmvResiduals`.
    """
    n = a.nrows

    # ------------------------------------------------------------------
    # Case 1: row-pointer corruption.
    # ------------------------------------------------------------------
    if residuals.rowidx_flagged:
        # Recompute the residuals in exact integer arithmetic: a flipped
        # pointer can be ~2⁶², where the float64 sums used for the fast
        # detection pass round away the low bits the repair delta needs.
        ridx_int = [int(v) for v in a.rowidx[1:]]
        dr0 = cks.rowidx_checksums_exact[0] - sum(ridx_int)
        dr1 = cks.rowidx_checksums_exact[1] - sum(
            (i + 1) * v for i, v in enumerate(ridx_int)
        )
        if dr0 == 0:
            # Second checksum trips but the first cancels: two pointer
            # errors of opposite sign — beyond single-error correction.
            return CorrectionOutcome(False, "none", detail="rowidx residuals inconsistent")
        if dr1 % dr0 != 0:
            return CorrectionOutcome(False, "none", detail="rowidx ratio not localizable")
        d = dr1 // dr0
        if not (1 <= d <= n):
            return CorrectionOutcome(False, "none", detail="rowidx position out of range")
        # dr = clean − faulty, so adding dr₀ restores the clean pointer.
        # The sum is carried in Python integers: a sign-bit flip makes
        # |faulty| ≈ 2⁶³ and the *delta* overflows int64 even though the
        # restored value is small.
        delta = dr0
        restored = int(a.rowidx[d]) + delta
        if not (0 <= restored <= a.nnz):
            return CorrectionOutcome(
                False, "none", detail=f"rowidx repair out of range: {restored}"
            )
        a.rowidx[d] = restored
        # Pointer rowidx[d] delimits (0-based) rows d−1 and d.
        _recompute_row(a, x, y, d - 1)
        if d < n:
            _recompute_row(a, x, y, d)
        return CorrectionOutcome(
            True, "rowidx", position=d, detail=f"rowidx[{d}] += {delta}"
        )

    # ------------------------------------------------------------------
    # Case 2: matrix-array or computation error (dx over tolerance).
    # ------------------------------------------------------------------
    if residuals.dx_flagged:
        dx = residuals.dx
        if np.all(np.isfinite(dx)):
            if abs(dx[0]) <= residuals.thresholds[0]:
                return CorrectionOutcome(False, "none", detail="dx residuals inconsistent")
            d1 = _near_integer(float(dx[1] / dx[0]), ratio_tol)
            if d1 is None or not (1 <= d1 <= n):
                return CorrectionOutcome(False, "none", detail="dx ratio not localizable")
            d = d1 - 1  # 0-based output row
        else:
            # The residual algebra overflowed (a flipped exponent can
            # push a value to ~1e300, and the ramp-weighted sums top
            # out float64).  The ratio is unusable, but the faulty row
            # announces itself: locate the unique non-finite or
            # astronomically large entry of y and fall through to the
            # column-checksum decode.
            with np.errstate(invalid="ignore"):
                suspicious = np.nonzero(~np.isfinite(y) | (np.abs(y) > 1e150))[0]
            if suspicious.size != 1:
                return CorrectionOutcome(
                    False, "none", detail="dx residuals non-finite, row ambiguous"
                )
            d = int(suspicious[0])

        cur = _current_column_checksums(a, cks)
        with np.errstate(invalid="ignore"):
            diff = cks.column_checksums - cur
        col_tol = cks.tolerance.per_check_factor[:, None]
        flagged = np.nonzero(
            np.any(~np.isfinite(diff) | (np.abs(diff) > col_tol), axis=0)
        )[0]
        z = flagged.size

        if z == 0:
            # Matrix intact: the computation of y_d was hit; recompute it.
            _recompute_row(a, x, y, d)
            return CorrectionOutcome(True, "computation", position=d, detail=f"recomputed y[{d}]")

        if z == 1:
            f = int(flagged[0])
            lo, hi = int(a.rowidx[d]), int(a.rowidx[d + 1])
            hits = lo + np.nonzero(a.colid[lo:hi] == f)[0]
            if hits.size != 1:
                return CorrectionOutcome(
                    False, "none", detail=f"val decode ambiguous in row {d}, col {f}"
                )
            p = int(hits[0])
            if np.isfinite(diff[0, f]):
                # diff[0, f] = (clean − current) column sum = −δ·w₁[d] = −δ.
                a.val[p] += float(diff[0, f])
            else:
                # The corrupted value overflowed the checksum delta;
                # rebuild val[p] directly from the clean (unit-weight)
                # column checksum minus the other entries of column f.
                others = np.nonzero(np.mod(a.colid, a.ncols) == f)[0]
                others = others[others != p]
                a.val[p] = float(cks.column_checksums[0, f] - a.val[others].sum())
            _recompute_row(a, x, y, d)
            return CorrectionOutcome(
                True, "val", position=p, detail=f"val[{p}] repaired via column {f} checksum"
            )

        if z == 2:
            f1, f2 = int(flagged[0]), int(flagged[1])
            lo, hi = int(a.rowidx[d]), int(a.rowidx[d + 1])
            # Match on *effective* columns (index mod n): a bit flip can
            # push a column id far out of range, but the kernel — and
            # hence the checksum drift — sees it modulo n.
            eff = np.mod(a.colid[lo:hi], a.ncols)
            candidates = lo + np.nonzero(np.isin(eff, (f1, f2)))[0]
            # Trial-flip each candidate; keep the first flip that makes
            # the column checksums consistent again.  The trials mutate
            # only colid, so the row pattern is computed once.
            rows_cache = _row_pattern(a)
            for p in candidates:
                p = int(p)
                original = int(a.colid[p])
                a.colid[p] = f2 if original % a.ncols == f1 else f1
                trial = _current_column_checksums(a, cks, rows_cache)
                if np.all(
                    np.abs(cks.column_checksums[:, (f1, f2)] - trial[:, (f1, f2)])
                    <= col_tol
                ):
                    _recompute_row(a, x, y, d)
                    return CorrectionOutcome(
                        True,
                        "colid",
                        position=p,
                        detail=f"colid[{p}]: {original} -> {int(a.colid[p])}",
                    )
                a.colid[p] = original
            return CorrectionOutcome(False, "none", detail="colid decode failed")

        return CorrectionOutcome(
            False, "none", detail=f"{z} checksum columns differ (>2): multiple errors"
        )

    # ------------------------------------------------------------------
    # Case 3: input-vector error (only dxp over tolerance).
    # ------------------------------------------------------------------
    if residuals.dxp_flagged:
        dxp = residuals.dxp
        if cks.nchecks < 2 or abs(dxp[0]) <= residuals.thresholds[0]:
            return CorrectionOutcome(False, "none", detail="dxp residuals inconsistent")
        d1 = _near_integer(float(dxp[1] / dxp[0]), ratio_tol)
        if d1 is None or not (1 <= d1 <= a.ncols):
            return CorrectionOutcome(False, "none", detail="dxp ratio not localizable")
        d = d1 - 1  # 0-based entry of x
        # τ = Σx̃ − cx₁ (Section 3.2) identifies the perturbation; the
        # restoration itself copies the reliable snapshot entry, which
        # is exact where subtracting the float τ would leave O(u·Σ|x̃|)
        # rounding behind for large corruptions.
        tau = float(x.sum() - cx[0])
        x[d] = x_ref[d]
        # The paper updates y by subtracting A·(τ eₐ); subtracting a
        # large τ back out leaves O(u·τ) cancellation residue that the
        # re-verification would flag, so the affected rows (column d's
        # support) are recomputed from the repaired x instead — same
        # O(column) cost, exact result.
        rows, _ = _column_entries(a, d)
        for i in np.unique(rows):
            _recompute_row(a, x, y, int(i))
        return CorrectionOutcome(True, "x", position=d, detail=f"x[{d}] -= {tau:.6e}")

    return CorrectionOutcome(False, "none", detail="no residual flagged")
