"""Checksum weight vectors and the zero-column-sum shift.

The paper's Algorithm 2 uses the weight matrix

    Wᵀ = [ 1  1  …  1 ]
         [ 1  2  …  n ]

whose first row gives plain (Huang–Abraham style) checksums and whose
second row makes error *positions* recoverable: if a single error of
magnitude δ strikes position ``d`` of a protected quantity, the two
checksum residuals are ``(δ, δ·d)`` and their ratio localizes ``d``.

Section 3.2 of the paper analyzes the case of zero checksum entries:
the detection test for errors in ``x`` compares ``cᵀx'`` against the
(shift-augmented) output sum, where ``c`` holds the column sums of
``A``; if column ``j`` sums to zero an error in ``x_j`` is invisible.
Rather than requiring diagonal dominance (Shantharam et al.), the paper
shifts every checksum entry by a constant ``k`` chosen so that no entry
is zero, and adds the auxiliary output entry ``y_{n+1} = k Σ x̃_i``,
which restores detection for arbitrary matrices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ones_weights", "ramp_weights", "random_weights", "weight_matrix", "choose_shift"]


def ones_weights(n: int) -> np.ndarray:
    """The all-ones weight vector ``(1, …, 1)`` of length ``n``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return np.ones(n, dtype=np.float64)


def ramp_weights(n: int) -> np.ndarray:
    """The position weight vector ``(1, 2, …, n)`` of length ``n``.

    One-based, as in the paper, so that the residual ratio directly
    equals the (one-based) error position.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return np.arange(1, n + 1, dtype=np.float64)


def random_weights(n: int, rng: "int | np.random.Generator | None" = None) -> np.ndarray:
    """A random weight vector, uniform on [0.5, 1.5).

    Section 3.2's alternative to the shift: a random ``w`` is
    non-orthogonal to every matrix column with probability one (the
    Lebesgue-measure argument), so zero checksums vanish without any
    shift.  The paper rejects it as the default because it adds
    multiplications to every checksum and enlarges the rounding error —
    ``benchmarks/bench_weights.py`` measures exactly that trade-off.
    The support is bounded away from zero so no weight can accidentally
    blind the checksum to a row.
    """
    from repro.util.rng import as_generator

    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return as_generator(rng).uniform(0.5, 1.5, size=n)


def weight_matrix(n: int, nchecks: int) -> np.ndarray:
    """Stack of checksum weight rows, shape ``(nchecks, n)``.

    ``nchecks=1`` gives single-error detection; ``nchecks=2`` gives
    double detection / single correction (the paper notes k > 2 is
    impractical, so only 1 and 2 are supported).
    """
    if nchecks == 1:
        return ones_weights(n)[None, :]
    if nchecks == 2:
        return np.vstack([ones_weights(n), ramp_weights(n)])
    raise ValueError(f"nchecks must be 1 or 2, got {nchecks}")


def choose_shift(colsums: np.ndarray, *, margin: float = 1.0) -> float:
    """Pick ``k`` with ``colsums_j + k ≠ 0`` for every ``j`` (Theorem 1, item 1).

    Any value outside ``{-colsums_j}`` works; for numerical robustness
    we want ``|colsums_j + k|`` comfortably above rounding noise, so we
    return a ``k`` whose distance to every ``-colsums_j`` is at least
    ``margin`` (scaled by the magnitude of the column sums).

    The choice is deterministic: scan ``k ∈ {s, 2s, 3s, …}`` with
    ``s = margin · max(1, max_j |colsums_j|)`` until the separation
    holds.  Because there are only ``n`` forbidden points, at most
    ``n + 1`` candidates are examined.
    """
    colsums = np.asarray(colsums, dtype=np.float64)
    if colsums.size == 0:
        return margin
    scale = max(1.0, float(np.abs(colsums).max()))
    step = margin * scale
    forbidden = -colsums
    k = step
    # Each iteration rules out at least one forbidden point, so the loop
    # terminates after at most n+1 candidates.
    for _ in range(colsums.size + 1):
        if np.all(np.abs(forbidden - k) >= step * 0.5):
            return float(k)
        k += step
    # Unreachable in exact arithmetic; fall back to a huge separation.
    return float(np.abs(forbidden).max() + step)  # pragma: no cover
