"""Algorithm-based fault tolerance for the sparse matrix-vector product.

Implements the paper's Algorithm 2 and its supporting machinery:

- :mod:`repro.abft.weights` — weight matrices ``W`` and the shift
  constant ``k`` that removes the zero-column-sum degeneracy;
- :mod:`repro.abft.checksums` — per-matrix checksum precomputation
  (``COMPUTECHECKSUMS`` of Algorithm 2);
- :mod:`repro.abft.spmv` — the protected SpMxV with single-error
  detection (Theorem 1) or double-detection/single-correction;
- :mod:`repro.abft.correction` — the ``CORRECTERRORS`` decoder for
  errors in ``Rowidx``, ``Val``, ``Colid``, ``x`` and the computation;
- :mod:`repro.abft.tolerance` — the Theorem-2 floating-point tolerance
  that guarantees no false positives;
- :mod:`repro.abft.tmr` — triple modular redundancy for the dot/norm/
  axpy kernels the paper protects by replication rather than checksums.
"""

from repro.abft.weights import ones_weights, ramp_weights, weight_matrix, choose_shift
from repro.abft.checksums import (
    SpmvChecksums,
    compute_checksums,
    cached_checksums,
    clear_checksum_cache,
)
from repro.abft.spmv import (
    ProtectedSpmvResult,
    SpmvStatus,
    protected_spmv,
    detect_errors,
)
from repro.abft.correction import CorrectionOutcome, correct_errors
from repro.abft.tolerance import gamma, spmv_checksum_tolerance, ToleranceModel
from repro.abft.tmr import tmr_dot, tmr_norm2, tmr_axpy, majority_vote, TMRError
from repro.abft.operator import ProtectedOperator, UncorrectableError
from repro.abft.multi import MultiChecksums, compute_multi_checksums, detect_multi

__all__ = [
    "ones_weights",
    "ramp_weights",
    "weight_matrix",
    "choose_shift",
    "SpmvChecksums",
    "compute_checksums",
    "cached_checksums",
    "clear_checksum_cache",
    "ProtectedSpmvResult",
    "SpmvStatus",
    "protected_spmv",
    "detect_errors",
    "CorrectionOutcome",
    "correct_errors",
    "gamma",
    "spmv_checksum_tolerance",
    "ToleranceModel",
    "tmr_dot",
    "tmr_norm2",
    "tmr_axpy",
    "majority_vote",
    "TMRError",
    "ProtectedOperator",
    "UncorrectableError",
    "MultiChecksums",
    "compute_multi_checksums",
    "detect_multi",
]
