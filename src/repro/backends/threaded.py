"""Threaded backend: row-partitioned clean SpMxV on a thread pool.

Large clean products are split into contiguous nnz-balanced row blocks
(:func:`repro.parallel.partition.partition_by_nnz` — the same 1-D
balanced-chains partitioner the simulated-parallel layer uses) and the
per-block segment reductions run concurrently on a shared
:class:`~concurrent.futures.ThreadPoolExecutor`.  Each worker runs
``val[s:e] * x[colid[s:e]]`` + ``np.add.reduceat`` on its own slice —
NumPy releases the GIL inside those ufunc loops, so blocks genuinely
overlap on multicore hosts.

**Bit-identity falls out of the partitioning**: every row's nonzeros
live in exactly one contiguous block, and reduceat sums each row's
segment in the same left-to-right order whether the row sits in a
slice or in the full array.  The partition changes *which thread*
computes a row, never the floats — so the backend is bit-identical to
``reference`` on clean products (stronger than the numerically-
equivalent contract the backend axis requires), and fault-free
convergence histories match the reference run exactly
(``tests/test_backends.py`` locks both).

Guarded products (no ``structure_clean`` stamp), small matrices
(``min_rows``), and single-CPU hosts all route to the reference
kernel: the guarded fault physics stays single-sourced in
:func:`repro.sparse.spmv.spmv`, and threading tiny products costs more
in handoff than it saves.  ``checksum_products``/``dot``/``norm2``
inherit the reliable base implementations.
"""

from __future__ import annotations

import os
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.protocol import BaseBackend
from repro.parallel.partition import RowPartition, partition_by_nnz

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix

__all__ = ["ThreadedBackend"]

#: Below this row count the thread handoff costs more than it saves.
_DEFAULT_MIN_ROWS = 2048


class ThreadedBackend(BaseBackend):
    """Row-partitioned clean SpMxV across a lazily-created thread pool.

    Parameters
    ----------
    threads:
        Worker count.  ``None`` (default) uses ``os.cpu_count()``.
        With one thread the backend degenerates to the reference
        kernel (no pool is ever created).
    min_rows:
        Matrices with fewer rows than this run on the reference kernel
        directly; partitioning overhead only pays off at scale.
    """

    name = "threaded"

    def __init__(
        self, *, threads: "int | None" = None, min_rows: int = _DEFAULT_MIN_ROWS
    ) -> None:
        if threads is None:
            threads = os.cpu_count() or 1
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = int(threads)
        self.min_rows = int(min_rows)
        self._pool: "ThreadPoolExecutor | None" = None
        self._pool_lock = threading.Lock()
        # One partition per matrix object, recomputed only when the
        # matrix is new — keyed weakly so long sweeps don't pin every
        # operator they ever touched.
        self._partitions: "weakref.WeakKeyDictionary[object, RowPartition]" = (
            weakref.WeakKeyDictionary()
        )

    def _get_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=self.threads,
                        thread_name_prefix="repro-spmv",
                    )
        return pool

    def _partition(self, a: "CSRMatrix") -> RowPartition:
        part = self._partitions.get(a)
        if part is None:
            nparts = min(self.threads, a.nrows)
            part = partition_by_nnz(a, nparts)
            self._partitions[a] = part
        return part

    def prepare(self, a: "CSRMatrix") -> None:
        """Warm the pool and the matrix's partition outside timed regions."""
        if self.threads > 1 and a.nrows >= self.min_rows and a.structure_clean:
            self._get_pool()
            self._partition(a)

    def spmv(
        self,
        a: "CSRMatrix",
        x: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        scratch: "np.ndarray | None" = None,
    ) -> np.ndarray:
        from repro.sparse.spmv import spmv

        # Guarded, small, or effectively serial: the reference kernel
        # is both the required semantics and the faster choice.
        if (
            not a.structure_clean
            or self.threads == 1
            or a.nrows < self.min_rows
            or a.nnz == 0
        ):
            return spmv(a, x, out=out, scratch=scratch)
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (a.ncols,):
            raise ValueError(f"x must have shape ({a.ncols},), got {x.shape}")
        n = a.nrows
        if out is None:
            y = np.empty(n, dtype=np.float64)
        else:
            if out.shape != (n,):
                raise ValueError(f"out must have shape ({n},), got {out.shape}")
            y = out
        part = self._partition(a)
        val, colid, rowptr = a.val, a.colid, a.rowidx

        def _block(rank: int) -> None:
            lo, hi = part.rows_of(rank)
            s, e = int(rowptr[lo]), int(rowptr[hi])
            if e <= s:
                y[lo:hi] = 0.0
                return
            with np.errstate(over="ignore", invalid="ignore"):
                if scratch is None:
                    products = val[s:e] * x[colid[s:e]]
                else:
                    products = np.take(
                        x, colid[s:e], out=scratch[s:e], mode="clip"
                    )
                    np.multiply(val[s:e], products, out=products)
            starts = rowptr[lo:hi] - s
            if a._rows_nonempty:
                np.add.reduceat(products, starts, out=y[lo:hi])
                return
            yb = y[lo:hi]
            yb[:] = 0.0
            nonempty = rowptr[lo + 1 : hi + 1] > rowptr[lo:hi]
            if nonempty.any():
                yb[nonempty] = np.add.reduceat(products, starts[nonempty])

        pool = self._get_pool()
        # Run the last block on the calling thread: with p workers and
        # p blocks this avoids one idle handoff per product.
        futures = [pool.submit(_block, r) for r in range(part.nparts - 1)]
        _block(part.nparts - 1)
        for f in futures:
            f.result()  # re-raises worker exceptions
        return y
