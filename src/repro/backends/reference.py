"""The reference backend: today's NumPy kernels, the bit-identity oracle.

This backend *is* the default physics: every golden trajectory, every
ABFT proof and every fault-emulation path in the repository is defined
in terms of :func:`repro.sparse.spmv.spmv`.  The registry treats it
specially — :func:`repro.backends.resolve_backend` resolves it to
``None`` so the hot paths keep calling the raw kernel with zero
dispatch overhead, which is what keeps ``backend="reference"``
(explicit or default) bit-identical to the pre-backend code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.backends.protocol import BaseBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix

__all__ = ["ReferenceBackend"]


class ReferenceBackend(BaseBackend):
    """The repository's own vectorized CSR kernels (the default)."""

    name = "reference"

    def spmv(
        self,
        a: "CSRMatrix",
        x: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        scratch: "np.ndarray | None" = None,
    ) -> np.ndarray:
        from repro.sparse.spmv import spmv

        # No ``backend=`` forwarding: this *is* the terminal kernel.
        return spmv(a, x, out=out, scratch=scratch)
