"""Pluggable sparse-kernel backends (the solver's kernel axis).

Every protected solve draws its numerical primitives — above all the
SpMxV hot kernel — from a :class:`~repro.backends.protocol
.KernelBackend`.  Five implementations ship (``docs/DESIGN.md`` §6):

``reference`` (the default)
    The repository's own NumPy kernels.  Bit-identical oracle: the
    golden trajectories, the ABFT tolerance proofs and the fault-
    emulation semantics are all defined against it, and the registry
    resolves it to the raw kernel so the default path pays no dispatch.

``scipy``
    SciPy's compiled CSR matvec for *structure-clean* products
    (typically 2–4× faster; see ``benchmarks/bench_backends.py``),
    with every guarded path — any matrix lacking the
    ``structure_clean`` stamp — routed back through the reference
    kernel so ABFT detection semantics are preserved.

``numba``
    JIT-compiled CSR kernels for the clean *and* guarded paths —
    the only backend that owns guarded products, by reproducing the
    reference fault physics bit for bit (and deferring the rare
    cases it cannot; see :mod:`repro.backends.numba_backend`).
    Optional dependency: ``pip install -e .[numba]``; resolving the
    name without numba installed raises
    :class:`BackendUnavailableError` with install instructions, and
    :func:`backend_available` probes without raising.

``threaded``
    Clean products row-partitioned over a thread pool
    (nnz-balanced contiguous blocks via
    :mod:`repro.parallel.partition`); bit-identical to reference,
    guarded products deferred.  Worth it for large n on multicore
    hosts; degenerates to reference on one CPU.

``dense``
    Small-n dense materialization, for tests and exotic fault
    scenarios (capped at n=4096; oversized workloads raise a
    structured :class:`BackendCapacityError` before the solve
    starts).

Select a backend anywhere the solve stack is entered: ``spmv(a, x,
backend="scipy")``, ``protected_spmv(..., backend=...)``,
``repro.solve(a, b, backend="scipy")``, ``Study().axis("backend",
[...])``, ``repro solve --backend scipy``.  Custom backends register
with :func:`register_backend` and become addressable by name
everywhere, including campaign ``TaskSpec`` records.

Seeding note: the fault-stream RNG derivation deliberately does *not*
include the backend name, so two backends at the same parameter point
face identical strike sequences — exactly what a backend comparison
wants.  Task content hashes *do* include the backend, so result stores
never conflate them.
"""

from __future__ import annotations

from typing import Callable

from repro.backends.dense import DenseBackend
from repro.backends.numba_backend import NumbaBackend, numba_available
from repro.backends.protocol import (
    BackendCapacityError,
    BackendUnavailableError,
    BaseBackend,
    KernelBackend,
)
from repro.backends.reference import ReferenceBackend
from repro.backends.scipy_backend import ScipyBackend
from repro.backends.threaded import ThreadedBackend

__all__ = [
    "KernelBackend",
    "BaseBackend",
    "ReferenceBackend",
    "ScipyBackend",
    "DenseBackend",
    "NumbaBackend",
    "ThreadedBackend",
    "BackendUnavailableError",
    "BackendCapacityError",
    "DEFAULT_BACKEND",
    "register_backend",
    "available_backends",
    "backend_available",
    "get_backend",
    "resolve_backend",
    "numba_available",
]

#: Name of the default backend (the bit-identity oracle).
DEFAULT_BACKEND = "reference"

#: name -> zero-argument factory.  Factories run once; instances are
#: shared process-wide (backends are stateless service objects).
_FACTORIES: "dict[str, Callable[[], KernelBackend]]" = {
    "reference": ReferenceBackend,
    "scipy": ScipyBackend,
    "dense": DenseBackend,
    "numba": NumbaBackend,
    "threaded": ThreadedBackend,
}

_INSTANCES: "dict[str, KernelBackend]" = {}


def register_backend(
    name: str, factory: "Callable[[], KernelBackend]", *, replace: bool = False
) -> None:
    """Register a custom backend under ``name``.

    ``factory`` is a zero-argument callable returning a
    :class:`KernelBackend`; it is invoked lazily, once, on first use.
    Registered names are accepted everywhere a backend is named —
    ``solve(backend=name)``, study axes, ``TaskSpec.backend``, the
    CLI.  Shipped names cannot be overwritten unless ``replace=True``.

    Process-scope caveat: the registry is per-process state.  Campaign
    workers inherit it under the ``fork`` start method (Linux default)
    but **not** under ``spawn``/``forkserver`` (macOS, Windows), where
    a custom name raises ``unknown backend`` inside the worker —
    perform the registration at import time of a module the workers
    also import (e.g. the module defining your study) to make it
    start-method-proof.
    """
    name = str(name)
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _FACTORIES and not replace:
        raise ValueError(f"backend {name!r} is already registered (pass replace=True)")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> "tuple[str, ...]":
    """Registered backend names, shipped ones first.

    Registered, not necessarily *runnable*: ``"numba"`` is always
    listed but needs its optional dependency installed — probe with
    :func:`backend_available` before sweeping it.
    """
    return tuple(_FACTORIES)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered *and* instantiable here.

    ``False`` for unregistered names and for registered backends whose
    optional dependency is missing (``"numba"`` without numba).  Never
    raises — this is the probe for test skips and sweep pre-flight;
    :func:`get_backend` is the strict variant whose
    :class:`BackendUnavailableError` explains how to install.
    """
    if name not in _FACTORIES:
        return False
    try:
        get_backend(name)
    except BackendUnavailableError:
        return False
    return True


def get_backend(backend: "str | KernelBackend") -> "KernelBackend":
    """Resolve a name (or pass an instance through) to a backend.

    Instances are cached per name, so every solve in the process
    shares one object per registered backend.
    """
    if not isinstance(backend, str):
        if isinstance(backend, KernelBackend):
            return backend
        raise TypeError(
            f"backend must be a name or a KernelBackend, got {type(backend).__name__}"
        )
    inst = _INSTANCES.get(backend)
    if inst is None:
        factory = _FACTORIES.get(backend)
        if factory is None:
            raise ValueError(
                f"unknown backend {backend!r}; available: {', '.join(available_backends())}"
            )
        inst = _INSTANCES[backend] = factory()
    return inst


def resolve_backend(
    backend: "str | KernelBackend | None",
) -> "KernelBackend | None":
    """Normalize a backend argument for the hot paths.

    Returns ``None`` for the reference backend (by name, instance or
    ``None`` itself) so callers can keep the raw-kernel fast path with
    a single identity check, and the shared instance otherwise.  The
    name ``"reference"`` is resolved through the registry, not
    special-cased, so a replacement registered with
    ``register_backend("reference", ..., replace=True)`` is honoured
    on every dispatch path.
    """
    if backend is None:
        return None
    be = get_backend(backend)
    # Exact type, not isinstance: a subclass customizing spmv must
    # keep receiving the dispatch (only the stock reference backend
    # collapses to the raw-kernel fast path).
    if type(be) is ReferenceBackend:
        return None
    # Resolution happens once per solve (the engine hands the instance
    # down), so counting the dispatch choice here costs nothing on the
    # per-product path — and the reference fast path above pays zero.
    from repro.obs.metrics import METRICS

    METRICS.inc(f"backends.dispatch.{getattr(be, 'name', 'custom')}")
    return be
