"""Dense small-n fallback backend.

Materializes the CSR arrays into a dense operator on every product and
multiplies with BLAS.  O(n²) per call, so it is deliberately capped at
:attr:`DenseBackend.max_n` — its role is tests and exotic fault
scenarios, not throughput:

- it exercises solver/ABFT code against an independently-computed
  product (duplicate entries summed by scatter, row dots over the full
  dense row), catching kernel-shape assumptions the CSR kernels share;
- rebuilding the dense view *per call* means in-place ``val``
  corruption is always visible to the product, so fault studies behave
  exactly as with the sparse kernels (no stale cached operator);
- like every backend, products on matrices without the
  ``structure_clean`` stamp route through the reference kernel — a
  corrupted ``colid``/``rowidx`` must keep the reference wild-read
  emulation (a dense scatter would fault on out-of-range indices).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.backends.protocol import BackendCapacityError, BaseBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix

__all__ = ["DenseBackend"]


class DenseBackend(BaseBackend):
    """Dense-materialization SpMxV for small systems."""

    name = "dense"

    #: Hard cap on the dimension (per-call O(n²) materialization).
    DEFAULT_MAX_N = 4096

    def __init__(self, max_n: int = DEFAULT_MAX_N) -> None:
        if max_n < 1:
            raise ValueError(f"max_n must be >= 1, got {max_n}")
        self.max_n = int(max_n)

    def _check_capacity(self, a: "CSRMatrix") -> None:
        n = max(a.nrows, a.ncols)
        if n > self.max_n:
            raise BackendCapacityError(
                self.name,
                n=n,
                cap=self.max_n,
                hint=(
                    f"matrix is {a.nrows}x{a.ncols}; use backend "
                    "'reference', 'scipy' or 'threaded' for this workload"
                ),
            )

    def prepare(self, a: "CSRMatrix") -> None:
        """Fail fast before any solve work when the matrix is too big.

        The engine calls this right after backend resolution, so a
        Study sweeping an oversized ``.mtx`` workload over the dense
        backend surfaces one structured
        :class:`~repro.backends.protocol.BackendCapacityError` per task
        instead of an O(n²) materialization attempt (or crash) deep
        inside the solve.
        """
        self._check_capacity(a)

    def spmv(
        self,
        a: "CSRMatrix",
        x: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        scratch: "np.ndarray | None" = None,
    ) -> np.ndarray:
        from repro.sparse.spmv import spmv

        if not a.structure_clean:
            return spmv(a, x, out=out, scratch=scratch)
        # Defensive re-check: prepare() already failed fast for engine
        # solves; direct spmv(..., backend="dense") calls land here.
        self._check_capacity(a)
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (a.ncols,):
            raise ValueError(f"x must have shape ({a.ncols},), got {x.shape}")
        with np.errstate(over="ignore", invalid="ignore"):
            y = a.to_dense() @ x
        if out is None:
            return y
        out[:] = y
        return out
