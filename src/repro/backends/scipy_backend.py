"""SciPy-accelerated SpMxV backend.

Delegates *structure-clean* products to SciPy's compiled CSR matvec
(``scipy.sparse._sparsetools.csr_matvec``, the kernel behind
``csr_matrix @ x``) called directly on the raw CSR arrays — no sparse
object is built, so the backend sees exactly the bytes the fault
injector mutates, including in-place ``val`` corruption (a ``val``
strike leaves the structure stamp armed, and the corrupted product is
the ABFT layer's to catch, same as under the reference kernel).

Everything *guarded* — any matrix without the
:attr:`~repro.sparse.csr.CSRMatrix.structure_clean` stamp, i.e. a
possibly index-corrupted live matrix or a hand-built matrix nobody
certified — routes back through the reference kernel, whose index
wrap-around and monotone-segment fallback are part of the fault
physics under study.  That split preserves ABFT detection semantics:
detection never depends on which backend computed a clean-structure
product, because the Theorem-2 thresholds bound kernel rounding at a
scale (~n·u·‖A‖·‖x‖) orders of magnitude above the few-ULP
summation-order difference between the two kernels.

The compiled kernel is *numerically equivalent but not bit-identical*
to the reference reduction (different summation order).  Fault-free
convergence histories on the paper suite are identical in iteration
count and agree to rounding in every residual (locked by
``tests/test_backends.py``); anything that must be bit-reproducible —
the golden trajectories, resumable campaign stores mixing runs —
should stay on ``backend="reference"``.

If the private ``_sparsetools`` entry point ever disappears from a
SciPy release, the backend degrades to the reference kernel (flagged
by :attr:`ScipyBackend.accelerated`) rather than failing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.backends.protocol import BaseBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix

__all__ = ["ScipyBackend"]


def _load_csr_matvec():
    """The compiled CSR matvec, or ``None`` when unavailable."""
    try:  # private but stable since scipy 0.19; guarded regardless
        from scipy.sparse import _sparsetools

        return _sparsetools.csr_matvec
    except (ImportError, AttributeError):  # pragma: no cover - env-dependent
        return None


class ScipyBackend(BaseBackend):
    """SciPy compiled CSR matvec for structure-clean products."""

    name = "scipy"

    def __init__(self) -> None:
        self._csr_matvec = _load_csr_matvec()

    @property
    def accelerated(self) -> bool:
        """Whether the compiled kernel was found (else pure fallback)."""
        return self._csr_matvec is not None

    def spmv(
        self,
        a: "CSRMatrix",
        x: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        scratch: "np.ndarray | None" = None,
    ) -> np.ndarray:
        from repro.sparse.spmv import spmv

        if self._csr_matvec is None or not a.structure_clean:
            # Guarded path: uncertified (possibly corrupted) index
            # arrays keep the reference kernel's wild-read emulation.
            return spmv(a, x, out=out, scratch=scratch)
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.shape != (a.ncols,):
            raise ValueError(f"x must have shape ({a.ncols},), got {x.shape}")
        if out is None:
            y = np.zeros(a.nrows, dtype=np.float64)
        else:
            # The compiled kernel does no bounds checking — a short
            # buffer would be an out-of-bounds write, so validate where
            # the reference kernel's reduceat would have raised.
            if out.shape != (a.nrows,):
                raise ValueError(f"out must have shape ({a.nrows},), got {out.shape}")
            y = out
            y[:] = 0.0  # csr_matvec accumulates into y
        if a.nnz:
            # Corrupted values can overflow to ±inf inside the compiled
            # kernel; as with the reference kernel, the non-finite
            # result is the silent error propagating for ABFT to flag.
            self._csr_matvec(a.nrows, a.ncols, a.rowidx, a.colid, a.val, x, y)
        return y
