"""The :class:`KernelBackend` protocol and its shared base class.

A *kernel backend* supplies the numerical primitives of a protected
solve as one swappable unit.  Today the solve stack dispatches
**only** :meth:`KernelBackend.spmv` — the unreliable hot kernel, which
is where the time goes; the checksum-product and dot/norm primitives
are part of the protocol surface (used by benchmarks and tooling, and
the seam for the ROADMAP follow-up that may open them) but the
engine's reliable arithmetic currently calls the reference
implementations directly, so overriding them does not change a solve.
The contract every backend must honour (see ``docs/DESIGN.md`` §6 for
the full argument):

**Guarded paths stay on the reference kernels.**  The fault study
corrupts the raw CSR arrays in place, and the memory-safe emulation of
the resulting wild reads (index wrap-around, the monotone-segment
fallback) is part of the physics under study — it lives in
:func:`repro.sparse.spmv.spmv` and nowhere else.  A backend may only
substitute its own kernel when the matrix carries the
:attr:`~repro.sparse.csr.CSRMatrix.structure_clean` stamp (index
arrays certified in-range and monotone); in every other case it must
delegate to the reference kernel so ABFT detection semantics are
preserved bit-for-bit.

**Checksum arithmetic is reliable.**  The paper's selective-reliability
model computes ABFT metadata and residuals in reliable storage; the
default :meth:`KernelBackend.checksum_products` implementation (the
reference scatter-reduction) is therefore what every shipped backend
uses — accelerating the *unreliable* product is where the time goes
anyway.

Backends are stateless service objects: one shared instance per
registered name serves every solve in the process (see the registry
functions in :mod:`repro.backends`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix

__all__ = ["KernelBackend", "BaseBackend"]


@runtime_checkable
class KernelBackend(Protocol):
    """Swappable numerical primitives for one protected solve.

    Implementations must be safe to share across solves (no per-solve
    state) and must route any product on a matrix *without* the
    ``structure_clean`` stamp through the reference kernel.  Only
    :meth:`spmv` is dispatched by the solve stack; the remaining
    primitives are protocol surface for tooling and future wiring
    (see the module docstring).
    """

    #: Registry name ("reference", "scipy", "dense", ...).
    name: str

    def spmv(
        self,
        a: "CSRMatrix",
        x: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        scratch: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """``y = A x`` with the reference kernel's exact signature.

        ``out``/``scratch`` are optional preallocated buffers (see
        :func:`repro.sparse.spmv.spmv`); a backend that cannot use them
        must still honour ``out`` as the returned storage.
        """
        ...

    def checksum_products(self, a: "CSRMatrix", weights: np.ndarray) -> np.ndarray:
        """The ABFT setup product ``WᵀA`` (one row per checksum row)."""
        ...

    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        """Dense dot product ``uᵀv``."""
        ...

    def norm2(self, v: np.ndarray) -> float:
        """Euclidean norm ``‖v‖₂``."""
        ...


class BaseBackend:
    """Shared reference implementations of the non-SpMxV primitives.

    Concrete backends inherit these so that the *reliable* arithmetic
    (checksum setup, reductions) is identical across the backend axis;
    they differentiate on :meth:`spmv`, the unreliable hot kernel.
    """

    name = "base"

    def checksum_products(self, a: "CSRMatrix", weights: np.ndarray) -> np.ndarray:
        """``WᵀA`` via the reference scatter-reduction (reliable path)."""
        from repro.sparse.norms import column_sums

        weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        return np.stack([column_sums(a, weights=w) for w in weights])

    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        return float(np.dot(u, v))

    def norm2(self, v: np.ndarray) -> float:
        return float(np.linalg.norm(v))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
