"""The :class:`KernelBackend` protocol and its shared base class.

A *kernel backend* supplies the numerical primitives of a protected
solve as one swappable unit.  The solve stack dispatches
:meth:`KernelBackend.spmv` — the unreliable hot kernel, where the time
goes — on every product, and additionally routes the reliable
non-SpMxV primitives (:meth:`KernelBackend.checksum_products` at ABFT
setup, :meth:`KernelBackend.norm2` at the engine's and plugins'
residual checks) through the active backend.  The contract every
backend must honour (see ``docs/DESIGN.md`` §6 for the full
argument):

**Guarded paths stay on the reference semantics.**  The fault study
corrupts the raw CSR arrays in place, and the memory-safe emulation of
the resulting wild reads (index wrap-around, the monotone-segment
fallback) is part of the physics under study — its single definition
lives in :func:`repro.sparse.spmv.spmv`.  A backend may substitute its
own kernel for a product on a matrix *without* the
:attr:`~repro.sparse.csr.CSRMatrix.structure_clean` stamp only when
that kernel reproduces the reference guarded semantics **bit for
bit** (the ``numba`` backend's compiled guarded walk does, and proves
it by deferring the cases it cannot reproduce); any backend that
cannot must delegate guarded products to the reference kernel so ABFT
detection semantics are preserved.

**Checksum arithmetic is reliable.**  The paper's selective-reliability
model computes ABFT metadata and residuals in reliable storage; the
default :meth:`KernelBackend.checksum_products` implementation (the
reference scatter-reduction) is the semantics every shipped backend
reproduces bit-for-bit — a compiled backend may own the loop, but not
change the floats.  :meth:`dot`/:meth:`norm2` feed convergence
decisions, so a backend whose reductions cannot reproduce the
NumPy/BLAS summation order must inherit the base implementations.

Backends are stateless service objects: one shared instance per
registered name serves every solve in the process (see the registry
functions in :mod:`repro.backends`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix

__all__ = [
    "KernelBackend",
    "BaseBackend",
    "BackendUnavailableError",
    "BackendCapacityError",
]


class BackendUnavailableError(ValueError):
    """A registered backend cannot run in this environment.

    Raised when resolving a backend whose optional dependency is not
    installed (e.g. ``"numba"`` without the ``numba`` package).  A
    subclass of ``ValueError`` so every existing registry error path —
    ``solve()`` validation, ``Study.axis("backend", ...)``, the CLI's
    usage-error handler — reports it as a clean user-facing message
    instead of a traceback.
    """


class BackendCapacityError(ValueError):
    """A backend refuses a matrix it cannot handle at this size.

    Carries the structured fields a sweep driver needs to report the
    failure precisely (which backend, the offending dimension, the
    cap) instead of crashing mid-solve or silently materializing an
    oversized operator.  Raised by capacity-capped backends — today
    the ``dense`` backend's ``n <= max_n`` cap — from
    :meth:`BaseBackend.prepare` *before* any solve work starts, and
    again defensively from the per-product call.
    """

    def __init__(self, backend: str, *, n: int, cap: int, hint: str = "") -> None:
        self.backend = backend
        self.n = int(n)
        self.cap = int(cap)
        self.hint = hint
        msg = (
            f"backend {backend!r} is capped at n={cap} and cannot run an "
            f"n={n} workload"
        )
        if hint:
            msg += f"; {hint}"
        super().__init__(msg)


@runtime_checkable
class KernelBackend(Protocol):
    """Swappable numerical primitives for one protected solve.

    Implementations must be safe to share across solves (no per-solve
    state) and must keep guarded products — any matrix *without* the
    ``structure_clean`` stamp — bit-identical to the reference kernel,
    either by delegating to it or by reproducing its semantics exactly
    (see the module docstring).  :meth:`spmv` is dispatched on every
    product; :meth:`checksum_products` and :meth:`norm2` are routed at
    ABFT setup and the residual checks.
    """

    #: Registry name ("reference", "scipy", "dense", ...).
    name: str

    def spmv(
        self,
        a: "CSRMatrix",
        x: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        scratch: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """``y = A x`` with the reference kernel's exact signature.

        ``out``/``scratch`` are optional preallocated buffers (see
        :func:`repro.sparse.spmv.spmv`); a backend that cannot use them
        must still honour ``out`` as the returned storage.
        """
        ...

    def checksum_products(self, a: "CSRMatrix", weights: np.ndarray) -> np.ndarray:
        """The ABFT setup product ``WᵀA`` (one row per checksum row)."""
        ...

    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        """Dense dot product ``uᵀv``."""
        ...

    def norm2(self, v: np.ndarray) -> float:
        """Euclidean norm ``‖v‖₂``."""
        ...


class BaseBackend:
    """Shared reference implementations of the non-SpMxV primitives.

    Concrete backends inherit these so that the *reliable* arithmetic
    (checksum setup, reductions) is identical across the backend axis;
    they differentiate on :meth:`spmv`, the unreliable hot kernel.
    """

    name = "base"

    def prepare(self, a: "CSRMatrix") -> None:
        """Optional pre-solve hook (not part of the minimal protocol).

        Called once per solve by the resilience engine, after backend
        resolution and *before* the solve's wall clock starts.  Two
        shipped uses: capacity-capped backends fail fast here with a
        :class:`BackendCapacityError` instead of mid-solve, and JIT
        backends trigger their one-time kernel compilation here so the
        warm-up never pollutes per-task timing.  The engine looks the
        hook up with ``getattr``, so protocol-only custom backends
        that predate it keep working.
        """

    def checksum_products(self, a: "CSRMatrix", weights: np.ndarray) -> np.ndarray:
        """``WᵀA`` via the reference scatter-reduction (reliable path)."""
        from repro.sparse.norms import column_sums

        weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        return np.stack([column_sums(a, weights=w) for w in weights])

    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        return float(np.dot(u, v))

    def norm2(self, v: np.ndarray) -> float:
        return float(np.linalg.norm(v))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
