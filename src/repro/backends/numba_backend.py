"""Numba JIT backend: compiled clean *and* guarded kernels.

The paper's experiments are dominated by millions of protected SpMxV
calls, and the fault-physics loops those calls run — the CSR row walk,
the colid modulo-wrap wild-read emulation, the tolerant rowidx
segment walk, the checksum scatter-reduction — are exactly the simple
integer/float loops a JIT compiles well (in the spirit of the
fault-tolerant SpMxV kernels of Shantharam et al. and Chen's
ONLINE-DETECTION inner loops).  This backend compiles them with
`numba <https://numba.pydata.org>`_ so the *protected* path runs at
compiled speed instead of routing back to the NumPy reference
kernels.

**Bit-identity is the contract**, on clean and corrupted inputs alike
(``tests/test_backends_compiled.py`` locks it, including golden
replays through :func:`repro.resilience.engine.run_protected`).  The
compiled kernels reproduce the reference kernels' exact summation
orders:

- the reference row reduction is ``np.add.reduceat``, whose segment
  sum is *seed element + NumPy's pairwise_sum of the rest* — and
  pairwise_sum is a deliberately machine-independent scalar
  algorithm (8 accumulators per ≤128-element block, combined
  ``((r0+r1)+(r2+r3)) + ((r4+r5)+(r6+r7))``, sequential tail,
  recursive halving above 128 — NumPy's own comment: "8 times unroll
  ... allows vectorization with avx *without changing summation
  ordering*").  :func:`_pairwise_rest` transcribes it exactly, so the
  compiled row walk produces the same bytes (numba without
  ``fastmath`` emits no FMA contraction or reassociation);
- the guarded kernel reproduces the reference guarded branch: the
  global colid modulo-wrap, the clipped ``rowidx`` segment walk and
  the reduceat quirk where a segment whose start meets the next start
  collapses to a single element;
- the checksum product reproduces ``np.add.at``'s sequential
  unbuffered scatter in nonzero order.

The reference code paths this backend *cannot* reproduce bit for bit
are the ones whose summation order is machine-dependent: the
overshoot repair of a corrupted-``rowidx`` segment
(``ndarray.sum()`` on a contiguous slice — a SIMD-dispatched
reduction whose order varies with vector width) and the BLAS row dot
of the non-monotone row loop.  The compiled guarded kernel detects
those two (rare, ``rowidx``-corruption-only) cases and defers the
whole product to the reference kernel — the substitution argument of
``docs/DESIGN.md`` §6: own the guarded path only where you can prove
bit-identity, defer where you cannot.  For the same reason
:meth:`NumbaBackend.dot` / :meth:`NumbaBackend.norm2` inherit the
NumPy base implementations: they feed convergence decisions, and a
compiled loop cannot reproduce BLAS summation order.

``numba`` is an **optional dependency** (``pip install -e .[numba]``).
This module always imports; :func:`numba_available` probes the
environment, and instantiating :class:`NumbaBackend` without numba
raises a :class:`~repro.backends.protocol.BackendUnavailableError`
whose message says how to install it — that is the error surfaced by
``solve(backend="numba")``, ``Study.axis("backend", ["numba"])`` and
``repro solve --backend numba``.

Warm-up: kernels compile once per process, triggered eagerly by
:meth:`NumbaBackend.warmup` — which the engine's pre-solve
:meth:`~repro.backends.protocol.BaseBackend.prepare` hook calls before
the solve's wall clock starts, so first-call compilation never
pollutes benchmarks or per-task timing.  (The kernels close over the
shared pairwise helper, which rules out numba's on-disk cache; the
one-time in-process compile is the price, and ``prepare`` keeps it
out of every timed region.)

The pure-Python forms of the kernels remain runnable without numba
(``NumbaBackend(jit=False)``, orders of magnitude slower) so the
bit-identity algorithm itself stays testable on environments without
the optional dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.backends.protocol import BackendUnavailableError, BaseBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix

__all__ = ["NumbaBackend", "numba_available"]


def numba_available() -> bool:
    """Whether the optional ``numba`` dependency is importable."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


#: Guarded-kernel verdicts: the product was computed, or it hit one of
#: the summation orders only NumPy can reproduce (contiguous-slice
#: ``.sum()`` / BLAS) and the caller must defer to the reference kernel.
_DONE = 0
_DEFER = 1

#: NumPy's pairwise-summation block size (``PW_BLOCKSIZE``).
_PW_BLOCK = 128


def _build_kernels(jit: bool) -> dict:
    """Build the kernel set, compiled with ``numba.njit`` when ``jit``.

    The kernel bodies are defined here as closures over the shared
    pairwise helper so the jitted and interpreted modes run the exact
    same code; ``NumbaBackend(jit=False)`` is the interpreter running
    these very functions.
    """
    if jit:
        from numba import njit

        # No cache=True: closures cannot be cached on disk; warmup()
        # keeps the one-time compile out of timed regions instead.
        deco = njit(nogil=True)
    else:

        def deco(f):
            return f

    @deco
    def _pairwise_rest(val, colid, x, lo, n, ncols, wrap):
        """Sum of products ``val[j] * x[colid[j]]`` over ``[lo, lo+n)``
        in exactly NumPy's ``pairwise_sum`` order.

        This is the *rest* term of a reduceat segment (the caller adds
        the seed element in front).  ``wrap`` applies the guarded
        path's global colid modulo; the products are formed on the fly
        — same one-rounding-per-multiply floats as NumPy's
        pre-materialized ``val * x[colid]``.
        """
        if n < 8:
            # -0.0, not 0.0: NumPy seeds the small-block accumulator
            # with the bit-preserving additive identity, so a rest of
            # all -0.0 products stays -0.0.
            res = -0.0
            for j in range(lo, lo + n):
                c = colid[j]
                if wrap:
                    c = c % ncols
                res += val[j] * x[c]
            return res
        if n <= _PW_BLOCK:
            c = colid[lo]
            if wrap:
                c = c % ncols
            r0 = val[lo] * x[c]
            c = colid[lo + 1]
            if wrap:
                c = c % ncols
            r1 = val[lo + 1] * x[c]
            c = colid[lo + 2]
            if wrap:
                c = c % ncols
            r2 = val[lo + 2] * x[c]
            c = colid[lo + 3]
            if wrap:
                c = c % ncols
            r3 = val[lo + 3] * x[c]
            c = colid[lo + 4]
            if wrap:
                c = c % ncols
            r4 = val[lo + 4] * x[c]
            c = colid[lo + 5]
            if wrap:
                c = c % ncols
            r5 = val[lo + 5] * x[c]
            c = colid[lo + 6]
            if wrap:
                c = c % ncols
            r6 = val[lo + 6] * x[c]
            c = colid[lo + 7]
            if wrap:
                c = c % ncols
            r7 = val[lo + 7] * x[c]
            i = 8
            while i < n - (n % 8):
                c = colid[lo + i]
                if wrap:
                    c = c % ncols
                r0 += val[lo + i] * x[c]
                c = colid[lo + i + 1]
                if wrap:
                    c = c % ncols
                r1 += val[lo + i + 1] * x[c]
                c = colid[lo + i + 2]
                if wrap:
                    c = c % ncols
                r2 += val[lo + i + 2] * x[c]
                c = colid[lo + i + 3]
                if wrap:
                    c = c % ncols
                r3 += val[lo + i + 3] * x[c]
                c = colid[lo + i + 4]
                if wrap:
                    c = c % ncols
                r4 += val[lo + i + 4] * x[c]
                c = colid[lo + i + 5]
                if wrap:
                    c = c % ncols
                r5 += val[lo + i + 5] * x[c]
                c = colid[lo + i + 6]
                if wrap:
                    c = c % ncols
                r6 += val[lo + i + 6] * x[c]
                c = colid[lo + i + 7]
                if wrap:
                    c = c % ncols
                r7 += val[lo + i + 7] * x[c]
                i += 8
            res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
            while i < n:
                c = colid[lo + i]
                if wrap:
                    c = c % ncols
                res += val[lo + i] * x[c]
                i += 1
            return res
        # n > block: NumPy recurses pw(lo, n2) + pw(lo+n2, n-n2) with
        # n2 = n//2 rounded down to a multiple of 8.  Emulated with an
        # explicit stack (closures cannot self-recurse under numba);
        # depth is O(log2(n/128)), 200 slots is far beyond any int64 n.
        st_lo = np.empty(200, np.int64)
        st_n = np.empty(200, np.int64)
        st_op = np.empty(200, np.int64)  # 0 = evaluate, 1 = combine
        vals = np.empty(100, np.float64)
        sp = 0
        vp = 0
        st_lo[0] = lo
        st_n[0] = n
        st_op[0] = 0
        sp = 1
        while sp > 0:
            sp -= 1
            cur_lo = st_lo[sp]
            cur_n = st_n[sp]
            op = st_op[sp]
            if op == 1:
                right = vals[vp - 1]
                left = vals[vp - 2]
                vp -= 2
                vals[vp] = left + right
                vp += 1
            elif cur_n <= _PW_BLOCK:
                if cur_n < 8:
                    res = -0.0  # see the n < 8 branch above
                    for j in range(cur_lo, cur_lo + cur_n):
                        c = colid[j]
                        if wrap:
                            c = c % ncols
                        res += val[j] * x[c]
                else:
                    c = colid[cur_lo]
                    if wrap:
                        c = c % ncols
                    r0 = val[cur_lo] * x[c]
                    c = colid[cur_lo + 1]
                    if wrap:
                        c = c % ncols
                    r1 = val[cur_lo + 1] * x[c]
                    c = colid[cur_lo + 2]
                    if wrap:
                        c = c % ncols
                    r2 = val[cur_lo + 2] * x[c]
                    c = colid[cur_lo + 3]
                    if wrap:
                        c = c % ncols
                    r3 = val[cur_lo + 3] * x[c]
                    c = colid[cur_lo + 4]
                    if wrap:
                        c = c % ncols
                    r4 = val[cur_lo + 4] * x[c]
                    c = colid[cur_lo + 5]
                    if wrap:
                        c = c % ncols
                    r5 = val[cur_lo + 5] * x[c]
                    c = colid[cur_lo + 6]
                    if wrap:
                        c = c % ncols
                    r6 = val[cur_lo + 6] * x[c]
                    c = colid[cur_lo + 7]
                    if wrap:
                        c = c % ncols
                    r7 = val[cur_lo + 7] * x[c]
                    i = 8
                    while i < cur_n - (cur_n % 8):
                        c = colid[cur_lo + i]
                        if wrap:
                            c = c % ncols
                        r0 += val[cur_lo + i] * x[c]
                        c = colid[cur_lo + i + 1]
                        if wrap:
                            c = c % ncols
                        r1 += val[cur_lo + i + 1] * x[c]
                        c = colid[cur_lo + i + 2]
                        if wrap:
                            c = c % ncols
                        r2 += val[cur_lo + i + 2] * x[c]
                        c = colid[cur_lo + i + 3]
                        if wrap:
                            c = c % ncols
                        r3 += val[cur_lo + i + 3] * x[c]
                        c = colid[cur_lo + i + 4]
                        if wrap:
                            c = c % ncols
                        r4 += val[cur_lo + i + 4] * x[c]
                        c = colid[cur_lo + i + 5]
                        if wrap:
                            c = c % ncols
                        r5 += val[cur_lo + i + 5] * x[c]
                        c = colid[cur_lo + i + 6]
                        if wrap:
                            c = c % ncols
                        r6 += val[cur_lo + i + 6] * x[c]
                        c = colid[cur_lo + i + 7]
                        if wrap:
                            c = c % ncols
                        r7 += val[cur_lo + i + 7] * x[c]
                        i += 8
                    res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
                    while i < cur_n:
                        c = colid[cur_lo + i]
                        if wrap:
                            c = c % ncols
                        res += val[cur_lo + i] * x[c]
                        i += 1
                vals[vp] = res
                vp += 1
            else:
                n2 = cur_n // 2
                n2 -= n2 % 8
                st_lo[sp] = 0
                st_n[sp] = 0
                st_op[sp] = 1  # combine marker
                sp += 1
                st_lo[sp] = cur_lo + n2
                st_n[sp] = cur_n - n2
                st_op[sp] = 0
                sp += 1
                st_lo[sp] = cur_lo
                st_n[sp] = n2
                st_op[sp] = 0
                sp += 1
        return vals[0]

    @deco
    def _spmv_clean(val, colid, rowptr, x, y, ncols):
        """Clean CSR walk == ``val * x[colid]`` + reduceat, bit for bit.

        Each row is *seed product + pairwise rest*: reduceat seeds the
        segment accumulator from its first element (never ``0.0 +``,
        which would flip a ``-0.0`` product) and pairwise-sums the
        remainder.
        """
        n = y.shape[0]
        for i in range(n):
            lo = rowptr[i]
            hi = rowptr[i + 1]
            if hi <= lo:
                y[i] = 0.0
                continue
            first = val[lo] * x[colid[lo]]
            if hi - lo == 1:
                y[i] = first
            else:
                y[i] = first + _pairwise_rest(
                    val, colid, x, lo + 1, hi - lo - 1, ncols, False
                )

    @deco
    def _spmv_guarded(val, colid, rowptr, x, y, ncols, nnz):
        """The reference guarded branch, or ``_DEFER`` where it cannot be.

        Reproduces :func:`repro.sparse.spmv.spmv`'s
        non-``structure_clean`` path bit for bit: the global colid
        wrap, the ``[0, nnz]`` clip of the row pointers, the
        monotone-segment reduceat walk (each segment running to the
        next nonempty row's clipped start, including the
        start-meets-next-start single-element quirk).  Returns
        ``_DEFER`` — with no guarantee about ``y``'s contents — when
        the reference path would use a machine-dependent summation
        order: the overshoot repair (contiguous ``.sum()``) or the
        non-monotone row loop (BLAS row dot).
        """
        n = y.shape[0]
        # Wild-read emulation: wrap the whole index array iff any
        # index is out of range, exactly like the reference scan.
        wrap = False
        for j in range(nnz):
            c = colid[j]
            if c < 0 or c >= ncols:
                wrap = True
                break
        # Clipped-pointer monotonicity scan (reference: starts
        # non-decreasing and every end >= its start, else row loop).
        for i in range(n - 1):
            s0 = min(max(rowptr[i], 0), nnz)
            s1 = min(max(rowptr[i + 1], 0), nnz)
            if s1 < s0:
                return _DEFER  # non-monotone starts -> BLAS row loop
        for i in range(n):
            lo = min(max(rowptr[i], 0), nnz)
            hi = min(max(rowptr[i + 1], 0), nnz)
            if hi < lo:
                return _DEFER  # end < start -> BLAS row loop
        for i in range(n):
            y[i] = 0.0
        # Walk nonempty rows backwards, tracking the next nonempty
        # row's clipped start (reduceat's segment end).
        next_start = nnz
        for i in range(n - 1, -1, -1):
            lo = min(max(rowptr[i], 0), nnz)
            hi = min(max(rowptr[i + 1], 0), nnz)
            if hi <= lo:
                continue  # empty row: y stays 0, next_start unchanged
            if next_start <= lo:
                # reduceat quirk: indices[k] >= indices[k+1] yields
                # the single element at indices[k].
                c = colid[lo]
                if wrap:
                    c = c % ncols
                y[i] = val[lo] * x[c]
            elif hi < next_start:
                return _DEFER  # overshoot repair -> contiguous .sum()
            else:
                # hi >= next_start: reduceat sums [lo, next_start),
                # seeded from the first product.
                c = colid[lo]
                if wrap:
                    c = c % ncols
                first = val[lo] * x[c]
                m = next_start - lo
                if m == 1:
                    y[i] = first
                else:
                    y[i] = first + _pairwise_rest(
                        val, colid, x, lo + 1, m - 1, ncols, True
                    )
            next_start = lo
        return _DONE

    @deco
    def _checksum_products(val, colid, rowptr, weights, out):
        """``WᵀA`` as ``np.add.at``'s sequential scatter, one row per check."""
        nchecks = weights.shape[0]
        n = rowptr.shape[0] - 1
        for k in range(nchecks):
            for j in range(out.shape[1]):
                out[k, j] = 0.0
            for i in range(n):
                w = weights[k, i]
                for j in range(rowptr[i], rowptr[i + 1]):
                    out[k, colid[j]] += val[j] * w
        return out

    return {
        "clean": _spmv_clean,
        "guarded": _spmv_guarded,
        "checksums": _checksum_products,
    }


class NumbaBackend(BaseBackend):
    """JIT-compiled CSR kernels for the clean *and* guarded paths.

    Parameters
    ----------
    jit:
        ``True`` (default) compiles the kernels with ``numba.njit``
        and raises :class:`BackendUnavailableError` when numba is not
        installed.  ``False`` runs the identical kernel bodies in the
        interpreter — orders of magnitude slower, but the same
        floats; used by the test suite to lock bit-identity on
        environments without the optional dependency.
    """

    name = "numba"

    def __init__(self, *, jit: bool = True) -> None:
        if jit and not numba_available():
            raise BackendUnavailableError(
                "backend 'numba' requires the optional numba dependency, "
                "which is not installed; install it with "
                "`pip install -e .[numba]` (or `pip install numba`), or "
                "pick another backend ('reference', 'scipy', 'threaded')"
            )
        self._jit = bool(jit)
        self._kernels: "dict | None" = None
        self._warm = False

    @property
    def compiled(self) -> bool:
        """Whether the kernels run through numba (vs interpreted)."""
        return self._jit

    def _get_kernels(self) -> dict:
        kernels = self._kernels
        if kernels is None:
            kernels = self._kernels = _build_kernels(self._jit)
        return kernels

    def warmup(self) -> None:
        """Trigger one-time kernel compilation on a tiny system.

        Idempotent; the first call compiles every kernel for the
        argument types the solve stack uses, so no later call pays
        compile time inside a timed region.
        """
        if self._warm:
            return
        k = self._get_kernels()
        val = np.array([1.0, 2.0, 3.0])
        colid = np.array([0, 1, 0], dtype=np.int64)
        rowptr = np.array([0, 2, 3], dtype=np.int64)
        x = np.ones(2)
        y = np.empty(2)
        k["clean"](val, colid, rowptr, x, y, 2)
        k["guarded"](val, colid, rowptr, x, y, 2, 3)
        out = np.empty((2, 2))
        k["checksums"](val, colid, rowptr, np.ones((2, 2)), out)
        self._warm = True

    def prepare(self, a: "CSRMatrix") -> None:
        """Pre-solve hook: compilation happens here, outside timing."""
        self.warmup()

    def spmv(
        self,
        a: "CSRMatrix",
        x: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        scratch: "np.ndarray | None" = None,
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (a.ncols,):
            raise ValueError(f"x must have shape ({a.ncols},), got {x.shape}")
        n = a.nrows
        if out is None:
            y = np.empty(n, dtype=np.float64)
        else:
            if out.shape != (n,):
                raise ValueError(f"out must have shape ({n},), got {out.shape}")
            y = out
        if a.nnz == 0:
            y[:] = 0.0
            return y
        kernels = self._get_kernels()
        # Corrupted values overflowing to ±inf inside the kernel are
        # the silent error propagating for ABFT to flag, exactly as on
        # the reference path (numba, like C, raises no FP exceptions).
        if a.structure_clean:
            kernels["clean"](a.val, a.colid, a.rowidx, x, y, a.ncols)
            return y
        status = kernels["guarded"](a.val, a.colid, a.rowidx, x, y, a.ncols, a.nnz)
        if status == _DONE:
            return y
        # The reference path would use a contiguous-slice .sum() or a
        # BLAS row dot here (rowidx corruption only) — both machine-
        # dependent orders; defer the whole product so the bytes stay
        # identical.
        from repro.sparse.spmv import spmv

        return spmv(a, x, out=out, scratch=scratch)

    def checksum_products(self, a: "CSRMatrix", weights: np.ndarray) -> np.ndarray:
        """``WᵀA`` via the compiled sequential scatter (bit-identical).

        Requires in-range column indices; checksum setup runs on the
        pristine matrix, so an uncertified (non-``structure_clean``)
        matrix routes through the base NumPy scatter, which
        bounds-checks.
        """
        if not a.structure_clean:
            return super().checksum_products(a, weights)
        weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        if weights.shape[1] != a.nrows:
            raise ValueError(
                f"weights must have {a.nrows} columns, got {weights.shape}"
            )
        out = np.empty((weights.shape[0], a.ncols), dtype=np.float64)
        self._get_kernels()["checksums"](a.val, a.colid, a.rowidx, weights, out)
        return out

    # dot/norm2 deliberately inherit the NumPy base implementations:
    # they feed convergence decisions, and a compiled loop cannot
    # reproduce BLAS summation order bit-for-bit (module docstring,
    # DESIGN.md §6).
