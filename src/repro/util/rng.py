"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Experiment drivers derive independent
child generators per (matrix, scheme, rate, repetition) tuple so that
simulations are reproducible bit-for-bit regardless of execution order,
which matters when benchmark harnesses parallelize repetitions.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["as_generator", "spawn_children", "spawn_named"]


def as_generator(seed_or_rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (fresh nondeterministic generator), an integer seed, or an
        existing generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_children(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of children: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def spawn_named(base_seed: int, *labels: object) -> np.random.Generator:
    """Derive a generator deterministically from a base seed and labels.

    The labels (matrix id, scheme name, fault rate, repetition index, ...)
    are hashed into the seed entropy, so the same tuple always yields the
    same stream while distinct tuples yield independent streams.
    """
    digest = hashlib.sha256(repr((base_seed, *labels)).encode()).digest()
    entropy = int.from_bytes(digest[:16], "little")
    return np.random.default_rng(np.random.SeedSequence(entropy))
