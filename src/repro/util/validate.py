"""Parameter-validation helpers shared across the library.

These raise early with actionable messages instead of letting NumPy
broadcast errors surface deep inside a solver loop.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_square",
    "check_vector",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_square(name: str, shape: tuple[int, ...]) -> int:
    """Require a square 2-D shape; return the dimension."""
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"{name} must be square, got shape {shape}")
    return shape[0]


def check_vector(name: str, x: np.ndarray, n: int | None = None) -> np.ndarray:
    """Require a 1-D float array, optionally of length ``n``."""
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got ndim={arr.ndim}")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
    return arr
