"""Minimal structured logging used by the simulation engine.

The engine records recovery events (detections, corrections, rollbacks)
both for user-facing verbosity and for test assertions.  A tiny event
sink avoids dragging the stdlib logging configuration into library code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """A single timestamped event emitted by a solver or simulator."""

    kind: str
    iteration: int
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = " ".join(f"{k}={v}" for k, v in self.payload.items())
        return f"[iter {self.iteration:5d}] {self.kind} {extras}".rstrip()


class EventLog:
    """Append-only event sink with optional live echo.

    Parameters
    ----------
    echo:
        Optional callable invoked with each event's string form; pass
        ``print`` for live tracing.
    """

    def __init__(self, echo: Callable[[str], None] | None = None) -> None:
        self.events: list[Event] = []
        self._echo = echo

    def emit(self, kind: str, iteration: int, **payload: Any) -> Event:
        """Record an event and return it."""
        ev = Event(kind=kind, iteration=iteration, payload=payload)
        self.events.append(ev)
        if self._echo is not None:
            self._echo(str(ev))
        return ev

    def count(self, kind: str) -> int:
        """Number of recorded events of the given kind."""
        return sum(1 for ev in self.events if ev.kind == kind)

    def of_kind(self, kind: str) -> list[Event]:
        """All events of the given kind, in emission order."""
        return [ev for ev in self.events if ev.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
