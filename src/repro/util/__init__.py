"""Shared utilities: deterministic RNG handling, logging, validation."""

from repro.util.rng import as_generator, spawn_children, spawn_named
from repro.util.validate import (
    check_positive,
    check_nonnegative,
    check_probability,
    check_square,
    check_vector,
)

__all__ = [
    "as_generator",
    "spawn_children",
    "spawn_named",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_square",
    "check_vector",
]
