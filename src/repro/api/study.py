"""Declarative parameter studies over the campaign engine.

A :class:`Study` names a sweep — which axes vary, which stay fixed —
and compiles it to the flat, content-hashable
:class:`~repro.campaign.spec.TaskSpec` list the campaign engine
executes.  Everything the engine gives the paper's own drivers comes
for free: ``jobs`` fan-out over worker processes (bit-identical to
serial), a result store keyed by task content hash (any
:mod:`repro.store` backend — single-file JSONL, ``sharded:`` or
``sqlite:``), and resume of a killed sweep without recomputation.
Saved specs (:meth:`Study.save`) also feed ``repro serve``, the
lease-coordinated multi-worker fleet over a shared concurrent store.

::

    from repro import Study

    study = (Study("interval-sensitivity")
             .axis("s", range(2, 33, 2))
             .fix(uid=2213, alpha=1/16, scale=48, reps=3)
             .metrics("mean_time", "convergence_rate"))
    result = study.run(jobs=4, store="sweep.jsonl")
    for point in result.points():
        print(point.s, point.stats.mean_time)

Axes
----
``uid`` (suite matrix id), ``method``, ``backend`` (kernel backend
name, see :mod:`repro.backends`), ``scheme``, ``alpha`` (fault
constant) or ``mtbf`` (its reciprocal — declare one, not both), ``s``
(checkpoint interval; ``"auto"`` = model-optimal) and ``d``
(verification interval; ``"auto"`` = Chen's value for ONLINE-DETECTION,
1 for the ABFT schemes).  The grid is the full product, enumerated in
the canonical nesting ``uid → method → backend → scheme → alpha → s →
d`` regardless of declaration order, so task hashes never depend on
call order.  Invalid combinations are skipped rather than aborting the
sweep: schemes a solver does not support (ONLINE-DETECTION under
anything but CG, mirroring :class:`~repro.campaign.spec.CampaignSpec`)
and ``d > 1`` under an ABFT scheme (they verify every iteration).
Backends share fault streams at equal points (the backend enters the
task hash but not the seed derivation), so ``axis("backend",
["reference", "scipy"])`` is a controlled kernel comparison.

The paper's own evaluation artifacts are preset studies:
:meth:`Study.table1` / :meth:`Study.figure1` wrap the exact
:class:`CampaignSpec` grids the drivers have always run, so their
results remain bit-identical to the golden fixtures.

A study serializes to JSON (:meth:`to_json` / :meth:`save`) and back
(:meth:`from_json` / :meth:`load`); the round trip preserves every
task hash, so an exported spec re-run with ``--resume`` serves all
completed work from the store.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

from repro.campaign.spec import CampaignSpec, TaskSpec
from repro.core.methods import Method, Scheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.protocol import StoreBackend

__all__ = ["Study", "StudyPoint", "StudyResult"]

#: Sweepable axes in canonical nesting order (outermost first).
AXES: tuple[str, ...] = ("uid", "method", "backend", "scheme", "alpha", "s", "d")

#: Per-point defaults when an axis is neither swept nor fixed.
POINT_DEFAULTS: dict = {
    "uid": 2213,
    "method": "cg",
    "backend": "reference",
    "scheme": "abft-correction",
    "alpha": 1.0 / 16.0,
    "s": "auto",
    "d": "auto",
}

#: Campaign-wide settings (not per-point axes).  ``sampling`` is the
#: adaptive sequential-stopping policy spec (:mod:`repro.adaptive`);
#: ``""`` keeps fixed-count sampling, in which case ``reps`` applies.
SETTING_DEFAULTS: dict = {
    "scale": 16,
    "reps": 10,
    "eps": 1e-6,
    "base_seed": 2015,
    "sampling": "",
}


def _canonical_sampling(spec) -> str:
    """Normalize a sampling spec (policy / string / None) to the
    canonical string form stored in task identity (``""`` = fixed)."""
    from repro.adaptive import resolve_sampling

    policy = resolve_sampling(spec)
    return "" if policy is None else policy.spec()


@dataclass(frozen=True)
class StudyPoint:
    """One executed grid point with its aggregated statistics."""

    uid: int
    method: str
    backend: str  #: kernel backend the point ran on
    scheme: str
    alpha: float
    s: int
    d: int
    n: int  #: matrix dimension actually run
    density: float
    stats: object  #: :class:`~repro.sim.engine.RunStatistics`

    @property
    def normalized_mtbf(self) -> float:
        """The paper's x-axis: 1/α."""
        return 1.0 / self.alpha


class StudyResult:
    """Tasks and records of one executed study, with typed views."""

    def __init__(self, tasks: "list[TaskSpec]", records: "list[dict]",
                 metrics: "tuple[str, ...]" = ("mean_time", "convergence_rate")) -> None:
        if len(tasks) != len(records):
            raise ValueError(f"{len(tasks)} tasks but {len(records)} records")
        self.tasks = tasks
        self.records = records
        self.metrics = metrics

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.points())

    @property
    def quarantined(self) -> int:
        """How many tasks ended as ``kind="quarantine"`` records
        (poison tasks the self-healing harness gave up on — see
        :mod:`repro.chaos`).  Zero for a fully healthy run."""
        return sum(
            1
            for rec in self.records
            if rec is not None and rec.get("kind") == "quarantine"
        )

    @property
    def total_reps(self) -> int:
        """Repetitions actually executed across every non-quarantined task."""
        return sum(
            rec["stats"]["reps"]
            for rec in self.records
            if rec is not None and rec.get("kind") != "quarantine"
        )

    @property
    def reps_saved(self) -> int:
        """Repetitions the adaptive stopping rule did not need: the sum
        of ``task.reps − stats.reps`` over executed tasks (0 for a
        fixed-count study, where every task runs its full count)."""
        return sum(
            max(0, task.reps - rec["stats"]["reps"])
            for task, rec in zip(self.tasks, self.records)
            if rec is not None and rec.get("kind") != "quarantine"
        )

    def points(self) -> "list[StudyPoint]":
        """One typed point per executed task, in task order.

        Quarantined tasks carry no result payload and are skipped;
        check :attr:`quarantined` to see whether the view is partial.
        """
        from repro.campaign.aggregate import stats_from_record

        out = []
        for task, rec in zip(self.tasks, self.records):
            if rec.get("kind") == "quarantine":
                continue
            out.append(
                StudyPoint(
                    uid=task.uid,
                    method=task.method,
                    backend=task.backend,
                    scheme=task.scheme,
                    alpha=task.alpha,
                    s=task.s,
                    d=task.d,
                    n=rec["n"],
                    density=rec["density"],
                    stats=stats_from_record(rec),
                )
            )
        return out

    def table1_rows(self):
        """Fold a ``table1`` preset study into the paper's Table-1 rows."""
        from repro.campaign.aggregate import aggregate_table1

        return aggregate_table1(self.tasks, self.records)

    def figure1_points(self):
        """Fold a ``figure1`` preset study into the paper's Figure-1 points."""
        from repro.campaign.aggregate import aggregate_figure1

        return aggregate_figure1(self.tasks, self.records)

    def format_table(self) -> str:
        """Plain-text table: the point coordinates plus the study's metrics."""
        cols = ("uid", "method", "backend", "scheme", "alpha", "s", "d", "n") + tuple(
            self.metrics
        )

        def cell(p: StudyPoint, c: str) -> str:
            v = getattr(p, c) if hasattr(p, c) else getattr(p.stats, c)
            return f"{v:.4g}" if isinstance(v, float) else str(v)

        points = self.points()
        widths = {
            c: max(len(c), *(len(cell(p, c)) for p in points)) if points else len(c)
            for c in cols
        }
        head = " ".join(f"{c:>{widths[c]}}" for c in cols)
        lines = [head, "-" * len(head)]
        for p in points:
            lines.append(" ".join(f"{cell(p, c):>{widths[c]}}" for c in cols))
        return "\n".join(lines) + "\n"


class Study:
    """Builder for a declarative sweep; see the module docstring.

    ``axis`` / ``fix`` / ``metrics`` mutate and return ``self`` for
    chaining.  Compilation (:meth:`tasks`) is pure: the same study
    always yields the same task list, hence the same content hashes.
    """

    def __init__(self, name: str = "study") -> None:
        self.name = str(name)
        self._axes: "dict[str, list]" = {}
        self._fixed: dict = {}
        self._metrics: tuple[str, ...] = ("mean_time", "convergence_rate")
        self._campaign: "CampaignSpec | None" = None  # preset (table1/figure1) mode
        self._compiled: "list[TaskSpec] | None" = None  # tasks() memo

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def axis(self, name: str, values) -> "Study":
        """Sweep ``name`` over ``values`` (order preserved within the axis)."""
        self._check_generic("axis")
        key = self._axis_key(name)
        vals = [self._coerce(name, v) for v in values]
        if not vals:
            raise ValueError(f"axis {name!r} needs at least one value")
        self._axes[key] = vals
        self._compiled = None
        return self

    def fix(self, **kwargs) -> "Study":
        """Pin axes or campaign settings (``scale``/``reps``/``eps``/
        ``base_seed``/``sampling``)."""
        self._check_generic("fix")
        for name, value in kwargs.items():
            if name == "sampling":
                self._fixed[name] = _canonical_sampling(value)
            elif name in SETTING_DEFAULTS:
                self._fixed[name] = type(SETTING_DEFAULTS[name])(value)
            else:
                self._fixed[self._axis_key(name)] = self._coerce(name, value)
        self._compiled = None
        return self

    def adaptive(self, spec: "str | object | None") -> "Study":
        """Switch the study to adaptive (variance-aware) sampling.

        ``spec`` is a :class:`repro.adaptive.SamplingPolicy`, a spec
        string like ``"ci=0.05,conf=0.95,min=5,max=200"``, or
        ``None``/``""`` to return to fixed-count sampling.  Works on
        preset (table1/figure1) and generic studies alike.  Under
        adaptive sampling the ``reps`` setting is superseded by the
        policy's ``max`` (the per-task repetition cap).
        """
        canonical = _canonical_sampling(spec)
        if self._campaign is not None:
            from dataclasses import replace

            self._campaign = replace(self._campaign, sampling=canonical)
        else:
            self._fixed["sampling"] = canonical
        self._compiled = None
        return self

    def metrics(self, *names: str) -> "Study":
        """Select the :class:`~repro.sim.engine.RunStatistics` fields reported
        by :meth:`StudyResult.format_table`."""
        from repro.sim.engine import RunStatistics

        known = {f.name for f in fields(RunStatistics)} | {"sem_time"}
        bad = [n for n in names if n not in known]
        if bad:
            raise ValueError(f"unknown metrics {bad}; expected one of: {sorted(known)}")
        if names:
            self._metrics = tuple(names)
        return self

    def _axis_key(self, name: str) -> str:
        key = "alpha" if name == "mtbf" else name
        if key not in AXES:
            raise ValueError(
                f"unknown axis {name!r} (expected one of: {', '.join(AXES)}, mtbf)"
            )
        other = "alpha" if name == "mtbf" else "mtbf"
        if name in ("alpha", "mtbf") and self._declared_rate not in (None, name):
            raise ValueError(f"cannot declare both 'alpha' and '{other}'")
        if name in ("alpha", "mtbf"):
            self._declared_rate = name
        return key

    _declared_rate: "str | None" = None

    @staticmethod
    def _coerce(name: str, value):
        """Normalize axis values to plain Python scalars (numpy scalars
        would poison the repr-based task hash)."""
        if name in ("uid", "s", "d"):
            if isinstance(value, str):  # "auto" intervals
                if name != "uid" and value == "auto":
                    return value
                raise ValueError(f"{name} must be an int" + ("" if name == "uid" else " or 'auto'"))
            return int(value)
        if name == "alpha":
            v = float(value)
            if v <= 0:
                raise ValueError(f"alpha must be > 0, got {v}")
            return v
        if name == "mtbf":
            v = float(value)
            if v <= 0:
                raise ValueError(f"mtbf must be > 0, got {v}")
            return 1.0 / v
        if name == "method":
            return Method.parse(value).value
        if name == "backend":
            from repro.backends import get_backend

            if not isinstance(value, str):
                raise ValueError(
                    "backend axis values must be registered names "
                    f"(task specs are JSON), got {value!r}"
                )
            get_backend(value)  # raises on an unknown backend
            return value
        if name == "scheme":
            return Scheme.parse(value).value
        raise AssertionError(name)

    def _check_generic(self, op: str) -> None:
        if self._campaign is not None:
            raise ValueError(f"cannot {op}() on a {self._campaign.kind} preset study")

    # ------------------------------------------------------------------
    # presets: the paper's own evaluation grids
    # ------------------------------------------------------------------
    @classmethod
    def table1(
        cls,
        *,
        scale: int = 16,
        reps: int = 10,
        alpha: float = 1.0 / 16.0,
        uids: "list[int] | None" = None,
        eps: float = 1e-6,
        base_seed: int = 2015,
        s_span: int = 6,
        methods: "list[str] | None" = None,
        backend: str = "reference",
        sampling: str = "",
    ) -> "Study":
        """The paper's Table-1 grid (interval sweep at fault constant α),
        verbatim the :class:`CampaignSpec` the drivers have always expanded.
        ``sampling`` switches the campaign to adaptive sequential stopping
        (:mod:`repro.adaptive`; ``reps`` is then superseded by the policy
        cap)."""
        study = cls("table1")
        study._campaign = CampaignSpec(
            kind="table1",
            scale=scale,
            reps=reps,
            uids=tuple(uids) if uids is not None else None,
            alpha=alpha,
            eps=eps,
            base_seed=base_seed,
            s_span=s_span,
            methods=tuple(methods) if methods is not None else ("cg",),
            backend=backend,
            sampling=_canonical_sampling(sampling),
        )
        return study

    @classmethod
    def figure1(
        cls,
        *,
        scale: int = 16,
        reps: int = 10,
        mtbf_values: "list[float] | None" = None,
        uids: "list[int] | None" = None,
        eps: float = 1e-6,
        base_seed: int = 2015,
        methods: "list[str] | None" = None,
        backend: str = "reference",
        sampling: str = "",
    ) -> "Study":
        """The paper's Figure-1 grid (scheme comparison across MTBF).
        ``sampling`` switches the campaign to adaptive sequential stopping
        (:mod:`repro.adaptive`)."""
        study = cls("figure1")
        study._campaign = CampaignSpec(
            kind="figure1",
            scale=scale,
            reps=reps,
            uids=tuple(uids) if uids is not None else None,
            mtbf_values=tuple(mtbf_values) if mtbf_values is not None else None,
            eps=eps,
            base_seed=base_seed,
            methods=tuple(methods) if methods is not None else ("cg",),
            backend=backend,
            sampling=_canonical_sampling(sampling),
        )
        return study

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def tasks(self) -> "list[TaskSpec]":
        """Compile the study to its ordered, content-hashable task list.

        Compilation is memoized (builders invalidate on mutation), so
        callers that need the list before running — ``repro study run``
        prints the count first — don't pay the matrix builds and model
        optimization twice.  The returned list is a fresh copy.
        """
        if self._compiled is None:
            self._compiled = self._compile()
        return list(self._compiled)

    def _compile(self) -> "list[TaskSpec]":
        if self._campaign is not None:
            return self._campaign.expand()
        settings = {**SETTING_DEFAULTS, **{k: v for k, v in self._fixed.items()
                                           if k in SETTING_DEFAULTS}}
        sampling = settings["sampling"]
        if sampling:
            from repro.adaptive import SamplingPolicy

            # Adaptive tasks carry the policy cap as their rep count
            # (TaskSpec enforces the equality).
            settings["reps"] = SamplingPolicy.parse(sampling).max_reps
        values = {}
        for ax in AXES:
            if ax in self._axes:
                values[ax] = self._axes[ax]
            elif ax in self._fixed:
                values[ax] = [self._fixed[ax]]
            else:
                values[ax] = [POINT_DEFAULTS[ax]]

        from repro.core.methods import CostModel
        from repro.sim.experiments import resolve_intervals
        from repro.sim.matrices import get_matrix

        # resolve_intervals evaluates the costs callable — and hence
        # builds the matrix — only for points that actually need the
        # model; the cache spans the method axis (the optimum depends
        # only on (uid, scheme, alpha, s, d)).
        resolution_cache: dict = {}

        def resolved(uid: int, scheme: Scheme, alpha: float, s_raw, d_raw):
            key = (uid, scheme, alpha, s_raw, d_raw)
            if key not in resolution_cache:
                resolution_cache[key] = resolve_intervals(
                    scheme,
                    alpha,
                    lambda: CostModel.from_matrix(get_matrix(uid, settings["scale"])),
                    s=s_raw,
                    d=d_raw,
                )
            return resolution_cache[key]

        tasks: "list[TaskSpec]" = []
        for uid in values["uid"]:
            for method_name in values["method"]:
                method = Method.parse(method_name)
                for backend in values["backend"]:
                    for scheme_name in values["scheme"]:
                        scheme = Scheme.parse(scheme_name)
                        if not method.supports(scheme):
                            continue
                        for alpha in values["alpha"]:
                            for s_raw in values["s"]:
                                for d_raw in values["d"]:
                                    if (
                                        isinstance(d_raw, int)
                                        and d_raw > 1
                                        and scheme is not Scheme.ONLINE_DETECTION
                                    ):
                                        # ABFT schemes verify every iteration;
                                        # skip like any unsupported combination
                                        # rather than aborting the campaign.
                                        continue
                                    s, d, s_model = resolved(uid, scheme, alpha, s_raw, d_raw)
                                    tasks.append(
                                        TaskSpec(
                                            experiment=f"study:{self.name}",
                                            uid=uid,
                                            scale=settings["scale"],
                                            scheme=scheme.value,
                                            alpha=alpha,
                                            s=s,
                                            d=d,
                                            reps=settings["reps"],
                                            base_seed=settings["base_seed"],
                                            eps=settings["eps"],
                                            labels=("study", self.name, uid, "s", s, "d", d),
                                            s_model=s_model if s_raw == "auto" else 0,
                                            method=method.value,
                                            backend=backend,
                                            sampling=sampling,
                                        )
                                    )
        return tasks

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        jobs: "int | None" = 1,
        store: "StoreBackend | str | os.PathLike[str] | None" = None,
        progress: "bool | str" = False,
        chunksize: "int | None" = None,
        reuse_workspace: bool = True,
        trace_dir: "str | os.PathLike[str] | None" = None,
        task_timeout: "float | None" = None,
        retries: int = 0,
        chaos=None,
    ) -> StudyResult:
        """Execute the study through the campaign engine.

        ``jobs`` fans tasks over worker processes (any value is
        bit-identical to serial); ``store`` persists per-task records
        and serves already-completed tasks from them without
        recomputation (this *is* resume — pointing a re-run at the same
        store only executes what is missing).  It accepts a constructed
        backend or a selector URL (:mod:`repro.store`): a bare path is
        the single-file JSONL store, ``sharded:dir`` hash-partitioned
        shards, ``sqlite:file.db`` a WAL database — records and hence
        aggregates are bit-identical across all of them, and a store
        may be migrated between backends mid-campaign (``repro store
        migrate``) without losing resume.  ``progress`` prints a
        throughput/ETA line to stderr — ``True`` or ``"bar"`` for the
        human status line, ``"json"`` for newline-delimited JSON
        objects schedulers can scrape, ``False``/``"none"`` for
        silence.  ``reuse_workspace`` (default on) runs repetitions
        through per-worker solve workspaces — the zero-copy hot path;
        records and task hashes are identical either way, so stores mix
        freely across the switch.

        ``trace_dir`` enables structured tracing (:mod:`repro.obs`):
        every worker appends its solve events to its own
        ``shard-<pid>.jsonl`` under the directory (crash-safe append,
        one JSON object per line, each stamped with the owning task's
        content hash).  Summarize with ``repro trace summarize DIR``.
        Tracing is pure observation — records are bit-identical with it
        on or off.

        ``task_timeout`` / ``retries`` / ``chaos`` are the self-healing
        and fault-injection knobs of
        :func:`repro.campaign.executor.run_campaign` (off by default);
        a task that exhausts its attempts is quarantined rather than
        failing the study — check :attr:`StudyResult.quarantined`.
        """
        from repro.campaign.executor import run_campaign
        from repro.campaign.progress import ProgressReporter

        if progress in (False, None, "none"):
            mode = None
        elif progress in (True, "bar"):
            mode = "bar"
        elif progress == "json":
            mode = "json"
        else:
            raise ValueError(
                f"progress must be a bool, 'bar', 'json' or 'none', got {progress!r}"
            )

        tasks = self.tasks()
        reporter = None
        if mode is not None:
            import sys

            reporter = ProgressReporter(
                len(tasks), stream=sys.stderr, label=self.name, mode=mode
            )
        records = run_campaign(
            tasks,
            jobs=jobs,
            store=store,
            progress=reporter,
            chunksize=chunksize,
            reuse_workspace=reuse_workspace,
            trace_dir=trace_dir,
            task_timeout=task_timeout,
            retries=retries,
            chaos=chaos,
        )
        return StudyResult(tasks, records, metrics=self._metrics)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-serializable spec; :meth:`from_json` inverts it exactly
        (same name, axes, settings — hence the same task hashes)."""
        if self._campaign is not None:
            camp = {f.name: getattr(self._campaign, f.name) for f in fields(CampaignSpec)}
            camp = {
                k: list(v) if isinstance(v, tuple) else v for k, v in camp.items()
            }
            return {"study": self.name, "kind": self._campaign.kind, "campaign": camp}
        return {
            "study": self.name,
            "kind": "axes",
            "axes": {k: list(v) for k, v in self._axes.items()},
            "fixed": dict(self._fixed),
            "metrics": list(self._metrics),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Study":
        """Rebuild a study from :meth:`to_json` output."""
        if not isinstance(data, dict) or "kind" not in data:
            raise ValueError("study spec must be a JSON object with a 'kind' key")
        kind = data["kind"]
        name = data.get("study", "study")
        if kind in ("table1", "figure1"):
            camp = dict(data["campaign"])
            camp["kind"] = kind
            for key in ("uids", "mtbf_values", "methods"):
                if camp.get(key) is not None:
                    camp[key] = tuple(camp[key])
            study = cls(name)
            study._campaign = CampaignSpec(**camp)
            return study
        if kind != "axes":
            raise ValueError(f"unknown study kind {kind!r} (expected axes/table1/figure1)")
        study = cls(name)
        for ax, vals in data.get("axes", {}).items():
            study.axis(ax, vals)
        if data.get("fixed"):
            study.fix(**data["fixed"])
        if data.get("metrics"):
            study.metrics(*data["metrics"])
        return study

    def save(self, path: "str | os.PathLike[str]") -> None:
        """Write the spec to a JSON file (see ``repro study run``)."""
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: "str | os.PathLike[str]") -> "Study":
        """Read a spec written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_json(json.load(fh))
