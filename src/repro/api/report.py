"""Reporting over campaign result stores (``repro report``).

A campaign's JSONL store is its durable record: one line per completed
task, carrying the task's full parameters and aggregated statistics.
This module folds a store into a human-readable summary — one line per
(experiment, method, backend, scheme) group with task counts,
repetition totals, time and convergence aggregates — without
re-running anything.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.campaign.store import ResultStore

__all__ = ["GroupSummary", "StoreSummary", "summarize_store", "format_summary"]


@dataclass(frozen=True)
class GroupSummary:
    """Aggregate of one (experiment, method, backend, scheme) group."""

    experiment: str
    method: str
    backend: str
    scheme: str
    tasks: int
    reps: int  #: total repetitions across the group's tasks
    mean_time: float  #: average of per-task mean simulated times
    min_time: float
    max_time: float
    convergence_rate: float  #: rep-weighted average convergence rate


@dataclass(frozen=True)
class StoreSummary:
    """Everything ``repro report`` prints about one store."""

    path: str
    records: int  #: parseable task records in the store
    skipped: int  #: records without usable statistics (foreign schema)
    groups: "list[GroupSummary]"

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


def summarize_store(path: "str | os.PathLike[str]") -> StoreSummary:
    """Load a JSONL result store and fold it into a :class:`StoreSummary`.

    Records missing the executor's ``task``/``stats`` schema (for
    example hand-written entries) are counted as ``skipped`` rather
    than failing the whole report.
    """
    records = ResultStore(path).load()
    groups: "dict[tuple[str, str, str, str], list[dict]]" = {}
    skipped = 0
    needed = ("mean_time", "min_time", "max_time", "convergence_rate", "reps")
    for rec in records.values():
        task = rec.get("task")
        stats = rec.get("stats")
        if not isinstance(task, dict) or not isinstance(stats, dict) \
                or any(k not in stats for k in needed):
            skipped += 1
            continue
        key = (
            str(task.get("experiment", "?")),
            str(task.get("method", "cg")),
            # Pre-backend stores carry no backend field; they ran the
            # reference kernels by definition.
            str(task.get("backend", "reference")),
            str(task.get("scheme", "?")),
        )
        groups.setdefault(key, []).append(rec)

    summaries: "list[GroupSummary]" = []
    for (experiment, method, backend, scheme), recs in sorted(groups.items()):
        stats = [r["stats"] for r in recs]
        reps = sum(s["reps"] for s in stats)
        summaries.append(
            GroupSummary(
                experiment=experiment,
                method=method,
                backend=backend,
                scheme=scheme,
                tasks=len(recs),
                reps=reps,
                mean_time=sum(s["mean_time"] for s in stats) / len(stats),
                min_time=min(s["min_time"] for s in stats),
                max_time=max(s["max_time"] for s in stats),
                convergence_rate=(
                    sum(s["convergence_rate"] * s["reps"] for s in stats) / reps
                    if reps
                    else 0.0
                ),
            )
        )
    return StoreSummary(
        path=str(path), records=len(records), skipped=skipped, groups=summaries
    )


def format_summary(summary: StoreSummary) -> str:
    """Render a :class:`StoreSummary` as an aligned text table."""
    lines = [
        f"store: {summary.path}",
        f"records: {summary.records}"
        + (f" ({summary.skipped} without usable statistics)" if summary.skipped else ""),
    ]
    if summary.groups:
        head = (
            f"{'experiment':>16} {'method':>9} {'backend':>9} {'scheme':>17} "
            f"{'tasks':>6} {'reps':>6} {'mean_t':>9} {'min_t':>9} "
            f"{'max_t':>9} {'conv%':>6}"
        )
        lines += ["", head, "-" * len(head)]
        for g in summary.groups:
            lines.append(
                f"{g.experiment:>16} {g.method:>9} {g.backend:>9} "
                f"{g.scheme:>17} {g.tasks:>6} "
                f"{g.reps:>6} {g.mean_time:>9.2f} {g.min_time:>9.2f} "
                f"{g.max_time:>9.2f} {g.convergence_rate * 100:>6.1f}"
            )
    return "\n".join(lines) + "\n"
