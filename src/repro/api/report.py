"""Reporting over campaign result stores (``repro report``).

A campaign's store is its durable record: one entry per completed
task, carrying the task's full parameters and aggregated statistics.
This module folds a store into a human-readable summary — one line per
(experiment, method, backend, scheme) group with task counts,
repetition totals, time and convergence aggregates — without
re-running anything.  Stores written since the observability layer
(:mod:`repro.obs`) also carry ``telemetry`` records; when present they
render as an extra block (cache hit rates, buffer-pool reuse,
per-phase time shares), and older stores report exactly as before.

Any store backend works (:mod:`repro.store`): pass a bare JSONL path,
``sharded:dir``, ``sqlite:file.db`` or a constructed backend.  The
fold is *streaming*: records are consumed one at a time from
``iter_records()`` and reduced on the spot to the handful of scalars a
group needs, so a multi-GB store never materializes — and a *partial*
store (campaign still running, or killed mid-flight) summarizes
exactly the records it already holds.  Within each group the float
accumulation runs in a canonical order (sorted by record hash), so
the same record set yields a bit-identical report from every backend
regardless of on-disk layout — the invariant the migration round-trip
tests pin down.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.protocol import StoreBackend

__all__ = ["GroupSummary", "StoreSummary", "summarize_store", "format_summary"]


@dataclass(frozen=True)
class GroupSummary:
    """Aggregate of one (experiment, method, backend, scheme) group."""

    experiment: str
    method: str
    backend: str
    scheme: str
    tasks: int
    reps: int  #: total repetitions across the group's tasks
    mean_time: float  #: average of per-task mean simulated times
    min_time: float
    max_time: float
    convergence_rate: float  #: rep-weighted average convergence rate
    #: Total repetition budget (the tasks' rep caps); equals ``reps``
    #: for fixed-count campaigns, larger when adaptive sampling
    #: (:mod:`repro.adaptive`) stopped early.  0 for legacy records
    #: whose tasks carry no rep count.
    reps_cap: int = 0


@dataclass(frozen=True)
class StoreSummary:
    """Everything ``repro report`` prints about one store."""

    path: str
    records: int  #: parseable task records in the store
    skipped: int  #: records without usable statistics (foreign schema)
    groups: "list[GroupSummary]"
    #: Merged campaign telemetry (``kind="telemetry"`` records written
    #: by the executor), or ``None`` for stores predating it.
    telemetry: "dict | None" = None
    #: ``kind="quarantine"`` records (poison tasks the self-healing
    #: harness gave up on, :mod:`repro.chaos`); 0 for healthy stores.
    quarantined: int = 0
    #: ``kind="partial"`` records — in-flight per-rep checkpoints of
    #: adaptive tasks (:mod:`repro.adaptive`) that were interrupted
    #: before their final record; a ``--resume`` picks them up.
    partials: int = 0

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


def summarize_store(
    store: "StoreBackend | str | os.PathLike[str]",
) -> StoreSummary:
    """Stream a result store and fold it into a :class:`StoreSummary`.

    Records missing the executor's ``task``/``stats`` schema (for
    example hand-written entries) are counted as ``skipped`` rather
    than failing the whole report.  ``telemetry`` records (which the
    executor appends when a traced-or-not campaign runs fresh tasks
    against a store) are folded into :attr:`StoreSummary.telemetry` —
    several of them (a resumed campaign appends one per run) merge by
    counter addition; stores predating the telemetry schema simply
    report ``telemetry=None``.

    The pass is single and streaming: each record is reduced to a
    small projection — its group key and five statistics scalars —
    before the next one is read, with last-wins per hash.  Memory is
    proportional to the number of *distinct tasks*, never to record
    payloads or file size.
    """
    from repro.store import open_store

    store = open_store(store)
    needed = ("mean_time", "min_time", "max_time", "convergence_rate", "reps")
    #: hash -> small projection: ("telemetry", rec), ("skip",), or
    #: ("stats", group_key, reps, mean, min, max, conv).  Dict order =
    #: first-appearance, values = last-wins — the same fold load() does.
    latest: "dict[str, tuple]" = {}
    for rec in store.iter_records():
        h = rec["hash"]
        if rec.get("kind") == "telemetry":
            latest[h] = ("telemetry", rec)
            continue
        if rec.get("kind") == "quarantine":
            latest[h] = ("quarantine",)
            continue
        if rec.get("kind") == "partial":
            latest[h] = ("partial",)
            continue
        task = rec.get("task")
        stats = rec.get("stats")
        if not isinstance(task, dict) or not isinstance(stats, dict) \
                or any(k not in stats for k in needed):
            latest[h] = ("skip",)
            continue
        key = (
            str(task.get("experiment", "?")),
            str(task.get("method", "cg")),
            # Pre-backend stores carry no backend field; they ran the
            # reference kernels by definition.
            str(task.get("backend", "reference")),
            str(task.get("scheme", "?")),
        )
        latest[h] = (
            "stats",
            key,
            stats["reps"],
            stats["mean_time"],
            stats["min_time"],
            stats["max_time"],
            stats["convergence_rate"],
            int(task.get("reps", 0)),
        )

    groups: "dict[tuple[str, str, str, str], list[tuple]]" = {}
    skipped = 0
    quarantined = 0
    partials = 0
    telemetry_recs: "list[dict]" = []
    # Canonical accumulation order — (group, hash) — so a migrated
    # store reports bit-identically however its backend laid records
    # out on disk.
    for h in sorted(latest):
        entry = latest[h]
        if entry[0] == "stats":
            groups.setdefault(entry[1], []).append(entry[2:])
    for entry in latest.values():
        if entry[0] == "telemetry":
            telemetry_recs.append(entry[1])
        elif entry[0] == "skip":
            skipped += 1
        elif entry[0] == "quarantine":
            quarantined += 1
        elif entry[0] == "partial":
            partials += 1

    summaries: "list[GroupSummary]" = []
    for (experiment, method, backend, scheme), rows in sorted(groups.items()):
        reps = sum(r[0] for r in rows)
        summaries.append(
            GroupSummary(
                experiment=experiment,
                method=method,
                backend=backend,
                scheme=scheme,
                tasks=len(rows),
                reps=reps,
                mean_time=sum(r[1] for r in rows) / len(rows),
                min_time=min(r[2] for r in rows),
                max_time=max(r[3] for r in rows),
                convergence_rate=(
                    sum(r[4] * r[0] for r in rows) / reps if reps else 0.0
                ),
                reps_cap=sum(r[5] for r in rows),
            )
        )
    return StoreSummary(
        path=store.url,
        records=len(latest) - len(telemetry_recs) - partials,
        skipped=skipped,
        groups=summaries,
        telemetry=_merge_telemetry(telemetry_recs),
        quarantined=quarantined,
        partials=partials,
    )


def _merge_telemetry(recs: "list[dict]") -> "dict | None":
    """Fold every ``telemetry`` store record into one counters/timers
    view (resumed campaigns append one record per run)."""
    if not recs:
        return None
    from repro.obs.metrics import merge_snapshots

    parts = [
        {
            "counters": r.get("counters") or {},
            "timers": r.get("timers") or {},
        }
        for r in recs
    ]
    merged = merge_snapshots(parts)
    return {
        "records": len(recs),
        "fresh": sum(int(r.get("fresh", 0)) for r in recs),
        "cached": sum(int(r.get("cached", 0)) for r in recs),
        "counters": merged["counters"],
        "timers": merged["timers"],
    }


def _rate(hit: float, miss: float) -> "float | None":
    total = hit + miss
    return hit / total if total > 0 else None


def _format_telemetry(tele: dict) -> "list[str]":
    """The telemetry block of ``repro report`` (omitted entirely for
    stores without telemetry records — every ratio guards its
    denominator, so partial counter sets render fine)."""
    c = tele.get("counters", {})
    lines = [
        "",
        f"telemetry ({tele['records']} record(s), "
        f"{tele['fresh']} fresh / {tele['cached']} cached task(s)):",
    ]
    solves = c.get("engine.solves", 0)
    if solves:
        lines.append(f"  solves: {int(solves)} "
                     f"({int(c.get('engine.converged', 0))} converged, "
                     f"{int(c.get('engine.diverged', 0))} diverged)")
    cache = _rate(c.get("abft.checksum_cache.hit", 0), c.get("abft.checksum_cache.miss", 0))
    if cache is not None:
        lines.append(f"  checksum-cache hit rate: {100 * cache:.1f}%")
    live = _rate(c.get("workspace.live_restore", 0), c.get("workspace.live_copy", 0))
    if live is not None:
        lines.append(f"  live-matrix restore rate: {100 * live:.1f}%")
    reqs = c.get("workspace.buffer_requests", 0)
    allocs = c.get("workspace.buffer_allocs", 0)
    if reqs > 0:
        lines.append(f"  buffer-pool reuse: {100 * (1 - allocs / reqs):.1f}% "
                     f"({int(allocs)} alloc(s) / {int(reqs)} request(s))")
    phases = {
        name: c.get(f"engine.time_units.{name}", 0.0)
        for name in ("useful", "wasted", "verification", "checkpoint", "recovery")
    }
    total = sum(phases.values())
    if total > 0:
        share = " ".join(f"{k}={100 * v / total:.1f}%" for k, v in phases.items())
        lines.append(f"  time shares: {share}")
    return lines


def format_summary(summary: StoreSummary) -> str:
    """Render a :class:`StoreSummary` as an aligned text table."""
    lines = [
        f"store: {summary.path}",
        f"records: {summary.records}"
        + (f" ({summary.skipped} without usable statistics)" if summary.skipped else ""),
    ]
    if summary.quarantined:
        lines.append(
            f"quarantined: {summary.quarantined} poison task(s) — "
            "re-queue with `repro store compact --drop-quarantined`"
        )
    if summary.partials:
        lines.append(
            f"partials: {summary.partials} in-flight adaptive "
            "checkpoint(s) — a --resume against this store continues them"
        )
    if summary.groups:
        # Groups where adaptive sampling stopped under the rep budget
        # grow a trailing "saved" column; fixed-count stores keep the
        # historical layout byte-for-byte.
        with_saved = any(g.reps_cap > g.reps for g in summary.groups)
        head = (
            f"{'experiment':>16} {'method':>9} {'backend':>9} {'scheme':>17} "
            f"{'tasks':>6} {'reps':>6} {'mean_t':>9} {'min_t':>9} "
            f"{'max_t':>9} {'conv%':>6}"
        )
        if with_saved:
            head += f" {'saved':>6}"
        lines += ["", head, "-" * len(head)]
        for g in summary.groups:
            line = (
                f"{g.experiment:>16} {g.method:>9} {g.backend:>9} "
                f"{g.scheme:>17} {g.tasks:>6} "
                f"{g.reps:>6} {g.mean_time:>9.2f} {g.min_time:>9.2f} "
                f"{g.max_time:>9.2f} {g.convergence_rate * 100:>6.1f}"
            )
            if with_saved:
                line += f" {max(0, g.reps_cap - g.reps):>6}"
            lines.append(line)
        saved = sum(max(0, g.reps_cap - g.reps) for g in summary.groups)
        if saved:
            cap = sum(g.reps_cap for g in summary.groups)
            lines.append(
                f"adaptive sampling saved {saved} of {cap} repetition(s) "
                f"({100.0 * saved / cap:.1f}%)"
            )
    if summary.telemetry is not None:
        lines += _format_telemetry(summary.telemetry)
    return "\n".join(lines) + "\n"
