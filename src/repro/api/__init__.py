"""The stable public API layer.

Three pillars on top of the resilience and campaign engines:

- :mod:`repro.api.facade` — :func:`repro.solve`: one call from problem
  to :class:`SolveReport` (solution, convergence history, recovery
  ledger, model-recommended interval);
- :mod:`repro.api.study` — declarative :class:`Study` sweeps compiled
  to campaign tasks (parallel, persistent, resumable), with the
  paper's Table-1 / Figure-1 grids as presets;
- :mod:`repro.api.cli` + :mod:`repro.api.report` — the ``repro``
  console script (``solve`` / ``table1`` / ``figure1`` / ``study run``
  / ``report``).
"""

from repro.api.facade import CheckpointSpec, FaultSpec, SolveReport, solve
from repro.api.study import Study, StudyPoint, StudyResult
from repro.api.report import StoreSummary, GroupSummary, summarize_store, format_summary

__all__ = [
    "solve",
    "SolveReport",
    "FaultSpec",
    "CheckpointSpec",
    "Study",
    "StudyPoint",
    "StudyResult",
    "StoreSummary",
    "GroupSummary",
    "summarize_store",
    "format_summary",
]
