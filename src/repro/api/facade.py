"""The ``repro.solve()`` facade: one call from problem to report.

The resilience engine, its cost models, the Section-4 interval
optimization and the fault injector are all composable pieces — this
module wires them together behind a single function so that protecting
one linear solve takes three lines::

    from repro import solve, FaultSpec
    report = solve(a, b, method="pcg", scheme="abft-correction",
                   faults=FaultSpec(alpha=0.05, seed=42))
    print(report.summary())

``solve`` validates the matrix, derives a flop-count cost model,
resolves ``"auto"`` checkpoint/verification intervals through the
paper's performance model, runs the requested recurrence plugin under
the requested protection scheme, and returns a :class:`SolveReport`
carrying the solution, the convergence history, the recovery ledger
(:class:`~repro.resilience.accounting.RecoveryCounters` /
:class:`~repro.resilience.accounting.TimeBreakdown`) and the
model-recommended interval — with ``to_dict()`` / ``to_json()`` for
downstream tooling.

Determinism contract: for a given ``(matrix, b, method, scheme,
FaultSpec, CheckpointSpec, costs, eps)`` the run is bit-identical to
calling the underlying driver directly (locked by
``tests/test_api_facade.py`` against the golden FT-CG trajectories).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.core.methods import CostModel, Method, Scheme, SchemeConfig
from repro.sparse.csr import CSRMatrix
from repro.sparse.validate import validate_structure

__all__ = ["FaultSpec", "CheckpointSpec", "SolveReport", "solve"]


@dataclass(frozen=True)
class FaultSpec:
    """Silent-error injection settings for one solve.

    Attributes
    ----------
    alpha:
        Fault-rate constant: strikes per iteration ~ ``Poisson(α)``
        (``λ = α/M`` per word, the paper's normalization).  Zero
        disables injection.
    seed:
        Seed or generator for the fault process; ``None`` draws a fresh
        nondeterministic stream.
    """

    alpha: float = 0.0
    seed: "int | np.random.Generator | None" = None

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")

    @classmethod
    def coerce(cls, value: "FaultSpec | float | None") -> "FaultSpec":
        """``None`` → no faults; a bare number → ``FaultSpec(alpha=number)``."""
        if value is None:
            return cls()
        if isinstance(value, FaultSpec):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(alpha=float(value))
        raise TypeError(f"faults must be a FaultSpec or a number, got {value!r}")


@dataclass(frozen=True)
class CheckpointSpec:
    """Checkpoint / verification cadence for one solve.

    Attributes
    ----------
    interval:
        The model's ``s`` — verified chunks per checkpoint frame.  An
        integer pins it; ``None`` or ``"auto"`` asks the Section-4
        model for the optimal interval at the run's fault rate (falling
        back to 10 when injection is off and the model is moot).
    verification_interval:
        The ``d`` of ONLINE-DETECTION — iterations per verified chunk.
        ``None``/``"auto"`` resolves to Chen's closed-form value for
        ONLINE-DETECTION and to 1 for the ABFT schemes (which verify
        every iteration).
    """

    interval: "int | str | None" = None
    verification_interval: "int | str | None" = None

    #: ``s`` used when injection is off and the model has nothing to optimize.
    DEFAULT_INTERVAL = 10

    def __post_init__(self) -> None:
        for name in ("interval", "verification_interval"):
            v = getattr(self, name)
            if v is None or (isinstance(v, str) and v == "auto"):
                continue
            if isinstance(v, int) and not isinstance(v, bool) and v >= 1:
                continue
            raise ValueError(f"{name} must be a positive int, None or 'auto', got {v!r}")

    @classmethod
    def coerce(cls, value: "CheckpointSpec | int | None") -> "CheckpointSpec":
        """``None`` → all-auto; a bare int → ``CheckpointSpec(interval=int)``."""
        if value is None:
            return cls()
        if isinstance(value, CheckpointSpec):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return cls(interval=value)
        raise TypeError(f"checkpoint must be a CheckpointSpec or an int, got {value!r}")


@dataclass(frozen=True, eq=False)
class SolveReport:
    """Everything one protected solve produced.

    Thin, JSON-friendly view over the engine's
    :class:`~repro.resilience.accounting.SolveResult`, augmented with
    the resolved configuration and the model's recommendation.

    ``eq=False``: the ndarray field makes a generated ``__eq__``
    raise, so reports compare (and hash) by identity — compare runs
    via :attr:`solution_sha256` / :meth:`to_dict` instead.
    """

    x: np.ndarray  #: solution vector
    converged: bool
    iterations: int  #: logical solver iteration reached
    iterations_executed: int  #: total iterations including rolled-back work
    time_units: float  #: simulated execution time (units of ``Titer``)
    wall_seconds: float
    residual_norm: float  #: true residual ``‖b − Ax‖`` (clean matrix)
    threshold: float
    counters: Any  #: :class:`~repro.resilience.accounting.RecoveryCounters`
    breakdown: Any  #: :class:`~repro.resilience.accounting.TimeBreakdown`
    method: str
    scheme: str
    backend: str  #: kernel backend the solve ran on (repro.backends)
    alpha: float
    n: int
    nnz: int
    checkpoint_interval: int  #: the ``s`` actually used
    verification_interval: int  #: the ``d`` actually used
    recommended_interval: "int | None"  #: model-optimal ``s̃`` (None when α = 0)
    history: "list[dict]" = field(default_factory=list)
    #: convergence history: one entry per executed iteration with the
    #: solver's believed residual norm and the simulated clock.
    events: "list[dict]" = field(default_factory=list)
    #: recovery timeline: checkpoint / rollback / correction events.

    @property
    def solution_sha256(self) -> str:
        """Content hash of the solution vector's raw bytes."""
        return hashlib.sha256(np.ascontiguousarray(self.x).tobytes()).hexdigest()

    def to_dict(self, *, solution: bool = False) -> dict:
        """JSON-serializable view; ``solution=True`` inlines ``x`` as a list
        (the SHA-256 of its bytes is always included)."""
        out = {
            "converged": self.converged,
            "iterations": self.iterations,
            "iterations_executed": self.iterations_executed,
            "time_units": self.time_units,
            "wall_seconds": self.wall_seconds,
            "residual_norm": self.residual_norm,
            "threshold": self.threshold,
            "method": self.method,
            "scheme": self.scheme,
            "backend": self.backend,
            "alpha": self.alpha,
            "n": self.n,
            "nnz": self.nnz,
            "checkpoint_interval": self.checkpoint_interval,
            "verification_interval": self.verification_interval,
            "recommended_interval": self.recommended_interval,
            "counters": asdict(self.counters),
            "breakdown": asdict(self.breakdown),
            "history": self.history,
            "events": self.events,
            "solution_sha256": self.solution_sha256,
        }
        if solution:
            out["x"] = self.x.tolist()
        return out

    def to_json(self, *, solution: bool = False, indent: "int | None" = None) -> str:
        """``to_dict`` rendered as a JSON string."""
        return json.dumps(self.to_dict(solution=solution), indent=indent)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        c, b = self.counters, self.breakdown
        status = "converged" if self.converged else "DID NOT CONVERGE"
        kernel = "" if self.backend == "reference" else f" [{self.backend} kernels]"
        lines = [
            f"{self.method} under {self.scheme}{kernel} on n={self.n} "
            f"(nnz={self.nnz}): {status}",
            f"  iterations       {self.iterations} logical / {self.iterations_executed} executed",
            f"  simulated time   {self.time_units:.2f} Titer units"
            f"  (useful {b.useful_work:.2f}, wasted {b.wasted_work:.2f},"
            f" verif {b.verification:.2f}, ckpt {b.checkpoint:.2f}, rec {b.recovery:.2f})",
            f"  residual         {self.residual_norm:.3e} (threshold {self.threshold:.3e})",
            f"  faults           {c.faults_injected} injected, {c.total_corrections} corrected,"
            f" {c.rollbacks} rollbacks, {c.checkpoints} checkpoints",
            f"  intervals        s={self.checkpoint_interval}, d={self.verification_interval}"
            + (
                f" (model recommends s~={self.recommended_interval})"
                if self.recommended_interval is not None
                else ""
            ),
        ]
        return "\n".join(lines)


def _as_matrix(a: object) -> CSRMatrix:
    """Coerce a CSRMatrix / scipy sparse matrix / dense 2-D array."""
    if isinstance(a, CSRMatrix):
        return a
    if hasattr(a, "tocsr"):  # any scipy.sparse format
        return CSRMatrix.from_scipy(a.tocsr())  # type: ignore[union-attr]
    arr = np.asarray(a)
    if arr.ndim == 2:
        return CSRMatrix.from_dense(arr)
    raise TypeError(
        "matrix must be a repro CSRMatrix, a scipy.sparse matrix or a dense 2-D array; "
        f"got {type(a).__name__}"
    )


def solve(
    a: object,
    b: np.ndarray,
    *,
    method: "Method | str" = "cg",
    scheme: "Scheme | str" = "abft-correction",
    faults: "FaultSpec | float | None" = None,
    checkpoint: "CheckpointSpec | int | None" = None,
    costs: "CostModel | None" = None,
    eps: float = 1e-8,
    maxiter: "int | None" = None,
    x0: "np.ndarray | None" = None,
    validate: bool = True,
    record_history: bool = True,
    reuse_workspace: "bool | object" = False,
    backend: "str | object | None" = None,
    trace: "object | None" = None,
) -> SolveReport:
    """Solve ``A x = b`` with a fault-tolerant iterative method.

    Parameters
    ----------
    a:
        System matrix — a :class:`~repro.sparse.csr.CSRMatrix`, any
        ``scipy.sparse`` matrix, or a dense 2-D array.
    b:
        Right-hand side.
    method:
        Solver: ``"cg"``, ``"bicgstab"`` or ``"pcg"`` (Jacobi-PCG) — a
        :class:`~repro.core.methods.Method` or its value string.
    scheme:
        Protection scheme: ``"online-detection"``, ``"abft-detection"``
        or ``"abft-correction"``.  Must be supported by ``method``
        (Chen's ONLINE-DETECTION argues from the plain CG recurrence).
    faults:
        :class:`FaultSpec`, a bare ``alpha`` number, or ``None`` (no
        injection).
    checkpoint:
        :class:`CheckpointSpec`, a bare interval int, or ``None``
        (model-optimal interval).
    costs:
        Normalized :class:`~repro.core.methods.CostModel`; ``None``
        derives one from the matrix's flop counts
        (:meth:`CostModel.from_matrix`).
    eps, maxiter, x0:
        Stopping tolerance, executed-iteration cap (default ``20 n``)
        and initial guess, as in the underlying drivers.
    validate:
        Check CSR structural invariants and shape compatibility before
        running (cheap; disable only in tight loops on trusted input).
    record_history:
        Record the per-iteration convergence history (believed residual
        norm vs simulated time).  Costs one vector norm per iteration
        of wall time; never affects the trajectory.
    reuse_workspace:
        Zero-copy hot path for repeated solves of the same matrix
        object: ``True`` uses the process-wide
        :func:`repro.perf.default_workspace` (live-matrix strike-undo
        reuse, cached ABFT checksums, preallocated buffers), or pass
        your own :class:`repro.perf.SolveWorkspace`.  Bit-identical to
        the default fresh-allocation path; leave off for one-shot
        solves or when calling from multiple threads, and see
        :func:`repro.perf.clear_caches` if you mutate a previously
        solved matrix in place.
    backend:
        Kernel backend for every SpMxV of the solve — a registered
        name (``"reference"``, ``"scipy"``, ``"dense"``) or a
        :class:`repro.backends.KernelBackend` instance.  ``None``
        (default) takes the workspace's
        :attr:`~repro.perf.SolveWorkspace.backend` when a workspace
        with one is passed, else the reference backend — the
        bit-identity oracle.  ``"scipy"`` delegates structure-clean
        products to SciPy's compiled kernel (numerically equivalent,
        typically 2–4× faster on large matrices) while every guarded
        path stays on the reference kernels, so fault detection
        semantics are unchanged.
    trace:
        Optional structured-event sink: a :class:`repro.obs.Tracer`
        instance, or a path (``str``/``os.PathLike``) that opens a
        :class:`repro.obs.JsonlTracer` writing one event per line
        (closed before returning).  Receives the solve's full event
        stream — lifecycle, per-iteration steps, strikes, recoveries
        (see ``docs/DESIGN.md`` §8).  ``None`` /
        :class:`repro.obs.NullTracer` disable tracing at zero cost;
        tracing is pure observation and never changes the trajectory.

    Returns
    -------
    SolveReport
    """
    import os as _os

    from repro.backends import get_backend
    from repro.obs.tracer import CallbackTracer, JsonlTracer, MultiTracer, resolve_tracer
    from repro.perf import SolveWorkspace, default_workspace
    from repro.resilience.registry import run_ft_method
    from repro.util.log import EventLog

    if isinstance(reuse_workspace, SolveWorkspace):
        workspace = reuse_workspace
    elif reuse_workspace is True:
        workspace = default_workspace()
    elif reuse_workspace is False or reuse_workspace is None:
        workspace = None
    else:
        # A truthy stand-in must not silently become the *shared*
        # process-wide workspace (the exact unsafe sharing the
        # docstring warns multi-threaded callers about).
        raise TypeError(
            "reuse_workspace must be a bool or a repro.perf.SolveWorkspace, "
            f"got {reuse_workspace!r}"
        )

    if backend is None:
        # Defer to the workspace's kernel axis when one is set;
        # "reference" otherwise.  (An explicit backend always wins.)
        ws_backend = workspace.backend if workspace is not None else None
        backend = ws_backend if ws_backend is not None else "reference"
    backend_obj = get_backend(backend)  # raises on an unknown name

    mat = _as_matrix(a)
    b = np.asarray(b, dtype=np.float64)
    if validate:
        validate_structure(mat)
        if mat.nrows != mat.ncols:
            raise ValueError(f"matrix must be square, got {mat.nrows}x{mat.ncols}")
        if b.shape != (mat.nrows,):
            raise ValueError(f"b must have shape ({mat.nrows},), got {b.shape}")

    meth = Method.parse(method)
    sch = Scheme.parse(scheme)
    if not meth.supports(sch):
        supported = ", ".join(s.value for s in meth.supported_schemes)
        raise ValueError(
            f"method {meth.value!r} does not support scheme {sch.value!r} "
            f"(supported: {supported})"
        )

    fa = FaultSpec.coerce(faults)
    cp = CheckpointSpec.coerce(checkpoint)
    costs_ = CostModel.from_matrix(mat) if costs is None else costs

    from repro.sim.experiments import resolve_intervals

    s, d, rec_s = resolve_intervals(
        sch,
        fa.alpha,
        costs_,
        s=cp.interval if isinstance(cp.interval, int) else "auto",
        d=cp.verification_interval if isinstance(cp.verification_interval, int) else "auto",
        default_s=CheckpointSpec.DEFAULT_INTERVAL,
        recommend=True,  # the report shows s̃ even when the user pinned s
    )
    config = SchemeConfig(sch, checkpoint_interval=s, verification_interval=d, costs=costs_)

    # User-facing trace sink: a Tracer passes through; a path opens a
    # JSONL sink we own (and therefore close before returning).
    own_trace = False
    if trace is None or isinstance(trace, (str, _os.PathLike)):
        tr = JsonlTracer(trace) if trace is not None else None
        own_trace = tr is not None
    else:
        tr = resolve_tracer(trace)

    history: "list[dict]" = []
    if record_history:

        def _record(ctx) -> None:
            history.append(
                {
                    "iteration": int(ctx.plugin.iteration),
                    "time_units": float(ctx.time_units),
                    "residual_norm": float(np.linalg.norm(ctx.plugin.vectors["r"])),
                }
            )

        hist = CallbackTracer(on_iteration=_record)
        tr = hist if tr is None else MultiTracer([tr, hist])

    log = EventLog()
    try:
        res = run_ft_method(
            meth,
            mat,
            b,
            config,
            alpha=fa.alpha,
            x0=x0,
            eps=eps,
            maxiter=maxiter,
            rng=fa.seed,
            event_log=log,
            tracer=tr,
            workspace=workspace,
            backend=backend_obj,
        )
    finally:
        if own_trace:
            # Close only the sink we created; `tr` may wrap it in a
            # MultiTracer whose other children belong to the caller.
            trace_sink = tr.tracers[0] if isinstance(tr, MultiTracer) else tr
            trace_sink.close()

    return SolveReport(
        x=res.x,
        converged=res.converged,
        iterations=res.iterations,
        iterations_executed=res.iterations_executed,
        time_units=res.time_units,
        wall_seconds=res.wall_seconds,
        residual_norm=res.residual_norm,
        threshold=res.threshold,
        counters=res.counters,
        breakdown=res.breakdown,
        method=meth.value,
        scheme=sch.value,
        backend=backend_obj.name,
        alpha=fa.alpha,
        n=mat.nrows,
        nnz=mat.nnz,
        checkpoint_interval=s,
        verification_interval=d,
        recommended_interval=rec_s,
        history=history,
        events=[
            {"kind": e.kind, "iteration": e.iteration, **e.payload} for e in log
        ],
    )
